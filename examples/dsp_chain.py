#!/usr/bin/env python
"""A DSP pipeline: inter-nest buffers and loop fusion.

The paper's kernels live inside applications that chain loop nests:
filter a frame, then threshold it, then accumulate statistics.  The
intermediate arrays crossing each nest boundary usually dwarf any single
nest's window.  This example measures a two-stage pipeline's memory, then
fuses the stages and watches the intermediate buffer collapse to a
window — the sequence-level payoff of the paper's ideas.

Run:  python examples/dsp_chain.py
"""

from repro.ir import parse_program
from repro.ir.sequence import ProgramSequence, sequence_memory_report
from repro.transform.fusion import can_fuse, fuse, fusion_memory_report
from repro.window import max_total_window

PRODUCE = """
# Stage 1: vertical smoothing filter into the intermediate frame T.
for i = 1 to 32 {
  for j = 1 to 32 {
    P1: T[i][j] = A[i-1][j] + A[i][j] + A[i+1][j]
  }
}
"""

CONSUME = """
# Stage 2: horizontal gradient of the smoothed frame.
for i = 1 to 32 {
  for j = 1 to 32 {
    C1: B[i][j] = T[i][j] + T[i][j-1]
  }
}
"""


def main() -> None:
    stage1 = parse_program(PRODUCE, name="smooth")
    stage2 = parse_program(CONSUME, name="gradient")
    chain = ProgramSequence([stage1, stage2], name="pipeline")

    print("--- unfused pipeline ---")
    report = sequence_memory_report(chain)
    for program, window in zip(chain.programs, report.per_nest):
        print(f"  nest {program.name:<9} window = {window}")
    for k, live in enumerate(report.per_boundary):
        print(f"  boundary {k}: {live} intermediate elements live across")
    print(f"  memory requirement : {report.requirement}")
    print(f"  declared           : {report.declared}")
    print()

    ok, reason = can_fuse(stage1, stage2)
    print(f"--- fusion legality: {ok} ({reason}) ---")
    fused = fuse(stage1, stage2)
    print(f"fused nest '{fused.name}' with {len(fused.statements)} statements")
    print(f"fused memory requirement: {max_total_window(fused)}")
    print()

    result = fusion_memory_report(stage1, stage2)
    print(f"requirement {result.unfused_requirement} -> {result.fused_requirement} "
          f"({100 * result.saving:.1f}% smaller)")
    print()
    print("The 1024-element intermediate frame became a one-row window:")
    print("production and consumption now march together.")


if __name__ == "__main__":
    main()
