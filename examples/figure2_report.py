#!/usr/bin/env python
"""Regenerate the paper's Figure 2 and write a Markdown/CSV report.

Runs the full estimation + optimization pipeline over the seven benchmark
kernels and emits the results as a console table, a Markdown table
(EXPERIMENTS.md style) and a CSV for plotting — all from one measurement
pass, so they cannot drift apart.

Run:  python examples/figure2_report.py [output_dir]
"""

import sys
import time
from pathlib import Path

from repro.kernels import KERNELS
from repro.reporting import (
    figure2_csv,
    figure2_markdown,
    figure2_row,
    render_table,
)


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    rows = []
    for spec in KERNELS:
        start = time.time()
        row = figure2_row(spec)
        rows.append(row)
        print(f"  measured {spec.name:<12} in {time.time() - start:5.1f}s "
              f"(unopt {row.mws_unopt}, opt {row.mws_opt})")
    print()
    print(render_table(rows))
    print()

    md_path = out_dir / "figure2_measured.md"
    csv_path = out_dir / "figure2_measured.csv"
    md_path.write_text(
        "# Figure 2, regenerated\n\n"
        "Measured by the exact window simulator + program-level search;\n"
        "paper percentages in parentheses.\n\n"
        + figure2_markdown(rows)
        + "\n"
    )
    csv_path.write_text(figure2_csv(rows))
    print(f"wrote {md_path} and {csv_path}")


if __name__ == "__main__":
    main()
