#!/usr/bin/env python
"""Design-space exploration with symbolic closed forms.

The paper derives its counts as expressions in the loop limits.  Keeping
them symbolic answers the designer's inverse question directly: given an
SRAM budget, how large a problem fits?  And under which transformation
does the required window stop growing with the image size?

Two layers are on show: the paper's own formulas (fast, but estimates —
eq. (2) says 50 for Example 8 where the truth is 40) and the parametric
engine, which interpolates the *exact* window engines into a verified
closed form and then answers any problem size by substitution.

Run:  python examples/symbolic_design.py
"""

import sympy

from repro.estimation.parametric import with_trip_counts
from repro.estimation.symbolic import (
    derive_parametric_distinct,
    max_problem_size,
    symbolic_distinct_accesses,
)
from repro.ir import parse_program
from repro.window import max_window_size
from repro.window.symbolic import (
    derive_parametric_mws,
    scaling_exponent,
    symbolic_mws_2d,
    symbolic_mws_3d,
)

STENCIL = """
for i = 1 to 10 {
  for j = 1 to 10 {
    A[i][j] = A[i-1][j+2]
  }
}
"""

EXAMPLE_8 = """
for i = 1 to 25 {
  for j = 1 to 10 {
    X[2*i + 5*j] = X[2*i + 5*j]
  }
}
"""


def main() -> None:
    program = parse_program(STENCIL, name="example2")
    expr, syms = symbolic_distinct_accesses(program, "A")
    print("--- symbolic footprint (paper Example 2) ---")
    print(f"A_d(N1, N2) = {expr}")
    print(f"A_d(10, 10) = {expr.subs(dict(zip(syms, (10, 10))))}")
    print()

    print("--- largest square problem per SRAM budget ---")
    for capacity in (1024, 8192, 65536):
        best = max_problem_size(expr, syms, capacity)
        print(f"  {capacity:>6} words -> N = {best}")
    print()

    example8 = parse_program(EXAMPLE_8, name="example8")
    print("--- exact parametric MWS (Example 8 access) ---")
    estimate, _ = symbolic_mws_2d(2, 5, 1, 0)
    pe = derive_parametric_mws(example8, "X")
    print(f"  eq. (2) estimate : MWS ~ {estimate}")
    print(f"  derived exact    : MWS = {pe.expr}   "
          f"[{pe.method}, domain N >= {pe.domain}]")
    print("  one derivation answers every size; the simulator confirms:")
    for trips in [(25, 10), (64, 32), (640, 480)]:
        substituted = pe.substitute(trips)
        simulated = max_window_size(with_trip_counts(example8, trips), "X")
        assert substituted == simulated
        print(f"    N = {trips}: substitute {substituted}  "
              f"(simulated {simulated}, estimate "
              f"{estimate.subs(dict(zip(pe.symbols, trips)))})")
    print()

    print("--- exact parametric footprint (Example 2 stencil) ---")
    pd = derive_parametric_distinct(program, "A")
    print(f"  A_d = {sympy.expand(pd.expr)}   [{pd.method}]")
    print(f"  A_d(100, 100) = {pd.substitute((100, 100))} "
          "(no enumeration at that size)")
    print()

    print("--- window scaling under transformations (Example 8 access) ---")
    for (a, b), label in [((1, 0), "original"), ((2, 3), "paper optimum")]:
        mws, (n1, n2) = symbolic_mws_2d(2, 5, a, b)
        print(f"  row ({a}, {b}) [{label}]: MWS = {mws}")
    print()

    print("--- Section 4.3: removing whole factors of N ---")
    before, syms3 = symbolic_mws_3d((1, 3, -3))
    after, _ = symbolic_mws_3d((0, 0, 1))
    n2 = syms3[1]
    print(f"  before embedding: MWS = {sympy.expand(before)}")
    print(f"    degree in N2: {scaling_exponent(before, n2)}")
    print(f"  after embedding : MWS = {sympy.expand(after)}")
    print(f"    degree in N2: {scaling_exponent(after, n2)}")
    print()
    print("A window that scales as N x N forces the memory to grow with the")
    print("frame; the embedded transformation makes it constant.")


if __name__ == "__main__":
    main()
