#!/usr/bin/env python
"""Full compiler-pipeline walk-through on a stencil kernel.

Shows every analysis layer the library provides, on a 5-point
Gauss-Seidel relaxation (the paper's `sor` benchmark): dependence
analysis, reuse vectors, distinct-access estimation vs. the exact count,
window profiling, transformation legality, and code generation.

Run:  python examples/stencil_pipeline.py
"""

from repro import (
    estimate_distinct_accesses,
    exact_distinct_accesses,
    generate_source,
    parse_program,
)
from repro.dependence import program_dependences, reuse_vectors
from repro.transform import is_fully_permutable, pick_tile_size, tile_footprint
from repro.window import lifetime_stats, window_profile

SOURCE = """
array A[0:17][0:17]
for i = 1 to 16 {
  for j = 1 to 16 {
    S1: A[i][j] = A[i][j] + A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]
  }
}
"""


def main() -> None:
    program = parse_program(SOURCE, name="sor16")
    print(generate_source(program))

    print("--- dependences ---")
    for dep in program_dependences(program, include_input=False):
        print(f"  {dep.kind.value:<7} distance={dep.distance} level={dep.level}")
    print()

    print("--- reuse vectors ---")
    for vector in reuse_vectors(program, "A"):
        print(f"  {vector}")
    print()

    print("--- distinct accesses (Section 3) ---")
    estimate = estimate_distinct_accesses(program, "A")
    exact = exact_distinct_accesses(program, "A")
    print(f"  formula : {estimate}")
    print(f"  exact   : {exact}")
    print()

    print("--- window behaviour ---")
    profile = window_profile(program, "A")
    stats = lifetime_stats(program, "A")
    print(f"  max window size  : {profile.max_size}")
    print(f"  average window   : {profile.average_size:.1f}")
    print(f"  peak at iteration: {profile.argmax()}")
    print(f"  max lifetime     : {stats.max_lifetime} iterations")
    print(f"  reused elements  : {stats.reused_elements}/{stats.touched_elements}")
    print()

    print("--- tiling ---")
    print(f"  fully permutable: {is_fully_permutable(program)}")
    for capacity in (16, 64, 256):
        tile = pick_tile_size(program, capacity, max_size=16)
        print(
            f"  capacity {capacity:>4} words -> tile {tile}, "
            f"footprint {tile_footprint(program, tile)}"
        )


if __name__ == "__main__":
    main()
