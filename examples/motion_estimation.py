#!/usr/bin/env python
"""Motion estimation: sizing the on-chip buffer of a video encoder.

The paper's Section 5 evaluates two motion-estimation kernels.  This
example runs the full-search kernel through the whole pipeline and then
asks the embedded-system question the paper motivates: with the window
minimized, how much smaller, cheaper and cooler can the data memory be?

Run:  python examples/motion_estimation.py
"""

from repro.core import optimize_program
from repro.kernels import full_search
from repro.memory import MemoryCostModel, simulate_scratchpad
from repro.window import max_window_size


def main() -> None:
    program = full_search(frame=32, block=8)
    print(f"kernel: {program.name}")
    print(program)
    print()

    print("--- per-array windows (untransformed) ---")
    for array in program.arrays:
        print(f"  MWS[{array}] = {max_window_size(program, array)}")
    print()

    result = optimize_program(program)
    print("--- optimization ---")
    print(f"total MWS: {result.mws_before} -> {result.mws_after} "
          f"({100 * result.reduction:.1f}% smaller)")
    print("T =")
    print(result.transformation.pretty())
    print()

    print("--- off-chip traffic at the optimized buffer size ---")
    capacity = max(1, result.mws_after)
    before = simulate_scratchpad(program, capacity)
    after = simulate_scratchpad(program, capacity, transformation=result.transformation)
    print(f"buffer capacity        : {capacity} elements")
    print(f"off-chip transfers     : {before.offchip_transfers} (original order)")
    print(f"off-chip transfers     : {after.offchip_transfers} (transformed order)")
    print(f"capacity misses        : {before.capacity_misses} -> {after.capacity_misses}")
    print()

    print("--- energy per access (CACTI-style scaling) ---")
    model = MemoryCostModel()
    naive = program.default_memory
    for label, words in (("declared frames", naive), ("minimized window", capacity)):
        print(
            f"  {label:<18} {words:>6} words: "
            f"{model.energy_per_access_pj(words):6.2f} pJ/access, "
            f"{model.latency_ns(words):5.2f} ns, "
            f"{model.area_mm2(words):6.4f} mm^2"
        )
    saving = 1 - model.energy_per_access_pj(capacity) / model.energy_per_access_pj(naive)
    print(f"  per-access energy saving: {100 * saving:.1f}%")


if __name__ == "__main__":
    main()
