#!/usr/bin/env python
"""Memory sizing sweep: the MWS is the knee of the miss curve.

Sweeps scratchpad capacities for the paper's Example 8 loop and prints
off-chip transfers per capacity, before and after the window-minimizing
transformation.  Capacity misses vanish exactly when the buffer reaches
the maximum window size — the operational meaning of "MWS = minimum
memory" — and the transformation moves that knee from 44 down to 21.

Run:  python examples/memory_sizing.py
"""

from repro import parse_program
from repro.memory import simulate_scratchpad
from repro.transform import search_mws_2d
from repro.window import max_window_size

SOURCE = """
for i = 1 to 25 {
  for j = 1 to 10 {
    X[2*i + 5*j + 1] = X[2*i + 5*j + 5]
  }
}
"""


def sweep(program, transformation=None):
    mws = max_window_size(program, "X", transformation)
    rows = []
    for capacity in (1, 2, 4, 8, 16, mws, mws + 1, 64):
        stats = simulate_scratchpad(
            program, capacity, array="X", transformation=transformation
        )
        rows.append((capacity, stats))
    return mws, rows


def show(label, mws, rows):
    print(f"--- {label} (MWS = {mws}) ---")
    print(f"{'capacity':>9} {'hits':>6} {'cold':>6} {'capacity-misses':>16} {'writebacks':>11}")
    for capacity, stats in rows:
        marker = "  <- knee" if stats.capacity_misses == 0 and capacity <= mws + 1 else ""
        print(
            f"{capacity:>9} {stats.hits:>6} {stats.cold_misses:>6} "
            f"{stats.capacity_misses:>16} {stats.writebacks:>11}{marker}"
        )
    print()


def main() -> None:
    program = parse_program(SOURCE, name="example8")
    mws, rows = sweep(program)
    show("original order", mws, rows)

    result = search_mws_2d(program, "X")
    print(f"search found T = {result.transformation.rows} "
          f"(estimate {result.estimated_mws}, exact {result.exact_mws})\n")
    mws_t, rows_t = sweep(program, result.transformation)
    show("transformed order", mws_t, rows_t)

    print("The buffer that used to need", mws, "elements now needs", mws_t, "-")
    print("the paper's Example 8: estimate 22, actual minimum 21.")


if __name__ == "__main__":
    main()
