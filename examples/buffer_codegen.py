#!/usr/bin/env python
"""From window size to deployable code: modulo buffer allocation.

MWS says *how many* elements must stay on chip; an implementation still
needs an addressing scheme.  This example folds the paper's Example 8
array into the smallest conflict-free modulo buffer, before and after the
window-minimizing transformation, and emits the rewritten source.

Run:  python examples/buffer_codegen.py
"""

from repro.ir import parse_program
from repro.transform import allocate_window, rewrite_with_buffer, search_mws_2d
from repro.viz import render_profile_bars
from repro.window import window_profile

SOURCE = """
for i = 1 to 25 {
  for j = 1 to 10 {
    X[2*i + 5*j + 1] = X[2*i + 5*j + 5]
  }
}
"""


def main() -> None:
    program = parse_program(SOURCE, name="example8")

    print("--- window profile, original order ---")
    profile = window_profile(program, "X")
    print(render_profile_bars(profile.sizes, title="live elements of X over time"))
    print()

    alloc = allocate_window(program, "X")
    print("--- modulo allocation, original order ---")
    print(f"declared elements : {alloc.declared}")
    print(f"max window size   : {alloc.mws}")
    print(f"smallest modulus  : {alloc.modulus} "
          f"({100 * alloc.saving_vs_declared:.0f}% below the declaration)")
    print()
    print(rewrite_with_buffer(program, "X", alloc))

    result = search_mws_2d(program, "X")
    alloc_t = allocate_window(program, "X", result.transformation)
    print("--- after the MWS-minimizing transformation ---")
    print(f"T = {result.transformation.rows}")
    print(f"max window size   : {alloc_t.mws} (paper: actual minimum 21)")
    print(f"smallest modulus  : {alloc_t.modulus} "
          f"(modulo-scheme overhead {100 * alloc_t.overhead:.0f}%)")
    profile_t = window_profile(program, "X", result.transformation)
    print(render_profile_bars(profile_t.sizes, title="live elements, transformed"))


if __name__ == "__main__":
    main()
