#!/usr/bin/env python
"""Quickstart: from loop-nest source to a memory-minimizing transformation.

Reproduces the paper's Example 7 end to end: parse the nest, measure the
exact maximum window size (MWS), search for the legal unimodular
transformation minimizing it, and emit the transformed source code.

Run:  python examples/quickstart.py
"""

from repro import (
    analyze_program,
    generate_transformed_source,
    optimize_program,
    parse_program,
)

SOURCE = """
# Paper Example 7: a 1-D array accessed across a skewed direction.
for i = 1 to 20 {
  for j = 1 to 30 {
    X[2*i - 3*j]
  }
}
"""


def main() -> None:
    program = parse_program(SOURCE, name="example7")

    print("--- analysis ---")
    report = analyze_program(program)
    print(report)
    print()

    print("--- optimization ---")
    result = optimize_program(program)
    print(f"MWS before : {result.mws_before}")
    print(f"MWS after  : {result.mws_after}")
    print(f"reduction  : {100 * result.reduction:.1f}%")
    print("transformation T =")
    print(result.transformation.pretty())
    print()

    print("--- transformed source ---")
    print(generate_transformed_source(program, result.transformation))


if __name__ == "__main__":
    main()
