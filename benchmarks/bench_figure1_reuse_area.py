"""Figure 1 / Examples 1(a), 1(b): the reuse area of a dependence.

The paper's Figure 1 shades the region of a 10x10 iteration space whose
points are sinks of the dependence (3, 2): area (10-3)(10-2) = 56.  Both
Example 1(a) (2-D array, dependence between two references) and Example
1(b) (1-D array, self reuse along the kernel) share that count.
"""

BENCH_NAME = "figure1_reuse_area"

from conftest import record

from repro.dependence import array_distance_vectors, self_reuse_distance
from repro.estimation import reuse_from_distances
from repro.ir import parse_program

EXAMPLE_1A = """
for i = 1 to 10 {
  for j = 1 to 10 {
    A[i][j] = A[i-3][j+2]
  }
}
"""

EXAMPLE_1B = """
for i = 1 to 10 {
  for j = 1 to 10 {
    A[2*i + 3*j]
  }
}
"""


def test_example_1a_reuse_area(benchmark):
    program = parse_program(EXAMPLE_1A)

    def run():
        distances = array_distance_vectors(program, "A")
        return reuse_from_distances(program.nest.trip_counts, distances[:1]), distances

    reuse, distances = benchmark(run)
    assert (3, -2) in distances
    assert reuse == 56  # the paper's shaded area
    record(benchmark, paper_reuse=56, measured_reuse=reuse)


def test_example_1b_reuse_area(benchmark):
    program = parse_program(EXAMPLE_1B)
    ref = program.refs_to("A")[0]

    def run():
        vector = self_reuse_distance(ref)
        return vector, reuse_from_distances(program.nest.trip_counts, [vector])

    vector, reuse = benchmark(run)
    assert vector == (3, -2)  # kernel of [2, 3], lex-positive
    assert reuse == 56
    record(benchmark, paper_reuse=56, measured_reuse=reuse)


def test_example_1_total_reuse_equal(benchmark):
    """The paper: 'the total reuse is the same in both examples' (= 56)."""
    p1a = parse_program(EXAMPLE_1A)
    p1b = parse_program(EXAMPLE_1B)

    def run():
        from repro.estimation import exact_distinct_accesses

        a = 2 * p1a.nest.total_iterations - exact_distinct_accesses(p1a, "A")
        b = p1b.nest.total_iterations - exact_distinct_accesses(p1b, "A")
        return a, b

    reuse_a, reuse_b = benchmark(run)
    assert reuse_a == reuse_b == 56
    record(benchmark, reuse_1a=reuse_a, reuse_1b=reuse_b)
