"""Parametric engine: derive once, substitute for every problem size.

The paper states MWS as a function of the loop limits; the parametric
engine makes that operational — one closed form per program *family*
answers every bound vector by substitution.  This benchmark pins the
payoff: answering a sweep of problem sizes for Example 8's access
pattern by derive-once-substitute-many must beat simulating each size
by at least 10x (the CI gate pins the recorded ratio via
benchmarks/baselines/BENCH_parametric.json; the in-bench assertion
enforces the same floor directly).
"""

BENCH_NAME = "parametric"

import timeit

from conftest import record

from repro.estimation.parametric import (
    clear_param_cache,
    resolve_parametric,
    with_trip_counts,
)
from repro.ir import parse_program
from repro.window import max_window_size

EXAMPLE_8 = """
for i = 1 to 25 {
  for j = 1 to 10 {
    X[2*i + 5*j] = X[2*i + 5*j]
  }
}
"""

#: The size sweep a designer would ask about: one access pattern, many
#: candidate image sizes.  Sized so per-size simulation dominates (the
#: derivation grid itself only ever simulates tiny resized programs).
SIZES = [(256 * k, 256 * k) for k in range(1, 7)]


def test_parametric_derivation(benchmark):
    """Cost and result of one cold derivation (grid + verification)."""
    program = parse_program(EXAMPLE_8)

    def derive():
        clear_param_cache()
        return resolve_parametric(program, "mws", array="X")

    pe = benchmark(derive)
    assert pe is not None
    assert pe.substitute((25, 10)) == 40  # the exact value, not eq. (2)'s 50
    record(
        benchmark,
        expr=str(pe.expr),
        method=pe.method,
        domain=str(pe.domain),
        verified_points=pe.checked,
    )


def test_parametric_sweep_speedup(benchmark):
    """Derive-once-substitute-many vs simulate-each-size (the 10x gate)."""
    program = parse_program(EXAMPLE_8)

    def simulate_each():
        return [
            max_window_size(with_trip_counts(program, trips), "X")
            for trips in SIZES
        ]

    def derive_and_substitute():
        clear_param_cache()
        pe = resolve_parametric(program, "mws", array="X")
        return [pe.substitute(trips) for trips in SIZES]

    assert derive_and_substitute() == simulate_each()  # exactness first

    def measure():
        simulated_s = min(timeit.repeat(simulate_each, number=1, repeat=3))
        parametric_s = min(
            timeit.repeat(derive_and_substitute, number=1, repeat=3)
        )
        return simulated_s, parametric_s

    simulated_s, parametric_s = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    speedup = simulated_s / parametric_s
    assert speedup >= 10.0, (
        f"parametric sweep speedup {speedup:.1f}x below the 10x floor"
    )
    record(
        benchmark,
        speedup=round(speedup, 2),
        simulate_wall=round(simulated_s, 6),
        parametric_wall=round(parametric_s, 6),
        sizes=len(SIZES),
    )
