"""Batched candidate scoring vs the per-candidate engine (ISSUE 8).

The search's hot loop scores hundreds of candidate transformations of
one program.  ``window.batched.batched_mws`` folds each candidate's
mixed-radix pack into one weight vector, computes every candidate's time
keys with a single integer matmul and sweeps them through a
codegen-specialized kernel — the per-candidate path pays K separate
matmuls, packings, sweeps and Python round trips for the same answers.

The CI gate pins the ratios via
benchmarks/baselines/BENCH_batched_scoring.json: ``speedup`` metrics are
higher-is-better, so a drop past the threshold fails ``repro
bench-compare``.  The in-bench assertions enforce the same floors
directly.
"""

BENCH_NAME = "batched_scoring"

import timeit

from conftest import record

from repro.ir import parse_program
from repro.kernels import kernel_by_name
from repro.linalg import IntMatrix
from repro.transform.elementary import (
    bounded_unimodular_matrices,
    signed_permutations,
)
from repro.window import max_window_size
from repro.window.batched import batched_mws

EXAMPLE_8 = """
for i = 1 to 25 {
  for j = 1 to 10 {
    X[2*i + 5*j + 1] = X[2*i + 5*j + 5]
  }
}
"""


def _legal_pool(candidates):
    return [t for t in candidates if t.det() in (1, -1)]


def _compare(program, array, candidates, rounds=5, number=3):
    """Best-of wall seconds for per-candidate vs batched scoring.

    Both paths share the memoized iteration/element state (it is
    transformation-invariant), so the measured difference is scoring
    cost alone — exactly what the search's cascade pays per window.
    The rounds interleave the two sides so clock-frequency drift hits
    both alike instead of biasing whichever ran second.
    """

    def per_candidate():
        return [
            max_window_size(program, array, t, engine="fast")
            for t in candidates
        ]

    def batched():
        return batched_mws(program, candidates, array=array, engine="fast")

    assert per_candidate() == batched()  # warm caches + pin parity
    serial_s = batch_s = float("inf")
    for _ in range(rounds):
        serial_s = min(serial_s, timeit.timeit(per_candidate, number=number) / number)
        batch_s = min(batch_s, timeit.timeit(batched, number=number) / number)
    return serial_s, batch_s


def test_example8_batched_speedup(benchmark):
    """Example 8-shaped work: the full bounded-unimodular candidate pool
    of the 2-D search, scored per-candidate vs as one batch."""
    program = parse_program(EXAMPLE_8)
    candidates = _legal_pool(bounded_unimodular_matrices(2, 2))

    serial_s, batch_s = benchmark.pedantic(
        lambda: _compare(program, "X", candidates), rounds=1, iterations=1
    )
    speedup = serial_s / batch_s
    assert speedup >= 5.0, (
        f"batched scoring {speedup:.1f}x below the 5x floor "
        f"({len(candidates)} candidates)"
    )
    record(
        benchmark,
        speedup=round(speedup, 2),
        candidates=len(candidates),
        per_candidate_wall=round(serial_s, 6),
        batched_wall=round(batch_s, 6),
    )


def test_full_search_batched_speedup(benchmark):
    """Figure-2 full_search-shaped work: a cascade-window-sized batch on
    the suite's largest nest, where the sweep itself dominates."""
    spec = kernel_by_name("full_search")
    program = spec.build()
    array = sorted({r.array for r in program.references})[0]
    pool = list(signed_permutations(program.nest.depth))
    candidates = (pool * 3)[:16]  # one cascade survivor window

    serial_s, batch_s = benchmark.pedantic(
        lambda: _compare(program, array, candidates), rounds=1, iterations=1
    )
    speedup = serial_s / batch_s
    assert speedup >= 1.2, (
        f"batched scoring {speedup:.2f}x on sweep-bound work "
        f"(must at least not regress)"
    )
    record(
        benchmark,
        speedup=round(speedup, 2),
        candidates=len(candidates),
        per_candidate_wall=round(serial_s, 6),
        batched_wall=round(batch_s, 6),
    )


def test_specialized_kernel_vs_generic(benchmark):
    """The codegen-specialized kernel vs the generic batched sweep
    (``REPRO_KERNEL=off``) on identical keys — specialization must not
    lose to the fallback it replaces."""
    import repro.window.batched as batched_mod

    program = parse_program(EXAMPLE_8)
    candidates = _legal_pool(bounded_unimodular_matrices(2, 2))
    keys = batched_mod._batched_time_keys(program, candidates)
    arrays = tuple(program.arrays)
    states = batched_mod._array_states(program, arrays)
    kernel = batched_mod._sweep_kernel(program, arrays, "python")
    assert list(kernel(keys)) == list(batched_mod._generic_sweep(states, keys))

    def specialized():
        return kernel(keys)

    def generic():
        return batched_mod._generic_sweep(states, keys)

    def measure():
        spec_s = min(timeit.repeat(specialized, number=5, repeat=3))
        gen_s = min(timeit.repeat(generic, number=5, repeat=3))
        return spec_s, gen_s

    spec_s, gen_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = gen_s / spec_s
    assert ratio >= 0.8, f"specialized kernel {ratio:.2f}x vs generic sweep"
    record(
        benchmark,
        specialization_speedup=round(ratio, 2),
        specialized_wall=round(spec_s, 6),
        generic_wall=round(gen_s, 6),
    )
