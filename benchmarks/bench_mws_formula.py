"""Equations (1)-(2): the closed-form 2-D MWS estimate (Example 9's form).

Pins every instantiation the paper prints — identity on Example 8 gives
50, the optimal (2, 3) row gives 22 — and sweeps the estimate against the
exact simulator across transformations to quantify the estimate's band.
"""

BENCH_NAME = "mws_formula"

from fractions import Fraction

import pytest
from conftest import record

from repro.ir import parse_program
from repro.linalg import IntMatrix
from repro.transform import complete_first_row_2d
from repro.transform.legality import ordering_distances
from repro.window import max_window_size, mws_2d_estimate

EXAMPLE_8 = """
for i = 1 to 25 {
  for j = 1 to 10 {
    X[2*i + 5*j + 1] = X[2*i + 5*j + 5]
  }
}
"""

PAPER_POINTS = [
    # (alpha1, alpha2, n1, n2, a, b, expected)
    (2, 5, 25, 10, 1, 0, 50),   # Example 8 original
    (2, 5, 25, 10, 2, 3, 22),   # Section 4.2 optimum
    (2, -3, 20, 30, 1, 0, 90),  # Example 7 original (paper metric: 89)
    (2, -3, 20, 30, 0, 1, 40),  # Example 7 interchange (paper: 41)
    (2, -3, 20, 30, 2, -3, 1),  # Example 7 compound row
]


@pytest.mark.parametrize("alpha1,alpha2,n1,n2,a,b,expected", PAPER_POINTS)
def test_eq2_paper_points(benchmark, alpha1, alpha2, n1, n2, a, b, expected):
    value = benchmark(mws_2d_estimate, alpha1, alpha2, n1, n2, a, b)
    assert value == Fraction(expected)
    record(benchmark, estimate=float(value))


def test_eq2_tracks_simulator_across_rows(benchmark):
    """For every tileable coprime first row within |a|,|b| <= 4, the
    eq. (2) estimate stays within a small band of the exact window."""
    import math

    program = parse_program(EXAMPLE_8)
    distances = ordering_distances(program, "X")

    def run():
        gaps = []
        for a in range(0, 5):
            for b in range(-4, 5):
                if math.gcd(a, b) != 1:
                    continue
                if any(a * d1 + b * d2 < 0 for d1, d2 in distances):
                    continue
                t = complete_first_row_2d(a, b, distances)
                if t is None:
                    continue
                est = mws_2d_estimate(2, 5, 25, 10, a, b)
                exact = max_window_size(program, "X", t)
                gaps.append((float(est), exact))
        return gaps

    gaps = benchmark(run)
    assert gaps, "no tileable rows found"
    for est, exact in gaps:
        # Estimate is upper-flavored: never undershoots by more than the
        # in-flight element, never overshoots by more than ~40%.
        assert exact <= est + 1
        assert est <= 1.5 * exact + 8
    record(benchmark, points=len(gaps))


def test_eq2_minimizer_is_papers(benchmark):
    """Minimizing eq. (2) over tileable rows selects the paper's (2, 3)."""
    import math

    program = parse_program(EXAMPLE_8)
    distances = ordering_distances(program, "X")

    def run():
        best = None
        for a in range(0, 7):
            for b in range(-6, 7):
                if math.gcd(a, b) != 1:
                    continue
                if any(a * d1 + b * d2 < 0 for d1, d2 in distances):
                    continue
                if complete_first_row_2d(a, b, distances) is None:
                    continue
                est = mws_2d_estimate(2, 5, 25, 10, a, b)
                if best is None or est < best[0]:
                    best = (est, (a, b))
        return best

    best = benchmark(run)
    assert best[1] == (2, 3)
    assert best[0] == 22
    record(benchmark, row=str(best[1]), estimate=float(best[0]))
