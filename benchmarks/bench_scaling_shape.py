"""Shape ablation: do the Figure-2 reductions hold as problem size grows?

The paper evaluates one size per kernel.  Because our windows come from
closed forms and exact simulation, we can sweep the problem size and
check the *shape* claim behind the table: stencil windows grow linearly
(one row) while declarations grow quadratically, so the reduction
percentages improve with size — the technique matters more, not less, at
realistic image sizes.
"""

BENCH_NAME = "scaling_shape"

import pytest
from conftest import record

from repro.core import optimize_program
from repro.kernels import matmult, sor, two_point


@pytest.mark.parametrize("n", [16, 32, 64])
def test_two_point_scaling(benchmark, n):
    program = two_point(n)
    result = benchmark.pedantic(optimize_program, args=(program,), rounds=1, iterations=1)
    declared = program.default_memory
    unopt_red = 100 * (1 - result.mws_before / declared)
    opt_red = 100 * (1 - result.mws_after / declared)
    # Window one row (linear) vs quadratic declaration.
    assert result.mws_before <= n + 4
    assert result.mws_after <= 4
    record(benchmark, n=n, declared=declared,
           unopt_red=round(unopt_red, 1), opt_red=round(opt_red, 1))


@pytest.mark.parametrize("n", [12, 16, 24])
def test_matmult_scaling(benchmark, n):
    """matmult's window is N^2 + N + 1 at every size — the reduction
    saturates at 1 - (N^2+N+1)/(3N^2) -> 2/3, never approaching the
    stencils' 99%: the crossover in Figure 2 is structural."""
    program = matmult(n)
    result = benchmark.pedantic(optimize_program, args=(program,), rounds=1, iterations=1)
    assert result.mws_before == n * n + n + 1
    assert result.mws_after == result.mws_before
    reduction = 1 - result.mws_after / program.default_memory
    assert 0.60 <= reduction <= 0.67
    record(benchmark, n=n, mws=result.mws_after, reduction=round(100 * reduction, 1))


@pytest.mark.parametrize("n", [16, 24, 32])
def test_sor_scaling(benchmark, n):
    """sor's optimized window stays ~2 rows: linear in n."""
    program = sor(n)
    result = benchmark.pedantic(optimize_program, args=(program,), rounds=1, iterations=1)
    assert result.mws_after <= 2 * n + 6
    record(benchmark, n=n, mws_opt=result.mws_after,
           rows=round(result.mws_after / n, 2))


def test_two_point_streaming_beyond_dense_budget(benchmark, monkeypatch):
    """One size past the dense ceiling: with the dense-matrix budget
    forced below the 128x128 iteration count, ``auto`` flips to the
    streaming chunked engine and the linear-window shape claim still
    holds exactly (the streamed value equals the dense one computed
    before the budget is lowered)."""
    from repro.window import max_window_size, resolve_engine

    n = 128
    program = two_point(n)  # 16384 iterations
    (array,) = program.arrays
    dense = max_window_size(program, array, engine="fast")
    monkeypatch.setenv("REPRO_DENSE_BUDGET", "10000")
    assert resolve_engine(program, "auto") == "streaming"
    streamed = benchmark.pedantic(
        max_window_size, args=(program, array), kwargs={"engine": "auto"},
        rounds=1, iterations=1,
    )
    assert streamed == dense == n
    assert streamed <= n + 4  # window stays one row: linear, not quadratic
    record(benchmark, n=n, mws_streamed=streamed, engine="streaming")


def test_reductions_improve_with_size(benchmark):
    def run():
        out = {}
        for n in (16, 32, 64):
            program = two_point(n)
            result = optimize_program(program)
            out[n] = 1 - result.mws_before / program.default_memory
        return out

    reductions = benchmark.pedantic(run, rounds=1, iterations=1)
    assert reductions[16] < reductions[32] < reductions[64]
    record(benchmark, **{f"n{k}": round(100 * v, 2) for k, v in reductions.items()})
