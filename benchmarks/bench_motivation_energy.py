"""Section 1 motivation, quantified: why memory size matters.

The paper's opening argument: per-access energy grows with memory size,
large memories are slower, and they occupy more silicon — so provisioning
the window instead of the declaration pays threefold.  This bench runs
the argument end to end on the 2point kernel: measure the window,
provision it, simulate the traffic, and price both designs under the
CACTI-style model.
"""

BENCH_NAME = "motivation_energy"

import pytest
from conftest import record

from repro.core import optimize_program
from repro.kernels import two_point
from repro.memory import MemoryCostModel, simulate_scratchpad


def test_energy_story_end_to_end(benchmark):
    program = two_point(32)
    model = MemoryCostModel()

    def run():
        result = optimize_program(program)
        declared = program.default_memory
        window = max(1, result.mws_after)
        stats = simulate_scratchpad(
            program, window, transformation=result.transformation
        )
        # Both designs pay the same compulsory off-chip traffic (the data
        # starts off chip either way, and a window-sized buffer with
        # optimal management adds no capacity misses); the difference is
        # the per-access cost of the on-chip memory itself.
        naive_energy = model.total_energy_pj(
            declared,
            onchip_accesses=stats.accesses,
            offchip_transfers=stats.offchip_transfers,
        )
        window_energy = model.total_energy_pj(
            window,
            onchip_accesses=stats.accesses,
            offchip_transfers=stats.offchip_transfers,
        )
        return declared, window, naive_energy, window_energy, stats

    declared, window, naive, ours, stats = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert stats.capacity_misses == 0  # the window buffer never thrashes
    assert ours < naive
    record(
        benchmark,
        declared_words=declared,
        window_words=window,
        naive_energy_pj=round(naive),
        window_energy_pj=round(ours),
        energy_saving_pct=round(100 * (1 - ours / naive), 1),
        offchip_transfers=stats.offchip_transfers,
    )


@pytest.mark.parametrize("capacity", [64, 256, 1024, 4096])
def test_cost_curves(benchmark, capacity):
    """The raw model curves the argument rests on (monotone in size)."""
    model = MemoryCostModel()
    energy = benchmark(model.energy_per_access_pj, capacity)
    record(
        benchmark,
        capacity=capacity,
        energy_pj=round(energy, 2),
        latency_ns=round(model.latency_ns(capacity), 2),
        area_mm2=round(model.area_mm2(capacity), 4),
    )
    assert energy > 0
