"""Example 8 + Section 4.2 worked example: the MWS-minimizing search.

Paper values: distance vectors (3,-2), (2,0), (5,-2) (printed unsigned);
Li & Pingali find no legal completion; original MWS 50 (eq. (2) value);
the search chooses (a, b) = (2, 3) with estimate 22; the actual minimum
MWS is 21.  Our exact simulator confirms: estimate 22, exact 21, and the
original order measures 44 against the formula's 50.
"""

BENCH_NAME = "example8_search"

import timeit

from conftest import record

from repro.ir import parse_program
from repro.transform import (
    li_pingali_transformation,
    search_mws_2d,
    search_mws_2d_eager,
)
from repro.transform.legality import ordering_distances
from repro.transform.search import clear_exact_cache
from repro.window import max_window_size, mws_2d_for_array

EXAMPLE_8 = """
for i = 1 to 25 {
  for j = 1 to 10 {
    X[2*i + 5*j + 1] = X[2*i + 5*j + 5]
  }
}
"""


def test_example8_distance_vectors(benchmark):
    program = parse_program(EXAMPLE_8)
    distances = benchmark(ordering_distances, program, "X")
    for d in [(3, -2), (2, 0), (5, -2)]:  # the paper's set
        assert d in distances
    record(benchmark, distances=str(sorted(distances)))


def test_example8_original_window(benchmark):
    program = parse_program(EXAMPLE_8)
    mws = benchmark(max_window_size, program, "X")
    estimate = mws_2d_for_array(program, "X")
    assert estimate == 50  # the paper's "maximum window size is 50"
    assert mws == 44  # exact simulation
    record(benchmark, paper_estimate=50, measured_exact=mws)


def test_example8_search(benchmark):
    program = parse_program(EXAMPLE_8)
    result = benchmark(search_mws_2d, program, "X")
    assert result.transformation.row(0) == (2, 3)  # the paper's optimum
    assert result.estimated_mws == 22  # "minimum MWS estimate of 22"
    assert result.exact_mws == 21  # "actual minimum MWS which is 21"
    record(
        benchmark,
        paper_estimate=22, paper_actual=21,
        measured_estimate=int(result.estimated_mws),
        measured_actual=result.exact_mws,
    )


def test_example8_cascade_speedup(benchmark):
    """Lazy enumeration + the whole-search memo vs the eager comparator.

    The search is re-run with identical inputs throughout the pipeline
    (optimize, explain, reports), so the representative workload is a
    burst of repeated queries.  The eager path re-enumerates, re-checks
    legality and re-estimates every coprime row on every call; the lazy
    path completes only enough rows to certify the leader set and then
    answers repeats from the search memo.  The CI gate pins the ratio
    via benchmarks/baselines/BENCH_example8_search.json (floor 5x); the
    in-bench assertion enforces the same floor directly.
    """
    program = parse_program(EXAMPLE_8)
    rounds = 5

    def eager():
        clear_exact_cache()
        for _ in range(rounds):
            search_mws_2d_eager(program, "X")

    def lazy():
        clear_exact_cache()
        for _ in range(rounds):
            search_mws_2d(program, "X")

    def measure():
        eager_s = min(timeit.repeat(eager, number=1, repeat=3))
        lazy_s = min(timeit.repeat(lazy, number=1, repeat=3))
        return eager_s, lazy_s

    eager_s, lazy_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = eager_s / lazy_s
    assert search_mws_2d(program, "X").exact_mws == 21  # still the optimum
    assert speedup >= 5.0, f"search speedup {speedup:.1f}x below the 5x floor"
    record(
        benchmark,
        speedup=round(speedup, 2),
        eager_wall=round(eager_s, 6),
        lazy_wall=round(lazy_s, 6),
        queries=rounds,
    )


def test_example8_li_pingali_fails(benchmark):
    """Li & Pingali's rows (2,5)/(-2,5) are illegal against (3,-2)/(2,0)."""
    program = parse_program(EXAMPLE_8)
    result = benchmark(li_pingali_transformation, program, "X")
    assert result is None  # paper: "will not find any partial transformation"
    record(benchmark, li_pingali="no legal completion (as in the paper)")


def test_example8_reversal_interchange_no_help(benchmark):
    """Paper: 'A combination of reversal and interchange does not change
    the maximum window size from 50' — exact values confirm no signed
    permutation beats the original order here."""
    from repro.transform import eisenbeis_search

    program = parse_program(EXAMPLE_8)
    result = benchmark(eisenbeis_search, program, "X")
    assert result.exact_mws >= max_window_size(program, "X")
    record(benchmark, best_signed_permutation=result.exact_mws)
