"""Figure 2: the paper's main results table, regenerated.

Seven image/video kernels; columns: default (declared) memory, MWS
before optimization, MWS after, with percentage reductions.  Paper
averages: 81.9% (unoptimized) and 92.3% (optimized).  Absolute MWS
values in the scanned paper are mostly illegible; the surviving
percentages are asserted as shape constraints per kernel and the full
measured-vs-paper comparison lives in EXPERIMENTS.md.
"""

BENCH_NAME = "figure2"

import time

import pytest
from conftest import record

from repro.kernels import KERNELS, kernel_by_name
from repro.reporting import figure2_row, render_table
from repro.transform.search import clear_exact_cache, exact_cache_size


@pytest.mark.parametrize("name", [spec.name for spec in KERNELS])
def test_figure2_kernel_row(benchmark, name):
    spec = kernel_by_name(name)
    row = benchmark.pedantic(figure2_row, args=(spec,), rounds=1, iterations=1)
    record(
        benchmark,
        default=row.default,
        mws_unopt=row.mws_unopt,
        mws_opt=row.mws_opt,
        unopt_reduction=round(row.unopt_reduction, 1),
        opt_reduction=round(row.opt_reduction, 1),
        paper_unopt=spec.paper_unopt_reduction,
        paper_opt=spec.paper_opt_reduction,
    )
    # Shape constraints per kernel:
    # 1. the unoptimized reduction tracks the paper's within a band
    #    (3step_log is the documented substitution outlier),
    tolerance = 20.0 if name == "3step_log" else 4.0
    assert abs(row.unopt_reduction - spec.paper_unopt_reduction) <= tolerance
    # 2. optimization never regresses,
    assert row.mws_opt <= row.mws_unopt
    # 3. matmult is the one kernel transformation cannot help,
    if name == "matmult":
        assert row.mws_opt == row.mws_unopt == 273
    # 4. every other kernel ends at a large optimized reduction.
    if name != "matmult" and name != "sor":
        assert row.opt_reduction >= spec.paper_opt_reduction - 4.0


def test_figure2_full_table(benchmark):
    """Regenerates and prints the complete table with averages."""

    def run():
        rows = [figure2_row(spec) for spec in KERNELS]
        return rows, render_table(rows)

    rows, table = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(table)
    avg_unopt = sum(r.unopt_reduction for r in rows) / len(rows)
    avg_opt = sum(r.opt_reduction for r in rows) / len(rows)
    # Paper: "Average Reduction: 81.9% / 92.3%".
    assert abs(avg_unopt - 81.9) <= 5.0
    assert abs(avg_opt - 92.3) <= 5.0
    record(
        benchmark,
        avg_unopt=round(avg_unopt, 1),
        avg_opt=round(avg_opt, 1),
        paper_avg_unopt=81.9,
        paper_avg_opt=92.3,
    )


def test_figure2_serial_parallel_and_cache(benchmark):
    """Search-engine modes: serial vs parallel vs memoized (ISSUE 1).

    Parallel candidate evaluation must reproduce the serial table
    exactly, and a warm exact-simulation cache must cut the wall time —
    the observable contract of the parallel, memoized search engine.
    (On single-core CI the parallel wall time is recorded but not
    asserted: process fan-out cannot beat serial without cores.)
    """

    def measure(workers):
        start = time.perf_counter()
        rows = [figure2_row(spec, workers=workers) for spec in KERNELS]
        return rows, time.perf_counter() - start

    def run():
        clear_exact_cache()
        serial_rows, serial_s = measure(0)
        entries = exact_cache_size()
        warm_rows, warm_s = measure(0)
        clear_exact_cache()
        parallel_rows, parallel_s = measure(2)
        return (
            serial_rows, serial_s, warm_rows, warm_s,
            parallel_rows, parallel_s, entries,
        )

    (
        serial_rows, serial_s, warm_rows, warm_s,
        parallel_rows, parallel_s, entries,
    ) = benchmark.pedantic(run, rounds=1, iterations=1)

    assert parallel_rows == serial_rows  # byte-identical frozen dataclasses
    assert warm_rows == serial_rows
    assert entries > 0
    # The memoized rerun skips every exact simulation: the wall-time
    # reduction the cache buys on this machine.
    assert warm_s < serial_s
    record(
        benchmark,
        serial_s=round(serial_s, 3),
        warm_s=round(warm_s, 3),
        parallel_s=round(parallel_s, 3),
        cache_entries=entries,
        warm_speedup=round(serial_s / warm_s, 1) if warm_s else float("inf"),
    )
