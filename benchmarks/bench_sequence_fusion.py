"""Sequence-level experiment: inter-nest buffers and fusion.

Extends the paper's single-nest evaluation to the application level (the
IMEC-style context its introduction cites): a produce-consume pipeline's
memory is dominated by the intermediate frame crossing the nest
boundary; legal fusion collapses it to a window.
"""

BENCH_NAME = "sequence_fusion"

import pytest
from conftest import record

from repro.ir import parse_program
from repro.ir.sequence import ProgramSequence, sequence_memory_report
from repro.transform.fusion import can_fuse, fuse, fusion_memory_report
from repro.window import max_total_window


def _stage1(n):
    return parse_program(
        f"for i = 1 to {n} {{ for j = 1 to {n} {{ "
        f"P1: T[i][j] = A[i-1][j] + A[i][j] + A[i+1][j] }} }}",
        name="smooth",
    )


def _stage2(n):
    return parse_program(
        f"for i = 1 to {n} {{ for j = 1 to {n} {{ "
        f"C1: B[i][j] = T[i][j] + T[i][j-1] }} }}",
        name="gradient",
    )


@pytest.mark.parametrize("n", [16, 32])
def test_pipeline_memory(benchmark, n):
    seq = ProgramSequence([_stage1(n), _stage2(n)], name=f"pipe{n}")
    report = benchmark.pedantic(sequence_memory_report, args=(seq,), rounds=1, iterations=1)
    # The boundary carries the whole n x n intermediate frame.
    assert report.per_boundary[0] == n * n
    assert report.requirement >= n * n
    record(
        benchmark,
        n=n,
        boundary_live=report.per_boundary[0],
        requirement=report.requirement,
        declared=report.declared,
    )


@pytest.mark.parametrize("n", [16, 32])
def test_fusion_collapses_intermediate(benchmark, n):
    a, b = _stage1(n), _stage2(n)
    ok, reason = can_fuse(a, b)
    assert ok, reason
    report = benchmark.pedantic(fusion_memory_report, args=(a, b), rounds=1, iterations=1)
    assert report.fused_requirement <= 3 * n + 8  # a few rows, not a frame
    assert report.saving > 0.85
    record(
        benchmark,
        n=n,
        unfused=report.unfused_requirement,
        fused=report.fused_requirement,
        saving_pct=round(100 * report.saving, 1),
    )


def test_illegal_fusion_detected(benchmark):
    a = parse_program("for i = 1 to 16 { P1: T[i] = A[i] }")
    b = parse_program("for i = 1 to 16 { C1: B[i] = T[i+1] }")

    def run():
        return can_fuse(a, b)

    ok, reason = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not ok
    record(benchmark, reason=reason)


def test_fused_equals_direct_window(benchmark):
    a, b = _stage1(16), _stage2(16)
    fused = fuse(a, b)
    value = benchmark(max_total_window, fused)
    assert value == fusion_memory_report(a, b).fused_requirement
    record(benchmark, fused_window=value)
