"""Ablation: search-space entry bound vs. solution quality and cost.

DESIGN.md calls out the choice of bounded first-row enumeration with
exact tie-breaking.  This bench quantifies it on Example 7: the winning
compound matrix has an entry of magnitude 3, so bounds 1-2 miss it while
bound 3 finds MWS 1; candidate counts grow quadratically.
"""

BENCH_NAME = "ablation_search"

import pytest
from conftest import record

from repro.ir import parse_program
from repro.transform import exhaustive_search, search_mws_2d

EXAMPLE_7 = """
for i = 1 to 20 {
  for j = 1 to 30 {
    X[2*i - 3*j]
  }
}
"""

EXPECTED_BEST = {1: 20, 2: 10, 3: 1, 4: 1}


@pytest.mark.parametrize("bound", [1, 2, 3, 4])
def test_exhaustive_bound_sweep(benchmark, bound):
    program = parse_program(EXAMPLE_7)
    result = benchmark.pedantic(
        exhaustive_search, args=(program, "X"), kwargs={"bound": bound},
        rounds=1, iterations=1,
    )
    assert result.exact_mws == EXPECTED_BEST[bound]
    record(
        benchmark,
        bound=bound,
        best_mws=result.exact_mws,
        candidates=result.candidates_examined,
    )


@pytest.mark.parametrize("bound", [3, 6, 10])
def test_first_row_search_bound_sweep(benchmark, bound):
    """The eq.(2)-guided search is far cheaper than exhaustive search at
    equal quality once the bound covers the optimum."""
    program = parse_program(EXAMPLE_7)
    result = benchmark.pedantic(
        search_mws_2d, args=(program, "X"), kwargs={"bound": bound},
        rounds=1, iterations=1,
    )
    assert result.exact_mws == 1
    record(benchmark, bound=bound, candidates=result.candidates_examined)


def test_estimate_guidance_vs_exhaustive(benchmark):
    """Same optimum, orders-of-magnitude fewer exact simulations."""
    program = parse_program(EXAMPLE_7)

    def run():
        guided = search_mws_2d(program, "X", bound=4)
        brute = exhaustive_search(program, "X", bound=4)
        return guided, brute

    guided, brute = benchmark.pedantic(run, rounds=1, iterations=1)
    assert guided.exact_mws == brute.exact_mws == 1
    assert guided.candidates_examined < brute.candidates_examined
    record(
        benchmark,
        guided_candidates=guided.candidates_examined,
        exhaustive_candidates=brute.candidates_examined,
    )
