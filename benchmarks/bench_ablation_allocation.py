"""Ablation: modulo buffer allocation and the branch-and-bound objective.

Quantifies two things DESIGN.md calls out:

1. how close the simple modulo addressing scheme gets to the ideal
   (fully associative) window — the ``modulus / MWS`` overhead, per
   kernel and per transformation state;
2. the Section-4.2 solver choices: full branch-and-bound over eq. (2)
   vs. the paper's "minimize |alpha2 a - alpha1 b|" shortcut vs. plain
   enumeration — same optimum where it matters, different costs and
   different failure modes (the shortcut picks (1,1) on the worked
   example and pays 30 vs. 22).
"""

BENCH_NAME = "ablation_allocation"

from fractions import Fraction

import pytest
from conftest import record

from repro.ir import parse_program
from repro.transform import allocate_window, search_mws_2d
from repro.transform.branch_bound import (
    branch_and_bound_mws_2d,
    minimize_window_step,
)
from repro.window import mws_2d_estimate

EX8 = """
for i = 1 to 25 {
  for j = 1 to 10 {
    X[2*i + 5*j + 1] = X[2*i + 5*j + 5]
  }
}
"""

DISTS = [(3, -2), (2, 0), (5, -2)]


@pytest.mark.parametrize("state", ["original", "transformed"])
def test_allocation_overhead(benchmark, state):
    program = parse_program(EX8)
    transformation = None
    if state == "transformed":
        transformation = search_mws_2d(program, "X").transformation
    alloc = benchmark.pedantic(
        allocate_window, args=(program, "X", transformation),
        rounds=1, iterations=1,
    )
    assert alloc.modulus >= alloc.mws
    assert alloc.overhead <= 0.10  # modulo scheme stays within 10% of ideal
    record(
        benchmark,
        state=state, mws=alloc.mws, modulus=alloc.modulus,
        overhead_pct=round(100 * alloc.overhead, 1),
    )


def test_bb_vs_enumeration_agree(benchmark):
    def run():
        bb = branch_and_bound_mws_2d(2, 5, 25, 10, DISTS, bound=12)
        import math

        best = None
        for a in range(0, 13):
            for b in range(-12, 13):
                if (a, b) == (0, 0) or math.gcd(a, b) != 1:
                    continue
                if a == 0 and b < 0:
                    continue
                if any(a * d1 + b * d2 < 0 for d1, d2 in DISTS):
                    continue
                value = mws_2d_estimate(2, 5, 25, 10, a, b)
                if best is None or value < best:
                    best = value
        return bb, best

    bb, best = benchmark.pedantic(run, rounds=1, iterations=1)
    assert bb.objective == best == Fraction(22)
    record(benchmark, bb_evaluated=bb.candidates_evaluated, optimum=22)


def test_bb_speed(benchmark):
    result = benchmark(branch_and_bound_mws_2d, 2, 5, 25, 10, DISTS, 12)
    assert result.objective == Fraction(22)
    record(benchmark, nodes=result.nodes_explored)


def test_window_step_shortcut_gap(benchmark):
    """The paper's linear shortcut is fast but suboptimal here: it picks
    (1, 1) with window step 3 but MWS 30 vs. the true optimum 22."""

    def run():
        row = minimize_window_step(2, 5, DISTS)
        return row, mws_2d_estimate(2, 5, 25, 10, *row)

    row, value = benchmark.pedantic(run, rounds=1, iterations=1)
    assert row == (1, 1)
    assert value == Fraction(30)
    record(benchmark, shortcut_row=str(row), shortcut_mws=30, optimum=22)
