"""Tiling + block transfers: the Section 4.1 motivation, quantified.

Tileability is required "to use block transfers, which are very useful
to minimize the number of off-chip accesses".  This bench sweeps tile
sizes on a tileable stencil: larger tiles amortize transfers (interior
reuse is captured inside the tile) until the double buffer outgrows the
SRAM budget — the provisioning trade `best_tile_for_budget` automates.
"""

BENCH_NAME = "tiling_transfers"

import pytest
from conftest import record

from repro.ir import parse_program
from repro.memory.prefetch import best_tile_for_budget, plan_double_buffering
from repro.transform import is_fully_permutable

STENCIL = """
for i = 1 to 32 {
  for j = 1 to 32 {
    A[i][j] = A[i][j] + A[i-1][j] + A[i][j-1]
  }
}
"""


@pytest.mark.parametrize("size", [2, 4, 8, 16])
def test_transfer_amortization(benchmark, size):
    program = parse_program(STENCIL)
    assert is_fully_permutable(program)
    plan = benchmark.pedantic(
        plan_double_buffering, args=(program, (size, size)),
        rounds=1, iterations=1,
    )
    record(
        benchmark,
        tile=size,
        footprint=plan.tile_footprint_words,
        buffer=plan.buffer_words,
        words_per_iteration=round(plan.words_per_iteration, 3),
    )
    assert plan.words_per_iteration > 0


def test_amortization_is_monotone(benchmark):
    program = parse_program(STENCIL)

    def run():
        return [
            plan_double_buffering(program, (s, s)).words_per_iteration
            for s in (2, 4, 8, 16)
        ]

    curve = benchmark.pedantic(run, rounds=1, iterations=1)
    assert curve == sorted(curve, reverse=True)
    record(benchmark, curve=str([round(v, 3) for v in curve]))


@pytest.mark.parametrize("budget", [32, 128, 512])
def test_budgeted_tile_choice(benchmark, budget):
    program = parse_program(STENCIL)
    plan = benchmark.pedantic(
        best_tile_for_budget, args=(program, budget), rounds=1, iterations=1
    )
    assert plan.buffer_words <= budget
    record(
        benchmark,
        budget=budget,
        tile=plan.tile[0],
        buffer=plan.buffer_words,
        words_per_iteration=round(plan.words_per_iteration, 3),
    )
