"""Tiling + block transfers: the Section 4.1 motivation, quantified.

Tileability is required "to use block transfers, which are very useful
to minimize the number of off-chip accesses".  This bench sweeps tile
sizes on a tileable stencil: larger tiles amortize transfers (interior
reuse is captured inside the tile) until the double buffer outgrows the
SRAM budget — the provisioning trade `best_tile_for_budget` automates.
"""

BENCH_NAME = "tiling_transfers"

import pytest
from conftest import record

from repro.ir import parse_program
from repro.memory.prefetch import best_tile_for_budget, plan_double_buffering
from repro.transform import is_fully_permutable

STENCIL = """
for i = 1 to 32 {
  for j = 1 to 32 {
    A[i][j] = A[i][j] + A[i-1][j] + A[i][j-1]
  }
}
"""


@pytest.mark.parametrize("size", [2, 4, 8, 16])
def test_transfer_amortization(benchmark, size):
    program = parse_program(STENCIL)
    assert is_fully_permutable(program)
    plan = benchmark.pedantic(
        plan_double_buffering, args=(program, (size, size)),
        rounds=1, iterations=1,
    )
    record(
        benchmark,
        tile=size,
        footprint=plan.tile_footprint_words,
        buffer=plan.buffer_words,
        words_per_iteration=round(plan.words_per_iteration, 3),
    )
    assert plan.words_per_iteration > 0


def test_amortization_is_monotone(benchmark):
    program = parse_program(STENCIL)

    def run():
        return [
            plan_double_buffering(program, (s, s)).words_per_iteration
            for s in (2, 4, 8, 16)
        ]

    curve = benchmark.pedantic(run, rounds=1, iterations=1)
    assert curve == sorted(curve, reverse=True)
    record(benchmark, curve=str([round(v, 3) for v in curve]))


@pytest.mark.parametrize("budget", [32, 128, 512])
def test_budgeted_tile_choice(benchmark, budget):
    program = parse_program(STENCIL)
    plan = benchmark.pedantic(
        best_tile_for_budget, args=(program, budget), rounds=1, iterations=1
    )
    assert plan.buffer_words <= budget
    record(
        benchmark,
        budget=budget,
        tile=plan.tile[0],
        buffer=plan.buffer_words,
        words_per_iteration=round(plan.words_per_iteration, 3),
    )


# ----------------------------------------------------------------------
# multi-tier: joint (tile, placement) search vs best flat-buffer tiling
# ----------------------------------------------------------------------
#
# The hierarchy extension of the same Section 4.1 story: with a TCM
# behind the L1 the search may *split* arrays across tiers instead of
# shrinking the tile until everything fits one buffer.  On the three
# checked-in GEMM-family examples (48-point operands straddle the 16KB
# L1 but fit the 128KB TCM) the joint plan must strictly beat the best
# flat plan under the identical cost model.

from pathlib import Path

from repro.memory import preset
from repro.transform import search_hierarchy

EXAMPLES = Path(__file__).resolve().parents[1] / "examples" / "hierarchy"


@pytest.mark.parametrize(
    "name", ["gemm48", "correlation48", "attention48"]
)
def test_multitier_beats_flat(benchmark, name):
    program = parse_program(
        (EXAMPLES / f"{name}.loop").read_text(), name=name
    )
    result = benchmark.pedantic(
        search_hierarchy,
        args=(program, preset("tcm")),
        kwargs={"candidates": [None]},
        rounds=1, iterations=1,
    )
    assert result.best.energy_pj < result.flat.energy_pj
    assert result.floor_energy_pj <= result.best.energy_pj
    record(
        benchmark,
        joint_energy_pj=result.best.energy_pj,
        flat_energy_pj=result.flat.energy_pj,
        energy_reduction_pct=round(result.savings_pct, 1),
        offchip_words=result.best.offchip_words,
        bound_words=result.bound_words,
        configs=result.configs,
    )
