"""Bench-telemetry artifacts: ``BENCH_<name>.json`` writers.

Each benchmark module declares ``BENCH_NAME = "<name>"``; the conftest
hooks collect every test's wall-clock and ``record()``-ed numbers and
call :func:`write_artifact` at session end.  The artifact carries the
reproduced metrics (the stable part ``repro bench-compare`` diffs
against a baseline), per-test wall seconds, the observer's counter
totals, and host/commit metadata.

The artifact directory defaults to ``benchmarks/artifacts/`` and can be
redirected with the ``BENCH_ARTIFACT_DIR`` environment variable.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path
from typing import Any, Mapping

SCHEMA_VERSION = 1

ARTIFACT_DIR_ENV = "BENCH_ARTIFACT_DIR"

DEFAULT_ARTIFACT_DIR = Path(__file__).resolve().parent / "artifacts"


def artifact_dir() -> Path:
    """Where artifacts go: ``$BENCH_ARTIFACT_DIR`` or benchmarks/artifacts."""
    override = os.environ.get(ARTIFACT_DIR_ENV)
    return Path(override) if override else DEFAULT_ARTIFACT_DIR


def host_metadata() -> dict[str, Any]:
    """Python/platform/CPU plus the git commit when available."""
    meta: dict[str, Any] = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=Path(__file__).resolve().parent,
            timeout=5,
        )
        if proc.returncode == 0:
            meta["commit"] = proc.stdout.strip()
    except OSError:
        pass
    return meta


def build_artifact(
    name: str,
    metrics: Mapping[str, Any],
    wall_s: Mapping[str, float] | None = None,
    counters: Mapping[str, int] | None = None,
) -> dict[str, Any]:
    """Assemble one bench's artifact dict (JSON-ready)."""
    return {
        "bench": name,
        "schema": SCHEMA_VERSION,
        "created_unix": round(time.time(), 3),
        "host": host_metadata(),
        "metrics": dict(sorted(metrics.items())),
        "wall_s": dict(sorted((wall_s or {}).items())),
        "counters": dict(sorted((counters or {}).items())),
    }


def write_artifact(artifact: Mapping[str, Any], directory: Path | None = None) -> Path:
    """Write ``BENCH_<name>.json``; returns the path."""
    directory = Path(directory) if directory is not None else artifact_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{artifact['bench']}.json"
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    return path
