"""Bench-telemetry artifacts: ``BENCH_<name>.json`` writers.

Thin wrapper over :mod:`repro.reporting.telemetry` (the writer moved
there so ``repro bench`` and the chunk sweep share it); this module
pins the artifact directory to ``benchmarks/artifacts/`` regardless of
the working directory.  Each benchmark module declares ``BENCH_NAME =
"<name>"``; the conftest hooks collect every test's wall-clock and
``record()``-ed numbers and call :func:`write_artifact` at session end.

The artifact directory can be redirected with the ``BENCH_ARTIFACT_DIR``
environment variable.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Mapping

from repro.reporting.telemetry import (  # noqa: F401  (re-exported API)
    ARTIFACT_DIR_ENV,
    SCHEMA_VERSION,
    build_artifact,
    host_metadata,
)
from repro.reporting.telemetry import artifact_dir as _artifact_dir
from repro.reporting.telemetry import write_artifact as _write_artifact

DEFAULT_ARTIFACT_DIR = Path(__file__).resolve().parent / "artifacts"


def artifact_dir() -> Path:
    """Where artifacts go: ``$BENCH_ARTIFACT_DIR`` or benchmarks/artifacts."""
    return _artifact_dir(default=DEFAULT_ARTIFACT_DIR)


def write_artifact(artifact: Mapping[str, Any], directory: Path | None = None) -> Path:
    """Write ``BENCH_<name>.json``; returns the path."""
    if directory is None:
        directory = artifact_dir()
    return _write_artifact(artifact, directory)
