"""Ablation: layout x traversal interaction (the paper's future work).

Measures, on the 2point stencil, how the line-granular window and cache
misses respond to (a) the window-minimizing transformation and (b) the
array layout — demonstrating that loop transformation and data layout
must be co-designed: the transformation that minimizes the element
window maximizes the line window under the wrong layout.
"""

BENCH_NAME = "ablation_layout"

import pytest
from conftest import record

from repro.ir import parse_program
from repro.layout import ColumnMajorLayout, RowMajorLayout, max_line_window
from repro.linalg import IntMatrix
from repro.memory import CacheConfig, simulate_cache
from repro.window import max_window_size

STENCIL = """
for i = 1 to 16 {
  for j = 1 to 16 {
    B[0] = A[i-1][j] + A[i][j]
  }
}
"""

INTERCHANGE = IntMatrix([[0, 1], [1, 0]])


@pytest.mark.parametrize("layout_name", ["row", "col"])
@pytest.mark.parametrize("order", ["original", "interchanged"])
def test_line_window_matrix(benchmark, layout_name, order):
    program = parse_program(STENCIL)
    layout = RowMajorLayout() if layout_name == "row" else ColumnMajorLayout()
    t = None if order == "original" else INTERCHANGE
    lines = benchmark.pedantic(
        max_line_window, args=(program, "A", layout, 4, t),
        rounds=1, iterations=1,
    )
    elements = max_window_size(program, "A", t)
    # A line outlives its elements (it is live between accesses to any of
    # its members), so the line window can exceed the element window when
    # the layout fights the traversal — that is the point of this matrix.
    assert lines >= 1
    record(benchmark, layout=layout_name, order=order,
           line_window=lines, element_window=elements)


def test_codesign_crossover(benchmark):
    """The crossover: after interchange, column-major wins; before it,
    row-major wins.  Same code, opposite layout choice."""
    program = parse_program(STENCIL)

    def run():
        return {
            ("original", "row"): max_line_window(program, "A", RowMajorLayout(), 4),
            ("original", "col"): max_line_window(program, "A", ColumnMajorLayout(), 4),
            ("interchanged", "row"): max_line_window(
                program, "A", RowMajorLayout(), 4, INTERCHANGE
            ),
            ("interchanged", "col"): max_line_window(
                program, "A", ColumnMajorLayout(), 4, INTERCHANGE
            ),
        }

    grid = benchmark.pedantic(run, rounds=1, iterations=1)
    assert grid[("original", "row")] <= grid[("original", "col")]
    assert grid[("interchanged", "col")] <= grid[("interchanged", "row")]
    record(benchmark, **{f"{o}_{l}": v for (o, l), v in grid.items()})


@pytest.mark.parametrize("order", ["original", "interchanged"])
def test_cache_misses(benchmark, order):
    """A small LRU cache sees the element-window improvement directly
    when the layout matches the traversal."""
    program = parse_program(STENCIL)
    t = None if order == "original" else INTERCHANGE
    layout = RowMajorLayout() if order == "original" else ColumnMajorLayout()
    config = CacheConfig(total_lines=8, line_size=4, associativity=4)
    stats = benchmark.pedantic(
        simulate_cache, args=(program, config, layout, t),
        rounds=1, iterations=1,
    )
    record(benchmark, order=order, misses=stats.misses,
           miss_rate=round(stats.miss_rate, 3))
    assert stats.hits + stats.misses == stats.accesses
