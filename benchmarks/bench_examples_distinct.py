"""Examples 2-5: closed-form distinct-access counts (Section 3).

Paper values: Example 2 reuse (N1-1)(N2-2); Example 3 reuse 261 and
A_d 139; Example 4 reuse 120 and A_d 80; Example 5 reuse 4131 and
A_d 1869.  The enumeration oracle is timed alongside to show the closed
forms' speed advantage.
"""

BENCH_NAME = "examples_distinct"

from conftest import record

from repro.estimation import (
    distinct_accesses_same_rank,
    distinct_accesses_single_ref,
    exact_distinct_accesses,
)
from repro.ir import parse_program

EXAMPLE_2 = """
for i = 1 to 10 {
  for j = 1 to 10 {
    A[i][j] = A[i-1][j+2]
  }
}
"""

EXAMPLE_3 = """
for i = 1 to 10 {
  for j = 1 to 10 {
    Z[i][j] = A[i][j] + A[i-1][j] + A[i][j-1] + A[i-1][j-1]
  }
}
"""

EXAMPLE_4 = """
for i = 1 to 20 {
  for j = 1 to 10 {
    A[2*i + 5*j + 1]
  }
}
"""

EXAMPLE_5 = """
for i = 1 to 10 {
  for j = 1 to 20 {
    for k = 1 to 30 {
      A[3*i + k][j + k]
    }
  }
}
"""


def test_example2_formula(benchmark):
    program = parse_program(EXAMPLE_2)
    est = benchmark(distinct_accesses_same_rank, program, "A")
    assert est.reuse == (10 - 1) * (10 - 2) == 72
    assert est.lower == 128
    assert est.exact
    assert exact_distinct_accesses(program, "A") == 128
    record(benchmark, paper_reuse=72, measured=est.lower, oracle=128)


def test_example3_formula(benchmark):
    program = parse_program(EXAMPLE_3)
    est = benchmark(distinct_accesses_same_rank, program, "A")
    assert est.reuse == 261  # paper's reuse
    assert est.upper == 139  # paper's A_d
    oracle = exact_distinct_accesses(program, "A")
    assert oracle == 121  # the formula overcounts for r > 2 (see EXPERIMENTS.md)
    record(benchmark, paper_Ad=139, formula=est.upper, oracle=oracle)


def test_example4_formula(benchmark):
    program = parse_program(EXAMPLE_4)
    ref = program.refs_to("A")[0]
    est = benchmark(distinct_accesses_single_ref, ref, program.nest)
    assert est.reuse == 120 and est.lower == 80  # paper's values, exact
    assert exact_distinct_accesses(program, "A") == 80
    record(benchmark, paper_Ad=80, measured=est.lower)


def test_example5_formula(benchmark):
    program = parse_program(EXAMPLE_5)
    ref = program.refs_to("A")[0]
    est = benchmark(distinct_accesses_single_ref, ref, program.nest)
    assert est.reuse == 4131 and est.lower == 1869  # paper's values, exact
    assert exact_distinct_accesses(program, "A") == 1869
    record(benchmark, paper_Ad=1869, measured=est.lower)


def test_example5_oracle_speed(benchmark):
    """Times the enumeration oracle on the 6000-iteration Example 5 nest,
    for comparison against the closed form above."""
    program = parse_program(EXAMPLE_5)
    count = benchmark(exact_distinct_accesses, program, "A")
    assert count == 1869
    record(benchmark, oracle=count)
