"""Example 7: compound transformations beat interchange+reversal.

Paper (costs from Eisenbeis et al.'s window metric): original 89,
interchange 41, reversal 86, reversed-interchange 36, and with the
paper's compound transformation the MWS drops to 1.  Our exact simulator
measures 86 / 37 / 84 / 34 for the same orders (the Eisenbeis metric is a
slight over-estimate) and confirms the compound transformation reaches 1.
"""

BENCH_NAME = "example7_transform"

import pytest
from conftest import record

from repro.ir import parse_program
from repro.linalg import IntMatrix
from repro.transform import eisenbeis_search, search_mws_2d
from repro.window import max_window_size

EXAMPLE_7 = """
for i = 1 to 20 {
  for j = 1 to 30 {
    X[2*i - 3*j]
  }
}
"""

ORDERS = {
    "original": None,
    "interchange": IntMatrix([[0, 1], [1, 0]]),
    "reversal": IntMatrix([[-1, 0], [0, 1]]),
    "reversed_interchange": IntMatrix([[0, 1], [-1, 0]]),
    "compound": IntMatrix([[2, -3], [1, -1]]),
}

PAPER_COSTS = {
    "original": 89,
    "interchange": 41,
    "reversal": 86,
    "reversed_interchange": 36,
    "compound": 1,
}

MEASURED = {
    "original": 86,
    "interchange": 37,
    "reversal": 84,
    "reversed_interchange": 34,
    "compound": 1,
}


@pytest.mark.parametrize("order", list(ORDERS))
def test_example7_window_per_order(benchmark, order):
    program = parse_program(EXAMPLE_7)
    mws = benchmark(max_window_size, program, "X", ORDERS[order])
    assert mws == MEASURED[order]
    # Shape check against the paper's metric: same ranking, ~same values.
    assert abs(mws - PAPER_COSTS[order]) <= 4
    record(benchmark, paper=PAPER_COSTS[order], measured=mws)


def test_example7_ranking_matches_paper(benchmark):
    """The ordering of the five variants is identical to the paper's."""
    program = parse_program(EXAMPLE_7)

    def run():
        return {
            name: max_window_size(program, "X", t) for name, t in ORDERS.items()
        }

    measured = benchmark(run)
    rank = sorted(measured, key=measured.get)
    paper_rank = sorted(PAPER_COSTS, key=PAPER_COSTS.get)
    assert rank == paper_rank
    record(benchmark, ranking=" < ".join(rank))


def test_example7_search_finds_compound(benchmark):
    program = parse_program(EXAMPLE_7)
    result = benchmark(search_mws_2d, program, "X")
    assert result.exact_mws == 1  # paper: "can be reduced to 1"
    record(benchmark, mws=result.exact_mws, T=str(result.transformation.rows))


def test_example7_eisenbeis_baseline(benchmark):
    program = parse_program(EXAMPLE_7)
    result = benchmark(eisenbeis_search, program, "X")
    assert result.exact_mws == 34  # best of interchange+reversal (paper: 36)
    record(benchmark, paper_best=36, measured_best=result.exact_mws)
