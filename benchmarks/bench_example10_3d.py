"""Example 10 / Section 4.3: three-level nests and the embedding trick.

Paper: reuse vector (1, 3, -3) for A[3i+k][j+k] on a 10x20x30 nest; the
worked arithmetic gives MWS 540 (the printed formula carries a "+1",
giving 541 — the exact simulator arbitrates: 540); embedding the access
matrix as the leading rows of T reduces the MWS to 1.
"""

BENCH_NAME = "example10_3d"

from conftest import record

from repro.dependence import self_reuse_distance
from repro.ir import parse_program
from repro.linalg import IntMatrix
from repro.transform import search_mws_3d
from repro.window import max_window_size, mws_3d_for_ref

EXAMPLE_10 = """
for i = 1 to 10 {
  for j = 1 to 20 {
    for k = 1 to 30 {
      A[3*i + k][j + k]
    }
  }
}
"""


def test_example10_reuse_vector(benchmark):
    program = parse_program(EXAMPLE_10)
    vector = benchmark(self_reuse_distance, program.refs_to("A")[0])
    assert vector == (1, 3, -3)  # paper prints (1, 3, 3) unsigned
    record(benchmark, reuse_vector=str(vector))


def test_example10_mws_formula(benchmark):
    program = parse_program(EXAMPLE_10)
    ref = program.refs_to("A")[0]
    estimate = benchmark(mws_3d_for_ref, ref, program.nest)
    assert estimate == 541  # formula as printed (with its +1)
    record(benchmark, paper_arithmetic=540, formula_with_plus1=estimate)


def test_example10_mws_exact(benchmark):
    program = parse_program(EXAMPLE_10)
    mws = benchmark(max_window_size, program, "A")
    assert mws == 540  # matches the paper's worked arithmetic
    record(benchmark, paper=540, measured=mws)


def test_example10_embedding_transformation(benchmark):
    """T with the access matrix as its leading rows drives MWS to 1."""
    program = parse_program(EXAMPLE_10)
    t = IntMatrix([[3, 0, 1], [0, 1, 1], [1, 0, 0]])
    mws = benchmark(max_window_size, program, "A", t)
    assert mws == 1  # paper: "the maximum window size reduces to one"
    record(benchmark, paper=1, measured=mws)


def test_example10_search_finds_embedding(benchmark):
    program = parse_program(EXAMPLE_10)
    result = benchmark(search_mws_3d, program, "A")
    assert result.exact_mws == 1
    assert result.transformation.row(0) == (3, 0, 1)
    assert result.transformation.row(1) == (0, 1, 1)
    record(benchmark, mws=result.exact_mws, T=str(result.transformation.rows))


def test_example10_reuse_level_pushed_inward(benchmark):
    """Paper: the reuse vector's level goes from 1 to 3 under T."""
    from repro.dependence import reuse_level

    program = parse_program(EXAMPLE_10)
    t = IntMatrix([[3, 0, 1], [0, 1, 1], [1, 0, 0]])
    vector = self_reuse_distance(program.refs_to("A")[0])

    def run():
        return reuse_level(vector), reuse_level(t.apply(vector))

    before, after = benchmark(run)
    assert before == 1 and after == 3
    record(benchmark, level_before=before, level_after=after)
