"""Shared helpers for the benchmark harness.

Every file here regenerates one table, figure or numbered worked example
of the paper (see DESIGN.md's per-experiment index).  Each benchmark
asserts the reproduced values (paper-vs-measured is recorded in
EXPERIMENTS.md) and times the underlying algorithm via pytest-benchmark.

Telemetry: modules declaring ``BENCH_NAME = "<name>"`` get a
``BENCH_<name>.json`` artifact at session end (see telemetry.py) with
every ``record()``-ed number, per-test wall seconds, and the observer's
counter totals for the session; ``repro bench-compare`` diffs two such
artifacts.

Run:  pytest benchmarks/ --benchmark-only
"""

import time

import pytest

from repro import obs
from telemetry import build_artifact, write_artifact

#: bench name -> {"metrics": {...}, "wall_s": {...}} accumulated over
#: the session; flushed to BENCH_<name>.json by pytest_sessionfinish.
_RUNS: dict = {}


def record(benchmark, **info):
    """Attach reproduced numbers to the benchmark's extra_info."""
    for key, value in info.items():
        benchmark.extra_info[key] = value


def pytest_sessionstart(session):
    # One in-memory observer for the whole bench session so artifacts
    # can report counter totals (cache hits, simulator calls, ...).
    obs.enable()


@pytest.fixture(autouse=True)
def bench_telemetry(request):
    """Capture wall-clock and recorded metrics of each bench test."""
    name = getattr(request.module, "BENCH_NAME", None)
    start = time.perf_counter()
    yield
    if name is None:
        return
    run = _RUNS.setdefault(name, {"metrics": {}, "wall_s": {}})
    run["wall_s"][request.node.name] = round(time.perf_counter() - start, 6)
    bench = request.node.funcargs.get("benchmark")
    extra = getattr(bench, "extra_info", None)
    if not extra:
        return
    # Parametrized tests prefix their metrics with the param id
    # (e.g. "sor.mws_opt"); bare tests with the test name sans "test_".
    if getattr(request.node, "callspec", None) is not None:
        prefix = request.node.callspec.id
    else:
        prefix = request.node.name.removeprefix("test_")
    for key, value in extra.items():
        run["metrics"][f"{prefix}.{key}"] = value


def pytest_sessionfinish(session, exitstatus):
    observer = obs.disable()
    if not _RUNS:
        return
    counters = observer.summary().get("counters", {}) if observer else {}
    for name, run in sorted(_RUNS.items()):
        artifact = build_artifact(
            name,
            metrics=run["metrics"],
            wall_s=run["wall_s"],
            counters=counters,
        )
        path = write_artifact(artifact)
        print(f"\nbench telemetry: {path}")
