"""Shared helpers for the benchmark harness.

Every file here regenerates one table, figure or numbered worked example
of the paper (see DESIGN.md's per-experiment index).  Each benchmark
asserts the reproduced values (paper-vs-measured is recorded in
EXPERIMENTS.md) and times the underlying algorithm via pytest-benchmark.

Run:  pytest benchmarks/ --benchmark-only
"""

import pytest


def record(benchmark, **info):
    """Attach reproduced numbers to the benchmark's extra_info."""
    for key, value in info.items():
        benchmark.extra_info[key] = value
