"""Example 6: non-uniformly generated references — bounds vs. exact.

Paper: LB_min = 0, UB_max = 190, upper bound 191, lower bound
191 - 6 - 6 = 179, "actual number of references 181".  Our enumeration
gives 182 (the paper's 181 appears to be an arithmetic slip; both sit
inside the bounds).
"""

BENCH_NAME = "example6_bounds"

from conftest import record

from repro.estimation import exact_distinct_accesses, nonuniform_bounds
from repro.ir import parse_program

EXAMPLE_6 = """
for i = 1 to 20 {
  for j = 1 to 20 {
    S1: A[3*i + 7*j - 10] = 0
    S2: B[0] = A[4*i - 3*j + 60]
  }
}
"""


def test_example6_bounds(benchmark):
    program = parse_program(EXAMPLE_6)
    bounds = benchmark(nonuniform_bounds, program, "A")
    assert (bounds.lb_min, bounds.ub_max) == (0, 190)  # paper: LB1=0, UB1=190
    assert bounds.upper == 191
    assert bounds.lower == 179
    record(
        benchmark,
        paper_lower=179, paper_upper=191,
        measured_lower=bounds.lower, measured_upper=bounds.upper,
    )


def test_example6_exact(benchmark):
    program = parse_program(EXAMPLE_6)
    exact = benchmark(exact_distinct_accesses, program, "A")
    assert exact == 182  # paper prints 181
    bounds = nonuniform_bounds(program, "A")
    assert bounds.lower <= exact <= bounds.upper
    record(benchmark, paper_actual=181, measured_actual=exact)


def test_example6_sylvester_corrections(benchmark):
    """The two end corrections are Sylvester counts of (3, 7)."""
    from repro.linalg import sylvester_count

    count = benchmark(sylvester_count, 3, 7)
    assert count == 6
    record(benchmark, correction_per_end=count)
