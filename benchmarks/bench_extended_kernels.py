"""Extended workloads: the pipeline beyond the paper's seven kernels.

Expected shapes (asserted): conv2d's window is a 3-row band and no legal
transformation beats a band (both grid directions carry reuse);
transpose has no temporal reuse at all (window ~0) but is the
layout-adversarial case for *line* windows; FIR's window is the tap
count; the downsampler touches each input once (nothing to keep);
matvec keeps the vector resident (window ~n).
"""

BENCH_NAME = "extended_kernels"

import pytest
from conftest import record

from repro.core import optimize_program
from repro.kernels.extended import EXTENDED_KERNELS, conv2d, downsample, fir, matvec, transpose
from repro.window import max_window_size


@pytest.mark.parametrize("spec", EXTENDED_KERNELS, ids=lambda s: s.name)
def test_extended_pipeline(benchmark, spec):
    program = spec.build()
    result = benchmark.pedantic(optimize_program, args=(program,), rounds=1, iterations=1)
    assert result.mws_after <= result.mws_before
    record(
        benchmark,
        kernel=spec.name,
        default=program.default_memory,
        mws_unopt=result.mws_before,
        mws_opt=result.mws_after,
        reduction_pct=round(100 * (1 - result.mws_after / max(1, program.default_memory)), 1),
    )


def test_conv2d_band_window(benchmark):
    program = conv2d(24, 3)
    mws = benchmark(max_window_size, program, "A")
    # A 3x3 stencil holds about three image rows.
    assert 2 * 24 <= mws <= 3 * 24 + 9
    record(benchmark, mws=mws, rows=round(mws / 24, 2))


def test_transpose_no_temporal_reuse(benchmark):
    program = transpose(24)
    mws = benchmark(max_window_size, program, "A")
    assert mws == 0  # every element read exactly once
    record(benchmark, mws=mws)


def test_fir_window_is_tap_count(benchmark):
    program = fir(128, 16)
    mws = benchmark(max_window_size, program, "X")
    assert 14 <= mws <= 18  # the sliding window holds ~taps samples
    record(benchmark, mws=mws, taps=16)


def test_downsample_touches_once(benchmark):
    program = downsample(32, 2)
    mws = benchmark(max_window_size, program, "A")
    assert mws == 0
    record(benchmark, mws=mws)


def test_matvec_vector_resident(benchmark):
    program = matvec(32)
    mws = benchmark(max_window_size, program, "X")
    assert 28 <= mws <= 33  # the whole vector is re-read per row
    record(benchmark, mws=mws)
