"""Ablation: the MWS knee, replacement policies, and the fast simulator.

Three design claims quantified:

1. a Belady-managed buffer of exactly MWS elements takes cold misses
   only (the operational definition of MWS as minimum memory);
2. LRU — hardware without future knowledge — needs extra capacity to
   reach the same traffic, which is why the paper's scratchpad framing
   (software-managed, perfect knowledge) matters for embedded SRAM;
3. the vectorized window simulator matches the reference implementation
   while being the thing that makes the Figure-2 search tractable.
"""

BENCH_NAME = "ablation_memory"

import pytest
from conftest import record

from repro.ir import parse_program
from repro.kernels import two_point
from repro.memory import simulate_scratchpad
from repro.window import max_window_size
from repro.window.simulator import max_window_size_reference

EXAMPLE_8 = """
for i = 1 to 25 {
  for j = 1 to 10 {
    X[2*i + 5*j + 1] = X[2*i + 5*j + 5]
  }
}
"""


def test_belady_knee_at_mws(benchmark):
    program = parse_program(EXAMPLE_8)
    mws = max_window_size(program, "X")

    def run():
        curve = {}
        for capacity in range(1, mws + 4):
            stats = simulate_scratchpad(program, capacity, array="X")
            curve[capacity] = stats.capacity_misses
        return curve

    curve = benchmark.pedantic(run, rounds=1, iterations=1)
    knee = min(c for c, misses in curve.items() if misses == 0)
    assert knee <= mws + 1  # the knee is the MWS (within the in-flight slot)
    assert curve[max(1, mws - 4)] > 0  # below the window: thrashing
    record(benchmark, mws=mws, knee=knee)


@pytest.mark.parametrize("policy", ["belady", "lru"])
def test_policy_traffic_at_mws(benchmark, policy):
    program = parse_program(EXAMPLE_8)
    mws = max_window_size(program, "X")
    stats = benchmark.pedantic(
        simulate_scratchpad,
        args=(program, mws + 1),
        kwargs={"array": "X", "policy": policy},
        rounds=1, iterations=1,
    )
    if policy == "belady":
        assert stats.capacity_misses == 0
    record(benchmark, policy=policy, capacity=mws + 1, capacity_misses=stats.capacity_misses)


def test_lru_needs_more_capacity(benchmark):
    """Find LRU's zero-thrash capacity and compare with MWS."""
    program = parse_program(EXAMPLE_8)
    mws = max_window_size(program, "X")

    def run():
        capacity = 1
        while True:
            stats = simulate_scratchpad(program, capacity, array="X", policy="lru")
            if stats.capacity_misses == 0:
                return capacity
            capacity += 1

    lru_knee = benchmark.pedantic(run, rounds=1, iterations=1)
    assert lru_knee >= mws  # LRU can never beat the optimal policy
    record(benchmark, mws=mws, lru_knee=lru_knee)


def test_fast_simulator_correct(benchmark):
    program = two_point(24)
    fast = benchmark(max_window_size, program, "A")
    assert fast == max_window_size_reference(program, "A")
    record(benchmark, mws=fast)


def test_reference_simulator_speed(benchmark):
    program = two_point(24)
    value = benchmark(max_window_size_reference, program, "A")
    assert value == max_window_size(program, "A")
    record(benchmark, mws=value)
