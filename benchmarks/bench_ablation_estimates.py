"""Ablation: closed-form estimates vs. the exact oracle, in accuracy and
speed, across randomized affine nests.

Quantifies the claim the paper's whole approach rests on — dependence-
based closed forms are exact (uniform case) or tight (non-uniform) at a
tiny fraction of enumeration cost.
"""

BENCH_NAME = "ablation_estimates"

import random

from conftest import record

from repro.estimation import (
    estimate_distinct_accesses,
    exact_distinct_accesses,
)
from repro.ir import NestBuilder
from repro.window import max_window_size, mws_2d_for_array


def _random_uniform_program(rng):
    n1, n2 = rng.randint(6, 14), rng.randint(6, 14)
    di, dj = rng.randint(-3, 3), rng.randint(-3, 3)
    if (di, dj) == (0, 0):
        di = 1
    ident = [[1, 0], [0, 1]]
    return (
        NestBuilder("rand")
        .loop("i", 1, n1)
        .loop("j", 1, n2)
        .statement("S1", write=("A", ident, [0, 0]))
        .statement("S2", write=("B", ident, [0, 0]), reads=[("A", ident, [di, dj])])
        .build()
    )


def _random_1d_program(rng):
    n1, n2 = rng.randint(6, 14), rng.randint(6, 14)
    a = rng.randint(1, 4)
    b = rng.choice([v for v in range(-4, 5) if v != 0])
    return (
        NestBuilder("rand1d")
        .loop("i", 1, n1)
        .loop("j", 1, n2)
        .use("S1", ("A", [[a, b]], [0]))
        .build()
    )


def test_uniform_estimates_are_exact(benchmark):
    """100 random two-reference nests: formula == oracle on every one."""
    rng = random.Random(2001)
    programs = [_random_uniform_program(rng) for _ in range(100)]

    def run():
        exact_hits = 0
        for prog in programs:
            est = estimate_distinct_accesses(prog, "A")
            if est.exact and est.lower == exact_distinct_accesses(prog, "A"):
                exact_hits += 1
        return exact_hits

    hits = benchmark.pedantic(run, rounds=1, iterations=1)
    assert hits == len(programs)
    record(benchmark, programs=len(programs), exact=hits)


def test_estimator_speed(benchmark):
    """Times the closed form alone (cf. the oracle bench below)."""
    rng = random.Random(7)
    programs = [_random_uniform_program(rng) for _ in range(100)]
    total = benchmark(
        lambda: sum(estimate_distinct_accesses(p, "A").value for p in programs)
    )
    assert total > 0
    record(benchmark, programs=len(programs))


def test_oracle_speed(benchmark):
    rng = random.Random(7)
    programs = [_random_uniform_program(rng) for _ in range(100)]
    total = benchmark(
        lambda: sum(exact_distinct_accesses(p, "A") for p in programs)
    )
    assert total > 0
    record(benchmark, programs=len(programs))


def test_mws_estimate_band_random(benchmark):
    """Eq. (2) vs exact MWS on random 1-D-array nests: the estimate never
    undershoots (beyond the in-flight element) and the mean overshoot
    stays small."""
    rng = random.Random(42)
    programs = [_random_1d_program(rng) for _ in range(60)]

    def run():
        overshoots = []
        for prog in programs:
            est = float(mws_2d_for_array(prog, "A"))
            exact = max_window_size(prog, "A")
            assert exact <= est + 1
            if exact > 0:
                overshoots.append(est / exact)
        return sum(overshoots) / len(overshoots)

    mean_ratio = benchmark.pedantic(run, rounds=1, iterations=1)
    assert mean_ratio < 2.5
    record(benchmark, mean_estimate_over_exact=round(mean_ratio, 3))
