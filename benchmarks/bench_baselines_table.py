"""Baseline comparison across the Figure-2 kernels.

Section 6 positions the paper against Eisenbeis et al. (interchange and
reversal only) and Li & Pingali (access-matrix completion); Section 5's
table reports only the paper's own optimizer.  This bench produces the
table the paper implies: per kernel, the total MWS reached by each
strategy.  Shape expectations: the compound search never loses to the
signed-permutation baseline, Li & Pingali skips loops with adverse
flow/anti dependences, and a def-use (Zhao-Malik-style) analysis agrees
with the window on producer-consumer arrays while charging read-only
inputs from time zero.
"""

BENCH_NAME = "baselines_table"

import pytest
from conftest import record

from repro.core import optimize_program
from repro.kernels import kernel_by_name
from repro.linalg import IntMatrix
from repro.transform import eisenbeis_search, li_pingali_transformation
from repro.window import max_total_window
from repro.window.zhao_malik import zhao_malik_report

# The cheap kernels (full_search is exercised in bench_figure2_table).
KERNEL_NAMES = ["2point", "3point", "sor", "matmult", "rasta_flt"]


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_baseline_row(benchmark, name):
    spec = kernel_by_name(name)
    program = spec.build()

    def run():
        ours = optimize_program(program)
        # Eisenbeis baseline at program level: best signed permutation by
        # total window.
        from repro.transform.elementary import signed_permutations
        from repro.transform.legality import is_legal, ordering_distances

        dists = []
        for array in program.arrays:
            if program.is_uniformly_generated(array):
                dists.extend(ordering_distances(program, array))
        best_perm = ours.mws_before
        for t in signed_permutations(program.nest.depth):
            if is_legal(t, dists):
                best_perm = min(best_perm, max_total_window(program, t))
        # Li-Pingali on the dominant array (first with a kernel), if any.
        lp_value = None
        for array in program.arrays:
            if not program.is_uniformly_generated(array):
                continue
            refs = program.refs_to(array)
            if refs and refs[0].reuse_directions():
                t = li_pingali_transformation(program, array)
                if t is not None and t.n_rows == program.nest.depth:
                    lp_value = max_total_window(program, t)
                break
        return ours, best_perm, lp_value

    ours, best_perm, lp_value = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ours.mws_after <= best_perm  # compound search never loses
    record(
        benchmark,
        kernel=name,
        identity=ours.mws_before,
        eisenbeis=best_perm,
        compound=ours.mws_after,
        li_pingali=lp_value if lp_value is not None else "n/a",
    )


@pytest.mark.parametrize("name", ["2point", "matmult"])
def test_zhao_malik_comparator(benchmark, name):
    """Def-use minimum vs. the access window on two contrasting kernels."""
    program = kernel_by_name(name).build()

    def run():
        return max_total_window(program), zhao_malik_report(program).total_peak

    window, zm = benchmark.pedantic(run, rounds=1, iterations=1)
    # Read-only inputs are charged from time zero under def-use rules, so
    # ZM is never below the access window on these kernels.
    assert zm >= window
    record(benchmark, kernel=name, window=window, zhao_malik=zm)
