#!/usr/bin/env python
"""CI gate: a store-warm re-run must be fast and byte-identical.

Runs the given ``repro`` subcommand twice as subprocesses against a
fresh result store (``--store`` into a temp directory), then asserts

* the two stdouts are byte-identical (the store changes *when* results
  are computed, never *what* they are), and
* the warm run takes less than ``1 / min_speedup`` of the cold run's
  wall time (default: warm < 50% of cold, i.e. >= 2x).

Usage::

    python tools/check_warm_store.py [--min-speedup 2.0] -- \
        batch benchmarks/manifests/figure2.json
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import tempfile
import time
from pathlib import Path


def run_once(store_dir: str, repro_args: list[str]) -> tuple[float, bytes]:
    cmd = [sys.executable, "-m", "repro", "--store", store_dir, *repro_args]
    start = time.perf_counter()
    proc = subprocess.run(cmd, capture_output=True)
    wall = time.perf_counter() - start
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr.decode(errors="replace"))
        raise SystemExit(f"command failed ({proc.returncode}): {' '.join(cmd)}")
    return wall, proc.stdout


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="required cold/warm wall-time ratio (default 2.0)",
    )
    parser.add_argument(
        "repro_args",
        nargs=argparse.REMAINDER,
        help="repro subcommand and arguments (after --)",
    )
    args = parser.parse_args(argv)
    repro_args = [a for a in args.repro_args if a != "--"]
    if not repro_args:
        parser.error("no repro subcommand given")

    with tempfile.TemporaryDirectory(prefix="repro-store-") as store_dir:
        cold_s, cold_out = run_once(store_dir, repro_args)
        records = sum(1 for _ in Path(store_dir).glob("*/*/*.json"))
        warm_s, warm_out = run_once(store_dir, repro_args)

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    print(f"cold: {cold_s:.3f}s  warm: {warm_s:.3f}s  "
          f"speedup: {speedup:.2f}x  store records: {records}")

    ok = True
    if warm_out != cold_out:
        print("FAIL: warm stdout differs from cold stdout", file=sys.stderr)
        ok = False
    if speedup < args.min_speedup:
        print(
            f"FAIL: warm run not fast enough "
            f"({speedup:.2f}x < {args.min_speedup:g}x required)",
            file=sys.stderr,
        )
        ok = False
    if ok:
        print(f"OK: identical output, warm >= {args.min_speedup:g}x faster")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
