#!/usr/bin/env python
"""CI gate: the always-on analysis service end to end.

Launches ``repro serve`` as a subprocess against a fresh store on an
ephemeral port, then drives the acceptance scenarios over real HTTP:

1. **Warm beats cold.**  The same request twice: the second answer is
   marked ``warm``, returns the identical result, runs faster, and the
   ``/metrics`` engine-call counters prove zero engine simulations.
2. **Concurrent burst.**  N parallel requests from distinct tenants all
   answer 200 (admission capacity is honoured, nothing deadlocks).
3. **Over-quota tenant.**  One tenant burning through its token bucket
   is answered 429 (``reason: quota``) while others stay admitted.
4. **Hanging request.**  A per-request timeout too small for the work
   answers 504, the worker slot is reclaimed (counter-verified), and
   the next request on the same pool succeeds.
5. **Clean shutdown.**  ``POST /shutdown`` stops the process with exit
   code 0 and the run ledger holds a sealed ``serve`` record.

Usage::

    python tools/check_service.py [--burst 12]
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path


def call(url, method="GET", payload=None, tenant=None, timeout=60.0):
    headers = {}
    data = None
    if payload is not None:
        data = json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    if tenant is not None:
        headers["X-Repro-Tenant"] = tenant
    request = urllib.request.Request(url, data=data, headers=headers,
                                     method=method)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, reply.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def call_json(url, **kwargs):
    status, body = call(url, **kwargs)
    return status, json.loads(body)


def engine_calls(url) -> int:
    """Total engine simulations so far, per the Prometheus exposition."""
    _status, body = call(f"{url}/metrics")
    total = 0
    for line in body.decode().splitlines():
        name, _, value = line.partition(" ")
        if name.startswith("repro_engine_") and name.endswith("_calls_total"):
            total += int(float(value))
    return total


def metric(url, name) -> float:
    _status, body = call(f"{url}/metrics")
    for line in body.decode().splitlines():
        if line.startswith(f"{name} "):
            return float(line.split()[1])
    return 0.0


def check(condition, message):
    if not condition:
        raise SystemExit(f"FAIL: {message}")
    print(f"ok: {message}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--burst", type=int, default=12,
                        help="concurrent requests in the burst phase")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="repro-serve-") as store_dir:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "--store", store_dir,
             "serve", "--port", "0", "--queue-limit", str(args.burst + 8),
             # Glacial refill + burst 3: every tenant gets exactly three
             # requests, which makes the quota phase deterministic.
             "--quota-rate", "0.001", "--quota-burst", "3"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            # Own process group: on failure the whole tree (server AND
            # its forked pool workers) is killed, or the workers would
            # hold the stderr pipe open and the read below would block.
            start_new_session=True,
        )
        try:
            line = proc.stdout.readline()
            check("listening on http://" in line,
                  f"server announced its port ({line.strip()!r})")
            url = line.strip().rsplit(" ", 1)[-1]

            status, health = call_json(f"{url}/healthz")
            check(status == 200 and health["status"] == "ok",
                  "healthz answers ok")

            # -- 1. warm beats cold --------------------------------------
            payload = {"kind": "optimize", "kernel": "matmult"}
            t0 = time.perf_counter()
            status, cold = call_json(f"{url}/analyze", method="POST",
                                     payload=payload, tenant="warmth")
            cold_s = time.perf_counter() - t0
            check(status == 200 and not cold["warm"], "cold request computes")
            calls_before = engine_calls(url)
            t0 = time.perf_counter()
            status, warm = call_json(f"{url}/analyze", method="POST",
                                     payload=payload, tenant="warmth")
            warm_s = time.perf_counter() - t0
            check(status == 200 and warm["warm"], "warm request store-served")
            check(warm["result"] == cold["result"],
                  "warm result identical to cold")
            check(engine_calls(url) == calls_before,
                  "warm request ran zero engine simulations")
            check(warm_s < cold_s,
                  f"warm faster than cold ({warm_s:.3f}s < {cold_s:.3f}s)")

            # -- 2. concurrent burst, one tenant each --------------------
            def one(i):
                return call_json(
                    f"{url}/analyze", method="POST",
                    payload={"kind": "mws", "kernel": "2point"},
                    tenant=f"burst-{i}")

            with concurrent.futures.ThreadPoolExecutor(args.burst) as pool:
                replies = list(pool.map(one, range(args.burst)))
            check(all(s == 200 and b["status"] == "ok" for s, b in replies),
                  f"{args.burst} concurrent requests all answered 200")

            # -- 3. over-quota tenant ------------------------------------
            codes = [call_json(f"{url}/analyze", method="POST",
                               payload={"kind": "mws", "kernel": "2point"},
                               tenant="greedy")[0] for _ in range(4)]
            check(codes[:3] == [200, 200, 200] and codes[3] == 429,
                  f"4th request of over-quota tenant rejected ({codes})")
            status, body = call_json(f"{url}/analyze", method="POST",
                                     payload={"kind": "mws",
                                              "kernel": "2point"},
                                     tenant="polite")
            check(status == 200, "other tenants unaffected by the greedy one")

            # -- 4. hanging request times out, slot survives -------------
            reclaimed_before = metric(
                url, "repro_batch_worker_reclaimed_total")
            status, body = call_json(
                f"{url}/analyze", method="POST",
                payload={"kind": "search", "kernel": "matmult",
                         "timeout": 0.01},
                tenant="hang")
            check(status == 504 and body["status"] == "timeout",
                  "undersized per-request timeout answers 504")
            check(metric(url, "repro_batch_worker_reclaimed_total")
                  > reclaimed_before,
                  "timed-out worker was reclaimed (counter bumped)")
            status, body = call_json(
                f"{url}/analyze", method="POST",
                payload={"kind": "mws", "kernel": "2point"},
                tenant="after-hang")
            check(status == 200 and body["status"] == "ok",
                  "request after the timeout succeeds on the same pool")

            # -- 5. clean shutdown seals the ledger ----------------------
            status, body = call_json(f"{url}/shutdown", method="POST",
                                     payload={})
            check(status == 202, "shutdown accepted")
            check(proc.wait(timeout=60) == 0, "server exited 0")
            records = sorted(Path(store_dir).glob("v1/ledger/*.json"))
            commands = [json.loads(p.read_text())["value"].get("command")
                        for p in records]
            check("serve" in commands,
                  f"run ledger sealed a 'serve' record ({commands})")
        finally:
            if proc.poll() is None:
                os.killpg(proc.pid, signal.SIGKILL)
                proc.wait()
                sys.stderr.write(proc.stderr.read())
                raise SystemExit("FAIL: server had to be killed")
    print("service smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
