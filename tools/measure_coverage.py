"""Approximate line coverage of the test suite without coverage.py.

CI enforces the coverage floor with pytest-cov; this harness exists so
the floor can be (re)measured in environments where coverage.py is not
installed.  It traces line events for files under ``src/repro`` while
running pytest, then compares against each module's compiled line table
— close to coverage.py's statement accounting, though not identical
(multi-line statements and subprocess workers differ slightly), which is
why the CI floor sits a few points below the number printed here.

Run from the repo root::

    PYTHONPATH=src python tools/measure_coverage.py [pytest args...]
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src" / "repro"
_PREFIX = str(SRC) + "/"

executed: dict[str, set[int]] = {}


def _local_tracer(frame, event, arg):
    if event == "line":
        executed.setdefault(frame.f_code.co_filename, set()).add(frame.f_lineno)
    return _local_tracer


def _global_tracer(frame, event, arg):
    if event == "call" and frame.f_code.co_filename.startswith(_PREFIX):
        return _local_tracer
    return None


def _code_lines(path: Path) -> set[int]:
    """All line numbers in the compiled line table of one module."""
    code = compile(path.read_text(), str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        lines.update(
            line for _, _, line in obj.co_lines() if line is not None
        )
        stack.extend(c for c in obj.co_consts if hasattr(c, "co_lines"))
    return lines


def main(argv: list[str]) -> int:
    import pytest

    sys.settrace(_global_tracer)
    threading.settrace(_global_tracer)
    rc = pytest.main(["-q", *argv])
    sys.settrace(None)
    threading.settrace(None)

    total_lines = 0
    total_hit = 0
    rows = []
    for path in sorted(SRC.rglob("*.py")):
        lines = _code_lines(path)
        hit = executed.get(str(path), set()) & lines
        total_lines += len(lines)
        total_hit += len(hit)
        pct = 100.0 * len(hit) / len(lines) if lines else 100.0
        rows.append((pct, len(hit), len(lines), path.relative_to(ROOT)))
    rows.sort()
    print()
    for pct, hit, n, rel in rows:
        print(f"{pct:6.1f}%  {hit:>5}/{n:<5}  {rel}")
    overall = 100.0 * total_hit / total_lines if total_lines else 100.0
    print(f"\nTOTAL {overall:.2f}% ({total_hit}/{total_lines} traced lines)")
    return rc


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
