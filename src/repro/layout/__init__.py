"""Array memory layouts — the paper's stated future work.

Section 7: "Work is in progress to extend our techniques to include the
effects of memory layouts of arrays."  This package supplies that
extension: layouts map array elements to linear addresses, windows can
then be measured in *cache lines* instead of elements (spatial locality),
and the same transformation machinery can be evaluated against a real
line-granular memory.
"""

from repro.layout.layouts import (
    BlockedLayout,
    ColumnMajorLayout,
    Layout,
    RowMajorLayout,
)
from repro.layout.line_window import (
    line_window_profile,
    max_line_window,
)

__all__ = [
    "Layout",
    "RowMajorLayout",
    "ColumnMajorLayout",
    "BlockedLayout",
    "max_line_window",
    "line_window_profile",
]
