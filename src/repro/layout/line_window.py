"""Line-granular reference windows: spatial locality meets the MWS.

The paper's window counts *elements*; real memories move *lines*.  With a
layout mapping elements to addresses, the same first/last-access sweep
over line ids gives the minimum number of cache lines that must stay
resident — the element window model composed with spatial locality.  A
good transformation with a bad layout (column traversal of a row-major
array) shows up immediately: every live element occupies its own line.
"""

from __future__ import annotations

from repro.ir.program import Program
from repro.layout.layouts import Layout, RowMajorLayout
from repro.linalg import IntMatrix
from repro.window.simulator import WindowProfile, _iteration_order


def _line_lifetimes(
    program: Program,
    array: str,
    layout: Layout,
    line_size: int,
    transformation: IntMatrix | None,
) -> dict[int, tuple[int, int]]:
    if line_size <= 0:
        raise ValueError("line size must be positive")
    refs = [ref for ref in program.references if ref.array == array]
    if not refs:
        raise KeyError(array)
    decl = program.decl(array)
    order = _iteration_order(program, transformation)
    iterator = order if order is not None else program.nest.iterate()
    lifetimes: dict[int, tuple[int, int]] = {}
    address_cache: dict[tuple[int, ...], int] = {}
    for time, point in enumerate(iterator):
        for ref in refs:
            element = ref.element(point)
            addr = address_cache.get(element)
            if addr is None:
                addr = layout.address(decl, element)
                address_cache[element] = addr
            line = addr // line_size
            if line in lifetimes:
                lifetimes[line] = (lifetimes[line][0], time)
            else:
                lifetimes[line] = (time, time)
    return lifetimes


def max_line_window(
    program: Program,
    array: str,
    layout: Layout | None = None,
    line_size: int = 8,
    transformation: IntMatrix | None = None,
) -> int:
    """Maximum number of simultaneously live lines for one array.

    Same half-open window convention as the element MWS; ``layout``
    defaults to row-major.  With ``line_size=1`` this reduces exactly to
    the element window (tested).
    """
    lifetimes = _line_lifetimes(
        program, array, layout or RowMajorLayout(), line_size, transformation
    )
    events: dict[int, int] = {}
    for first, last in lifetimes.values():
        if last > first:
            events[first] = events.get(first, 0) + 1
            events[last] = events.get(last, 0) - 1
    peak = current = 0
    for t in sorted(events):
        current += events[t]
        if current > peak:
            peak = current
    return peak


def line_window_profile(
    program: Program,
    array: str,
    layout: Layout | None = None,
    line_size: int = 8,
    transformation: IntMatrix | None = None,
) -> WindowProfile:
    """Live-line count over execution time."""
    lifetimes = _line_lifetimes(
        program, array, layout or RowMajorLayout(), line_size, transformation
    )
    total = program.nest.total_iterations
    deltas = [0] * (total + 1)
    for first, last in lifetimes.values():
        if last > first:
            deltas[first] += 1
            deltas[last] -= 1
    sizes = []
    current = 0
    for t in range(total):
        current += deltas[t]
        sizes.append(current)
    return WindowProfile(array, tuple(sizes))
