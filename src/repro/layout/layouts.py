"""Element-to-address mappings for array declarations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.ir.array import ArrayDecl


class Layout:
    """Maps an element index tuple of a declared array to a linear address.

    Addresses are 0-based words within the array's own allocation;
    callers add an allocation base when arrays share an address space.
    """

    def address(self, decl: ArrayDecl, element: Sequence[int]) -> int:
        raise NotImplementedError

    def _normalized(self, decl: ArrayDecl, element: Sequence[int]) -> tuple[int, ...]:
        if len(element) != decl.rank:
            raise ValueError(
                f"element rank {len(element)} != array rank {decl.rank}"
            )
        normalized = tuple(e - o for e, o in zip(element, decl.origins))
        if any(not (0 <= x < extent) for x, extent in zip(normalized, decl.extents)):
            raise IndexError(f"element {tuple(element)} outside {decl}")
        return normalized


@dataclass(frozen=True)
class RowMajorLayout(Layout):
    """C-style layout: the last dimension is contiguous.

    >>> RowMajorLayout().address(ArrayDecl.of("A", 4, 5), (2, 3))
    13
    """

    def address(self, decl: ArrayDecl, element: Sequence[int]) -> int:
        coords = self._normalized(decl, element)
        addr = 0
        for x, extent in zip(coords, decl.extents):
            addr = addr * extent + x
        return addr

    def strides(self, decl: ArrayDecl) -> tuple[int, ...]:
        """Per-dimension strides in words."""
        strides = [1] * decl.rank
        for k in range(decl.rank - 2, -1, -1):
            strides[k] = strides[k + 1] * decl.extents[k + 1]
        return tuple(strides)


@dataclass(frozen=True)
class ColumnMajorLayout(Layout):
    """Fortran-style layout: the first dimension is contiguous.

    >>> ColumnMajorLayout().address(ArrayDecl.of("A", 4, 5), (2, 3))
    14
    """

    def address(self, decl: ArrayDecl, element: Sequence[int]) -> int:
        coords = self._normalized(decl, element)
        addr = 0
        for x, extent in zip(reversed(coords), reversed(decl.extents)):
            addr = addr * extent + x
        return addr

    def strides(self, decl: ArrayDecl) -> tuple[int, ...]:
        strides = [1] * decl.rank
        for k in range(1, decl.rank):
            strides[k] = strides[k - 1] * decl.extents[k - 1]
        return tuple(strides)


@dataclass(frozen=True)
class BlockedLayout(Layout):
    """Tiled layout: the array is split into rectangular blocks stored
    contiguously (block-row-major), elements row-major within a block.

    Data-layout counterpart of loop tiling — it packs a 2-D window into
    few cache lines regardless of traversal direction.
    """

    block: tuple[int, ...]

    def __post_init__(self) -> None:
        if any(b <= 0 for b in self.block):
            raise ValueError("block extents must be positive")

    def address(self, decl: ArrayDecl, element: Sequence[int]) -> int:
        if len(self.block) != decl.rank:
            raise ValueError("block rank != array rank")
        coords = self._normalized(decl, element)
        block_counts = [
            (extent + b - 1) // b for extent, b in zip(decl.extents, self.block)
        ]
        block_index = 0
        inner_index = 0
        block_volume = 1
        for x, b, count in zip(coords, self.block, block_counts):
            block_index = block_index * count + x // b
            inner_index = inner_index * b + x % b
            block_volume *= b
        return block_index * block_volume + inner_index
