"""Metrics registry: gauges and fixed-bucket histograms.

The semantic layer on top of :mod:`repro.obs.core`'s spans/counters: a
*gauge* records the latest value of a quantity (peak window size, peak
location), a *histogram* records a distribution over fixed buckets
(per-iteration live-set occupancy, reuse distances).  Both follow the
``span()`` discipline exactly:

* **Near-zero overhead when disabled.**  This module keeps its own
  mirror of the active observer (``_observer``, synced by
  ``core.enable``/``core.disable``), so :func:`gauge` and
  :func:`observe` reduce to one module-global load and a ``None`` check
  on the disabled path — no allocation, no dict lookup.

* **Fixed buckets, bounded memory.**  A histogram's buckets are chosen
  at first observation and never grow; each observation is one bisect
  plus two integer adds, and the whole histogram is
  ``len(buckets) + 1`` counters regardless of how many values it sees.

Storage lives on the :class:`~repro.obs.core.Observer` (``.gauges``,
``.histograms``) and is folded into ``observer.summary()`` — which is
also what the Prometheus exporter in :mod:`repro.obs.export` consumes.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterable, Mapping, Sequence

#: Power-of-two bucket upper bounds 1, 2, 4, ..., 65536 — a good default
#: for iteration counts, window sizes, and reuse distances, which span
#: several orders of magnitude on the Figure-2 kernels.
DEFAULT_BUCKETS: tuple[int, ...] = tuple(2**k for k in range(17))


class Histogram:
    """Fixed-bucket histogram: counts per bucket plus count/sum.

    ``buckets`` are inclusive upper bounds in strictly increasing order;
    one implicit overflow bucket (``+Inf``) catches everything above the
    last bound — the Prometheus ``le`` convention.
    """

    __slots__ = ("buckets", "counts", "count", "sum")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(bounds[k] >= bounds[k + 1] for k in range(len(bounds) - 1)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = +Inf overflow
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float, n: int = 1) -> None:
        """Record ``value`` ``n`` times (bulk weight for pre-counted data)."""
        self.counts[bisect_left(self.buckets, value)] += n
        self.count += n
        self.sum += value * n

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative(self) -> list[int]:
        """Prometheus-style cumulative counts, ending with the total."""
        out = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out

    def as_dict(self) -> dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Histogram":
        hist = cls(data["buckets"])
        hist.counts = list(data["counts"])
        hist.count = int(data["count"])
        hist.sum = float(data["sum"])
        return hist


# ----------------------------------------------------------------------
# module-level switch — mirrors core._observer, synced on enable/disable
# so the disabled path here is also a single global load.
# ----------------------------------------------------------------------
_observer = None  # type: ignore[var-annotated]


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (no-op while disabled)."""
    obs = _observer
    if obs is not None:
        obs.set_gauge(name, value)


def observe(
    name: str,
    value: float,
    n: int = 1,
    buckets: Sequence[float] | None = None,
) -> None:
    """Record ``value`` into histogram ``name`` (no-op while disabled).

    ``buckets`` fixes the bounds when the histogram is first created and
    is ignored afterwards (fixed-bucket discipline).
    """
    obs = _observer
    if obs is not None:
        obs.observe_histogram(name, value, n, buckets)


def observe_many(
    name: str,
    values: Iterable[float],
    buckets: Sequence[float] | None = None,
) -> None:
    """Bulk-record ``values`` into histogram ``name`` (no-op while disabled)."""
    obs = _observer
    if obs is not None:
        hist = obs.get_histogram(name, buckets)
        hist.observe_many(values)
