"""Lightweight observability: spans, counters, metrics, JSONL traces.

See :mod:`repro.obs.core` for the span/counter model,
:mod:`repro.obs.metrics` for gauges and fixed-bucket histograms, and
:mod:`repro.obs.export` for the Prometheus / Chrome-tracing exporters
(docs/observability.md has a walkthrough).  Import as ``from repro
import obs`` and call ``obs.span``, ``obs.counter``, ``obs.gauge``,
``obs.observe``, ``obs.profiled`` — all no-ops until ``obs.enable()``.
"""

from repro.obs import flight, runctx
from repro.obs.core import (
    Observer,
    SpanStat,
    counter,
    disable,
    enable,
    enabled,
    get_observer,
    profiled,
    span,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    gauge,
    observe,
    observe_many,
)
from repro.obs.export import (
    chrome_trace,
    load_trace,
    prometheus_text,
    write_chrome_trace,
)

__all__ = [
    "flight",
    "runctx",
    "Observer",
    "SpanStat",
    "counter",
    "disable",
    "enable",
    "enabled",
    "get_observer",
    "profiled",
    "span",
    "DEFAULT_BUCKETS",
    "Histogram",
    "gauge",
    "observe",
    "observe_many",
    "chrome_trace",
    "load_trace",
    "prometheus_text",
    "write_chrome_trace",
]
