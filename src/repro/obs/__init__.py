"""Lightweight observability: spans, counters, JSONL traces.

See :mod:`repro.obs.core` for the model and docs/observability.md for a
walkthrough.  Import as ``from repro import obs`` and call ``obs.span``,
``obs.counter``, ``obs.profiled`` — all no-ops until ``obs.enable()``.
"""

from repro.obs.core import (
    Observer,
    SpanStat,
    counter,
    disable,
    enable,
    enabled,
    get_observer,
    profiled,
    span,
)

__all__ = [
    "Observer",
    "SpanStat",
    "counter",
    "disable",
    "enable",
    "enabled",
    "get_observer",
    "profiled",
    "span",
]
