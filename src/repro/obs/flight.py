"""Flight recorder: live heartbeat events from long-running runs.

The ledger (:mod:`repro.obs.ledger`) answers questions *after* a run;
the flight recorder answers "what is it doing *right now*".  Any process
holding a run context (:mod:`repro.obs.runctx`) — the CLI parent or a
pool worker restored via ``worker_state()`` — appends JSONL heartbeat
events to the run's live file::

    <live_dir>/<run_id>.jsonl
    {"ts": 1754500000.1, "pid": 4242, "run": "...", "ev": "item_start",
     "item": "#3 optimize sor", "sig": "..." }

Events are append-only with ``O_APPEND`` semantics, so concurrent
workers interleave whole lines; readers tolerate a torn final line.
``repro tail <run>`` follows the file and renders per-worker progress
(current item, counter rate, ETA); ``repro runs watch`` polls the live
directory across runs.

Inside pool workers, :class:`HeartbeatThread` snapshots the worker's
observer counters every ``REPRO_HEARTBEAT_S`` seconds (default 1.0)
while an item runs.  Those periodic ``progress`` events are also the
*partial-telemetry flush* the batch runner recovers when it times an
item out: the counters a killed-by-timeout worker accrued are merged
from its last heartbeat instead of being dropped silently.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.obs import runctx
from repro.obs.core import _json_default

#: Environment variable overriding the worker heartbeat period (seconds).
HEARTBEAT_ENV = "REPRO_HEARTBEAT_S"

DEFAULT_HEARTBEAT_S = 1.0


def heartbeat_interval() -> float:
    """Worker heartbeat period: ``$REPRO_HEARTBEAT_S`` or 1.0 seconds."""
    raw = os.environ.get(HEARTBEAT_ENV)
    if raw is None:
        return DEFAULT_HEARTBEAT_S
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"{HEARTBEAT_ENV} must be a number of seconds, got {raw!r}"
        ) from None
    if value <= 0:
        raise ValueError(f"{HEARTBEAT_ENV} must be > 0, got {value}")
    return value


def live_path() -> Path | None:
    """The active run's heartbeat file, or ``None`` when not recording."""
    ctx = runctx.current()
    return None if ctx is None else ctx.live_path


def heartbeat(event: str, **fields: Any) -> None:
    """Append one heartbeat event to the active run's live file.

    A no-op without a run context or live directory; never raises on a
    write failure (a dead disk must not kill the analysis).
    """
    path = live_path()
    if path is None:
        return
    record = {
        "ts": round(time.time(), 3),
        "pid": os.getpid(),
        "run": runctx.current_run_id(),
        "ev": event,
        **fields,
    }
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, default=_json_default) + "\n")
    except OSError:
        pass


def read_heartbeats(path: str | Path) -> list[dict[str, Any]]:
    """Parse a live file's events, tolerating a torn final line."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError:
        return []
    events = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except ValueError:
            continue  # torn tail of an in-flight append
        if isinstance(event, dict):
            events.append(event)
    return events


class HeartbeatThread:
    """Daemon thread emitting periodic ``progress`` heartbeats.

    Used by pool workers around one work item: each tick snapshots the
    worker observer's counters (the partial delta of the running item,
    since counters are drained per task) so the parent can recover them
    if it abandons the item on timeout.
    """

    def __init__(
        self,
        item: str,
        sig: str | None = None,
        interval: float | None = None,
    ) -> None:
        self.item = item
        self.sig = sig
        self.interval = heartbeat_interval() if interval is None else interval
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started = time.perf_counter()

    def _snapshot(self) -> dict[str, int]:
        from repro import obs

        observer = obs.get_observer()
        return dict(observer.counters) if observer is not None else {}

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            if live_path() is None:
                # The run context is gone (run sealed / ended): stop
                # rather than beat on for a dead run.  A restarted run
                # gets its own HeartbeatThread.
                return
            counters = self._snapshot()
            elapsed = time.perf_counter() - self._started
            heartbeat(
                "progress",
                item=self.item,
                sig=self.sig,
                elapsed_s=round(elapsed, 3),
                counters=counters,
                rate=_rate(counters, elapsed),
            )

    def start(self) -> "HeartbeatThread":
        """Begin beating (no-op outside a recording run context)."""
        if self._thread is None and live_path() is not None:
            self._thread = threading.Thread(target=self._run, daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop beating; idempotent, safe after exceptions."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=self.interval + 1.0)

    def __enter__(self) -> "HeartbeatThread":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


#: Counters whose per-second rate is the most useful liveness signal.
RATE_COUNTERS = (
    "search.cache.misses",
    "search.candidates.examined",
    "streaming.chunks",
)


def _rate(counters: Mapping[str, int], elapsed: float) -> float | None:
    """Candidates/sec estimate from the busiest known work counter."""
    if elapsed <= 0:
        return None
    work = max((counters.get(name, 0) for name in RATE_COUNTERS), default=0)
    if work <= 0:
        return None
    return round(work / elapsed, 2)


# ----------------------------------------------------------------------
# read side: progress summaries for `repro tail` / `repro runs watch`
# ----------------------------------------------------------------------

def progress_summary(events: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Fold a live stream into per-pid current state plus batch totals.

    Returns ``{"pids": {pid: {...latest event facts...}}, "batch":
    {...latest batch_progress...}, "ended": bool}``.
    """
    pids: dict[int, dict[str, Any]] = {}
    batch: dict[str, Any] = {}
    ended = False
    for event in events:
        kind = event.get("ev")
        pid = int(event.get("pid", 0))
        if kind in ("item_start", "progress"):
            pids[pid] = {
                "item": event.get("item"),
                "sig": event.get("sig"),
                "elapsed_s": event.get("elapsed_s", 0.0),
                "rate": event.get("rate"),
                "ts": event.get("ts"),
            }
        elif kind in ("item_done", "item_timeout", "item_error"):
            state = pids.setdefault(pid, {})
            state["item"] = None
            state["last"] = f"{kind}: {event.get('item')}"
            state["ts"] = event.get("ts")
        elif kind == "batch_progress":
            batch = {
                "done": event.get("done"),
                "total": event.get("total"),
                "eta_s": event.get("eta_s"),
                "ts": event.get("ts"),
            }
        elif kind == "run_end":
            ended = True
    return {"pids": pids, "batch": batch, "ended": ended}


def render_progress(run_id: str, summary: Mapping[str, Any]) -> str:
    """One-screen live view of a run's heartbeat state."""
    lines = [f"run {run_id}"]
    batch = summary.get("batch") or {}
    if batch.get("total") is not None:
        done, total = batch.get("done", 0), batch["total"]
        eta = batch.get("eta_s")
        eta_txt = "?" if eta is None else f"{eta:.0f}s"
        lines.append(f"  batch: {done}/{total} items done, ETA {eta_txt}")
    pids = summary.get("pids") or {}
    for pid in sorted(pids):
        state = pids[pid]
        if state.get("item"):
            rate = state.get("rate")
            rate_txt = "" if rate is None else f"  {rate:g}/s"
            lines.append(
                f"  pid {pid}: {state['item']}  "
                f"({state.get('elapsed_s', 0):.1f}s elapsed{rate_txt})"
            )
        elif state.get("last"):
            lines.append(f"  pid {pid}: idle ({state['last']})")
    if len(lines) == 1:
        lines.append("  (no heartbeats yet)")
    if summary.get("ended"):
        lines.append("  run ended")
    return "\n".join(lines)
