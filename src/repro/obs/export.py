"""Exporters: Prometheus text exposition and Chrome tracing JSON.

Two read-side bridges out of the observability layer:

* :func:`prometheus_text` turns an observer summary (live, or the
  ``summary`` event parsed back out of a JSONL trace) into the
  Prometheus text exposition format — counters as ``_total`` counters,
  gauges as gauges, histograms as cumulative ``_bucket{le=...}`` series,
  span aggregates as ``summary``-style ``_count``/``_sum`` pairs keyed
  by span path.

* :func:`chrome_trace` converts the JSONL span log into the Chrome
  ``chrome://tracing`` / Perfetto JSON format (phase-``X`` complete
  events with microsecond ``ts``/``dur``), so a ``--trace`` run can be
  inspected as a flame graph.  Span events are emitted at span *end*;
  the ``ts_us`` field they carry is the span's start offset from
  observer creation, which is exactly the Chrome ``ts``.

Both are pure functions over plain dicts — no I/O unless you call the
``write_*`` helpers — so they work on live observers and on archived
traces alike.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.obs.core import Observer, _json_default

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize(name: str) -> str:
    """Metric-name charset per the Prometheus data model."""
    return _NAME_RE.sub("_", name)


def _format_value(value: float) -> str:
    # Numpy scalars (np.int64 counter values, np.float64 gauge readings)
    # sneak into summaries via metric labels; unwrap before formatting so
    # the exposition shows "3", not "np.int64(3)".  Exact type check:
    # np.float64 *subclasses* float, and its repr is "np.float64(2.5)".
    item = getattr(value, "item", None)
    if callable(item) and type(value) not in (int, float, str):
        try:
            value = item()
        except (TypeError, ValueError):
            pass
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _as_summary(source: Observer | Mapping[str, Any]) -> Mapping[str, Any]:
    if isinstance(source, Observer):
        return source.summary()
    return source


def prometheus_text(
    source: Observer | Mapping[str, Any], prefix: str = "repro"
) -> str:
    """Render a summary in the Prometheus text exposition format.

    >>> print(prometheus_text({"spans": {}, "counters": {"cache.hits": 3}}))
    # TYPE repro_cache_hits_total counter
    repro_cache_hits_total 3
    <BLANKLINE>
    """
    summary = _as_summary(source)
    lines: list[str] = []
    for name, value in sorted(summary.get("counters", {}).items()):
        metric = f"{prefix}_{_sanitize(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")
    for name, value in sorted(summary.get("gauges", {}).items()):
        metric = f"{prefix}_{_sanitize(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, hist in sorted(summary.get("histograms", {}).items()):
        metric = f"{prefix}_{_sanitize(name)}"
        lines.append(f"# TYPE {metric} histogram")
        running = 0
        for bound, count in zip(hist["buckets"], hist["counts"]):
            running += count
            lines.append(
                f'{metric}_bucket{{le="{_format_value(float(bound))}"}} {running}'
            )
        running += hist["counts"][len(hist["buckets"])]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {running}')
        lines.append(f"{metric}_sum {_format_value(float(hist['sum']))}")
        lines.append(f"{metric}_count {hist['count']}")
    spans = summary.get("spans", {})
    if spans:
        metric = f"{prefix}_span_seconds"
        lines.append(f"# TYPE {metric} summary")
        for path, stat in sorted(spans.items()):
            label = f'{{path="{path}"}}'
            lines.append(f"{metric}_count{label} {int(stat['count'])}")
            lines.append(f"{metric}_sum{label} {_format_value(float(stat['total_s']))}")
    return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# Chrome tracing
# ----------------------------------------------------------------------


def load_trace(path: str | Path) -> list[dict[str, Any]]:
    """Parse a JSONL trace file back into its event dicts."""
    return [
        json.loads(line)
        for line in Path(path).read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]


def chrome_trace(
    events: Iterable[Mapping[str, Any]] | str | Path,
) -> dict[str, Any]:
    """Convert JSONL trace events into Chrome tracing JSON.

    Accepts parsed event dicts or a path to a ``.jsonl`` trace.  Span
    events become phase-``X`` (complete) events; counter totals become a
    single phase-``C`` sample at the end of the timeline, so the counter
    track shows the run's final values.

    Tolerant of hostile timing data: a negative span duration (a clock
    that stepped backwards mid-span) is clamped to 0, and when events
    from several processes share one file (pool workers each measure
    from their own observer epoch) the whole timeline is shifted so the
    earliest ``ts`` is 0 — Chrome renders negative timestamps as an
    empty flame graph.
    """
    if isinstance(events, (str, Path)):
        events = load_trace(events)
    events = list(events)
    trace_events: list[dict[str, Any]] = []
    end_ts = 0
    min_ts = 0
    for event in events:
        if event.get("ev") != "span":
            continue
        # Traces from before ts_us existed fall back to the sequence
        # number, preserving event order if not true timing.
        ts = event.get("ts_us", event.get("seq", 0))
        dur = max(0, event.get("dur_us", 0))
        end_ts = max(end_ts, ts + dur)
        min_ts = min(min_ts, ts)
        entry: dict[str, Any] = {
            "name": event.get("name", "?"),
            "cat": "span",
            "ph": "X",
            "ts": ts,
            "dur": dur,
            "pid": 0,
            "tid": 0,
            "args": {"path": event.get("path", "")},
        }
        attrs = event.get("attrs")
        if attrs:
            entry["args"].update(attrs)
        trace_events.append(entry)
    if min_ts < 0:
        for entry in trace_events:
            entry["ts"] -= min_ts
        end_ts -= min_ts
    for event in events:
        if event.get("ev") == "counter":
            trace_events.append(
                {
                    "name": event["name"],
                    "cat": "counter",
                    "ph": "C",
                    "ts": end_ts,
                    "pid": 0,
                    "tid": 0,
                    "args": {"value": event["value"]},
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(jsonl_path: str | Path, out_path: str | Path) -> Path:
    """Convert a JSONL trace file into a ``chrome://tracing`` JSON file."""
    out = Path(out_path)
    out.write_text(
        json.dumps(chrome_trace(jsonl_path), default=_json_default),
        encoding="utf-8",
    )
    return out
