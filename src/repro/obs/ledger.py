"""Run ledger: one sealed, content-addressed record per analysis run.

Every CLI run that has a persistence target (the ``--store`` directory,
or ``$REPRO_LEDGER_DIR`` when running storeless) seals exactly one
ledger record at exit — the correlated summary the per-process telemetry
never gave us:

* **identity** — run ID, subcommand + argv, git SHA, every ``REPRO_*``
  env knob, the effective config (workers/engine/store/trace);
* **inputs** — content signatures of every program the run touched;
* **work** — engines used, cascade tier counts, parametric
  derive/fallback counts, batch item outcomes (with timeout
  attributions), full counter and span totals;
* **efficiency** — cache/store hit rates
  (:func:`repro.reporting.metrics.cache_stats`), recorded
  *unconditionally* — the stderr rendering stays behind ``--trace`` /
  ``batch``, but the ledger always carries the numbers;
* **outcome** — exit status, wall/CPU seconds, and a SHA-256 digest of
  everything the run printed to stdout, so two runs can be proven to
  have produced the same answer without keeping their output.

Records reuse the content-addressed result store (kind ``"ledger"``,
keyed by run ID), so `repro runs list/show/diff` reads them through the
same atomic, corruption-tolerant layer as every other artifact.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Any, Mapping

from repro.obs.runctx import RunContext

#: Ledger record schema; bump on any incompatible change.
LEDGER_SCHEMA = 1

#: Store kind under which run records live.
LEDGER_KIND = "ledger"

#: Fallback sink for storeless runs: a result store rooted here.
LEDGER_DIR_ENV = "REPRO_LEDGER_DIR"


def resolve_sink(store=None):
    """The store ledger records go to: ``store``, else ``$REPRO_LEDGER_DIR``.

    Returns ``None`` when the run has nowhere durable to write — the
    run then simply produces no ledger record (and no heartbeats).
    """
    if store is not None:
        return store
    root = os.environ.get(LEDGER_DIR_ENV)
    if not root:
        return None
    from repro.store import ResultStore

    return ResultStore(root)


def live_dir_for(sink) -> Path | None:
    """Heartbeat directory colocated with the sink's store root."""
    if sink is None:
        return None
    return Path(sink.root) / "live"


# ----------------------------------------------------------------------
# record assembly
# ----------------------------------------------------------------------

#: Counter prefixes folded into named record sections (the rest stay in
#: the full ``counters`` map, which is always recorded verbatim).
_SECTION_PREFIXES = {
    "cascade": "search.cascade.",
    "parametric": "param.",
    "store_io": "store.",
    "batch": "batch.",
}

#: Retired counter spellings -> their canonical names.  PR 7 briefly
#: double-emitted ``batch.items.timeout`` alongside the canonical
#: ``batch.item.timeout``; only the canonical name is emitted now, and
#: old ledger records are normalized on read (and rewritten on disk by
#: ``repro store-compact``) so cross-boundary ``runs diff`` never
#: reports a phantom delta on the dead spelling.
LEGACY_COUNTERS = {
    "batch.items.timeout": "batch.item.timeout",
}


def canonical_counters(counters: Mapping[str, Any]) -> dict[str, int]:
    """Counters with retired spellings folded into canonical names.

    Legacy records bumped *both* spellings for the same event, so a
    collision collapses with ``max`` — summing would double-count every
    timeout recorded across the rename boundary.
    """
    out: dict[str, int] = {}
    for name, value in counters.items():
        name = LEGACY_COUNTERS.get(name, name)
        value = int(value)
        out[name] = max(out[name], value) if name in out else value
    return dict(sorted(out.items()))


def rewrite_legacy_record(record: Mapping[str, Any]) -> dict[str, Any] | None:
    """Canonicalized copy of a ledger record, or ``None`` if already clean.

    Used by the store compaction job to rewrite pre-rename records in
    place: the counter map is canonicalized and every derived counter
    section is rebuilt from it.  Identity fields (run ID, digest,
    timings) are untouched, so the record's store key is unchanged.
    """
    counters = record.get("counters")
    if not isinstance(counters, Mapping) or not any(
        name in LEGACY_COUNTERS for name in counters
    ):
        return None
    out = dict(record)
    out["counters"] = canonical_counters(counters)
    for section, prefix in _SECTION_PREFIXES.items():
        values = _prefixed(out["counters"], prefix)
        if values:
            out[section] = values
        else:
            out.pop(section, None)
    return out


def _prefixed(counters: Mapping[str, int], prefix: str) -> dict[str, int]:
    return {
        name[len(prefix):]: int(value)
        for name, value in counters.items()
        if name.startswith(prefix)
    }


def _engines_used(counters: Mapping[str, int]) -> dict[str, int]:
    """``engine.<name>.calls`` counters -> {engine: calls}."""
    out = {}
    for name, value in counters.items():
        if name.startswith("engine.") and name.endswith(".calls"):
            out[name[len("engine."):-len(".calls")]] = int(value)
    return out


def build_record(
    ctx: RunContext,
    summary: Mapping[str, Any] | None,
    status: int = 0,
    result_digest: str | None = None,
) -> dict[str, Any]:
    """Assemble one run's ledger record (JSON-ready, no I/O)."""
    # Lazy: repro.reporting's package init imports the ledger renderer,
    # which imports this module — a module-level import here would close
    # the cycle.
    from repro.reporting.metrics import cache_stats

    summary = summary or {}
    # Normalize at the source: a new record never carries a retired
    # counter spelling, even if stale code still emits one.
    counters = canonical_counters(summary.get("counters", {}))
    record: dict[str, Any] = {
        "schema": LEDGER_SCHEMA,
        "run": ctx.run_id,
        "command": ctx.command,
        "argv": list(ctx.argv),
        "started_unix": ctx.started_unix,
        "wall_s": round(ctx.wall_s(), 6),
        "cpu_s": round(ctx.cpu_s(), 6),
        "git": ctx.git,
        "env": dict(ctx.env),
        "config": dict(ctx.config),
        "inputs": dict(ctx.inputs),
        "status": int(status),
        "engines": _engines_used(counters),
        "caches": cache_stats(counters),
        "counters": dict(sorted(counters.items())),
        "spans": summary.get("spans", {}),
    }
    for section, prefix in _SECTION_PREFIXES.items():
        values = _prefixed(counters, prefix)
        if values:
            record[section] = values
    if ctx.extras:
        record["extras"] = dict(ctx.extras)
    if result_digest is not None:
        record["result_digest"] = result_digest
    return record


def overall_hit_rate(record: Mapping[str, Any]) -> float:
    """Store + memo hit fraction of all cached-value lookups in a run."""
    counters = record.get("counters", {})
    hits = sum(
        int(counters.get(name, 0))
        for name in (
            "store.mem.hits", "store.disk.hits",
            "search.cache.hits", "search.memo.hits",
        )
    )
    misses = sum(
        int(counters.get(name, 0))
        for name in ("store.misses", "search.cache.misses",
                     "search.memo.misses")
    )
    lookups = hits + misses
    return hits / lookups if lookups else 0.0


def seal_run(
    ctx: RunContext,
    summary: Mapping[str, Any] | None,
    sink,
    status: int = 0,
    result_digest: str | None = None,
) -> dict[str, Any] | None:
    """Build the record and persist it under ``(ledger, run_id)``.

    One run seals exactly one record: the key is the run ID, so a
    re-seal (never expected) overwrites rather than duplicates.
    Returns the record, or ``None`` when there is no sink.
    """
    record = build_record(ctx, summary, status=status,
                          result_digest=result_digest)
    if sink is None:
        return None
    sink.put(LEDGER_KIND, {"run": ctx.run_id}, record)
    return record


# ----------------------------------------------------------------------
# read side
# ----------------------------------------------------------------------

def list_runs(sink) -> list[dict[str, Any]]:
    """All ledger records in the sink, oldest first."""
    if sink is None:
        return []
    records = [
        value
        for value in sink.iter_records(LEDGER_KIND)
        if isinstance(value, dict) and "run" in value
    ]
    records.sort(key=lambda r: (r.get("started_unix", 0.0), r.get("run", "")))
    return records


def load_run(sink, run: str) -> dict[str, Any] | None:
    """One record by run ID or unique prefix; ``None`` when absent.

    ``run`` may also be ``"last"`` (most recent run) or ``"last~1"``
    (the one before it) — the ``repro runs diff --last`` shorthand.
    """
    records = list_runs(sink)
    if run == "last" or run.startswith("last~"):
        back = 0
        if run.startswith("last~"):
            try:
                back = int(run.split("~", 1)[1])
            except ValueError:
                return None
        return records[-1 - back] if len(records) > back else None
    exact = [r for r in records if r.get("run") == run]
    if exact:
        return exact[-1]
    prefixed = [r for r in records if str(r.get("run", "")).startswith(run)]
    if len(prefixed) == 1:
        return prefixed[0]
    if len(prefixed) > 1:
        raise ValueError(
            f"run prefix {run!r} is ambiguous: "
            + ", ".join(str(r["run"]) for r in prefixed)
        )
    return None


# ----------------------------------------------------------------------
# stdout digest tee
# ----------------------------------------------------------------------

class DigestTee:
    """File-like wrapper hashing everything written through it.

    Wraps ``sys.stdout`` for the duration of a run so the ledger can
    record a SHA-256 of the run's visible output without buffering it.
    """

    def __init__(self, stream) -> None:
        self._stream = stream
        self._hash = hashlib.sha256()

    def write(self, text: str) -> int:
        self._hash.update(text.encode("utf-8", errors="replace"))
        return self._stream.write(text)

    def flush(self) -> None:
        self._stream.flush()

    def hexdigest(self) -> str:
        return self._hash.hexdigest()

    @property
    def wrapped(self):
        return self._stream

    def __getattr__(self, name: str):
        return getattr(self._stream, name)


def heartbeat_run_end(status: int) -> None:
    """Terminal heartbeat so live viewers know the run is over."""
    from repro.obs import flight

    flight.heartbeat("run_end", status=int(status))
