"""Hierarchical timing spans, monotonic counters, and a JSONL event log.

The observability substrate for the search/simulation pipeline.  Design
constraints (ISSUE 1):

* **Near-zero overhead when disabled.**  The module-level observer is
  ``None`` until :func:`enable` is called; every instrumentation entry
  point (:func:`span`, :func:`counter`, the :func:`profiled` wrapper)
  reduces to one global load and a ``None`` check on the disabled path.
  No objects are allocated, no clocks are read.

* **Deterministic event log.**  Events carry a process-local sequence
  number and are emitted in execution order with a fixed key order, so
  two runs of the same workload produce JSONL logs that differ only in
  the measured durations (and not at all when a fake clock is injected,
  which is how the tests pin the format).

* **Hierarchy without globals in the hot path.**  The active span stack
  lives on the observer; a span's ``path`` is the ``/``-joined names of
  its ancestors, which is also the aggregation key for the summary.

Typical use::

    from repro import obs

    obs.enable(trace="search.jsonl")
    with obs.span("figure2", kernels=7):
        ...
        obs.counter("search.cache.hits")
    report = obs.disable()          # flushes the JSONL log
    print(report.summary())
"""

from __future__ import annotations

import atexit
import functools
import json
import time
from typing import Any, Callable, Sequence, TextIO

from repro.obs import metrics as _metrics
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram


def _json_default(value: Any) -> Any:
    """Fallback serializer for span attrs: numpy scalars (``np.int64``
    kernel sizes and friends) expose ``.item()``; anything else degrades
    to ``str`` rather than crashing the trace."""
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return str(value)


class SpanStat:
    """Aggregate of every completed span sharing one path."""

    __slots__ = ("count", "total_s", "min_s", "max_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0

    def add(self, duration_s: float) -> None:
        self.count += 1
        self.total_s += duration_s
        if duration_s < self.min_s:
            self.min_s = duration_s
        if duration_s > self.max_s:
            self.max_s = duration_s

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }


class Observer:
    """Collects spans, counters and (optionally) a JSONL trace."""

    def __init__(
        self,
        trace: str | TextIO | None = None,
        clock: Callable[[], float] = time.perf_counter,
        run_id: str | None = None,
    ) -> None:
        self._clock = clock
        self._t0 = clock()
        self._seq = 0
        self._stack: list[tuple[str, float, dict[str, Any]]] = []
        self.span_stats: dict[str, SpanStat] = {}
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.run_id = run_id
        self._trace_path: str | None = None
        self._trace_file: TextIO | None = None
        self._owns_file = False
        if isinstance(trace, str):
            self._trace_path = trace
            self._trace_file = open(trace, "w", encoding="utf-8")
            self._owns_file = True
        elif trace is not None:
            self._trace_file = trace
        if self._trace_file is not None:
            meta: dict[str, Any] = {"ev": "meta", "version": 1}
            if run_id is not None:
                meta["run"] = run_id
            self._emit(meta)

    # ------------------------------------------------------------------
    # span lifecycle (called by the module-level helpers)
    # ------------------------------------------------------------------
    def start_span(self, name: str, attrs: dict[str, Any]) -> None:
        self._stack.append((name, self._clock(), attrs))

    def end_span(self) -> None:
        name, started, attrs = self._stack.pop()
        duration = self._clock() - started
        path = "/".join(frame[0] for frame in self._stack)
        path = f"{path}/{name}" if path else name
        stat = self.span_stats.get(path)
        if stat is None:
            stat = self.span_stats[path] = SpanStat()
        stat.add(duration)
        if self._trace_file is not None:
            event: dict[str, Any] = {
                "ev": "span",
                "name": name,
                "path": path,
                "depth": len(self._stack),
                "ts_us": round((started - self._t0) * 1e6),
                "dur_us": round(duration * 1e6),
            }
            if attrs:
                event["attrs"] = attrs
            self._emit(event)

    def add_counter(self, name: str, amount: int) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    # ------------------------------------------------------------------
    # metrics (called by the repro.obs.metrics module-level helpers)
    # ------------------------------------------------------------------
    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def get_histogram(
        self, name: str, buckets: Sequence[float] | None = None
    ) -> Histogram:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(buckets or DEFAULT_BUCKETS)
        return hist

    def observe_histogram(
        self,
        name: str,
        value: float,
        n: int = 1,
        buckets: Sequence[float] | None = None,
    ) -> None:
        self.get_histogram(name, buckets).observe(value, n)

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def _emit(self, event: dict[str, Any]) -> None:
        event = {"seq": self._seq, **event}
        self._seq += 1
        self._trace_file.write(json.dumps(event, default=_json_default) + "\n")

    def summary(self) -> dict[str, Any]:
        """Aggregated spans (by path), counters and metrics, JSON-ready.

        The ``gauges``/``histograms`` sections appear only when something
        was recorded, so pre-metrics traces and summaries keep their
        shape.
        """
        out: dict[str, Any] = {
            "spans": {
                path: stat.as_dict()
                for path, stat in sorted(self.span_stats.items())
            },
            "counters": dict(sorted(self.counters.items())),
        }
        if self.run_id is not None:
            out["run"] = self.run_id
        if self.gauges:
            out["gauges"] = dict(sorted(self.gauges.items()))
        if self.histograms:
            out["histograms"] = {
                name: hist.as_dict()
                for name, hist in sorted(self.histograms.items())
            }
        return out

    def flush(self) -> None:
        """Write counter/gauge totals + summary to the trace and close it.

        Idempotent: the first call drains and closes the trace, any later
        call (a second explicit ``flush()``, the ``atexit`` safety net
        after a clean ``disable()``) is a no-op.
        """
        if self._trace_file is None:
            return
        for name, value in sorted(self.counters.items()):
            self._emit({"ev": "counter", "name": name, "value": value})
        for name, value in sorted(self.gauges.items()):
            self._emit({"ev": "gauge", "name": name, "value": value})
        self._emit({"ev": "summary", "data": self.summary()})
        self._trace_file.flush()
        if self._owns_file:
            self._trace_file.close()
        self._trace_file = None


# ----------------------------------------------------------------------
# module-level switch — the only state the hot path touches
# ----------------------------------------------------------------------
_observer: Observer | None = None

_atexit_registered = False


def _set_observer(observer: Observer | None) -> None:
    """Swap the active observer, keeping the metrics-module mirror in
    sync so its entry points stay single-global-load no-ops too."""
    global _observer
    _observer = observer
    _metrics._observer = observer


def _flush_at_exit() -> None:
    """``atexit`` safety net: a trace must not be left truncated because
    the user forgot ``obs.disable()``.  Flushing an already-flushed
    observer is a no-op, so a clean shutdown pays nothing."""
    observer = _observer
    if observer is not None:
        observer.flush()


def enable(
    trace: str | TextIO | None = None,
    clock: Callable[[], float] = time.perf_counter,
    run_id: str | None = None,
) -> Observer:
    """Turn instrumentation on (replacing any active observer).

    ``run_id`` stamps the trace meta event and the summary with the run
    identity (see :mod:`repro.obs.runctx`); when omitted, the active
    run context's ID is used if one exists.
    """
    global _atexit_registered
    if _observer is not None:
        _observer.flush()
    if run_id is None:
        from repro.obs import runctx

        run_id = runctx.current_run_id()
    _set_observer(Observer(trace, clock, run_id=run_id))
    if not _atexit_registered:
        atexit.register(_flush_at_exit)
        _atexit_registered = True
    return _observer


def disable() -> Observer | None:
    """Turn instrumentation off; flush + return the finished observer."""
    finished = _observer
    _set_observer(None)
    if finished is not None:
        finished.flush()
    return finished


def enabled() -> bool:
    return _observer is not None


def get_observer() -> Observer | None:
    return _observer


def _reset_in_child() -> None:
    """Drop inherited observer state after ``fork`` (worker processes must
    not write to the parent's trace file)."""
    _set_observer(None)


def _init_worker(collect: bool, run_state: dict | None = None) -> None:
    """``ProcessPoolExecutor`` initializer: never inherit the parent's
    observer (and its open trace file), but when the parent is observing
    start a fresh in-memory observer so worker-side counters can be
    shipped back and merged (see ``transform.search._eval_task``).

    ``run_state`` (from :func:`repro.obs.runctx.worker_state`) restores
    the parent's run identity in the child, so worker observers and
    flight-recorder heartbeats are stamped with the same run ID.
    """
    from repro.obs import runctx

    _reset_in_child()
    runctx.restore_worker(run_state)
    if collect:
        _set_observer(Observer(run_id=runctx.current_run_id()))


class _NullSpan:
    """Shared no-op context manager returned while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("_obs",)

    def __init__(self, obs: Observer, name: str, attrs: dict[str, Any]):
        self._obs = obs
        obs.start_span(name, attrs)

    def __enter__(self) -> "_Span":
        return self

    def __exit__(self, *exc: object) -> None:
        self._obs.end_span()


def span(name: str, **attrs: Any):
    """Context manager timing one stage; nests to form the span tree."""
    obs = _observer
    if obs is None:
        return _NULL_SPAN
    return _Span(obs, name, attrs)


def counter(name: str, amount: int = 1) -> None:
    """Bump a monotonic counter (no-op while disabled)."""
    obs = _observer
    if obs is not None:
        obs.add_counter(name, amount)


def profiled(name: str | Callable | None = None):
    """Decorator wrapping a function in a span named after it.

    Usable bare (``@profiled``) or with an explicit label
    (``@profiled("search.estimate")``).  The disabled path is a single
    global load + ``None`` check before delegating.
    """
    if callable(name):
        return profiled(None)(name)

    def decorate(fn: Callable) -> Callable:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            obs = _observer
            if obs is None:
                return fn(*args, **kwargs)
            obs.start_span(label, {})
            try:
                return fn(*args, **kwargs)
            finally:
                obs.end_span()

        wrapper.__wrapped__ = fn
        return wrapper

    return decorate
