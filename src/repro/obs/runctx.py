"""Run-scoped identity: one context per analysis run, everywhere.

Telemetry used to be per-process confetti — spans, counters, the search
journal, store records and ``BENCH_*.json`` artifacts each landed in
their own file with no shared identity, so a slow or wrong answer could
not be reconstructed after the fact.  A :class:`RunContext` gives every
analysis run one correlated identity:

* a **run ID** (sortable timestamp + random suffix),
* the **code version** (git SHA) and the **environment knobs**
  (every ``REPRO_*`` variable) in effect,
* the **effective config** (subcommand, argv, workers, engine, store
  root, trace path),
* the **input signatures** of every program the run touched
  (:meth:`note_input` — content hashes, so two runs over the same
  kernels are comparable even across rebuilds), and
* free-form **extras** (:meth:`annotate` — e.g. the batch runner's
  timeout attributions).

The context is module-global (same single-load discipline as
:mod:`repro.obs.core`) and is *propagated into every pool worker*:
:func:`worker_state` produces a small picklable dict that
``obs.core._init_worker`` restores on the other side, so heartbeats and
counters emitted by workers carry the parent's run ID.  At the end of
the run :mod:`repro.obs.ledger` seals the context plus the observer's
totals into one content-addressed ledger record.
"""

from __future__ import annotations

import os
import secrets
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

#: Environment-variable prefixes snapshotted into every run record.
ENV_PREFIXES = ("REPRO_", "BENCH_")


def new_run_id(now: float | None = None) -> str:
    """Sortable run identifier: UTC timestamp plus a random suffix."""
    stamp = time.strftime(
        "%Y%m%d-%H%M%S", time.gmtime(time.time() if now is None else now)
    )
    return f"{stamp}-{secrets.token_hex(3)}"


def git_commit() -> str | None:
    """Short git SHA of the working tree, or ``None`` outside a repo."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=Path(__file__).resolve().parent,
            timeout=5,
        )
    except OSError:
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def env_knobs() -> dict[str, str]:
    """Every ``REPRO_*``/``BENCH_*`` variable currently set."""
    return {
        name: value
        for name, value in sorted(os.environ.items())
        if name.startswith(ENV_PREFIXES)
    }


@dataclass
class RunContext:
    """Identity and accumulated facts of one analysis run."""

    run_id: str
    command: str
    argv: tuple[str, ...] = ()
    config: dict[str, Any] = field(default_factory=dict)
    env: dict[str, str] = field(default_factory=env_knobs)
    git: str | None = field(default_factory=git_commit)
    live_dir: str | None = None
    started_unix: float = field(default_factory=lambda: round(time.time(), 3))
    inputs: dict[str, str] = field(default_factory=dict)
    extras: dict[str, Any] = field(default_factory=dict)
    _t0: float = field(default_factory=time.perf_counter, repr=False)
    _cpu0: float = field(default_factory=time.process_time, repr=False)

    def note_input(self, name: str, signature: str) -> None:
        """Record one analyzed program's content signature."""
        self.inputs.setdefault(str(name), str(signature))

    def annotate(self, key: str, value: Any) -> None:
        """Append ``value`` under ``extras[key]`` (a list per key)."""
        self.extras.setdefault(key, []).append(value)

    def wall_s(self) -> float:
        return time.perf_counter() - self._t0

    def cpu_s(self) -> float:
        return time.process_time() - self._cpu0

    @property
    def live_path(self) -> Path | None:
        """Heartbeat file of this run (see :mod:`repro.obs.flight`)."""
        if self.live_dir is None:
            return None
        return Path(self.live_dir) / f"{self.run_id}.jsonl"


# ----------------------------------------------------------------------
# module-level switch — same discipline as obs.core._observer
# ----------------------------------------------------------------------
_current: RunContext | None = None


def begin_run(
    command: str,
    argv: tuple[str, ...] | list[str] = (),
    config: dict[str, Any] | None = None,
    live_dir: str | Path | None = None,
    run_id: str | None = None,
) -> RunContext:
    """Open a run context (replacing any active one)."""
    global _current
    _current = RunContext(
        run_id=run_id or new_run_id(),
        command=command,
        argv=tuple(argv),
        config=dict(config or {}),
        live_dir=None if live_dir is None else str(live_dir),
    )
    return _current


def end_run() -> RunContext | None:
    """Close and return the active run context."""
    global _current
    ctx, _current = _current, None
    return ctx


def current() -> RunContext | None:
    """The active run context, or ``None`` — the hot-path guard value."""
    return _current


def current_run_id() -> str | None:
    ctx = _current
    return None if ctx is None else ctx.run_id


def note_input(name: str, signature: str) -> None:
    """Record an input signature on the active run (no-op when idle)."""
    ctx = _current
    if ctx is not None:
        ctx.note_input(name, signature)


def annotate(key: str, value: Any) -> None:
    """Append to the active run's extras (no-op when idle)."""
    ctx = _current
    if ctx is not None:
        ctx.annotate(key, value)


# ----------------------------------------------------------------------
# worker propagation
# ----------------------------------------------------------------------

def worker_state() -> dict[str, Any] | None:
    """Picklable slice of the active context for pool initializers.

    ``obs.core._init_worker`` passes it to :func:`restore_worker` in the
    child, so worker-side heartbeats and observers carry the parent's
    run ID and write to the parent's live file.
    """
    ctx = _current
    if ctx is None:
        return None
    return {
        "run_id": ctx.run_id,
        "command": ctx.command,
        "live_dir": ctx.live_dir,
    }


def restore_worker(state: dict[str, Any] | None) -> None:
    """Adopt the parent's run identity inside a pool worker."""
    global _current
    if state is None:
        _current = None
        return
    _current = RunContext(
        run_id=str(state["run_id"]),
        command=str(state.get("command", "?")),
        live_dir=state.get("live_dir"),
        # Workers never re-derive git/env — identity comes from the
        # parent; keep the child cheap and deterministic.
        env={},
        git=None,
    )
