"""Closed-form maximum window size estimates (paper eq. (1)-(2), Sec. 4.3).

2-D case: a single family of uniformly generated references
``X[a1*i + a2*j + c_k]`` in an ``N1 x N2`` nest, transformed by a
unimodular ``T = [[a, b], [c, d]]``.  Eq. (1):

    MWS = maxspan * |a2*a - a1*b| / det(T)

where ``maxspan`` is the maximum inner trip count of the transformed
nest.  Eq. (2) instantiates maxspan for a rectangular original domain:

    maxspan ~= min((N1-1)/|b|, (N2-1)/|a|) + 1

(the inner loop walks the direction ``(-b, a)`` across the box; whichever
box extent is exhausted first limits the walk).  The two branches printed
in the paper are the two arms of this ``min``; the unified form below
reproduces every number in the paper: identity on Example 8 gives 50, the
optimal ``(a, b) = (2, 3)`` gives 22 (actual 21), identity on Example 7
gives 90 (Eisenbeis et al. report 89 with their per-dependence window).

3-D case (Section 4.3): with reuse (nullspace) vector ``(d1, d2, d3)``,

    MWS = d1*(N2-|d2|)*(N3-|d3|) + 1                      if d2 <= 0
    MWS = d1*(N2-|d2|)*(N3-|d3|) + |d2|*(N3-|d3|) + 1     if d2 >  0

(The paper's Example 10 prints 540, omitting its own ``+1``; the formula
as stated gives 541 and the exact simulator arbitrates in the bench.)
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro import obs
from repro.dependence.analysis import self_reuse_distance
from repro.ir.loop import LoopNest
from repro.ir.program import Program
from repro.ir.reference import ArrayRef
from repro.linalg import IntMatrix


def mws_2d_estimate(
    alpha1: int, alpha2: int, n1: int, n2: int, a: int, b: int
) -> Fraction:
    """Eq. (2) estimate of MWS for ``X[alpha1*i + alpha2*j + c]`` under a
    transformation with first row ``(a, b)``.

    Exact rational arithmetic; callers may round.  ``(a, b) = (1, 0)`` is
    the untransformed loop.

    >>> mws_2d_estimate(2, 5, 25, 10, 1, 0)
    Fraction(50, 1)
    >>> mws_2d_estimate(2, 5, 25, 10, 2, 3)
    Fraction(22, 1)
    """
    obs.counter("estimate.eq2.calls")
    return _eq2_value(alpha1, alpha2, n1, n2, a, b)


def _eq2_value(
    alpha1: int, alpha2: int, n1: int, n2: int, a: int, b: int
) -> Fraction:
    if a == 0 and b == 0:
        raise ValueError("transformation row (0, 0) is singular")
    window_step = abs(alpha2 * a - alpha1 * b)
    if window_step == 0:
        # The outer loop is aligned with the access function: all
        # iterations touching an element are consecutive in the inner
        # loop, so the window holds at most the element in flight.
        return Fraction(1)
    spans = []
    if b != 0:
        spans.append(Fraction(n1 - 1, abs(b)))
    if a != 0:
        spans.append(Fraction(n2 - 1, abs(a)))
    maxspan = min(spans) + 1
    return maxspan * window_step


def mws_2d_estimate_batch(
    alpha1: int,
    alpha2: int,
    n1: int,
    n2: int,
    rows: "Sequence[tuple[int, int]]",
) -> list[Fraction]:
    """Eq. (2) for many candidate rows of one access/nest, in row order.

    Value-identical to calling :func:`mws_2d_estimate` per row, with one
    ``estimate.eq2.calls`` counter bump of ``len(rows)`` instead of one
    per row — the enumeration phases of the 2-D search and the
    branch-and-bound leaves score whole groups at a time.

    >>> mws_2d_estimate_batch(2, 5, 25, 10, [(1, 0), (2, 3)])
    [Fraction(50, 1), Fraction(22, 1)]
    """
    if not rows:
        return []
    obs.counter("estimate.eq2.calls", len(rows))
    return [_eq2_value(alpha1, alpha2, n1, n2, a, b) for a, b in rows]


@obs.profiled("estimate.mws_2d_for_array")
def mws_2d_for_array(
    program: Program, array: str, transformation: IntMatrix | None = None
) -> Fraction:
    """Eq. (2) applied to a program's uniformly generated 1-D array.

    Uses the shared access row ``(alpha1, alpha2)`` and the first row of
    the transformation (identity when None).
    """
    refs = program.refs_to(array)
    if not refs:
        raise KeyError(array)
    if not program.is_uniformly_generated(array):
        raise ValueError(f"{array}: references are not uniformly generated")
    ref = refs[0]
    if ref.rank != 1 or ref.nest_depth != 2:
        raise ValueError("eq. (2) is defined for 1-D arrays in 2-D nests")
    alpha1, alpha2 = ref.access.row(0)
    n1, n2 = program.nest.trip_counts
    if transformation is None:
        a, b = 1, 0
    else:
        a, b = transformation.row(0)
    return mws_2d_estimate(alpha1, alpha2, n1, n2, a, b)


def mws_3d_estimate(reuse_vector: tuple[int, int, int], trips: tuple[int, int, int]) -> int:
    """Section 4.3 closed form from the reuse (nullspace) vector.

    The reuse vector is taken lex-positive (``d1 >= 0``); components
    exceeding the trip counts clamp the products at zero.

    >>> mws_3d_estimate((1, 3, -3), (10, 20, 30))
    541
    """
    d1, d2, d3 = reuse_vector
    if d1 < 0:
        d1, d2, d3 = -d1, -d2, -d3
    n1, n2, n3 = trips
    if abs(d1) >= n1 or abs(d2) >= n2 or abs(d3) >= n3:
        # The reuse vector does not fit in the iteration box: no iteration
        # pair realizes the reuse, so only the in-flight element is live.
        return 1
    inner = max(0, n2 - abs(d2)) * max(0, n3 - abs(d3))
    if d2 <= 0:
        return d1 * inner + 1
    return d1 * inner + abs(d2) * max(0, n3 - abs(d3)) + 1


@obs.profiled("estimate.mws_3d_for_ref")
def mws_3d_for_ref(ref: ArrayRef, nest: LoopNest) -> int:
    """Section 4.3 estimate for a single reference in a 3-deep nest."""
    if ref.nest_depth != 3:
        raise ValueError("mws_3d_for_ref expects a 3-deep nest")
    v = self_reuse_distance(ref)
    if v is None:
        # Injective access: each element is touched once; window never
        # holds anything beyond the element in flight.
        return 1
    trips = nest.trip_counts
    return mws_3d_estimate(v, trips)  # type: ignore[arg-type]
