"""Element lifetime statistics.

Section 1 frames the optimization as shortening "the time between the
first and last accesses to a given array location"; these helpers expose
that distribution directly, for reports, examples and ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.program import Program
from repro.linalg import IntMatrix
from repro.window.simulator import element_lifetimes


@dataclass(frozen=True)
class LifetimeStats:
    """Summary of per-element lifetimes (in iterations) for one array."""

    array: str
    touched_elements: int
    max_lifetime: int
    mean_lifetime: float
    single_use_elements: int

    @property
    def reused_elements(self) -> int:
        return self.touched_elements - self.single_use_elements


def lifetime_stats(
    program: Program,
    array: str,
    transformation: IntMatrix | None = None,
) -> LifetimeStats:
    """Compute lifetime statistics under the given execution order.

    A transformation that reduces MWS shows up here as a collapse of
    ``max_lifetime`` and ``mean_lifetime`` — the same reuse happens much
    closer together in time.
    """
    lifetimes = element_lifetimes(program, array, transformation)
    if not lifetimes:
        raise KeyError(array)
    spans = [last - first for first, last in lifetimes.values()]
    return LifetimeStats(
        array=array,
        touched_elements=len(spans),
        max_lifetime=max(spans),
        mean_lifetime=sum(spans) / len(spans),
        single_use_elements=sum(1 for s in spans if s == 0),
    )
