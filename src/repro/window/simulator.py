"""Exact reference-window simulation.

The definitional computation of MWS: enumerate every dynamic access in
sequential order (optionally the order induced by a unimodular
transformation), record each element's first and last access iteration,
and sweep a +1/-1 event line to find the peak number of simultaneously
live elements.

Element ``e`` is in the window at iteration ``t`` iff
``first(e) <= t < last(e)`` — it has been referenced and will be
referenced again strictly later (paper Section 2.3).  An element touched
in only one iteration therefore never occupies the window; after the ideal
transformation of Example 7 every element is touched only in consecutive
iterations and the MWS collapses to 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro import obs
from repro.ir.program import Program
from repro.linalg import IntMatrix
from repro.obs import metrics


@dataclass(frozen=True)
class WindowProfile:
    """Window sizes over time for one array (or the whole program)."""

    array: str
    sizes: tuple[int, ...]

    @property
    def max_size(self) -> int:
        return max(self.sizes) if self.sizes else 0

    @property
    def average_size(self) -> float:
        return sum(self.sizes) / len(self.sizes) if self.sizes else 0.0

    def argmax(self) -> int:
        """First iteration time achieving the maximum window."""
        return self.sizes.index(self.max_size)


def _iteration_order(
    program: Program, transformation: IntMatrix | None
) -> list[tuple[int, ...]] | None:
    """Iteration vectors in execution order; None means native order.

    A unimodular transformation re-orders iterations to the lexicographic
    order of ``u = T @ i`` — exactly the order the transformed nest's
    generated code executes.
    """
    if transformation is None:
        return None
    n = program.nest.depth
    if transformation.shape != (n, n):
        raise ValueError("transformation shape does not match nest depth")
    if transformation.det() not in (1, -1):
        raise ValueError("transformation must be unimodular")
    points = list(program.nest.iterate())
    points.sort(key=transformation.apply)
    return points


@obs.profiled("simulator.element_lifetimes")
def element_lifetimes(
    program: Program,
    array: str,
    transformation: IntMatrix | None = None,
) -> dict[tuple[int, ...], tuple[int, int]]:
    """Map each touched element to ``(first, last)`` iteration times.

    Times are 0-based positions in the execution order (native or
    transformed).
    """
    refs = [ref for ref in program.references if ref.array == array]
    if not refs:
        raise KeyError(array)
    order = _iteration_order(program, transformation)
    lifetimes: dict[tuple[int, ...], tuple[int, int]] = {}
    iterator = order if order is not None else program.nest.iterate()
    for time, point in enumerate(iterator):
        for ref in refs:
            element = ref.element(point)
            if element in lifetimes:
                lifetimes[element] = (lifetimes[element][0], time)
            else:
                lifetimes[element] = (time, time)
    return lifetimes


@dataclass(frozen=True)
class LivenessProfile:
    """Live-set trajectory of one array under one execution order.

    The quantity the paper's MWS is the maximum of, made visible:
    ``occupancy[t]`` is the window size after iteration ``t`` executes,
    ``peak``/``peak_time``/``peak_point`` locate the maximum window in
    execution time and in the iteration space, and ``reuse_histogram``
    counts the gaps (in iterations of the chosen order) between
    consecutive accesses to the same element — the reuse-distance
    profile that related work (reuse-profile estimation, AutoLALA)
    builds its locality analyses on.
    """

    array: str
    occupancy: tuple[int, ...]
    peak: int
    peak_time: int  # first execution time achieving the peak; -1 if empty
    peak_point: tuple[int, ...] | None  # iteration vector at peak_time
    reuse_histogram: Mapping[int, int]  # access gap -> occurrence count

    @property
    def mean_occupancy(self) -> float:
        if not self.occupancy:
            return 0.0
        return sum(self.occupancy) / len(self.occupancy)

    @property
    def reuse_count(self) -> int:
        return sum(self.reuse_histogram.values())


def _access_times(
    program: Program,
    array: str,
    transformation: IntMatrix | None,
) -> dict[tuple[int, ...], list[int]]:
    """Every access time of each touched element, in execution order."""
    refs = [ref for ref in program.references if ref.array == array]
    if not refs:
        raise KeyError(array)
    order = _iteration_order(program, transformation)
    iterator = order if order is not None else program.nest.iterate()
    times: dict[tuple[int, ...], list[int]] = {}
    for time, point in enumerate(iterator):
        for ref in refs:
            times.setdefault(ref.element(point), []).append(time)
    return times


def liveness_profile(
    program: Program,
    array: str,
    transformation: IntMatrix | None = None,
) -> LivenessProfile:
    """Exact liveness profile, pure-Python reference implementation.

    Semantics ground truth for :func:`repro.window.fast.liveness_profile_fast`
    (the test suite pins them equal).
    """
    times = _access_times(program, array, transformation)
    total = program.nest.total_iterations
    deltas = [0] * (total + 1)
    reuse_histogram: dict[int, int] = {}
    for ts in times.values():
        first, last = ts[0], ts[-1]
        if last > first:
            deltas[first] += 1
            deltas[last] -= 1
        for earlier, later in zip(ts, ts[1:]):
            gap = later - earlier
            reuse_histogram[gap] = reuse_histogram.get(gap, 0) + 1
    occupancy: list[int] = []
    current = 0
    for t in range(total):
        current += deltas[t]
        occupancy.append(current)
    peak = max(occupancy, default=0)
    peak_time = occupancy.index(peak) if occupancy else -1
    peak_point = _point_at_time(program, transformation, peak_time)
    return LivenessProfile(
        array=array,
        occupancy=tuple(occupancy),
        peak=peak,
        peak_time=peak_time,
        peak_point=peak_point,
        reuse_histogram=reuse_histogram,
    )


def _point_at_time(
    program: Program,
    transformation: IntMatrix | None,
    time: int,
) -> tuple[int, ...] | None:
    """Iteration vector executing at position ``time`` of the order."""
    if time < 0:
        return None
    order = _iteration_order(program, transformation)
    if order is not None:
        return order[time]
    for position, point in enumerate(program.nest.iterate()):
        if position == time:
            return point
    return None


def record_liveness(profile: LivenessProfile, prefix: str = "liveness") -> None:
    """Publish a profile into the active observer's metrics registry.

    No-op while observability is disabled.  Gauges carry the peak and
    its location; histograms carry the occupancy trajectory and the
    reuse-distance distribution.
    """
    base = f"{prefix}.{profile.array}"
    metrics.gauge(f"{base}.peak", profile.peak)
    metrics.gauge(f"{base}.peak_time", profile.peak_time)
    metrics.gauge(f"{base}.mean_occupancy", profile.mean_occupancy)
    metrics.observe_many(f"{base}.occupancy", profile.occupancy)
    for gap, count in sorted(profile.reuse_histogram.items()):
        metrics.observe(f"{base}.reuse_distance", gap, n=count)


def window_profile_reference(
    program: Program,
    array: str,
    transformation: IntMatrix | None = None,
) -> WindowProfile:
    """Exact window size at every iteration, for one array."""
    lifetimes = element_lifetimes(program, array, transformation)
    total = program.nest.total_iterations
    deltas = [0] * (total + 1)
    for first, last in lifetimes.values():
        if last > first:
            deltas[first] += 1
            deltas[last] -= 1
    sizes = []
    current = 0
    for t in range(total):
        current += deltas[t]
        sizes.append(current)
    return WindowProfile(array, tuple(sizes))


def max_window_size_reference(
    program: Program,
    array: str,
    transformation: IntMatrix | None = None,
    profile: bool = False,
) -> int:
    """Exact MWS of one array under the given execution order.

    ``profile=True`` additionally records the liveness profile (occupancy
    trajectory, peak location, reuse-distance histogram) into the active
    observer's metrics; it costs nothing unless observability is enabled.

    >>> from repro.ir import parse_program
    >>> p = parse_program('''
    ... for i = 1 to 25 {
    ...   for j = 1 to 10 {
    ...     X[2*i + 5*j + 1] = X[2*i + 5*j + 5]
    ...   }
    ... }
    ... ''')
    >>> max_window_size_reference(p, "X")
    44
    """
    obs.counter("simulator.reference.calls")
    if profile and obs.enabled():
        prof = liveness_profile(program, array, transformation)
        record_liveness(prof)
        return prof.peak
    lifetimes = element_lifetimes(program, array, transformation)
    return _peak_live(lifetimes.values())


def max_total_window_reference(
    program: Program,
    transformation: IntMatrix | None = None,
    arrays: Sequence[str] | None = None,
) -> int:
    """Exact MWS summed over arrays: ``max_t sum_X |W_X(t)|``.

    This is the paper's multi-array window (Section 2.3) — the minimum
    on-chip data memory for the whole nest.  Note it is the max of the
    sum, not the sum of per-array maxima.
    """
    names = tuple(arrays) if arrays is not None else program.arrays
    total = program.nest.total_iterations
    deltas = [0] * (total + 1)
    for array in names:
        for first, last in element_lifetimes(program, array, transformation).values():
            if last > first:
                deltas[first] += 1
                deltas[last] -= 1
    peak = 0
    current = 0
    for t in range(total):
        current += deltas[t]
        if current > peak:
            peak = current
    return peak


def _peak_live(lifetimes) -> int:
    events: dict[int, int] = {}
    for first, last in lifetimes:
        if last > first:
            events[first] = events.get(first, 0) + 1
            events[last] = events.get(last, 0) - 1
    peak = 0
    current = 0
    for t in sorted(events):
        current += events[t]
        if current > peak:
            peak = current
    return peak


def window_profile(
    program: Program,
    array: str,
    transformation: IntMatrix | None = None,
) -> WindowProfile:
    """Exact window size at every iteration (vectorized engine).

    Semantics defined by :func:`window_profile_reference`; the numpy
    engine is used for speed and the test suite pins them equal.
    """
    from repro.window.fast import window_profile_fast

    sizes = window_profile_fast(program, array, transformation)
    return WindowProfile(array, tuple(int(v) for v in sizes))


#: Engine names accepted by :func:`max_window_size` / :func:`max_total_window`.
#: All are exact and pinned equal by the differential suite; they differ
#: in cost model: ``reference`` (pure Python, ground truth), ``fast``
#: (dense numpy, O(N) memory), ``streaming`` (chunked, O(chunk+distinct)
#: memory), ``zhao_malik`` (two-pointer sweep).  ``auto`` picks ``fast``
#: while the nest fits the dense budget and ``streaming`` beyond it.
ENGINES = ("auto", "reference", "fast", "streaming", "zhao_malik")


def resolve_engine(program: Program, engine: str = "auto") -> str:
    """Resolve ``"auto"`` to a concrete engine for this program.

    ``auto`` chooses the dense numpy engine while the nest's iteration
    count fits ``REPRO_DENSE_BUDGET`` (see
    :func:`repro.window.fast.dense_budget`) and the streaming engine
    beyond it.  Raises ``ValueError`` for unknown engine names.
    """
    if engine not in ENGINES:
        raise ValueError(
            f"unknown window engine {engine!r}; choose one of {ENGINES}"
        )
    if engine != "auto":
        return engine
    from repro.window.fast import dense_budget

    if program.nest.total_iterations <= dense_budget():
        return "fast"
    return "streaming"


def max_window_size(
    program: Program,
    array: str,
    transformation: IntMatrix | None = None,
    profile: bool = False,
    engine: str = "auto",
) -> int:
    """Exact MWS of one array under the given execution order.

    ``profile=True`` records the liveness profile into the active
    observer's metrics (no-op while observability is disabled; the
    streaming engine ignores it — occupancy trajectories are O(N)).
    ``engine`` selects the implementation (see :data:`ENGINES`); the
    default ``"auto"`` uses the dense numpy engine while the nest fits
    the dense budget and streams beyond it.

    >>> from repro.ir import parse_program
    >>> p = parse_program('''
    ... for i = 1 to 25 {
    ...   for j = 1 to 10 {
    ...     X[2*i + 5*j + 1] = X[2*i + 5*j + 5]
    ...   }
    ... }
    ... ''')
    >>> max_window_size(p, "X")
    44
    >>> max_window_size(p, "X", engine="streaming")
    44
    """
    resolved = resolve_engine(program, engine)
    obs.counter(f"engine.{resolved}.calls")
    if resolved == "reference":
        return max_window_size_reference(
            program, array, transformation, profile=profile
        )
    if resolved == "streaming":
        from repro.window.streaming import max_window_size_streaming

        return max_window_size_streaming(
            program, array, transformation, profile=profile
        )
    if resolved == "zhao_malik":
        from repro.window.zhao_malik import max_window_size_zhao_malik

        return max_window_size_zhao_malik(
            program, array, transformation, profile=profile
        )
    from repro.window.fast import max_window_size_fast

    return max_window_size_fast(program, array, transformation, profile=profile)


def max_total_window(
    program: Program,
    transformation: IntMatrix | None = None,
    arrays: Sequence[str] | None = None,
    profile: bool = False,
    engine: str = "auto",
) -> int:
    """Exact MWS summed over arrays: ``max_t sum_X |W_X(t)|``.

    This is the paper's multi-array window (Section 2.3) — the minimum
    on-chip data memory for the whole nest.  Note it is the max of the
    sum, not the sum of per-array maxima.  ``profile=True`` records a
    per-array liveness profile for every array involved (dense engines
    only).  ``engine`` selects the implementation (see :data:`ENGINES`).
    """
    resolved = resolve_engine(program, engine)
    obs.counter(f"engine.{resolved}.calls")
    if resolved == "reference":
        return max_total_window_reference(program, transformation, arrays)
    if resolved == "streaming":
        from repro.window.streaming import max_total_window_streaming

        return max_total_window_streaming(
            program, transformation, arrays, profile=profile
        )
    if resolved == "zhao_malik":
        from repro.window.zhao_malik import max_total_window_zhao_malik

        return max_total_window_zhao_malik(program, transformation, arrays)
    from repro.window.fast import max_total_window_fast

    return max_total_window_fast(program, transformation, arrays, profile=profile)
