"""Exact reference-window simulation.

The definitional computation of MWS: enumerate every dynamic access in
sequential order (optionally the order induced by a unimodular
transformation), record each element's first and last access iteration,
and sweep a +1/-1 event line to find the peak number of simultaneously
live elements.

Element ``e`` is in the window at iteration ``t`` iff
``first(e) <= t < last(e)`` — it has been referenced and will be
referenced again strictly later (paper Section 2.3).  An element touched
in only one iteration therefore never occupies the window; after the ideal
transformation of Example 7 every element is touched only in consecutive
iterations and the MWS collapses to 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro import obs
from repro.ir.program import Program
from repro.linalg import IntMatrix


@dataclass(frozen=True)
class WindowProfile:
    """Window sizes over time for one array (or the whole program)."""

    array: str
    sizes: tuple[int, ...]

    @property
    def max_size(self) -> int:
        return max(self.sizes) if self.sizes else 0

    @property
    def average_size(self) -> float:
        return sum(self.sizes) / len(self.sizes) if self.sizes else 0.0

    def argmax(self) -> int:
        """First iteration time achieving the maximum window."""
        return self.sizes.index(self.max_size)


def _iteration_order(
    program: Program, transformation: IntMatrix | None
) -> list[tuple[int, ...]] | None:
    """Iteration vectors in execution order; None means native order.

    A unimodular transformation re-orders iterations to the lexicographic
    order of ``u = T @ i`` — exactly the order the transformed nest's
    generated code executes.
    """
    if transformation is None:
        return None
    n = program.nest.depth
    if transformation.shape != (n, n):
        raise ValueError("transformation shape does not match nest depth")
    if transformation.det() not in (1, -1):
        raise ValueError("transformation must be unimodular")
    points = list(program.nest.iterate())
    points.sort(key=transformation.apply)
    return points


@obs.profiled("simulator.element_lifetimes")
def element_lifetimes(
    program: Program,
    array: str,
    transformation: IntMatrix | None = None,
) -> dict[tuple[int, ...], tuple[int, int]]:
    """Map each touched element to ``(first, last)`` iteration times.

    Times are 0-based positions in the execution order (native or
    transformed).
    """
    refs = [ref for ref in program.references if ref.array == array]
    if not refs:
        raise KeyError(array)
    order = _iteration_order(program, transformation)
    lifetimes: dict[tuple[int, ...], tuple[int, int]] = {}
    iterator = order if order is not None else program.nest.iterate()
    for time, point in enumerate(iterator):
        for ref in refs:
            element = ref.element(point)
            if element in lifetimes:
                lifetimes[element] = (lifetimes[element][0], time)
            else:
                lifetimes[element] = (time, time)
    return lifetimes


def window_profile_reference(
    program: Program,
    array: str,
    transformation: IntMatrix | None = None,
) -> WindowProfile:
    """Exact window size at every iteration, for one array."""
    lifetimes = element_lifetimes(program, array, transformation)
    total = program.nest.total_iterations
    deltas = [0] * (total + 1)
    for first, last in lifetimes.values():
        if last > first:
            deltas[first] += 1
            deltas[last] -= 1
    sizes = []
    current = 0
    for t in range(total):
        current += deltas[t]
        sizes.append(current)
    return WindowProfile(array, tuple(sizes))


def max_window_size_reference(
    program: Program,
    array: str,
    transformation: IntMatrix | None = None,
) -> int:
    """Exact MWS of one array under the given execution order.

    >>> from repro.ir import parse_program
    >>> p = parse_program('''
    ... for i = 1 to 25 {
    ...   for j = 1 to 10 {
    ...     X[2*i + 5*j + 1] = X[2*i + 5*j + 5]
    ...   }
    ... }
    ... ''')
    >>> max_window_size_reference(p, "X")
    44
    """
    obs.counter("simulator.reference.calls")
    lifetimes = element_lifetimes(program, array, transformation)
    return _peak_live(lifetimes.values())


def max_total_window_reference(
    program: Program,
    transformation: IntMatrix | None = None,
    arrays: Sequence[str] | None = None,
) -> int:
    """Exact MWS summed over arrays: ``max_t sum_X |W_X(t)|``.

    This is the paper's multi-array window (Section 2.3) — the minimum
    on-chip data memory for the whole nest.  Note it is the max of the
    sum, not the sum of per-array maxima.
    """
    names = tuple(arrays) if arrays is not None else program.arrays
    total = program.nest.total_iterations
    deltas = [0] * (total + 1)
    for array in names:
        for first, last in element_lifetimes(program, array, transformation).values():
            if last > first:
                deltas[first] += 1
                deltas[last] -= 1
    peak = 0
    current = 0
    for t in range(total):
        current += deltas[t]
        if current > peak:
            peak = current
    return peak


def _peak_live(lifetimes) -> int:
    events: dict[int, int] = {}
    for first, last in lifetimes:
        if last > first:
            events[first] = events.get(first, 0) + 1
            events[last] = events.get(last, 0) - 1
    peak = 0
    current = 0
    for t in sorted(events):
        current += events[t]
        if current > peak:
            peak = current
    return peak


def window_profile(
    program: Program,
    array: str,
    transformation: IntMatrix | None = None,
) -> WindowProfile:
    """Exact window size at every iteration (vectorized engine).

    Semantics defined by :func:`window_profile_reference`; the numpy
    engine is used for speed and the test suite pins them equal.
    """
    from repro.window.fast import window_profile_fast

    sizes = window_profile_fast(program, array, transformation)
    return WindowProfile(array, tuple(int(v) for v in sizes))


def max_window_size(
    program: Program,
    array: str,
    transformation: IntMatrix | None = None,
) -> int:
    """Exact MWS of one array under the given execution order.

    >>> from repro.ir import parse_program
    >>> p = parse_program('''
    ... for i = 1 to 25 {
    ...   for j = 1 to 10 {
    ...     X[2*i + 5*j + 1] = X[2*i + 5*j + 5]
    ...   }
    ... }
    ... ''')
    >>> max_window_size(p, "X")
    44
    """
    from repro.window.fast import max_window_size_fast

    return max_window_size_fast(program, array, transformation)


def max_total_window(
    program: Program,
    transformation: IntMatrix | None = None,
    arrays: Sequence[str] | None = None,
) -> int:
    """Exact MWS summed over arrays: ``max_t sum_X |W_X(t)|``.

    This is the paper's multi-array window (Section 2.3) — the minimum
    on-chip data memory for the whole nest.  Note it is the max of the
    sum, not the sum of per-array maxima.
    """
    from repro.window.fast import max_total_window_fast

    return max_total_window_fast(program, transformation, arrays)
