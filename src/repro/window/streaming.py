"""Streaming chunked window engine.

Computes exact MWS without materializing the ``(N, n)`` iteration
matrix: iterations are enumerated in fixed-size blocks decoded straight
from their linear index, each block's accesses are reduced to per-element
``(first, last)`` touch keys, and the block-local results are folded into
a compressed per-array lifetime store.  Peak memory is
``O(chunk + distinct elements)`` instead of ``O(N)``, which lifts the
dense-enumeration budget of :mod:`repro.window.fast` — nests far beyond
``REPRO_DENSE_BUDGET`` iterations stay searchable.

Exactness: like the fast engine's MWS path, time is represented by
*order-isomorphic* integer keys (the linear iteration index in native
order; the mixed-radix packing of ``u = T @ i`` over its exact extents
under a transformation).  First/last-touch comparisons and the final
sorted-boundary peak scan only consume the order of the keys, so the
result equals the reference simulator's — the differential suite pins
all engines equal on randomized programs.

The streaming engine intentionally has no dense-rank fallback: if the
transformed extents cannot pack into int64 it raises rather than
allocating O(N) rank arrays.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro import obs
from repro.envutil import env_int
from repro.ir.program import Program
from repro.linalg import IntMatrix
from repro.window.fast import (
    _INT64_LIMIT,
    _affine_extents,
    _pack_columns,
    _peak_concurrent,
)

#: Default iterations decoded per block.  ``repro bench --chunk-sweep``
#: emits one BENCH artifact per candidate size to justify this in-repo;
#: 65536 sits on the flat part of the sweep (big enough to amortize the
#: per-chunk numpy dispatch, small enough to stay cache-resident).
DEFAULT_CHUNK = 65536

#: Environment variable overriding the chunk size.
CHUNK_ENV = "REPRO_STREAM_CHUNK"


def stream_chunk() -> int:
    """Block size used by the streaming engine (env-overridable)."""
    return env_int(CHUNK_ENV, DEFAULT_CHUNK)


def _decode_block(
    start: int,
    stop: int,
    lowers: Sequence[int],
    trips: Sequence[int],
) -> np.ndarray:
    """Iteration vectors for linear indices ``[start, stop)``.

    The linear index is the native execution position, innermost axis
    fastest — the same order ``LoopNest.iterate`` produces.
    """
    n = len(trips)
    linear = np.arange(start, stop, dtype=np.int64)
    coords = np.empty((stop - start, n), dtype=np.int64)
    for k in range(n - 1, -1, -1):
        trip = np.int64(trips[k])
        coords[:, k] = linear % trip + np.int64(lowers[k])
        linear //= trip
    return coords


class _LifetimeStore:
    """Compressed per-element ``(first, last)`` touch keys.

    Block-local results are appended to a pending list and merged into
    the compressed representation once the pending rows outgrow
    ``max(4 * chunk, compressed rows)`` — amortized O(rows log rows)
    total work while keeping peak memory proportional to the chunk size
    plus the number of distinct elements.
    """

    __slots__ = ("_chunk", "_ids", "_first", "_last", "_pending", "_rows")

    def __init__(self, chunk: int) -> None:
        self._chunk = chunk
        self._ids: np.ndarray | None = None
        self._first: np.ndarray | None = None
        self._last: np.ndarray | None = None
        self._pending: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._rows = 0

    def add(self, ids: np.ndarray, first: np.ndarray, last: np.ndarray) -> None:
        if ids.size == 0:
            return
        self._pending.append((ids, first, last))
        self._rows += ids.shape[0]
        compressed = 0 if self._ids is None else self._ids.shape[0]
        if self._rows > max(4 * self._chunk, compressed):
            self._consolidate()

    def _consolidate(self) -> None:
        if not self._pending:  # nothing new (or nothing at all)
            return
        ids_parts = [p[0] for p in self._pending]
        first_parts = [p[1] for p in self._pending]
        last_parts = [p[2] for p in self._pending]
        if self._ids is not None:
            ids_parts.append(self._ids)
            first_parts.append(self._first)
            last_parts.append(self._last)
        all_ids = np.concatenate(ids_parts)
        all_first = np.concatenate(first_parts)
        all_last = np.concatenate(last_parts)
        unique_ids, inverse = np.unique(all_ids, return_inverse=True)
        first = np.full(unique_ids.shape[0], np.iinfo(np.int64).max, np.int64)
        last = np.full(unique_ids.shape[0], np.iinfo(np.int64).min, np.int64)
        np.minimum.at(first, inverse, all_first)
        np.maximum.at(last, inverse, all_last)
        self._ids, self._first, self._last = unique_ids, first, last
        self._pending = []
        self._rows = 0

    def live_lifetimes(self) -> tuple[np.ndarray, np.ndarray]:
        """``(first, last)`` keys of elements touched at 2+ distinct times."""
        self._consolidate()
        if self._ids is None:
            empty = np.array([], dtype=np.int64)
            return empty, empty
        live = self._last > self._first
        return self._first[live], self._last[live]


class _StreamPlan:
    """Per-run constants: box geometry, time packing, element packing."""

    __slots__ = ("lowers", "trips", "total", "t_rows", "t_mins", "t_spans")

    def __init__(self, program: Program, transformation: IntMatrix | None):
        nest = program.nest
        self.lowers = nest.lowers
        self.trips = nest.trip_counts
        self.total = math.prod(int(t) for t in self.trips)
        if self.total >= _INT64_LIMIT:
            raise ValueError(
                f"nest has {self.total} iterations; linear indices would "
                f"overflow int64"
            )
        if transformation is None:
            self.t_rows = None
            self.t_mins = self.t_spans = ()
        else:
            n = nest.depth
            if transformation.shape != (n, n):
                raise ValueError(
                    "transformation shape does not match nest depth"
                )
            if transformation.det() not in (1, -1):
                raise ValueError("transformation must be unimodular")
            rows = transformation.to_lists()
            mins, maxs = _affine_extents(
                rows, [0] * len(rows), nest.lowers, nest.uppers
            )
            spans = [hi - lo + 1 for lo, hi in zip(mins, maxs)]
            if math.prod(spans) >= _INT64_LIMIT:
                raise ValueError(
                    f"transformed time extents {spans} overflow int64 "
                    f"packing; the streaming engine has no dense fallback"
                )
            self.t_rows = np.array(rows, dtype=np.int64)
            self.t_mins, self.t_spans = mins, spans

    def time_keys(self, coords: np.ndarray, start: int) -> np.ndarray:
        if self.t_rows is None:
            return np.arange(start, start + coords.shape[0], dtype=np.int64)
        return _pack_columns(coords @ self.t_rows.T, self.t_mins, self.t_spans)


class _ArrayPlan:
    """Element packing for one array: per-ref matrices + global extents."""

    __slots__ = ("accesses", "offsets", "mins", "spans")

    def __init__(self, program: Program, array: str):
        refs = [ref for ref in program.references if ref.array == array]
        if not refs:
            raise KeyError(array)
        nest = program.nest
        self.accesses = []
        self.offsets = []
        mins: list[int] | None = None
        maxs: list[int] | None = None
        for ref in refs:
            rows = ref.access.to_lists()
            offs = list(ref.offset)
            self.accesses.append(np.array(rows, dtype=np.int64))
            self.offsets.append(np.array(offs, dtype=np.int64))
            lo, hi = _affine_extents(rows, offs, nest.lowers, nest.uppers)
            if mins is None:
                mins, maxs = lo, hi
            else:
                mins = [min(a, b) for a, b in zip(mins, lo)]
                maxs = [max(a, b) for a, b in zip(maxs, hi)]
        spans = [hi - lo + 1 for lo, hi in zip(mins, maxs)]
        if math.prod(spans) >= _INT64_LIMIT:
            raise ValueError(
                f"array {array}: touched bounding box {spans} too large "
                f"for int64 element packing"
            )
        self.mins, self.spans = mins, spans

    def element_keys(self, coords: np.ndarray) -> np.ndarray:
        """Packed element id per access; refs concatenated in order."""
        parts = [
            _pack_columns(coords @ a.T + b, self.mins, self.spans)
            for a, b in zip(self.accesses, self.offsets)
        ]
        return np.concatenate(parts)


def _reduce_block(
    ids: np.ndarray, times: np.ndarray, store: _LifetimeStore
) -> None:
    """Compress one block's accesses to per-element first/last keys."""
    unique_ids, inverse = np.unique(ids, return_inverse=True)
    first = np.full(unique_ids.shape[0], np.iinfo(np.int64).max, np.int64)
    last = np.full(unique_ids.shape[0], np.iinfo(np.int64).min, np.int64)
    np.minimum.at(first, inverse, times)
    np.maximum.at(last, inverse, times)
    store.add(unique_ids, first, last)


def _stream_lifetimes(
    program: Program,
    arrays: Sequence[str],
    transformation: IntMatrix | None,
    chunk: int,
) -> dict[str, _LifetimeStore]:
    plan = _StreamPlan(program, transformation)
    array_plans = {name: _ArrayPlan(program, name) for name in arrays}
    stores = {name: _LifetimeStore(chunk) for name in arrays}
    for start in range(0, plan.total, chunk):
        stop = min(start + chunk, plan.total)
        obs.counter("streaming.chunks")
        coords = _decode_block(start, stop, plan.lowers, plan.trips)
        times = plan.time_keys(coords, start)
        for name in arrays:
            aplan = array_plans[name]
            ids = aplan.element_keys(coords)
            tiled = (
                times
                if len(aplan.accesses) == 1
                else np.concatenate([times] * len(aplan.accesses))
            )
            _reduce_block(ids, tiled, stores[name])
    return stores


def max_window_size_streaming(
    program: Program,
    array: str,
    transformation: IntMatrix | None = None,
    profile: bool = False,
    chunk: int | None = None,
) -> int:
    """Exact MWS of one array, computed in O(chunk + distinct) memory.

    ``profile`` is accepted for engine-dispatch compatibility but
    ignored: occupancy trajectories are inherently O(N) and belong to
    the dense engines.
    """
    del profile
    obs.counter("streaming.simulate.calls")
    with obs.span("simulate.streaming", array=array):
        size = chunk if chunk is not None else stream_chunk()
        stores = _stream_lifetimes(program, (array,), transformation, size)
        first, last = stores[array].live_lifetimes()
        return _peak_concurrent(first, last)


def max_total_window_streaming(
    program: Program,
    transformation: IntMatrix | None = None,
    arrays: Sequence[str] | None = None,
    profile: bool = False,
    chunk: int | None = None,
) -> int:
    """Exact total MWS (``max_t sum_X |W_X(t)|``), streamed.

    One pass over the iteration space feeds every array's lifetime
    store; the final peak scan merges all arrays' intervals.  ``profile``
    is accepted but ignored (see :func:`max_window_size_streaming`).
    """
    del profile
    obs.counter("streaming.simulate.calls")
    with obs.span("simulate.streaming", array="*"):
        names = tuple(arrays) if arrays is not None else program.arrays
        if not names:
            return 0
        size = chunk if chunk is not None else stream_chunk()
        stores = _stream_lifetimes(program, names, transformation, size)
        starts = []
        ends = []
        for name in names:
            first, last = stores[name].live_lifetimes()
            starts.append(first)
            ends.append(last)
        return _peak_concurrent(np.concatenate(starts), np.concatenate(ends))
