"""Reference windows and the maximum window size (MWS).

Paper Section 2.3: the reference window ``W_X(I)`` is the set of elements
of ``X`` already referenced at or before iteration ``I`` that will be
referenced again strictly after ``I`` — precisely the elements a minimal
on-chip buffer must hold at that moment.  ``MWS = max_I |W_X(I)|`` is the
minimum buffer size that avoids re-fetching any element.

This package provides the exact sweep simulator (ground truth under any
unimodular re-ordering), the batched multi-candidate scorer with its
specialized sweep kernels (:mod:`repro.window.batched`), and the paper's
closed-form estimates for 2-D (eq. (2)) and 3-D (Section 4.3) nests.
"""

from repro.window.batched import (
    KERNEL_MODES,
    batch_size,
    batched_mws,
    clear_kernel_cache,
    kernel_mode,
)
from repro.window.simulator import (
    ENGINES,
    LivenessProfile,
    WindowProfile,
    element_lifetimes,
    liveness_profile,
    max_total_window,
    max_window_size,
    record_liveness,
    resolve_engine,
    window_profile,
)
from repro.window.streaming import (
    DEFAULT_CHUNK,
    max_total_window_streaming,
    max_window_size_streaming,
)
from repro.window.mws import (
    mws_2d_estimate,
    mws_2d_for_array,
    mws_3d_estimate,
    mws_3d_for_ref,
)
from repro.window.lifetime import (
    LifetimeStats,
    lifetime_stats,
)
from repro.window.zhao_malik import (
    def_use_occupancy,
    def_use_peak,
    max_total_window_zhao_malik,
    max_window_size_zhao_malik,
    zhao_malik_report,
)

__all__ = [
    "DEFAULT_CHUNK",
    "ENGINES",
    "KERNEL_MODES",
    "batch_size",
    "batched_mws",
    "clear_kernel_cache",
    "kernel_mode",
    "LivenessProfile",
    "WindowProfile",
    "resolve_engine",
    "max_window_size_streaming",
    "max_total_window_streaming",
    "max_total_window_zhao_malik",
    "element_lifetimes",
    "liveness_profile",
    "record_liveness",
    "window_profile",
    "max_window_size",
    "max_total_window",
    "def_use_occupancy",
    "mws_2d_estimate",
    "mws_2d_for_array",
    "mws_3d_estimate",
    "mws_3d_for_ref",
    "LifetimeStats",
    "lifetime_stats",
    "def_use_peak",
    "max_window_size_zhao_malik",
    "zhao_malik_report",
]
