"""Symbolic (sympy) maximum-window-size expressions.

Equation (2) and the Section 4.3 formula as expressions in symbolic trip
counts — the form in which the paper states them ("MWS is a function of
the loop limits").  Substituting numbers reproduces
:mod:`repro.window.mws`; keeping the symbols shows how the required
memory scales with problem size under a candidate transformation (linear
in one loop limit, constant in the other — which is why the optimization
matters more for larger frames).
"""

from __future__ import annotations

import sympy

from repro.estimation.symbolic import trip_symbols


def symbolic_mws_2d(
    alpha1: int, alpha2: int, a: int, b: int
) -> tuple[sympy.Expr, tuple[sympy.Symbol, ...]]:
    """Eq. (2) with symbolic ``N1, N2`` for fixed access row and T row.

    >>> expr, (n1, n2) = symbolic_mws_2d(2, 5, 1, 0)
    >>> expr
    5*N2
    >>> expr.subs({n1: 25, n2: 10})
    50
    """
    n1, n2 = trip_symbols(2)
    if a == 0 and b == 0:
        raise ValueError("transformation row (0, 0) is singular")
    window_step = abs(alpha2 * a - alpha1 * b)
    if window_step == 0:
        return sympy.Integer(1), (n1, n2)
    spans = []
    if b != 0:
        spans.append((n1 - 1) / sympy.Integer(abs(b)))
    if a != 0:
        spans.append((n2 - 1) / sympy.Integer(abs(a)))
    if len(spans) == 1:
        maxspan = spans[0] + 1
    else:
        maxspan = sympy.Min(*spans) + 1
    return maxspan * window_step, (n1, n2)


def symbolic_mws_3d(
    reuse_vector: tuple[int, int, int]
) -> tuple[sympy.Expr, tuple[sympy.Symbol, ...]]:
    """Section 4.3 formula with symbolic ``N1, N2, N3``.

    >>> expr, syms = symbolic_mws_3d((1, 3, -3))
    >>> expr.subs(dict(zip(syms, (10, 20, 30))))
    541
    """
    d1, d2, d3 = reuse_vector
    if d1 < 0:
        d1, d2, d3 = -d1, -d2, -d3
    trips = trip_symbols(3)
    n1, n2, n3 = trips
    inner = (n2 - abs(d2)) * (n3 - abs(d3))
    if d2 <= 0:
        return d1 * inner + 1, trips
    return d1 * inner + abs(d2) * (n3 - abs(d3)) + 1, trips


def scaling_exponent(expression: sympy.Expr, symbol: sympy.Symbol) -> int:
    """Degree of the MWS expression in one loop limit.

    Quantifies the paper's Section 4.3 observation: pushing the reuse to
    inner levels removes whole factors of ``N`` from the window.
    """
    return sympy.degree(sympy.expand(expression), symbol)
