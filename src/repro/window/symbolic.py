"""Symbolic (sympy) maximum-window-size expressions.

Two layers:

* Paper forms — equation (2) and the Section 4.3 formula as expressions
  in symbolic trip counts, the shape in which the paper states them
  ("MWS is a function of the loop limits").  Substituting numbers
  reproduces :mod:`repro.window.mws` *exactly*, for every sign of the
  access coefficients and reuse components (property-tested): signs are
  folded by the absolute values inside ``window_step`` and the span
  denominators in the 2-D form, and the 3-D form carries the same
  lex-normalization, fit guard and clamps as the numeric estimator as a
  :class:`sympy.Piecewise`.

* Exact parametric derivation — :func:`derive_parametric_mws` produces a
  closed form that matches the exact *simulators* (not the estimates) as
  a function of the trip counts, by exact polynomial interpolation of
  the engines on resized programs with held-out verification (see
  :mod:`repro.estimation.parametric` for the machinery and the fallback
  contract).
"""

from __future__ import annotations

import sympy

from repro.estimation.parametric import (
    ParametricExpr,
    derivation_base,
    derivation_supported,
    derive_polynomial,
    with_trip_counts,
)
from repro.estimation.symbolic import trip_symbols
from repro.ir.program import Program


def symbolic_mws_2d(
    alpha1: int, alpha2: int, a: int, b: int
) -> tuple[sympy.Expr, tuple[sympy.Symbol, ...]]:
    """Eq. (2) with symbolic ``N1, N2`` for fixed access row and T row.

    Coefficient signs need no assumption: the window step is
    ``|alpha2*a - alpha1*b|`` and the spans divide by ``|a|``, ``|b|``,
    so negated access rows or transformation rows give the same
    expression the numeric :func:`repro.window.mws.mws_2d_estimate`
    computes (pinned by the signed-range regression tests).

    >>> expr, (n1, n2) = symbolic_mws_2d(2, 5, 1, 0)
    >>> expr
    5*N2
    >>> expr.subs({n1: 25, n2: 10})
    50
    >>> symbolic_mws_2d(-2, -5, 1, 0)[0]  # negated access row: same window
    5*N2
    >>> expr, (n1, n2) = symbolic_mws_2d(2, 5, 2, 3)
    >>> expr.subs({n1: 25, n2: 10})  # Min picks the exhausted extent
    22
    """
    n1, n2 = trip_symbols(2)
    if a == 0 and b == 0:
        raise ValueError("transformation row (0, 0) is singular")
    window_step = abs(alpha2 * a - alpha1 * b)
    if window_step == 0:
        return sympy.Integer(1), (n1, n2)
    spans = []
    if b != 0:
        spans.append((n1 - 1) / sympy.Integer(abs(b)))
    if a != 0:
        spans.append((n2 - 1) / sympy.Integer(abs(a)))
    if len(spans) == 1:
        maxspan = spans[0] + 1
    else:
        maxspan = sympy.Min(*spans) + 1
    return maxspan * window_step, (n1, n2)


def symbolic_mws_3d(
    reuse_vector: tuple[int, int, int]
) -> tuple[sympy.Expr, tuple[sympy.Symbol, ...]]:
    """Section 4.3 formula with symbolic ``N1, N2, N3``.

    Mirrors :func:`repro.window.mws.mws_3d_estimate` exactly, including
    its regime guard: when the reuse vector does not fit the iteration
    box (some ``|d_j| >= N_j``) no iteration pair realizes the reuse and
    the window holds only the element in flight, so the expression is a
    :class:`sympy.Piecewise` collapsing to 1 outside the fit region.
    Inside it the clamps ``max(0, N - |d|)`` of the numeric form are
    strictly positive and drop out.

    >>> expr, syms = symbolic_mws_3d((1, 3, -3))
    >>> expr.subs(dict(zip(syms, (10, 20, 30))))
    541
    >>> expr.subs(dict(zip(syms, (10, 3, 30))))  # |d2| >= N2: no reuse
    1
    """
    d1, d2, d3 = reuse_vector
    if d1 < 0:
        d1, d2, d3 = -d1, -d2, -d3
    trips = trip_symbols(3)
    n1, n2, n3 = trips
    inner = (n2 - abs(d2)) * (n3 - abs(d3))
    if d2 <= 0:
        core = d1 * inner + 1
    else:
        core = d1 * inner + abs(d2) * (n3 - abs(d3)) + 1
    fits = sympy.And(n1 > abs(d1), n2 > abs(d2), n3 > abs(d3))
    if fits is sympy.true:
        return core, trips
    return sympy.Piecewise((core, fits), (1, True)), trips


def scaling_exponent(expression: sympy.Expr, symbol: sympy.Symbol) -> int:
    """Degree of the MWS expression in one loop limit.

    Quantifies the paper's Section 4.3 observation: pushing the reuse to
    inner levels removes whole factors of ``N`` from the window.
    Piecewise guards are stripped first (the scaling question is about
    the generic large-``N`` regime, where the non-degenerate arm rules).
    """
    if isinstance(expression, sympy.Piecewise):
        expression = expression.args[0][0]
    return sympy.degree(sympy.expand(expression), symbol)


def derive_parametric_mws(
    program: Program,
    array: str | None = None,
    transformation=None,
    engine: str = "auto",
    seed: int = 0,
) -> ParametricExpr | None:
    """Exact MWS as a closed form in the trip counts, or ``None``.

    ``array=None`` derives the program-level total window (the Figure-2
    objective); a name derives that array alone.  ``transformation``
    derives the window under a candidate execution order.  The result
    matches the exact window engines identically at every bound vector
    inside its ``domain`` — interpolation is verified against the
    simulator on held-out vectors (including per-axis corners, which
    expose regime switches) before being returned; any mismatch means
    ``None`` and the caller simulates instead.

    >>> from repro.ir import parse_program
    >>> p = parse_program('''
    ... for i = 1 to 25 {
    ...   for j = 1 to 10 {
    ...     X[2*i + 5*j] = 0
    ...   }
    ... }
    ... ''')
    >>> pe = derive_parametric_mws(p, "X")
    >>> pe.expr  # saturated in N1: the reuse spans 5 rows, no more
    5*N2 - 10
    >>> pe.substitute((25, 10))  # eq. (2) estimates 50; the truth
    40
    """
    from repro.window.simulator import max_total_window, max_window_size

    if not derivation_supported(program, array):
        return None
    base = derivation_base(program, array, transformation)

    def evaluate(trips: tuple[int, ...]) -> int:
        resized = with_trip_counts(program, trips)
        if array is None:
            return max_total_window(resized, transformation, engine=engine)
        return max_window_size(resized, array, transformation, engine=engine)

    fit = derive_polynomial(evaluate, program.nest.depth, base, seed=seed)
    if fit is None:
        return None
    expr, symbols, checked, method = fit
    return ParametricExpr("mws", array, expr, symbols, base, method, checked)
