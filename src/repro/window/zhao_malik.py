"""Zhao-Malik-style def-use liveness — the paper's main comparator.

Zhao & Malik (DAC 2000, "Exact memory size estimation for array
computation without loop unrolling") define the minimum memory via
def-use liveness: an element occupies storage from its (first) definition
to its last use.  The paper's window model differs in two ways:

* read-only (input) arrays: the window counts an element only between
  its first and last *accesses*, while def-use liveness counts an input
  element as live from the program start (it arrives with the data set);
* multiple writes: a def-use element can die and be reborn, which the
  single-interval window over-approximates.

This module computes the def-use minimum exactly (per the same sweep
machinery), so benches can put the two definitions side by side — the
quantitative version of the paper's related-work discussion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.ir.program import Program
from repro.linalg import IntMatrix
from repro.window.simulator import _iteration_order


@dataclass(frozen=True)
class DefUseReport:
    """Peak live storage under def-use semantics, per array and total."""

    per_array: dict
    total_peak: int


def _def_use_intervals(
    program: Program,
    array: str,
    transformation: IntMatrix | None,
) -> list[tuple[int, int]]:
    """Live intervals [birth, death) of each storage occupation.

    A write opens (or renews) an element's interval; reads extend it; an
    element never written (pure input) is live from time 0 through its
    last read.  Successive writes without intervening reads collapse —
    the old value dies at the overwrite.
    """
    refs = [ref for ref in program.references if ref.array == array]
    if not refs:
        raise KeyError(array)
    order = _iteration_order(program, transformation)
    iterator = order if order is not None else program.nest.iterate()

    intervals: list[tuple[int, int]] = []
    open_since: dict[tuple[int, ...], int] = {}
    last_touch: dict[tuple[int, ...], int] = {}
    for time, point in enumerate(iterator):
        for ref in refs:
            element = ref.element(point)
            if ref.is_write:
                if element in open_since:
                    # Previous value dies here (overwritten).
                    intervals.append((open_since[element], last_touch[element]))
                open_since[element] = time
            else:
                if element not in open_since:
                    open_since[element] = 0  # program input: live from start
            last_touch[element] = time
    for element, birth in open_since.items():
        intervals.append((birth, last_touch[element]))
    return intervals


def def_use_occupancy(
    program: Program,
    array: str,
    transformation: IntMatrix | None = None,
) -> tuple[int, ...]:
    """Def-use-live value count at every iteration of the execution order.

    The def-use analogue of the window occupancy trajectory: how many
    values of ``array`` occupy storage after each iteration executes
    (closed intervals — a value is counted through the iteration of its
    last use).
    """
    intervals = _def_use_intervals(program, array, transformation)
    total = program.nest.total_iterations
    deltas = [0] * (total + 2)
    for birth, death in intervals:
        deltas[birth] += 1
        deltas[death + 1] -= 1
    occupancy = []
    current = 0
    for t in range(total):
        current += deltas[t]
        occupancy.append(current)
    return tuple(occupancy)


def def_use_peak(
    program: Program,
    array: str,
    transformation: IntMatrix | None = None,
) -> int:
    """Peak simultaneous def-use-live values of one array."""
    intervals = _def_use_intervals(program, array, transformation)
    events: dict[int, int] = {}
    for birth, death in intervals:
        events[birth] = events.get(birth, 0) + 1
        events[death + 1] = events.get(death + 1, 0) - 1
    peak = current = 0
    for t in sorted(events):
        current += events[t]
        peak = max(peak, current)
    return peak


def _first_last_seen(
    program: Program,
    array: str,
    transformation: IntMatrix | None,
) -> tuple[dict, dict]:
    """First and last access time of each touched element of the array."""
    refs = [ref for ref in program.references if ref.array == array]
    if not refs:
        raise KeyError(array)
    order = _iteration_order(program, transformation)
    iterator = order if order is not None else program.nest.iterate()
    first_seen: dict[tuple[int, ...], int] = {}
    last_seen: dict[tuple[int, ...], int] = {}
    for time, point in enumerate(iterator):
        for ref in refs:
            element = ref.element(point)
            if element not in first_seen:
                first_seen[element] = time
            last_seen[element] = time
    return first_seen, last_seen


def _window_intervals(first_seen: dict, last_seen: dict) -> tuple[list, list]:
    """Sorted half-open window interval bounds ``[first, last)``; elements
    touched at only one time never occupy the window and are dropped."""
    starts = sorted(
        first_seen[e] for e in first_seen if last_seen[e] > first_seen[e]
    )
    ends = sorted(
        last_seen[e] for e in first_seen if last_seen[e] > first_seen[e]
    )
    return starts, ends


def _two_pointer_peak(starts: list, ends: list) -> int:
    """Peak concurrent half-open intervals via the classic merge scan."""
    peak = current = 0
    i = j = 0
    while i < len(starts):
        if starts[i] < ends[j]:
            current += 1
            if current > peak:
                peak = current
            i += 1
        else:
            current -= 1
            j += 1
    return peak


def max_window_size_zhao_malik(
    program: Program,
    array: str,
    transformation: IntMatrix | None = None,
    profile: bool = False,
) -> int:
    """Third, independent MWS computation for differential testing.

    ``profile=True`` records the window-occupancy trajectory computed by
    this implementation into the active observer's metrics under the
    ``liveness.zm.<array>`` prefix — a differential cross-check of the
    occupancy the fast engine reports (no-op while observability is
    disabled).

    Uses the paper's *window* semantics (an element is live from its
    first access to just before its last — inputs are **not** live from
    program start, unlike :func:`def_use_peak`) but a different
    algorithm from both :mod:`repro.window.simulator` (event-dict sweep)
    and :mod:`repro.window.fast` (vectorized scatter): the classic
    two-pointer merge over independently sorted interval starts and
    ends.  Windows are half-open ``[first, last)``.

    >>> from repro.ir import parse_program
    >>> p = parse_program('''
    ... for i = 1 to 25 {
    ...   for j = 1 to 10 {
    ...     X[2*i + 5*j + 1] = X[2*i + 5*j + 5]
    ...   }
    ... }
    ... ''')
    >>> max_window_size_zhao_malik(p, "X")
    44
    """
    first_seen, last_seen = _first_last_seen(program, array, transformation)
    starts, ends = _window_intervals(first_seen, last_seen)
    peak = _two_pointer_peak(starts, ends)
    if profile and obs.enabled():
        from repro.window.simulator import LivenessProfile, record_liveness

        total = program.nest.total_iterations
        deltas = [0] * (total + 1)
        for element, start in first_seen.items():
            end = last_seen[element]
            if end > start:
                deltas[start] += 1
                deltas[end] -= 1
        occupancy = []
        running = 0
        for t in range(total):
            running += deltas[t]
            occupancy.append(running)
        peak_time = occupancy.index(peak) if occupancy else -1
        record_liveness(
            LivenessProfile(
                array=array,
                occupancy=tuple(occupancy),
                peak=peak,
                peak_time=peak_time,
                peak_point=None,
                reuse_histogram={},
            ),
            prefix="liveness.zm",
        )
    return peak


def max_total_window_zhao_malik(
    program: Program,
    transformation: IntMatrix | None = None,
    arrays=None,
) -> int:
    """Exact total MWS (``max_t sum_X |W_X(t)|``) via the two-pointer scan.

    Window semantics (not def-use): all arrays' half-open intervals are
    merged into one sorted-boundary sweep, matching
    :func:`repro.window.simulator.max_total_window_reference` — the
    differential suite pins them equal.
    """
    names = tuple(arrays) if arrays is not None else program.arrays
    starts: list[int] = []
    ends: list[int] = []
    for array in names:
        first_seen, last_seen = _first_last_seen(program, array, transformation)
        array_starts, array_ends = _window_intervals(first_seen, last_seen)
        starts.extend(array_starts)
        ends.extend(array_ends)
    starts.sort()
    ends.sort()
    return _two_pointer_peak(starts, ends)


def zhao_malik_report(
    program: Program,
    transformation: IntMatrix | None = None,
) -> DefUseReport:
    """Def-use minimum memory for every array plus the total peak."""
    per_array = {
        array: def_use_peak(program, array, transformation)
        for array in program.arrays
    }
    # Total: merge all arrays' intervals into one sweep.
    events: dict[int, int] = {}
    for array in program.arrays:
        for birth, death in _def_use_intervals(program, array, transformation):
            events[birth] = events.get(birth, 0) + 1
            events[death + 1] = events.get(death + 1, 0) - 1
    peak = current = 0
    for t in sorted(events):
        current += events[t]
        peak = max(peak, current)
    return DefUseReport(per_array, peak)
