"""Vectorized (numpy) implementation of the window simulator.

Semantically identical to the pure-Python sweep in
:mod:`repro.window.simulator` — the test suite asserts equality on
randomized programs — but orders of magnitude faster, which is what makes
the Figure-2 optimization search (hundreds of candidate transformations
over ~10^5-iteration nests) tractable.
"""

from __future__ import annotations

import math
import weakref

import numpy as np

from repro import obs
from repro.ir.program import Program
from repro.linalg import IntMatrix

#: Dense enumeration materializes an ``(N, n)`` int64 matrix and packs
#: element coordinates into int64 ids; both silently wrap past 2**63.
#: Guard well below that — a nest this large should go to the symbolic
#: estimators, not the simulator.
_INT64_LIMIT = 2**62

#: Program -> iteration matrix.  Module-level and weakly keyed (rather
#: than an attribute stashed on the Program) so it works if Program ever
#: becomes frozen/slotted, stays out of pickles shipped to worker
#: processes, and dies with the program object.
_ITER_MATRIX_CACHE: "weakref.WeakKeyDictionary[Program, np.ndarray]" = (
    weakref.WeakKeyDictionary()
)


def _iteration_matrix(program: Program) -> np.ndarray:
    """All iteration vectors as an ``(N, n)`` int64 array (cached)."""
    cached = _ITER_MATRIX_CACHE.get(program)
    if cached is not None:
        obs.counter("fast.iter_matrix.hits")
        return cached
    obs.counter("fast.iter_matrix.misses")
    lowers = np.array(program.nest.lowers, dtype=np.int64)
    trips = np.array(program.nest.trip_counts, dtype=np.int64)
    n = program.nest.depth
    # math.prod over Python ints cannot wrap, unlike np.prod over int64.
    total = math.prod(int(t) for t in trips)
    if total >= _INT64_LIMIT:
        raise ValueError(
            f"nest has {total} iterations; dense enumeration would "
            f"overflow int64 indexing (limit {_INT64_LIMIT})"
        )
    points = np.empty((total, n), dtype=np.int64)
    repeat = total
    tile = 1
    for k in range(n):
        repeat //= int(trips[k])
        axis = np.repeat(np.arange(trips[k], dtype=np.int64) + lowers[k], repeat)
        points[:, k] = np.tile(axis, tile)
        tile *= int(trips[k])
    _ITER_MATRIX_CACHE[program] = points
    return points


def clear_iteration_cache() -> None:
    """Drop all cached iteration matrices (tests, memory pressure)."""
    _ITER_MATRIX_CACHE.clear()


def _execution_times(
    program: Program, transformation: IntMatrix | None
) -> np.ndarray:
    """``times[p]`` = execution position of iteration ``p`` (native order
    row index) under the given transformation."""
    points = _iteration_matrix(program)
    total = points.shape[0]
    if transformation is None:
        return np.arange(total, dtype=np.int64)
    if transformation.det() not in (1, -1):
        raise ValueError("transformation must be unimodular")
    t = np.array(transformation.to_lists(), dtype=np.int64)
    keys = points @ t.T
    # lexsort sorts by last key first; feed columns reversed.
    order = np.lexsort(keys.T[::-1])
    times = np.empty(total, dtype=np.int64)
    times[order] = np.arange(total, dtype=np.int64)
    return times


def _element_ids(program: Program, array: str) -> list[np.ndarray]:
    """Per-reference element ids, unified across all references to the array.

    Elements are encoded by mixed-radix packing over the touched bounding
    box, so equal elements share one integer id across references.
    """
    refs = [ref for ref in program.references if ref.array == array]
    if not refs:
        raise KeyError(array)
    points = _iteration_matrix(program)
    per_ref = []
    for ref in refs:
        a = np.array(ref.access.to_lists(), dtype=np.int64)
        b = np.array(ref.offset, dtype=np.int64)
        elems = points @ a.T + b
        per_ref.append(elems)
    # Pack coordinates using the touched bounding box of all refs.
    stacked = np.concatenate(per_ref, axis=0)
    mins = stacked.min(axis=0)
    maxs = stacked.max(axis=0)
    spans = (maxs - mins + 1).astype(np.int64)
    if math.prod(int(s) for s in spans) >= _INT64_LIMIT:
        raise ValueError(
            f"array {array}: touched bounding box {spans.tolist()} too "
            f"large for int64 element packing"
        )
    ids = []
    for elems in per_ref:
        shifted = elems - mins
        packed = np.zeros(elems.shape[0], dtype=np.int64)
        for dim in range(elems.shape[1]):
            packed = packed * spans[dim] + shifted[:, dim]
        ids.append(packed)
    return ids


@obs.profiled("fast.window_deltas")
def window_deltas(
    program: Program,
    array: str,
    transformation: IntMatrix | None = None,
) -> np.ndarray:
    """+1/-1 event array over execution time for one array's live set."""
    times = _execution_times(program, transformation)
    total = times.shape[0]
    ids = _element_ids(program, array)
    all_ids = np.concatenate(ids)
    all_times = np.concatenate([times] * len(ids))
    # Compress ids.
    unique_ids, inverse = np.unique(all_ids, return_inverse=True)
    n_elems = unique_ids.shape[0]
    first = np.full(n_elems, total, dtype=np.int64)
    last = np.full(n_elems, -1, dtype=np.int64)
    np.minimum.at(first, inverse, all_times)
    np.maximum.at(last, inverse, all_times)
    live = last > first
    deltas = np.zeros(total + 1, dtype=np.int64)
    np.add.at(deltas, first[live], 1)
    np.add.at(deltas, last[live], -1)
    return deltas


def liveness_profile_fast(
    program: Program,
    array: str,
    transformation: IntMatrix | None = None,
):
    """Vectorized liveness profile; semantics defined by
    :func:`repro.window.simulator.liveness_profile` (the test suite pins
    them equal on native and transformed orders)."""
    from repro.window.simulator import LivenessProfile

    times = _execution_times(program, transformation)
    total = times.shape[0]
    ids = _element_ids(program, array)
    all_ids = np.concatenate(ids)
    all_times = np.concatenate([times] * len(ids))
    unique_ids, inverse = np.unique(all_ids, return_inverse=True)
    n_elems = unique_ids.shape[0]
    first = np.full(n_elems, total, dtype=np.int64)
    last = np.full(n_elems, -1, dtype=np.int64)
    np.minimum.at(first, inverse, all_times)
    np.maximum.at(last, inverse, all_times)
    live = last > first
    deltas = np.zeros(total + 1, dtype=np.int64)
    np.add.at(deltas, first[live], 1)
    np.add.at(deltas, last[live], -1)
    occupancy = np.cumsum(deltas[:-1])
    peak = int(occupancy.max(initial=0))
    peak_time = int(np.argmax(occupancy)) if total else -1
    peak_point: tuple[int, ...] | None = None
    if total:
        points = _iteration_matrix(program)
        native_row = int(np.nonzero(times == peak_time)[0][0])
        peak_point = tuple(int(v) for v in points[native_row])
    # Reuse distances: gaps between consecutive accesses to the same
    # element.  Sort accesses by (element, time); equal-element adjacent
    # pairs are exactly the consecutive accesses.
    order = np.lexsort((all_times, inverse))
    sorted_elems = inverse[order]
    sorted_times = all_times[order]
    same_elem = sorted_elems[1:] == sorted_elems[:-1]
    gaps = (sorted_times[1:] - sorted_times[:-1])[same_elem]
    values, counts = np.unique(gaps, return_counts=True)
    reuse_histogram = {int(v): int(c) for v, c in zip(values, counts)}
    return LivenessProfile(
        array=array,
        occupancy=tuple(int(v) for v in occupancy),
        peak=peak,
        peak_time=peak_time,
        peak_point=peak_point,
        reuse_histogram=reuse_histogram,
    )


def max_window_size_fast(
    program: Program,
    array: str,
    transformation: IntMatrix | None = None,
    profile: bool = False,
) -> int:
    """Vectorized exact MWS for one array.

    ``profile=True`` records the liveness profile (occupancy trajectory,
    peak location, reuse-distance histogram) into the active observer's
    metrics registry; while observability is disabled — or with the
    default ``profile=False`` — the extra path costs one boolean check.
    """
    obs.counter("fast.simulate.calls")
    with obs.span("simulate", array=array):
        if profile and obs.enabled():
            from repro.window.simulator import record_liveness

            prof = liveness_profile_fast(program, array, transformation)
            record_liveness(prof)
            return prof.peak
        deltas = window_deltas(program, array, transformation)
        sizes = np.cumsum(deltas[:-1])
        return int(sizes.max(initial=0))


def max_total_window_fast(
    program: Program,
    transformation: IntMatrix | None = None,
    arrays=None,
    profile: bool = False,
) -> int:
    """Vectorized exact total MWS (``max_t sum_X |W_X(t)|``).

    ``profile=True`` records one liveness profile per involved array.
    """
    obs.counter("fast.simulate.calls")
    with obs.span("simulate", array="*"):
        names = tuple(arrays) if arrays is not None else program.arrays
        total = program.nest.total_iterations
        deltas = np.zeros(total + 1, dtype=np.int64)
        do_profile = profile and obs.enabled()
        if do_profile:
            from repro.window.simulator import record_liveness
        for array in names:
            deltas += window_deltas(program, array, transformation)
            if do_profile:
                record_liveness(liveness_profile_fast(program, array, transformation))
        sizes = np.cumsum(deltas[:-1])
        return int(sizes.max(initial=0))


def window_profile_fast(
    program: Program,
    array: str,
    transformation: IntMatrix | None = None,
) -> np.ndarray:
    """Vectorized window-size profile over execution time."""
    deltas = window_deltas(program, array, transformation)
    return np.cumsum(deltas[:-1])
