"""Vectorized (numpy) implementation of the window simulator.

Semantically identical to the pure-Python sweep in
:mod:`repro.window.simulator` — the test suite asserts equality on
randomized programs — but orders of magnitude faster, which is what makes
the Figure-2 optimization search (hundreds of candidate transformations
over ~10^5-iteration nests) tractable.

Two layers of caching keep the search hot path cheap:

* iteration/element state is cached per ``Program.signature()`` content
  hash (not per object identity), so structurally equal programs — and in
  particular programs re-pickled into pool workers — share one
  enumeration;
* the MWS path never ranks execution times.  MWS only needs an
  *order-isomorphic* scalar key per iteration: lexicographic order of
  ``u = T @ i`` equals numeric order of the mixed-radix packing of ``u``
  over its per-column extents, so a matmul + packing replaces the old
  ``np.lexsort`` (the former single biggest cost of candidate
  evaluation).  Dense ranks are still computed for the profile paths,
  which genuinely need 0..N-1 positions.
"""

from __future__ import annotations

import math
import os
from collections import OrderedDict
from typing import NamedTuple, Sequence

import numpy as np

from repro import obs
from repro.envutil import env_int
from repro.ir.program import Program
from repro.linalg import IntMatrix

#: Dense enumeration materializes an ``(N, n)`` int64 matrix and packs
#: element coordinates into int64 ids; both silently wrap past 2**63.
#: Guard well below that — a nest this large should go to the symbolic
#: estimators or the streaming engine, not the dense simulator.
_INT64_LIMIT = 2**62

#: Environment variable overriding the dense-enumeration budget.
DENSE_BUDGET_ENV = "REPRO_DENSE_BUDGET"

#: Default ceiling on dense enumeration (iterations).  2**26 points keep
#: the ``(N, n)`` matrix and its per-array id arrays within ~2 GiB for
#: typical depths; beyond it ``engine="auto"`` switches to the streaming
#: engine (:mod:`repro.window.streaming`).
DEFAULT_DENSE_BUDGET = 2**26


def dense_budget() -> int:
    """Iteration ceiling for dense enumeration (env-overridable)."""
    return env_int(DENSE_BUDGET_ENV, DEFAULT_DENSE_BUDGET)


class _ElementState(NamedTuple):
    """Per-(program, array) access structure, transformation-invariant.

    ``ids`` are the per-reference packed element ids; ``point_row`` maps
    each access (in element-sorted order) back to its native iteration
    row; ``seg_starts`` delimits the runs of equal elements inside that
    order, so per-candidate lifetimes are two ``reduceat`` calls over a
    gathered time array instead of a unique + scatter per candidate.
    """

    ids: tuple[np.ndarray, ...]
    point_row: np.ndarray
    seg_starts: np.ndarray
    n_elems: int


class _IterState:
    """Everything derivable from the program alone (no transformation)."""

    __slots__ = ("points", "elements")

    def __init__(self, points: np.ndarray) -> None:
        self.points = points
        self.elements: dict[str, _ElementState] = {}


#: ``Program.signature()`` -> iteration/element state.  Signature-keyed
#: (content hash) rather than weakly object-keyed so that structurally
#: equal programs hit — including clones created by pickling programs
#: into pool workers, which an object-identity cache can never serve.
_ITER_STATE: "OrderedDict[str, _IterState]" = OrderedDict()

#: Bounded LRU size; each entry can hold an ``(N, n)`` matrix, so keep
#: only a small working set of distinct programs.
_ITER_STATE_LIMIT = 32


def _iter_state(program: Program) -> _IterState:
    """Cached iteration state for the program (signature-keyed LRU)."""
    key = program.signature()
    state = _ITER_STATE.get(key)
    if state is not None:
        obs.counter("fast.iter_matrix.hits")
        _ITER_STATE.move_to_end(key)
        return state
    obs.counter("fast.iter_matrix.misses")
    lowers = np.array(program.nest.lowers, dtype=np.int64)
    trips = np.array(program.nest.trip_counts, dtype=np.int64)
    n = program.nest.depth
    # math.prod over Python ints cannot wrap, unlike np.prod over int64.
    total = math.prod(int(t) for t in trips)
    budget = min(dense_budget(), _INT64_LIMIT)
    if total > budget:
        raise ValueError(
            f"nest has {total} iterations; dense enumeration exceeds the "
            f"budget of {budget} (use the streaming engine, or raise "
            f"{DENSE_BUDGET_ENV})"
        )
    points = np.empty((total, n), dtype=np.int64)
    repeat = total
    tile = 1
    for k in range(n):
        repeat //= int(trips[k])
        axis = np.repeat(np.arange(trips[k], dtype=np.int64) + lowers[k], repeat)
        points[:, k] = np.tile(axis, tile)
        tile *= int(trips[k])
    state = _IterState(points)
    _ITER_STATE[key] = state
    while len(_ITER_STATE) > _ITER_STATE_LIMIT:
        _ITER_STATE.popitem(last=False)
    return state


def _iteration_matrix(program: Program) -> np.ndarray:
    """All iteration vectors as an ``(N, n)`` int64 array (cached)."""
    return _iter_state(program).points


def clear_iteration_cache() -> None:
    """Drop all cached iteration/element state (tests, memory pressure).

    Specialized sweep kernels (:mod:`repro.window.batched`) are compiled
    against the cached element layout, so they are dropped alongside it.
    """
    _ITER_STATE.clear()
    from repro.window.batched import clear_kernel_cache

    clear_kernel_cache()


def spans_fit_int64(spans: Sequence[int]) -> bool:
    """Whether a mixed-radix pack over ``spans`` stays inside int64.

    The packed key for per-column extents ``spans`` ranges over
    ``[0, prod(spans))``; heavily skewed transformations can push that
    product past 2**62, where :func:`_pack_columns` would silently wrap.
    Callers must fall back to ``np.lexsort`` dense ranks (or refuse, for
    element ids) when this returns False.  ``math.prod`` over Python
    ints cannot itself overflow.
    """
    return math.prod(int(s) for s in spans) < _INT64_LIMIT


def _affine_extents(
    rows: Sequence[Sequence[int]],
    offsets: Sequence[int],
    lowers: Sequence[int],
    uppers: Sequence[int],
) -> tuple[list[int], list[int]]:
    """Exact per-row extents of ``rows @ i + offsets`` over the box.

    Interval arithmetic is exact here because each output coordinate is
    affine in ``i`` and the iteration space is a rectangular box.
    """
    mins: list[int] = []
    maxs: list[int] = []
    for row, off in zip(rows, offsets):
        lo = hi = int(off)
        for coeff, lower, upper in zip(row, lowers, uppers):
            c = int(coeff)
            if c >= 0:
                lo += c * lower
                hi += c * upper
            else:
                lo += c * upper
                hi += c * lower
        mins.append(lo)
        maxs.append(hi)
    return mins, maxs


def _pack_columns(
    values: np.ndarray, mins: Sequence[int], spans: Sequence[int]
) -> np.ndarray:
    """Mixed-radix pack of integer columns into one int64 key per row.

    With every column shifted into ``[0, span)``, the packing is a
    bijection from coordinate tuples to integers that preserves
    lexicographic order — the packed keys are order-isomorphic to the
    rows.  Callers must have checked :func:`spans_fit_int64`; the guard
    here is the last line of defense against silent int64 wrap.
    """
    if not spans_fit_int64(spans):
        raise OverflowError(
            f"mixed-radix pack over spans {list(spans)} exceeds int64"
        )
    packed = np.zeros(values.shape[0], dtype=np.int64)
    for dim in range(values.shape[1]):
        packed = packed * np.int64(spans[dim])
        packed += values[:, dim] - np.int64(mins[dim])
    return packed


def _time_keys(
    program: Program, transformation: IntMatrix | None
) -> np.ndarray:
    """Order-isomorphic execution-time key per native iteration row.

    Native order packs to the linear index; a unimodular transformation
    packs ``u = T @ i`` over its exact extents.  Only the *order* of the
    keys is meaningful — use :func:`_execution_times` when dense 0..N-1
    ranks are required (profiles, delta arrays).
    """
    state = _iter_state(program)
    total = state.points.shape[0]
    if transformation is None:
        return np.arange(total, dtype=np.int64)
    if transformation.det() not in (1, -1):
        raise ValueError("transformation must be unimodular")
    rows = transformation.to_lists()
    mins, maxs = _affine_extents(
        rows, [0] * len(rows), program.nest.lowers, program.nest.uppers
    )
    spans = [hi - lo + 1 for lo, hi in zip(mins, maxs)]
    if not spans_fit_int64(spans):
        # Extents too wide to pack; fall back to dense lexsort ranks.
        obs.counter("fast.pack.fallback")
        return _execution_times(program, transformation)
    t = np.array(rows, dtype=np.int64)
    return _pack_columns(state.points @ t.T, mins, spans)


def _execution_times(
    program: Program, transformation: IntMatrix | None
) -> np.ndarray:
    """``times[p]`` = execution position of iteration ``p`` (native order
    row index) under the given transformation."""
    points = _iteration_matrix(program)
    total = points.shape[0]
    if transformation is None:
        return np.arange(total, dtype=np.int64)
    if transformation.det() not in (1, -1):
        raise ValueError("transformation must be unimodular")
    t = np.array(transformation.to_lists(), dtype=np.int64)
    keys = points @ t.T
    # lexsort sorts by last key first; feed columns reversed.
    order = np.lexsort(keys.T[::-1])
    times = np.empty(total, dtype=np.int64)
    times[order] = np.arange(total, dtype=np.int64)
    return times


def _element_state(program: Program, array: str) -> _ElementState:
    """Cached per-array access structure (see :class:`_ElementState`)."""
    state = _iter_state(program)
    cached = state.elements.get(array)
    if cached is not None:
        return cached
    refs = [ref for ref in program.references if ref.array == array]
    if not refs:
        raise KeyError(array)
    points = state.points
    total = points.shape[0]
    per_ref = []
    for ref in refs:
        a = np.array(ref.access.to_lists(), dtype=np.int64)
        b = np.array(ref.offset, dtype=np.int64)
        per_ref.append(points @ a.T + b)
    # Pack coordinates using the touched bounding box of all refs.
    stacked = np.concatenate(per_ref, axis=0)
    mins = stacked.min(axis=0)
    maxs = stacked.max(axis=0)
    spans = (maxs - mins + 1).astype(np.int64)
    if not spans_fit_int64(spans):
        raise ValueError(
            f"array {array}: touched bounding box {spans.tolist()} too "
            f"large for int64 element packing"
        )
    ids = tuple(
        _pack_columns(elems, mins.tolist(), spans.tolist()) for elems in per_ref
    )
    all_ids = np.concatenate(ids)
    _, inverse = np.unique(all_ids, return_inverse=True)
    order = np.argsort(inverse, kind="stable")
    seg_starts = np.flatnonzero(np.diff(inverse[order], prepend=-1))
    element = _ElementState(
        ids=ids,
        point_row=order % total,
        seg_starts=seg_starts,
        n_elems=int(seg_starts.shape[0]),
    )
    state.elements[array] = element
    return element


def _element_ids(program: Program, array: str) -> list[np.ndarray]:
    """Per-reference element ids, unified across all references to the array.

    Elements are encoded by mixed-radix packing over the touched bounding
    box, so equal elements share one integer id across references.
    """
    return list(_element_state(program, array).ids)


def _lifetimes(
    program: Program, array: str, times: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``(first, last)`` time keys of each *live* element of the array.

    ``times`` may be any order-isomorphic key array (:func:`_time_keys`);
    elements touched at a single time are dropped (never in the window).
    """
    element = _element_state(program, array)
    seq = times[element.point_row]
    first = np.minimum.reduceat(seq, element.seg_starts)
    last = np.maximum.reduceat(seq, element.seg_starts)
    live = last > first
    return first[live], last[live]


def _peak_concurrent(starts: np.ndarray, ends: np.ndarray) -> int:
    """Peak number of concurrently open half-open intervals.

    Occupancy at time ``t`` is ``#(starts <= t) - #(ends <= t)`` (an
    element is windowed for ``first <= t < last``) and only increases at
    start times, so scanning sorted starts suffices: the ``i``-th
    smallest start ``s`` sees ``i + 1`` opens (for the last duplicate of
    a tied start value, which is where the maximum lands) minus the ends
    at or before ``s``.
    """
    if starts.size == 0:
        return 0
    starts = np.sort(starts)
    ends = np.sort(ends)
    occupancy = np.arange(1, starts.size + 1, dtype=np.int64)
    occupancy -= np.searchsorted(ends, starts, side="right")
    return int(occupancy.max())


@obs.profiled("fast.window_deltas")
def window_deltas(
    program: Program,
    array: str,
    transformation: IntMatrix | None = None,
) -> np.ndarray:
    """+1/-1 event array over execution time for one array's live set.

    Needs dense 0..N-1 execution ranks (the deltas are indexed by time),
    so this is the profile-path workhorse; the plain MWS path uses
    :func:`_lifetimes` + :func:`_peak_concurrent` on packed keys instead.
    """
    times = _execution_times(program, transformation)
    total = times.shape[0]
    first, last = _lifetimes(program, array, times)
    deltas = np.zeros(total + 1, dtype=np.int64)
    np.add.at(deltas, first, 1)
    np.add.at(deltas, last, -1)
    return deltas


def liveness_profile_fast(
    program: Program,
    array: str,
    transformation: IntMatrix | None = None,
):
    """Vectorized liveness profile; semantics defined by
    :func:`repro.window.simulator.liveness_profile` (the test suite pins
    them equal on native and transformed orders)."""
    from repro.window.simulator import LivenessProfile

    times = _execution_times(program, transformation)
    total = times.shape[0]
    ids = _element_ids(program, array)
    all_ids = np.concatenate(ids)
    all_times = np.concatenate([times] * len(ids))
    unique_ids, inverse = np.unique(all_ids, return_inverse=True)
    n_elems = unique_ids.shape[0]
    first = np.full(n_elems, total, dtype=np.int64)
    last = np.full(n_elems, -1, dtype=np.int64)
    np.minimum.at(first, inverse, all_times)
    np.maximum.at(last, inverse, all_times)
    live = last > first
    deltas = np.zeros(total + 1, dtype=np.int64)
    np.add.at(deltas, first[live], 1)
    np.add.at(deltas, last[live], -1)
    occupancy = np.cumsum(deltas[:-1])
    peak = int(occupancy.max(initial=0))
    peak_time = int(np.argmax(occupancy)) if total else -1
    peak_point: tuple[int, ...] | None = None
    if total:
        points = _iteration_matrix(program)
        native_row = int(np.nonzero(times == peak_time)[0][0])
        peak_point = tuple(int(v) for v in points[native_row])
    # Reuse distances: gaps between consecutive accesses to the same
    # element.  Sort accesses by (element, time); equal-element adjacent
    # pairs are exactly the consecutive accesses.
    order = np.lexsort((all_times, inverse))
    sorted_elems = inverse[order]
    sorted_times = all_times[order]
    same_elem = sorted_elems[1:] == sorted_elems[:-1]
    gaps = (sorted_times[1:] - sorted_times[:-1])[same_elem]
    values, counts = np.unique(gaps, return_counts=True)
    reuse_histogram = {int(v): int(c) for v, c in zip(values, counts)}
    return LivenessProfile(
        array=array,
        occupancy=tuple(int(v) for v in occupancy),
        peak=peak,
        peak_time=peak_time,
        peak_point=peak_point,
        reuse_histogram=reuse_histogram,
    )


def max_window_size_fast(
    program: Program,
    array: str,
    transformation: IntMatrix | None = None,
    profile: bool = False,
) -> int:
    """Vectorized exact MWS for one array.

    ``profile=True`` records the liveness profile (occupancy trajectory,
    peak location, reuse-distance histogram) into the active observer's
    metrics registry; while observability is disabled — or with the
    default ``profile=False`` — the extra path costs one boolean check.
    """
    obs.counter("fast.simulate.calls")
    with obs.span("simulate", array=array):
        if profile and obs.enabled():
            from repro.window.simulator import record_liveness

            prof = liveness_profile_fast(program, array, transformation)
            record_liveness(prof)
            return prof.peak
        times = _time_keys(program, transformation)
        first, last = _lifetimes(program, array, times)
        return _peak_concurrent(first, last)


def max_total_window_fast(
    program: Program,
    transformation: IntMatrix | None = None,
    arrays=None,
    profile: bool = False,
) -> int:
    """Vectorized exact total MWS (``max_t sum_X |W_X(t)|``).

    ``profile=True`` records one liveness profile per involved array.
    """
    obs.counter("fast.simulate.calls")
    with obs.span("simulate", array="*"):
        names = tuple(arrays) if arrays is not None else program.arrays
        do_profile = profile and obs.enabled()
        if do_profile:
            from repro.window.simulator import record_liveness

            for array in names:
                record_liveness(
                    liveness_profile_fast(program, array, transformation)
                )
        times = _time_keys(program, transformation)
        starts = []
        ends = []
        for array in names:
            first, last = _lifetimes(program, array, times)
            starts.append(first)
            ends.append(last)
        if not starts:
            return 0
        return _peak_concurrent(np.concatenate(starts), np.concatenate(ends))


def window_profile_fast(
    program: Program,
    array: str,
    transformation: IntMatrix | None = None,
) -> np.ndarray:
    """Vectorized window-size profile over execution time."""
    deltas = window_deltas(program, array, transformation)
    return np.cumsum(deltas[:-1])
