"""Batched multi-candidate MWS scoring with specialized sweep kernels.

The search's hot path scores hundreds of candidate transformations of
*one* program, and everything about the program — the iteration matrix,
each array's element layout — is transformation-invariant and already
cached (:mod:`repro.window.fast`).  The per-candidate path still pays K
separate matmuls, K packings and K sweeps.  This module scores all K
pending candidates at once:

* :func:`batched_mws` folds each candidate's mixed-radix pack into a
  single weight vector (the pack is linear in ``u = T @ i``), computes
  all K time keys with one ``(N, n) @ (n, K)`` integer matmul against
  the shared point matrix, and runs the first/last-touch min/max
  reductions and the event sweep across the candidate axis in single
  vectorized ops.  A candidate whose transformed extents overflow the
  int64 pack falls back to ``np.lexsort`` dense ranks for its key row
  only and still joins the batched sweep.
* the sweep itself is a *specialized kernel*: :mod:`repro.ir.codegen`
  emits a flat numpy (or C-via-cffi) function for this exact
  nest/reference structure with every size baked in, compiled here and
  cached by program signature.  ``REPRO_KERNEL=python`` (default) execs
  the numpy source, ``c`` compiles via cffi when available (falling
  back to python with a ``kernel.fallback`` counter — CI has no cffi),
  ``off`` uses a generic non-specialized batched sweep.

Counters: ``batch.candidates`` (candidates entering a batch),
``kernel.specialized`` (kernel builds), ``kernel.fallback`` (C
requested but unavailable).  The batched path bumps
``fast.simulate.calls`` and ``engine.fast.calls`` once per candidate so
serial, parallel, and batched totals reconcile exactly.

Kernels are dropped by :func:`clear_kernel_cache`, which
:func:`repro.window.fast.clear_iteration_cache` calls — a kernel is
compiled against the cached element layout and must not outlive it.
(Surviving an *LRU eviction* of that layout is harmless: the layout is
a deterministic function of the program, so a stale binding still
computes the same answer.)
"""

from __future__ import annotations

import hashlib
import importlib
import sys
import tempfile
from collections import OrderedDict
from typing import Callable, Sequence

import numpy as np

from repro import obs
from repro.envutil import env_choice, env_int
from repro.ir import codegen
from repro.ir.codegen import (
    SweepArraySpec,
    sweep_kernel_c_source,
    sweep_kernel_source,
)
from repro.ir.program import Program
from repro.linalg import IntMatrix
from repro.window import fast

#: Environment variable selecting the sweep-kernel backend.
KERNEL_ENV = "REPRO_KERNEL"

#: Accepted ``REPRO_KERNEL`` values: ``python`` (default) execs the
#: specialized numpy source, ``c`` compiles it via cffi (falls back to
#: python when cffi or a compiler is missing), ``off`` disables
#: specialization and uses the generic batched sweep.
KERNEL_MODES = ("python", "c", "off")

#: Environment variable overriding the scoring batch size.
BATCH_SIZE_ENV = "REPRO_BATCH_SIZE"

#: Default candidates per batch for the cascade's survivor windows.
#: Measured on the Figure-2 table: the per-batch win saturates around
#: 8-16 survivors (key computation amortizes; the sweep is already one
#: call), while larger windows delay incumbent updates and simulate
#: candidates a tighter window would have pruned.
DEFAULT_BATCH_SIZE = 16

#: Magnitude ceiling for values entering the vectorized int64 candidate
#: prep.  The true wrap limit is 2**63; screening at 2**58 leaves room
#: for float64 rounding in the screen itself and for summing up to
#: sixteen screened terms without overflow.
_SAFE_PREP = float(1 << 58)

#: Same screen for int32 keys: wrap is at 2**31, so clearing 2**27
#: keeps the identical 16x rounding margin and summation headroom.
_SAFE_PREP32 = float(1 << 27)

#: Ceiling on ``rows x iteration-points`` processed per internal chunk;
#: bounds the ``(K, N)`` key matrix and the sweep temporaries to a few
#: hundred MiB regardless of how many misses a caller submits at once.
_CHUNK_ELEMS = 1 << 24


def kernel_mode() -> str:
    """Sweep-kernel backend (env-overridable, validated)."""
    return env_choice(KERNEL_ENV, "python", KERNEL_MODES)


def batch_size() -> int:
    """Candidates per scoring batch (env-overridable)."""
    return env_int(BATCH_SIZE_ENV, DEFAULT_BATCH_SIZE)


#: ``(program signature, arrays, backend)`` -> compiled sweep callable.
_KERNELS: "OrderedDict[tuple, Callable[[np.ndarray], np.ndarray]]" = (
    OrderedDict()
)
_KERNELS_LIMIT = 64


#: ``program signature`` -> float64 copy of the cached point matrix.
#: Batches whose screened bounds stay under 2**53 compute the key
#: matmul through BLAS dgemm — every product and partial sum is an
#: exact float64 integer — instead of numpy's much slower loop-based
#: integer matmul.
_POINTSF: "OrderedDict[str, np.ndarray]" = OrderedDict()
_POINTSF_LIMIT = 8


def clear_kernel_cache() -> None:
    """Drop all compiled sweep kernels (cleared with the iteration cache)."""
    _KERNELS.clear()
    _POINTSF.clear()


def _points_f64(program: Program, points: np.ndarray) -> np.ndarray:
    """Cached float64 copy of the program's point matrix (loop index
    values, far inside float64's integer range, so the cast is exact)."""
    sig = program.signature()
    arr = _POINTSF.get(sig)
    if arr is None or arr.shape != points.shape:
        arr = points.astype(np.float64)
        _POINTSF[sig] = arr
        while len(_POINTSF) > _POINTSF_LIMIT:
            _POINTSF.popitem(last=False)
    else:
        _POINTSF.move_to_end(sig)
    return arr


def _batched_time_keys(
    program: Program, candidates: Sequence[IntMatrix | None]
) -> np.ndarray:
    """Order-isomorphic time keys for every candidate: ``(K, N)`` ints.

    Row ``k`` equals ``fast._time_keys(program, candidates[k])`` exactly
    (as an order, which is all the sweep reads).  The mixed-radix pack
    of ``u = T @ i`` over per-column extents is *linear* in ``u``: with
    weights ``w[d] = prod(spans[d+1:])``,

        packed = sum_d (u_d - min_d) * w_d = i . (T^T w) - sum_d min_d w_d

    so the entire batch collapses to one ``(N, n) @ (n, B)`` integer
    matmul against the shared point matrix plus a per-candidate offset —
    no ``(B, N, n)`` intermediate and no per-dimension packing passes.
    The fused dot loses the Horner form's stay-in-range guarantee, so
    each candidate's partial sums are bounded (interval arithmetic over
    the box, any summation order) before it joins the batch; candidates
    that overflow — or whose spans overflow the pack itself — fall back
    to dense lexsort ranks for their row alone (``fast.pack.fallback``),
    and ``None`` rows are the native order.

    When the whole batch is provably bounded under 2**27 the keys are
    emitted as int32: every downstream sweep stage (gather, min/max,
    sort, scan) moves half the bytes, which is most of the win on
    small nests.
    """
    state = fast._iter_state(program)
    points = state.points
    total = points.shape[0]
    lowers = list(program.nest.lowers)
    uppers = list(program.nest.uppers)
    mat_rows: list[int] = []
    mats: list[IntMatrix] = []
    none_rows: list[int] = []
    for k, t in enumerate(candidates):
        if t is None:
            none_rows.append(k)
        else:
            mat_rows.append(k)
            mats.append(t)
    dtype = np.int64
    mm_float = False
    tstack = None
    safe_pos = np.empty(0, dtype=np.intp)
    exact: list[int] = []  # positions in ``mats`` for the python-int path
    if mats:
        try:
            tstack = np.array([t.rows for t in mats], dtype=np.int64)
        except OverflowError:
            for t in mats:
                if t.det() not in (1, -1):
                    raise ValueError("transformation must be unimodular")
            exact = list(range(len(mats)))
    if tstack is not None:
        n = tstack.shape[1]
        det_limit = 2.0 ** max(1.0, (53.0 - n) / n - 2.0)
        # Crude whole-batch prescreen: with c = max|T_ij| and
        # L = max|bound|, every quantity the integer prep computes is
        # dominated by a closed form of (c, L, n) alone — spans by
        # S = 2ncL + 1, the span product by S**n, weights by n*c*S**(n-1),
        # offsets and the matmul's worst partial sum by
        # n**2*c*max(L,1)*S**(n-1).  When that scalar clears
        # ``_SAFE_PREP32`` the whole batch provably fits int32 keys and
        # the per-candidate float screen below is skipped entirely (the
        # common case: small coefficients, modest bounds).  A looser
        # crude value is not a verdict — the per-candidate screen can
        # still prove tighter bounds (e.g. permutations of a deep nest,
        # where S**n wildly overestimates the true span product).
        coeff = float(np.abs(tstack).max())
        bnd = float(max(map(abs, lowers + uppers)))
        span_c = 2.0 * n * coeff * bnd + 1.0
        crude = max(
            span_c**n,
            n * n * coeff * max(bnd, 1.0) * span_c ** (n - 1),
            coeff * bnd,
        )
        if crude < _SAFE_PREP32 and coeff < det_limit:
            # Determinants: exact int64 cofactor expansion for n <= 3
            # (the coefficient cap bounds every term), float for deeper
            # nests (exact under the same cap).
            if n == 1:
                dets = tstack[:, 0, 0]
            elif n == 2:
                dets = (
                    tstack[:, 0, 0] * tstack[:, 1, 1]
                    - tstack[:, 0, 1] * tstack[:, 1, 0]
                )
            elif n == 3:
                t = tstack
                dets = (
                    t[:, 0, 0]
                    * (t[:, 1, 1] * t[:, 2, 2] - t[:, 1, 2] * t[:, 2, 1])
                    - t[:, 0, 1]
                    * (t[:, 1, 0] * t[:, 2, 2] - t[:, 1, 2] * t[:, 2, 0])
                    + t[:, 0, 2]
                    * (t[:, 1, 0] * t[:, 2, 1] - t[:, 1, 1] * t[:, 2, 0])
                )
            else:
                dets = np.rint(np.linalg.det(tstack.astype(np.float64)))
            if (np.abs(dets) != 1).any():
                raise ValueError("transformation must be unimodular")
            safe_pos = np.arange(len(mats))
            dtype = np.int32
            mm_float = True
        else:
            # Float64 screen over the whole stack: every quantity the
            # int64 prep will compute — extents, span products, weight
            # vectors, offsets, and the matmul's worst partial sum — is
            # bounded from above in float first.  Candidates whose
            # bounds clear ``_SAFE_PREP`` are provably wrap-free in
            # int64 (the screen keeps 16x headroom over float rounding
            # and an 8-term summation margin under 2**62); the rest
            # take the exact python-int path.
            tf = tstack.astype(np.float64)
            lo_f = np.array(lowers, dtype=np.float64)
            up_f = np.array(uppers, dtype=np.float64)
            a = tf * lo_f
            b = tf * up_f
            mins_f = np.minimum(a, b).sum(axis=2)
            maxs_f = np.maximum(a, b).sum(axis=2)
            spans_f = maxs_f - mins_f + 1.0
            incl = np.cumprod(spans_f[:, ::-1], axis=1)[:, ::-1]
            wdims_f = np.concatenate(
                (incl[:, 1:], np.ones((len(mats), 1))), axis=1
            )
            wp_bound = (np.abs(tf) * wdims_f[:, :, None]).sum(axis=1)
            reach_f = (
                wp_bound * np.maximum(np.abs(lo_f), np.abs(up_f))
            ).sum(axis=1)
            off_bound = (
                np.maximum(np.abs(mins_f), np.abs(maxs_f)) * wdims_f
            ).sum(axis=1)
            elem_bound = np.maximum(np.abs(a), np.abs(b)).max(axis=(1, 2))
            safe = (
                (incl[:, 0] < _SAFE_PREP)
                & (reach_f < _SAFE_PREP)
                & (off_bound < _SAFE_PREP)
                & (elem_bound < _SAFE_PREP)
                & (wp_bound.max(axis=1) < _SAFE_PREP)
            )
            # Unimodularity: the float det is exact while every det
            # term stays inside float64's 53-bit mantissa; bigger
            # coefficients re-check with the exact integer det.
            coeff_max = np.abs(tf).max(axis=(1, 2))
            det_exact = coeff_max < det_limit
            dets = np.rint(np.linalg.det(tf))
            if (det_exact & (np.abs(dets) != 1.0)).any():
                raise ValueError("transformation must be unimodular")
            for pos in np.nonzero(~det_exact)[0]:
                if mats[pos].det() not in (1, -1):
                    raise ValueError("transformation must be unimodular")
            safe_pos = np.nonzero(safe)[0]
            exact = [int(p) for p in np.nonzero(~safe)[0]]
            if safe_pos.size:
                # Tight per-batch ceiling from the screened quantities:
                # under 2**27 every safe row fits int32 (requires no
                # python-int rows, whose values are unscreened); under
                # 2**53 the key matmul is exact in float64 (BLAS).
                batch_bound = max(
                    float(incl[safe_pos, 0].max()),
                    float(reach_f[safe_pos].max()),
                    float(off_bound[safe_pos].max()),
                    float(elem_bound[safe_pos].max()),
                    float(wp_bound[safe_pos].max()),
                )
                if (
                    not exact
                    and batch_bound < _SAFE_PREP32
                    and total < 1 << 30
                ):
                    dtype = np.int32
                mm_float = batch_bound < float(1 << 53)
    keys = np.empty((len(candidates), total), dtype=dtype)
    if none_rows:
        keys[none_rows] = np.arange(total, dtype=dtype)
    if not mats:
        return keys
    krows = np.array(mat_rows, dtype=np.intp)
    if tstack is not None and safe_pos.size:
        ts = tstack if safe_pos.size == len(mats) else tstack[safe_pos]
        a64 = ts * np.array(lowers, dtype=np.int64)
        b64 = ts * np.array(uppers, dtype=np.int64)
        mins64 = np.minimum(a64, b64).sum(axis=2)
        maxs64 = np.maximum(a64, b64).sum(axis=2)
        spans64 = maxs64 - mins64 + 1
        incl64 = np.cumprod(spans64[:, ::-1], axis=1)[:, ::-1]
        wdims64 = np.concatenate(
            (
                incl64[:, 1:],
                np.ones((safe_pos.size, 1), dtype=np.int64),
            ),
            axis=1,
        )
        wprime64 = (ts * wdims64[:, :, None]).sum(axis=1)
        offs64 = (mins64 * wdims64).sum(axis=1)
        if mm_float:
            packed = _points_f64(program, points) @ wprime64.astype(
                np.float64
            ).T  # (N, S), every product and partial sum an exact f64 int
            packed -= offs64.astype(np.float64)
        else:
            packed = points @ wprime64.T  # (N, S)
            packed -= offs64
        # Assignment casts float/int64 into the key dtype in place —
        # values are proven in range, so the cast is exact.
        keys[krows[safe_pos]] = packed.T
    packed_rows: list[int] = []
    weights: list = []
    offsets: list[int] = []
    for pos in exact:
        t = mats[pos]
        k = mat_rows[pos]
        rows = t.to_lists()
        mins, maxs = fast._affine_extents(
            rows, [0] * len(rows), lowers, uppers
        )
        spans = [hi - lo + 1 for lo, hi in zip(mins, maxs)]
        ok = fast.spans_fit_int64(spans)
        if ok:
            w = 1
            wdims = [0] * len(spans)
            for d in range(len(spans) - 1, -1, -1):
                wdims[d] = w
                w *= spans[d]
            wprime = [
                sum(rows[i][j] * wdims[i] for i in range(len(rows)))
                for j in range(len(rows))
            ]
            offset = sum(m * wd for m, wd in zip(mins, wdims))
            # Any partial sum of i . wprime (whatever order the matmul
            # accumulates in) is bounded by the per-column magnitudes;
            # the weight entries themselves must fit int64 too (a zero-
            # width loop zeroes its reach term but not its weight).
            reach = sum(
                max(abs(wp * lo), abs(wp * hi))
                for wp, lo, hi in zip(wprime, lowers, uppers)
            )
            ok = reach < fast._INT64_LIMIT and all(
                abs(wp) < fast._INT64_LIMIT for wp in wprime
            ) and abs(offset) < fast._INT64_LIMIT
        if not ok:
            obs.counter("fast.pack.fallback")
            keys[k] = fast._execution_times(program, t)
            continue
        packed_rows.append(k)
        weights.append(wprime)
        offsets.append(offset)
    if packed_rows:
        # Exact-path candidates that proved wrap-free with python ints:
        # their weight vectors join one small matmul of their own.
        wmat = np.array(weights, dtype=np.int64)  # (B, n)
        packed = points @ wmat.T  # (N, B)
        packed -= np.array(offsets, dtype=np.int64)
        keys[np.array(packed_rows, dtype=np.intp)] = packed.T
    return keys


def _array_states(
    program: Program, arrays: Sequence[str]
) -> list[fast._ElementState]:
    return [fast._element_state(program, a) for a in arrays]


#: Padded-gather budget: pad the per-element access lists to a rectangle
#: only while ``n_elems * pad_width`` stays within this multiple of the
#: true access count — beyond it the raggedness makes the strided
#: min/max read more padding than data and reduceat wins back.
_PAD_GATHER_LIMIT = 4


def _array_specs(
    arrays: Sequence[str], states: Sequence[fast._ElementState]
) -> list[SweepArraySpec]:
    specs = []
    for a, st in zip(arrays, states):
        n_acc = int(st.point_row.shape[0])
        pad = 0
        if st.n_elems:
            lens = np.diff(np.append(st.seg_starts, n_acc))
            width = int(lens.max())
            if st.n_elems * width <= _PAD_GATHER_LIMIT * n_acc:
                pad = width
        specs.append(SweepArraySpec(a, n_acc, st.n_elems, pad))
    return specs


def _padded_index(st: fast._ElementState, n_acc: int, width: int) -> np.ndarray:
    """Element-major gather index, each segment padded to ``width`` by
    repeating its last member (min/max-neutral)."""
    lens = np.diff(np.append(st.seg_starts, n_acc))
    pos = st.seg_starts[:, None] + np.minimum(
        np.arange(width), (lens - 1)[:, None]
    )
    return st.point_row[pos].ravel()


def _generic_sweep(
    states: Sequence[fast._ElementState], keys: np.ndarray
) -> np.ndarray:
    """Non-specialized batched sweep (``REPRO_KERNEL=off``).

    Same two regime bodies as the emitted kernels (see the correctness
    note in :mod:`repro.ir.codegen`), selected at runtime instead of
    baked, with the array loop in Python instead of unrolled.
    """
    firsts = []
    lasts = []
    for st in states:
        seq = keys[:, st.point_row]
        firsts.append(np.minimum.reduceat(seq, st.seg_starts, axis=1))
        lasts.append(np.maximum.reduceat(seq, st.seg_starts, axis=1))
    starts = firsts[0] if len(firsts) == 1 else np.concatenate(firsts, axis=1)
    ends = lasts[0] if len(lasts) == 1 else np.concatenate(lasts, axis=1)
    total_elems = starts.shape[1]
    if total_elems == 0:
        return np.zeros(keys.shape[0], dtype=np.int64)
    if total_elems <= codegen._EVENT_SWEEP_MAX_ELEMS:
        times = np.empty((keys.shape[0], 2 * total_elems), dtype=keys.dtype)
        np.multiply(ends, 2, out=times[:, :total_elems])
        np.multiply(starts, 2, out=times[:, total_elems:])
        times[:, total_elems:] += 1
        times.sort(axis=1)
        times &= 1
        np.cumsum(times, axis=1, out=times)
        times += times
        times -= np.arange(1, 2 * total_elems + 1, dtype=np.int64)
        return times.max(axis=1, initial=0)
    out = np.empty(keys.shape[0], dtype=np.int64)
    starts.sort(axis=1)
    ends.sort(axis=1)
    counts = np.arange(1, total_elems + 1, dtype=np.int64)
    for r in range(keys.shape[0]):
        occ = counts - np.searchsorted(ends[r], starts[r], side="right")
        out[r] = occ.max()
    return out


def _compile_python(
    program: Program, arrays: Sequence[str]
) -> Callable[[np.ndarray], np.ndarray]:
    states = _array_states(program, arrays)
    specs = _array_specs(arrays, states)
    source = sweep_kernel_source(specs)
    namespace: dict = {"np": np}
    for i, (st, spec) in enumerate(zip(states, specs)):
        if spec.pad_width:
            namespace[f"_PP{i}"] = _padded_index(
                st, spec.n_accesses, spec.pad_width
            )
        else:
            namespace[f"_PR{i}"] = st.point_row
            namespace[f"_SS{i}"] = st.seg_starts
    filename = f"<sweep-kernel:{program.signature()[:12]}>"
    exec(compile(source, filename, "exec"), namespace)
    return namespace["sweep"]


def _compile_c(
    program: Program, arrays: Sequence[str]
) -> "Callable[[np.ndarray], np.ndarray] | None":
    """cffi-compiled specialized sweep, or ``None`` when unavailable.

    Any failure — cffi missing (CI does not install it), no C compiler,
    build error — returns ``None`` and the caller falls back to the
    python kernel with a ``kernel.fallback`` counter.
    """
    try:
        import cffi
    except ImportError:
        return None
    states = _array_states(program, arrays)
    specs = _array_specs(arrays, states)
    n_points = fast._iter_state(program).points.shape[0]
    cdef, source = sweep_kernel_c_source(specs, n_points)
    digest = hashlib.sha1(
        (program.signature() + "|" + "|".join(arrays)).encode()
    ).hexdigest()[:16]
    modname = f"_repro_sweep_{digest}"
    try:
        module = sys.modules.get(modname)
        if module is None:
            builder = cffi.FFI()
            builder.cdef(cdef)
            builder.set_source(modname, source)
            tmpdir = tempfile.mkdtemp(prefix="repro-kernel-")
            builder.compile(tmpdir=tmpdir, verbose=False)
            sys.path.insert(0, tmpdir)
            try:
                module = importlib.import_module(modname)
            finally:
                sys.path.remove(tmpdir)
    except Exception:
        return None
    ffi, lib = module.ffi, module.lib
    layout_ptrs = []
    buffers = []  # keep the contiguous arrays alive with the closure
    for st in states:
        pr = np.ascontiguousarray(st.point_row, dtype=np.int64)
        ss = np.ascontiguousarray(st.seg_starts, dtype=np.int64)
        buffers.extend((pr, ss))
        layout_ptrs.append(ffi.cast("const long long *", ffi.from_buffer(pr)))
        layout_ptrs.append(ffi.cast("const long long *", ffi.from_buffer(ss)))

    def sweep(keys: np.ndarray) -> np.ndarray:
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        out = np.empty(keys.shape[0], dtype=np.int64)
        lib.repro_sweep(
            ffi.cast("const long long *", ffi.from_buffer(keys)),
            keys.shape[0],
            *layout_ptrs,
            ffi.cast("long long *", ffi.from_buffer(out)),
        )
        return out

    sweep._buffers = buffers  # type: ignore[attr-defined]
    return sweep


def _sweep_kernel(
    program: Program, arrays: tuple[str, ...], mode: str
) -> Callable[[np.ndarray], np.ndarray]:
    key = (program.signature(), arrays, mode)
    kernel = _KERNELS.get(key)
    if kernel is not None:
        _KERNELS.move_to_end(key)
        return kernel
    if mode == "c":
        kernel = _compile_c(program, arrays)
        if kernel is None:
            obs.counter("kernel.fallback")
            kernel = _compile_python(program, arrays)
    else:
        kernel = _compile_python(program, arrays)
    obs.counter("kernel.specialized")
    _KERNELS[key] = kernel
    while len(_KERNELS) > _KERNELS_LIMIT:
        _KERNELS.popitem(last=False)
    return kernel


def batched_mws(
    program: Program,
    candidates: Sequence[IntMatrix | None],
    array: str | None = None,
    engine: str = "auto",
) -> list[int]:
    """Exact MWS of every candidate transformation, scored as one batch.

    ``array=None`` scores the program-level total window (sum over all
    arrays), a name scores that array alone — value-identical to calling
    :func:`repro.window.simulator.max_window_size` /
    ``max_total_window`` per candidate (the differential suite pins
    this), including ``ValueError`` for non-unimodular candidates and
    ``KeyError`` for unknown arrays.  Only the dense numpy engine has a
    batched formulation; when ``engine`` resolves to anything else the
    candidates are scored per-candidate through the resolved engine.
    """
    from repro.window.simulator import (
        max_total_window,
        max_window_size,
        resolve_engine,
    )

    obs.counter("batch.candidates", len(candidates))
    resolved = resolve_engine(program, engine)
    if resolved != "fast":
        if array is None:
            return [
                max_total_window(program, t, engine=resolved)
                for t in candidates
            ]
        return [
            max_window_size(program, array, t, engine=resolved)
            for t in candidates
        ]
    arrays = (array,) if array is not None else tuple(program.arrays)
    if array is not None and not program.refs_to(array):
        raise KeyError(array)
    obs.counter("engine.fast.calls", len(candidates))
    obs.counter("fast.simulate.calls", len(candidates))
    if not candidates:
        return []
    if not arrays:
        return [0] * len(candidates)
    mode = kernel_mode()
    total = fast._iter_state(program).points.shape[0]
    chunk = max(1, _CHUNK_ELEMS // max(1, total))
    values: list[int] = []
    with obs.span(
        "simulate", candidates=len(candidates), array=array or "*"
    ):
        for start in range(0, len(candidates), chunk):
            keys = _batched_time_keys(program, candidates[start : start + chunk])
            if mode == "off":
                peaks = _generic_sweep(_array_states(program, arrays), keys)
            else:
                peaks = _sweep_kernel(program, arrays, mode)(keys)
            values.extend(peaks.tolist())
    return values
