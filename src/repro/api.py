"""Stable library facade: one entry path for the CLI, batch, and server.

Before this module, three call sites each hand-wired parse → analyze →
report: the CLI subcommands, the ``repro batch`` runner, and ad-hoc
library users.  :class:`AnalysisService` owns the shared machinery —
the content-addressed result store (with its in-memory LRU front), the
reclaimable worker pool, the per-request timeout path (the same one the
batch runner uses, so a hung request frees its worker slot), and the
run-ledger read side — and exposes every analysis the engines support
behind one request/response surface::

    from repro.api import AnalysisService, build_request

    with AnalysisService(store="~/.repro-store", workers=4) as svc:
        response = svc.submit(build_request(
            {"kind": "optimize", "kernel": "sor"}
        ))
        print(response.result["mws_after"], response.warm)

Request ``kind`` is one of :data:`repro.store.batch.KINDS`:
``optimize``, ``search``, ``mws``, ``analyze``, ``hierarchy``,
``param``.  The work target is exactly one of ``kernel`` (a Figure-2
kernel name), ``file`` (a loop-nest source path), or ``source`` (inline
loop-nest text).  All results are JSON-ready dicts, pure functions of
the program signature and knobs, so with a store attached a warm
request is served without a single engine simulation.

The HTTP front end (:mod:`repro.server`) is a thin asyncio shell over
this class; ``repro batch`` routes its items through
:func:`evaluate_kind`; both therefore share caching, counters, journal
and ledger semantics with plain library calls.
"""

from __future__ import annotations

import functools
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro import obs
from repro.obs import runctx
from repro.ir.program import Program

#: Request kinds (shared with the batch manifest format).
from repro.store.batch import (  # noqa: F401  (re-exported surface)
    KINDS,
    _batch_task,
    _default_evaluator,
    _observe_latency,
    record_item_timeout,
    run_batch,
)
from repro.store.pool import ReclaimablePool


# ----------------------------------------------------------------------
# kind dispatch — the one place "what does this analysis return" lives
# ----------------------------------------------------------------------

def evaluate_kind(
    kind: str,
    program: Program,
    array: str | None = None,
    engine: str = "auto",
    store=None,
    preset: str = "tcm",
) -> dict[str, Any]:
    """Run one analysis ``kind`` on ``program``; JSON-ready result dict.

    Every result is a pure function of ``program.signature()`` and the
    knobs, served through the store when one is attached.  This is the
    single dispatch the CLI, ``repro batch`` workers, and the HTTP
    service all execute.
    """
    if kind == "optimize":
        from repro.core.optimizer import optimize_program

        result = optimize_program(program, engine=engine, store=store)
        return {
            "mws_before": result.mws_before,
            "mws_after": result.mws_after,
            "t": result.transformation.rows,
        }
    if kind == "search":
        from repro.transform.search import search_best_transformation

        name = array or program.arrays[0]
        result = search_best_transformation(
            program, name, engine=engine, store=store
        )
        return {
            "array": name,
            "exact": result.exact_mws,
            "t": result.transformation.rows,
            "method": result.method,
        }
    if kind == "mws":
        from repro.transform.search import evaluate_exact

        value = evaluate_exact(program, [None], array=array, engine=engine,
                               store=store)[0]
        return {"array": array, "mws": value}
    if kind == "analyze":
        from repro.estimation.memory import estimate_program_memory
        from repro.transform.search import evaluate_exact

        per_array = {
            name: evaluate_exact(program, [None], array=name, engine=engine,
                                 store=store)[0]
            for name in program.arrays
        }
        total = evaluate_exact(program, [None], array=None, engine=engine,
                               store=store)[0]
        footprint = estimate_program_memory(program)
        return {
            "program": program.name,
            "default_memory": program.default_memory,
            "footprint": footprint.footprint_total,
            "mws": per_array,
            "mws_total": total,
        }
    if kind == "hierarchy":
        from repro.memory.hierarchy import preset as hierarchy_preset
        from repro.memory.sizing import size_memory_for_hierarchy

        key = {"sig": program.signature(), "preset": preset}
        if store is not None:
            hit = store.get("hierarchy.sizing", key)
            if isinstance(hit, dict):
                return hit
        stack = hierarchy_preset(preset)
        report = size_memory_for_hierarchy(program, stack, engine=engine)
        value = {
            "preset": preset,
            "mws_words": report.mws_words,
            "tiers_needed": report.tiers_needed,
        }
        if store is not None:
            store.put("hierarchy.sizing", key, value)
        return value
    if kind == "param":
        from repro.estimation.parametric import resolve_parametric

        name = array or program.arrays[0]
        out: dict[str, Any] = {"array": name}
        for param_kind in ("mws", "distinct"):
            pe = resolve_parametric(
                program, param_kind, array=name, store=store, engine=engine
            )
            out[f"{param_kind}_expr"] = None if pe is None else str(pe.expr)
        return out
    raise ValueError(f"unknown kind {kind!r} (expected one of {KINDS})")


# ----------------------------------------------------------------------
# request / response surface
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class AnalysisRequest:
    """One validated analysis request (see :func:`build_request`)."""

    kind: str
    kernel: str | None = None
    file: str | None = None
    source: str | None = None
    name: str | None = None
    array: str | None = None
    engine: str | None = None  # None -> the service default
    preset: str = "tcm"
    timeout: float | None = None  # None -> the service default

    @property
    def target(self) -> str:
        return self.kernel or self.file or self.name or "inline"


@dataclass
class AnalysisResponse:
    """Outcome of one request: result, provenance, and cache state."""

    kind: str
    target: str
    array: str | None
    status: str  # "ok" | "error" | "timeout"
    result: dict[str, Any] | None = None
    error: str | None = None
    wall_s: float = 0.0
    warm: bool | None = None
    run: str | None = field(default_factory=runctx.current_run_id)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def as_dict(self) -> dict[str, Any]:
        return asdict(self)


def build_request(payload: Mapping[str, Any]) -> AnalysisRequest:
    """Validate a raw payload (manifest entry, HTTP body) into a request.

    Raises ``ValueError`` on an unknown kind, a missing/ambiguous
    target, or a malformed knob — the caller maps that to its own error
    surface (batch ``error`` outcome, HTTP 400).
    """
    if not isinstance(payload, Mapping):
        raise ValueError(f"request must be an object, got {payload!r}")
    kind = payload.get("kind", "analyze")
    if kind not in KINDS:
        raise ValueError(f"unknown kind {kind!r} (expected one of {KINDS})")
    targets = [key for key in ("kernel", "file", "source")
               if payload.get(key) is not None]
    if len(targets) != 1:
        raise ValueError(
            "exactly one of 'kernel', 'file' or 'source' is required"
        )
    engine = payload.get("engine")
    if engine is not None:
        from repro.window import ENGINES

        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r} (expected one of {tuple(ENGINES)})"
            )
    timeout = payload.get("timeout")
    if timeout is not None:
        timeout = float(timeout)
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
    array = payload.get("array")
    return AnalysisRequest(
        kind=kind,
        kernel=payload.get("kernel"),
        file=payload.get("file"),
        source=payload.get("source"),
        name=payload.get("name"),
        array=None if array is None else str(array),
        engine=engine,
        preset=str(payload.get("preset", "tcm")),
        timeout=timeout,
    )


# ----------------------------------------------------------------------
# the service
# ----------------------------------------------------------------------

class AnalysisService:
    """Long-lived facade owning store, LRU, worker pool, and timeouts.

    ``store`` is a :class:`repro.store.ResultStore`, a directory path,
    or ``None`` (compute-only).  ``workers=0`` evaluates inline;
    ``workers >= 1`` evaluates on a :class:`ReclaimablePool`, where a
    request that outlives ``timeout`` seconds is abandoned *and its
    worker is killed and respawned*, so a hung request never eats a
    slot.  The pool is spawned lazily on the first pooled request (so
    it inherits the active run context) and is shared by every caller —
    admission control (how many requests may wait for a slot) belongs
    to the front end.
    """

    def __init__(
        self,
        store=None,
        engine: str = "auto",
        workers: int | None = 0,
        timeout: float | None = None,
    ) -> None:
        from repro.store import ResultStore
        from repro.transform.search import _resolve_workers

        if isinstance(store, (str, Path)):
            store = ResultStore(store)
        self.store = store
        self.engine = engine
        self.workers = _resolve_workers(workers)
        self.timeout = timeout
        self._pool: ReclaimablePool | None = None
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # programs
    # ------------------------------------------------------------------
    def resolve_program(self, request: AnalysisRequest) -> Program:
        """Build the request's program (kernel, file, or inline source)."""
        if request.kernel is not None:
            from repro.kernels import kernel_by_name

            program = kernel_by_name(request.kernel).build()
        elif request.file is not None:
            from repro.ir import parse_program

            path = Path(request.file)
            program = parse_program(
                path.read_text(encoding="utf-8"),
                name=request.name or path.stem,
            )
        else:
            from repro.ir import parse_program

            program = parse_program(
                request.source, name=request.name or "inline"
            )
        # Ledger provenance: every program the service touches.
        runctx.note_input(program.name, program.signature())
        return program

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _evaluator(self, request: AnalysisRequest):
        if request.preset != "tcm":
            # functools.partial of a module-level callable pickles to
            # pool workers; the default path ships the bare function.
            return functools.partial(evaluate_kind, preset=request.preset)
        return _default_evaluator

    def evaluate(self, request: AnalysisRequest) -> AnalysisResponse:
        """Evaluate inline (no pool, no preemption); never raises on the
        *item's* behalf — failures come back as ``status="error"``."""
        engine = request.engine or self.engine
        started = time.perf_counter()
        try:
            program = self.resolve_program(request)
            observer = obs.get_observer()
            before = dict(observer.counters) if observer else {}
            result = evaluate_kind(
                request.kind, program, array=request.array, engine=engine,
                store=self.store, preset=request.preset,
            )
        except Exception as exc:
            obs.counter("batch.items.error")
            return AnalysisResponse(
                request.kind, request.target, request.array, "error",
                error=f"{type(exc).__name__}: {exc}",
                wall_s=time.perf_counter() - started,
            )
        wall = time.perf_counter() - started
        delta = {}
        if observer is not None:
            delta = {
                name: value - before.get(name, 0)
                for name, value in observer.counters.items()
            }
        obs.counter("batch.items.ok")
        warm = _observe_latency(wall, delta)
        return AnalysisResponse(
            request.kind, request.target, request.array, "ok",
            result=result, wall_s=wall, warm=warm,
        )

    def submit(
        self,
        request: AnalysisRequest,
        timeout: float | None = None,
        evaluator=None,
    ) -> AnalysisResponse:
        """Evaluate on the worker pool with the batch timeout path.

        ``timeout`` (falling back to the request's, then the service's)
        bounds the request's execution; on expiry the worker is killed
        and respawned (``batch.worker.reclaimed``) and the response is
        ``status="timeout"``.  With ``workers=0`` this degrades to
        :meth:`evaluate` — serial mode cannot preempt.  Thread-safe.
        """
        if timeout is None:
            timeout = request.timeout
        if timeout is None:
            timeout = self.timeout
        if self.workers < 1:
            return self.evaluate(request)
        engine = request.engine or self.engine
        try:
            program = self.resolve_program(request)
        except Exception as exc:
            obs.counter("batch.items.error")
            return AnalysisResponse(
                request.kind, request.target, request.array, "error",
                error=f"{type(exc).__name__}: {exc}",
            )
        sig = program.signature()
        label = f"{request.kind} {request.target}"
        payload = (
            evaluator or self._evaluator(request), label, sig, request.kind,
            program, request.array, engine, self.store,
        )
        slot = self._ensure_pool().run_one(_batch_task, payload, timeout)
        if slot.status == "timeout":
            with self._lock:
                record_item_timeout(label, sig, timeout)
            return AnalysisResponse(
                request.kind, request.target, request.array, "timeout",
                error=f"timed out after {timeout:g}s", wall_s=slot.wall_s,
            )
        if slot.status == "error":
            with self._lock:
                obs.counter("batch.items.error")
            return AnalysisResponse(
                request.kind, request.target, request.array, "error",
                error=f"{type(slot.value).__name__}: {slot.value}",
                wall_s=slot.wall_s,
            )
        result, delta = slot.value
        # Counter merging is not atomic; concurrent front-end threads
        # serialize here so worker deltas are never lost.
        with self._lock:
            for name, amount in delta.items():
                obs.counter(name, amount)
            obs.counter("batch.items.ok")
            warm = _observe_latency(slot.wall_s, delta)
        return AnalysisResponse(
            request.kind, request.target, request.array, "ok",
            result=result, wall_s=slot.wall_s, warm=warm,
        )

    def batch(self, entries, timeout: float | None = None):
        """Run a manifest through :func:`repro.store.batch.run_batch`
        with the service's store/workers/engine."""
        return run_batch(
            entries, store=self.store, workers=self.workers,
            engine=self.engine, timeout=timeout or self.timeout,
        )

    # ------------------------------------------------------------------
    # store maintenance / observability read side
    # ------------------------------------------------------------------
    def compact(self):
        """One sweep of the store's compaction job (no-op storeless)."""
        from repro.store.maintenance import compact_store

        if self.store is None:
            return None
        return compact_store(self.store)

    def run_record(self, run: str):
        """One run-ledger record by ID/prefix/'last' (None storeless)."""
        from repro.obs import ledger as obs_ledger

        if self.store is None:
            return None
        return obs_ledger.load_run(self.store, run)

    def run_ids(self) -> list[str]:
        from repro.obs import ledger as obs_ledger

        if self.store is None:
            return []
        return [
            str(record.get("run"))
            for record in obs_ledger.list_runs(self.store)
        ]

    def metrics_text(self) -> str:
        """Prometheus exposition of the live observer ('' when off)."""
        observer = obs.get_observer()
        if observer is None:
            return ""
        return obs.prometheus_text(observer)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ReclaimablePool:
        with self._lock:
            if self._closed:
                raise RuntimeError("service is closed")
            if self._pool is None:
                self._pool = ReclaimablePool(
                    self.workers,
                    initializer=obs.core._init_worker,
                    initargs=(obs.enabled(), runctx.worker_state()),
                )
            return self._pool

    def close(self) -> None:
        """Kill in-flight workers and shut the pool down (idempotent)."""
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(kill=True)

    def __enter__(self) -> "AnalysisService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
