"""Linear constraint systems over integer variables.

A :class:`Constraint` is ``coeffs . x + const >= 0`` with integer data.
A :class:`ConstraintSystem` is a conjunction of constraints over named
variables — typically the loop indices of a nest, original or transformed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.ir.loop import LoopNest
from repro.linalg import IntMatrix


@dataclass(frozen=True)
class Constraint:
    """``sum(coeffs[k] * x[k]) + const >= 0`` over integer variables."""

    coeffs: tuple[int, ...]
    const: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "coeffs", tuple(int(c) for c in self.coeffs))
        object.__setattr__(self, "const", int(self.const))

    @property
    def arity(self) -> int:
        return len(self.coeffs)

    def satisfied_by(self, point: Sequence[int]) -> bool:
        if len(point) != self.arity:
            raise ValueError("dimension mismatch")
        return sum(c * x for c, x in zip(self.coeffs, point)) + self.const >= 0

    def is_trivial(self) -> bool:
        """All-zero coefficients: constant truth or falsity."""
        return all(c == 0 for c in self.coeffs)

    def is_contradiction(self) -> bool:
        return self.is_trivial() and self.const < 0

    def normalized(self) -> "Constraint":
        """Divide by the gcd of the coefficients (tightening the constant).

        For integer points, ``g*ax + c >= 0`` equals ``ax + floor(c/g) >= 0``.
        """
        g = 0
        for c in self.coeffs:
            g = math.gcd(g, c)
        if g <= 1:
            return self
        return Constraint(
            tuple(c // g for c in self.coeffs), math.floor(self.const / g)
        )

    def render(self, names: Sequence[str]) -> str:
        terms = []
        for c, name in zip(self.coeffs, names):
            if c == 0:
                continue
            if c == 1:
                terms.append(f"+ {name}" if terms else name)
            elif c == -1:
                terms.append(f"- {name}" if terms else f"-{name}")
            elif c > 0:
                terms.append(f"+ {c}{name}" if terms else f"{c}{name}")
            else:
                terms.append(f"- {-c}{name}" if terms else f"-{-c}{name}")
        if self.const > 0:
            terms.append(f"+ {self.const}" if terms else str(self.const))
        elif self.const < 0:
            terms.append(f"- {-self.const}" if terms else str(self.const))
        body = " ".join(terms) if terms else "0"
        return f"{body} >= 0"


class ConstraintSystem:
    """A conjunction of linear constraints over named variables."""

    def __init__(self, names: Sequence[str], constraints: Iterable[Constraint] = ()):
        self.names = tuple(names)
        self.constraints: list[Constraint] = []
        for con in constraints:
            self.add(con)

    @property
    def arity(self) -> int:
        return len(self.names)

    def add(self, constraint: Constraint) -> None:
        if constraint.arity != self.arity:
            raise ValueError(
                f"constraint arity {constraint.arity} != system arity {self.arity}"
            )
        self.constraints.append(constraint.normalized())

    def add_lower(self, var_index: int, bound: int) -> None:
        """Add ``x[var_index] >= bound``."""
        coeffs = [0] * self.arity
        coeffs[var_index] = 1
        self.add(Constraint(tuple(coeffs), -bound))

    def add_upper(self, var_index: int, bound: int) -> None:
        """Add ``x[var_index] <= bound``."""
        coeffs = [0] * self.arity
        coeffs[var_index] = -1
        self.add(Constraint(tuple(coeffs), bound))

    @classmethod
    def from_nest(cls, nest: LoopNest) -> "ConstraintSystem":
        """The rectangular iteration domain of a nest."""
        system = cls(nest.index_names)
        for k, loop in enumerate(nest.loops):
            system.add_lower(k, loop.lower)
            system.add_upper(k, loop.upper)
        return system

    @classmethod
    def transformed_nest(
        cls,
        nest: LoopNest,
        transformation: IntMatrix,
        new_names: Sequence[str] | None = None,
    ) -> "ConstraintSystem":
        """Domain of ``u = T @ i`` where ``i`` ranges over the nest box.

        Requires ``T`` unimodular; constraints become
        ``lower_k <= (T^-1 u)_k <= upper_k``.
        """
        n = nest.depth
        if transformation.shape != (n, n):
            raise ValueError("transformation shape does not match nest depth")
        inv = transformation.inverse_unimodular()
        names = tuple(new_names) if new_names else tuple(f"u{k+1}" for k in range(n))
        system = cls(names)
        for k, loop in enumerate(nest.loops):
            row = inv.row(k)
            system.add(Constraint(row, -loop.lower))  # (T^-1 u)_k - lower >= 0
            system.add(Constraint(tuple(-c for c in row), loop.upper))
        return system

    def satisfied_by(self, point: Sequence[int]) -> bool:
        return all(con.satisfied_by(point) for con in self.constraints)

    def is_trivially_infeasible(self) -> bool:
        return any(con.is_contradiction() for con in self.constraints)

    def copy(self) -> "ConstraintSystem":
        return ConstraintSystem(self.names, list(self.constraints))

    def render(self) -> str:
        return "\n".join(con.render(self.names) for con in self.constraints)

    def __repr__(self) -> str:
        return f"ConstraintSystem({list(self.names)!r}, {len(self.constraints)} constraints)"
