"""Exact structure of the image of a 1-D affine form over a box.

``a*i + b*j`` over ``1 <= i <= n1, 1 <= j <= n2`` attains every multiple
of ``g = gcd(a, b)`` in its range except finitely many *gap* values near
each end (the Frobenius/Sylvester phenomenon).  This module materializes
that structure — ``(lo, hi, step, gaps)`` with a provably complete finite
gap set — which turns union/intersection questions about *shifted* copies
(uniformly generated references!) into small finite-set arithmetic.

This is the machinery behind the multiple-reference extension of the
paper's Section 3.2, which the paper omits "for lack of space".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class AffineImage1D:
    """The exact value set of ``a*i + b*j`` over a box.

    The set is ``{v : lo <= v <= hi, v % step == lo % step} - gaps``.
    ``gaps`` is finite and complete (validated property-based against
    enumeration).
    """

    lo: int
    hi: int
    step: int
    gaps: frozenset[int]

    @property
    def count(self) -> int:
        if self.hi < self.lo:
            return 0
        return (self.hi - self.lo) // self.step + 1 - len(self.gaps)

    def contains(self, value: int) -> bool:
        if value < self.lo or value > self.hi:
            return False
        if (value - self.lo) % self.step != 0:
            return False
        return value not in self.gaps

    def shifted(self, delta: int) -> "AffineImage1D":
        """The image of the same form with offset ``+delta``."""
        return AffineImage1D(
            self.lo + delta,
            self.hi + delta,
            self.step,
            frozenset(g + delta for g in self.gaps),
        )

    def values(self) -> Iterable[int]:
        for v in range(self.lo, self.hi + 1, self.step):
            if v not in self.gaps:
                yield v


def affine_image_1d(a: int, b: int, n1: int, n2: int) -> AffineImage1D:
    """Exact image of ``a*i + b*j`` over ``[1, n1] x [1, n2]``.

    Strategy: divide out ``g = gcd(a, b)`` (the lattice step), then find
    the gap values.  All gaps lie within ``F = Frobenius(|a0|, |b0|)``
    of an end of the range (values farther inside are representable with
    slack in both coordinates), so enumerating the two end windows of
    width ``F`` against a small representability check is exact.  When a
    reduced coefficient is ``0`` or ``+-1`` and the other range covers
    its stride there are no gaps at all.

    >>> affine_image_1d(3, 7, 20, 20).count
    179
    >>> affine_image_1d(2, 5, 25, 10).count
    90
    """
    if n1 <= 0 or n2 <= 0:
        return AffineImage1D(0, -1, 1, frozenset())
    if a == 0 and b == 0:
        return AffineImage1D(0, 0, 1, frozenset())
    if a == 0 or b == 0:
        coeff, trip = (b, n2) if a == 0 else (a, n1)
        lo, hi = min(coeff, coeff * trip), max(coeff, coeff * trip)
        other = a * 1 + b * 1 - coeff  # contribution of the unit other index
        # With one coefficient zero the other index contributes a fixed
        # offset per its own position; the image is a pure progression.
        return AffineImage1D(lo + other, hi + other, abs(coeff), frozenset())

    g = math.gcd(abs(a), abs(b))
    a0, b0 = a // g, b // g
    lo = min(a0, a0 * n1) + min(b0, b0 * n2)
    hi = max(a0, a0 * n1) + max(b0, b0 * n2)

    def representable(value: int) -> bool:
        # Is value attainable as a0*i + b0*j within the box?  Walk the
        # smaller index range.
        if abs(a0) <= abs(b0):
            for i in range(1, n1 + 1):
                rest = value - a0 * i
                if rest % b0 == 0 and 1 <= rest // b0 <= n2:
                    return True
            return False
        for j in range(1, n2 + 1):
            rest = value - b0 * j
            if rest % a0 == 0 and 1 <= rest // a0 <= n1:
                return True
        return False

    if abs(a0) == 1 and abs(b0) == 1:
        window = 0
    else:
        # All gaps lie within the Frobenius bound of an end; for boxes too
        # small to fill the middle at all, widen to the whole range.
        frob = abs(a0 * b0) - abs(a0) - abs(b0)
        window = min(hi - lo, frob + max(abs(a0), abs(b0)))
        if n1 <= abs(b0) or n2 <= abs(a0):
            window = hi - lo

    gaps = set()
    for v in range(lo, min(lo + window, hi) + 1):
        if not representable(v):
            gaps.add(v)
    for v in range(max(hi - window, lo), hi + 1):
        if not representable(v) and v not in gaps:
            gaps.add(v)
    image = AffineImage1D(lo * 1, hi, 1, frozenset(gaps))
    if g != 1:
        # Scale back: values are g * (reduced values).
        return AffineImage1D(
            lo * g, hi * g, g, frozenset(v * g for v in gaps)
        )
    return image


def union_count(images: Iterable[AffineImage1D]) -> int:
    """Exact size of the union of several affine images.

    Works on the compressed representation: the union of progressions
    with finite gap sets is computed interval-wise without materializing
    full value sets — except where intervals overlap with differing
    steps, where the overlap window is enumerated (bounded by the
    interval lengths, and in the uniformly generated case the steps are
    equal so the fast path applies).
    """
    images = [img for img in images if img.count > 0]
    if not images:
        return 0
    steps = {img.step for img in images}
    lo = min(img.lo for img in images)
    hi = max(img.hi for img in images)
    if len(steps) == 1 and len({img.lo % img.step for img in images}) == 1:
        step = steps.pop()
        total = (hi - lo) // step + 1
        # A value is missing iff it is outside every interval or gapped in
        # every covering image.  Candidate missing values: union of gap
        # sets plus inter-interval holes.
        missing = 0
        candidates = set()
        for img in images:
            candidates.update(img.gaps)
        # Inter-interval holes.
        spans = sorted((img.lo, img.hi) for img in images)
        cursor = spans[0][1]
        for s_lo, s_hi in spans[1:]:
            if s_lo > cursor + step:
                candidates.update(range(cursor + step, s_lo, step))
            cursor = max(cursor, s_hi)
        for v in candidates:
            if lo <= v <= hi and not any(img.contains(v) for img in images):
                missing += 1
        return total - missing
    # Heterogeneous steps: enumerate (correct, potentially slower).
    values: set[int] = set()
    for img in images:
        values.update(img.values())
    return len(values)
