"""Fourier-Motzkin elimination and loop-bound extraction.

Eliminating the innermost variable of a constraint system produces (a) the
lower/upper bound expressions for that variable in terms of the outer ones
— exactly what a code generator prints as ``max(ceil(...), ...)`` /
``min(floor(...), ...)`` — and (b) the projected system for the next level
out.  Iterating from the innermost level yields bounds for a whole
transformed nest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.linalg.gcd import ceil_div, floor_div
from repro.polyhedral.polytope import Constraint, ConstraintSystem


@dataclass(frozen=True)
class BoundExpr:
    """One bound on variable ``k``: ``(coeffs . outer + const) / divisor``.

    For a lower bound the generated code takes the ceiling; for an upper
    bound the floor.  ``coeffs`` covers variables ``0..k-1`` only.
    """

    coeffs: tuple[int, ...]
    const: int
    divisor: int  # > 0

    def evaluate_lower(self, outer: Sequence[int]) -> int:
        """Ceiling value given outer index values."""
        num = sum(c * x for c, x in zip(self.coeffs, outer)) + self.const
        return ceil_div(num, self.divisor)

    def evaluate_upper(self, outer: Sequence[int]) -> int:
        """Floor value given outer index values."""
        num = sum(c * x for c, x in zip(self.coeffs, outer)) + self.const
        return floor_div(num, self.divisor)

    def render(self, names: Sequence[str], as_lower: bool) -> str:
        terms = []
        for c, name in zip(self.coeffs, names):
            if c == 0:
                continue
            if c == 1:
                terms.append(f"+ {name}" if terms else name)
            elif c == -1:
                terms.append(f"- {name}" if terms else f"-{name}")
            elif c > 0:
                terms.append(f"+ {c}*{name}" if terms else f"{c}*{name}")
            else:
                terms.append(f"- {-c}*{name}" if terms else f"-{-c}*{name}")
        if self.const > 0:
            terms.append(f"+ {self.const}" if terms else str(self.const))
        elif self.const < 0:
            terms.append(f"- {-self.const}" if terms else str(self.const))
        body = " ".join(terms) if terms else "0"
        if self.divisor == 1:
            return body
        fn = "ceild" if as_lower else "floord"
        return f"{fn}({body}, {self.divisor})"


@dataclass(frozen=True)
class LoopBounds:
    """All lower/upper bound expressions for one loop level."""

    lowers: tuple[BoundExpr, ...]
    uppers: tuple[BoundExpr, ...]

    def lower_value(self, outer: Sequence[int]) -> int:
        return max(b.evaluate_lower(outer) for b in self.lowers)

    def upper_value(self, outer: Sequence[int]) -> int:
        return min(b.evaluate_upper(outer) for b in self.uppers)

    def render_lower(self, names: Sequence[str]) -> str:
        parts = [b.render(names, as_lower=True) for b in self.lowers]
        return parts[0] if len(parts) == 1 else "max(" + ", ".join(parts) + ")"

    def render_upper(self, names: Sequence[str]) -> str:
        parts = [b.render(names, as_lower=False) for b in self.uppers]
        return parts[0] if len(parts) == 1 else "min(" + ", ".join(parts) + ")"


def eliminate_variable(
    system: ConstraintSystem, var_index: int
) -> tuple[LoopBounds, ConstraintSystem]:
    """Project out variable ``var_index`` (normally the innermost).

    Returns the bound expressions for that variable and the projected
    system over the remaining variables.  Raises ``ValueError`` when the
    variable is unbounded in either direction (loop nests must be bounded).
    """
    lowers: list[BoundExpr] = []  # a*x >= expr  =>  x >= expr / a
    uppers: list[BoundExpr] = []
    pass_through: list[Constraint] = []
    lower_cons: list[Constraint] = []
    upper_cons: list[Constraint] = []

    for con in system.constraints:
        a = con.coeffs[var_index]
        rest = tuple(
            c for k, c in enumerate(con.coeffs) if k != var_index
        )
        if a == 0:
            pass_through.append(Constraint(rest, con.const))
        elif a > 0:
            # a*x + rest.outer + const >= 0  =>  x >= (-rest.outer - const)/a
            lowers.append(BoundExpr(tuple(-c for c in rest), -con.const, a))
            lower_cons.append(con)
        else:
            # a*x + ... >= 0 with a < 0  =>  x <= (rest.outer + const)/(-a)
            uppers.append(BoundExpr(rest, con.const, -a))
            upper_cons.append(con)

    if not lowers or not uppers:
        name = system.names[var_index]
        raise ValueError(f"variable {name} is unbounded; cannot eliminate")

    new_names = tuple(
        n for k, n in enumerate(system.names) if k != var_index
    )
    projected = ConstraintSystem(new_names)
    for con in pass_through:
        projected.add(con)
    # Combine each (lower, upper) pair: from a*x + p >= 0 (a>0) and
    # b*x + q >= 0 (b<0): b*p - a*q ... standard FM: a*q' + |b|*p' style.
    for lo in lower_cons:
        a = lo.coeffs[var_index]
        for hi in upper_cons:
            b = -hi.coeffs[var_index]  # > 0
            coeffs = tuple(
                b * cl + a * ch
                for k, (cl, ch) in enumerate(zip(lo.coeffs, hi.coeffs))
                if k != var_index
            )
            const = b * lo.const + a * hi.const
            projected.add(Constraint(coeffs, const))

    return LoopBounds(tuple(lowers), tuple(uppers)), projected


def loop_bounds(system: ConstraintSystem) -> list[LoopBounds]:
    """Bounds for every level of a nest scanning ``system``'s rational
    projection, outermost first.

    The innermost variable is eliminated first; level ``k``'s bounds refer
    to variables ``0..k-1``.  The rational projection may include outer
    values whose inner range is empty — generated code guards with
    ``max(...) <= min(...)``, which our evaluators honor.
    """
    bounds_reversed: list[LoopBounds] = []
    current = system
    for var_index in range(system.arity - 1, 0, -1):
        level_bounds, current = eliminate_variable(current, var_index)
        bounds_reversed.append(level_bounds)
    # Outermost variable: its bounds are the constant constraints left.
    lowers: list[BoundExpr] = []
    uppers: list[BoundExpr] = []
    for con in current.constraints:
        a = con.coeffs[0]
        if a > 0:
            lowers.append(BoundExpr((), -con.const, a))
        elif a < 0:
            uppers.append(BoundExpr((), con.const, -a))
        elif con.const < 0:
            raise ValueError("infeasible constraint system")
    if not lowers or not uppers:
        raise ValueError(f"variable {system.names[0]} is unbounded")
    bounds_reversed.append(LoopBounds(tuple(lowers), tuple(uppers)))
    return list(reversed(bounds_reversed))
