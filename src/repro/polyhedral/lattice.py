"""Lattice-point enumeration for constraint systems.

Exact, enumeration-based: used as an oracle for closed-form counts and to
drive execution of transformed nests.  The enumeration scans the nest
order implied by ``loop_bounds`` — outermost to innermost — so the yielded
order is the sequential execution order of the generated loop nest.
"""

from __future__ import annotations

from typing import Iterator

from repro.polyhedral.fourier_motzkin import loop_bounds
from repro.polyhedral.polytope import ConstraintSystem


def enumerate_lattice_points(system: ConstraintSystem) -> Iterator[tuple[int, ...]]:
    """Yield integer points of the system in lexicographic (nest) order.

    Points produced by the rational Fourier-Motzkin shadow that violate
    the original constraints are filtered, so the output is exactly the
    integer solution set.
    """
    bounds = loop_bounds(system)
    n = system.arity

    def scan(prefix: tuple[int, ...]) -> Iterator[tuple[int, ...]]:
        level = len(prefix)
        lb = bounds[level].lower_value(prefix)
        ub = bounds[level].upper_value(prefix)
        for value in range(lb, ub + 1):
            point = prefix + (value,)
            if level == n - 1:
                if system.satisfied_by(point):
                    yield point
            else:
                yield from scan(point)

    yield from scan(())


def count_lattice_points(system: ConstraintSystem) -> int:
    """Number of integer points satisfying the system."""
    return sum(1 for _ in enumerate_lattice_points(system))
