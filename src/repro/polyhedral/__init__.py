"""Rational polyhedra and lattice counting.

This subpackage is the geometric substrate: constraint systems over the
iteration indices, Fourier-Motzkin projection (used to derive loop bounds
for transformed nests), and exact lattice-point / image counting used as
oracles for the paper's closed-form estimates.
"""

from repro.polyhedral.polytope import Constraint, ConstraintSystem
from repro.polyhedral.fourier_motzkin import (
    BoundExpr,
    LoopBounds,
    eliminate_variable,
    loop_bounds,
)
from repro.polyhedral.lattice import (
    count_lattice_points,
    enumerate_lattice_points,
)
from repro.polyhedral.counting import (
    count_distinct_affine_1d,
    count_image_exact,
)

__all__ = [
    "Constraint",
    "ConstraintSystem",
    "BoundExpr",
    "LoopBounds",
    "eliminate_variable",
    "loop_bounds",
    "count_lattice_points",
    "enumerate_lattice_points",
    "count_distinct_affine_1d",
    "count_image_exact",
]
