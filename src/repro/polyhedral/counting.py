"""Counting distinct values of affine references.

Two layers:

* :func:`count_image_exact` — the enumeration oracle: the exact number of
  distinct elements touched by a set of references over an iteration box.
* :func:`count_distinct_affine_1d` — a closed form for one 1-D reference
  ``a*i + b*j + c`` over a 2-D box, combining the gcd lattice structure
  with Sylvester end corrections.  Matches the oracle exactly (tested
  property-based); the paper's Section 3.2 bounds bracket this value for
  the multi-reference non-uniform case.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.ir.loop import LoopNest
from repro.ir.reference import ArrayRef
from repro.linalg.frobenius import sylvester_count


def count_image_exact(nest: LoopNest, refs: Iterable[ArrayRef]) -> int:
    """Exact count of distinct elements touched by ``refs`` over the nest.

    Pure enumeration — ``O(total_iterations * len(refs))``.  This is the
    paper's ``A_d`` ground truth.
    """
    touched: set[tuple[int, ...]] = set()
    refs = list(refs)
    for point in nest.iterate():
        for ref in refs:
            touched.add(ref.element(point))
    return len(touched)


def count_distinct_affine_1d(
    a: int, b: int, n1: int, n2: int
) -> int:
    """Distinct values of ``a*i + b*j`` for ``1 <= i <= n1, 1 <= j <= n2``.

    Derivation: all values are congruent modulo ``g = gcd(a, b)`` and we
    may divide through by ``g``, so assume coprime ``a, b``.  If either
    coefficient is zero or ``+-1`` (after reduction) the image is a full
    interval.  Otherwise the image is the interval between the extremes
    minus the Sylvester gaps at each end — ``(|a|-1)(|b|-1)/2`` per end —
    *provided the box is large enough* that the two end regions do not
    interact (``n1 > |b|`` and ``n2 > |a|`` suffices; the count is exact
    there and the function falls back to enumeration for smaller boxes).

    >>> count_distinct_affine_1d(3, 7, 20, 20)
    179
    """
    if n1 <= 0 or n2 <= 0:
        return 0
    if a == 0 and b == 0:
        return 1
    if a == 0:
        return _single_coeff_count(b, n2)
    if b == 0:
        return _single_coeff_count(a, n1)
    g = math.gcd(abs(a), abs(b))
    a0, b0 = a // g, b // g
    lo = min(a0, a0 * n1) + min(b0, b0 * n2)
    hi = max(a0, a0 * n1) + max(b0, b0 * n2)
    span = hi - lo + 1
    # A unit coefficient fills the interval only if its range covers the
    # other coefficient's stride (consecutive strideful steps overlap).
    if abs(a0) == 1 and n1 >= abs(b0):
        return span
    if abs(b0) == 1 and n2 >= abs(a0):
        return span
    if abs(a0) > 1 and abs(b0) > 1 and n1 > abs(b0) and n2 > abs(a0):
        return span - 2 * sylvester_count(a0, b0)
    # Small/degenerate box: enumerate (cheap by construction).
    values = {a0 * i + b0 * j for i in range(1, n1 + 1) for j in range(1, n2 + 1)}
    return len(values)


def _single_coeff_count(coeff: int, trip: int) -> int:
    return trip if coeff != 0 else 1


def distinct_values_multiset(
    refs: Sequence[ArrayRef], nest: LoopNest
) -> set[tuple[int, ...]]:
    """The exact touched-element set (not just its size)."""
    touched: set[tuple[int, ...]] = set()
    for point in nest.iterate():
        for ref in refs:
            touched.add(ref.element(point))
    return touched
