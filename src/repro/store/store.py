"""Persistent, content-addressed result store.

Exact windows, search results, and cascade outcomes are pure functions
of ``Program.signature()`` and the search knobs, so — like the reuse
profiles AutoLALA and the static estimators treat as cacheable
artifacts keyed by the loop nest — they can be persisted once and
served to every later process.  The store maps

    (program signature, kind, array, knob key)  ->  JSON value

as one atomic record file per key under a versioned root::

    <root>/v1/<kind>/<sha256(key)[:32]>.json

Properties:

* **Atomic writes.**  Records are written to a same-directory temp file
  and ``os.replace``d into place, so readers never observe a torn
  record and concurrent writers of the same key are last-writer-wins
  (both wrote the same pure value anyway).
* **Schema-version stamping.**  Every record carries ``schema`` and
  echoes its ``kind`` and ``key``; the root is versioned (``v1``) so a
  future layout change cannot misread old records.
* **Corruption-tolerant reads.**  A truncated, garbage, wrong-schema,
  or hash-colliding record is a *miss* (counted under
  ``store.corrupt``), never a crash — the caller recomputes and the
  rewrite heals the record.
* **Bounded in-memory LRU front** (``REPRO_STORE_LRU`` entries) so a
  hot loop does not re-read JSON from disk.

Counters: ``store.mem.hits``, ``store.disk.hits``, ``store.misses``,
``store.writes``, ``store.corrupt``, ``store.mem.evictions``.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

from repro import obs
from repro.envutil import env_int
from repro.store.lru import LRUCache

#: Record/layout schema version; bump on any incompatible change.
SCHEMA_VERSION = 1

#: Environment variable naming the store root directory.
STORE_DIR_ENV = "REPRO_STORE_DIR"

#: Environment variable overriding the in-memory LRU capacity.
STORE_LRU_ENV = "REPRO_STORE_LRU"

#: Default in-memory front size (records are small decoded JSON values).
DEFAULT_LRU_CAPACITY = 4096


def _canonical(key: Any) -> str:
    """Deterministic JSON encoding of a key (dict order irrelevant)."""
    return json.dumps(key, sort_keys=True, separators=(",", ":"))


class ResultStore:
    """One on-disk result store rooted at ``root`` (see module docs)."""

    def __init__(self, root: str | Path, lru_capacity: int | None = None) -> None:
        self.root = Path(root)
        self.base = self.root / f"v{SCHEMA_VERSION}"
        if lru_capacity is None:
            lru_capacity = env_int(STORE_LRU_ENV, DEFAULT_LRU_CAPACITY)
        self._lru = LRUCache(lru_capacity, counter="store.mem")

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def record_path(self, kind: str, key: Any) -> Path:
        digest = hashlib.sha256(_canonical(key).encode()).hexdigest()[:32]
        return self.base / kind / f"{digest}.json"

    # ------------------------------------------------------------------
    # read / write
    # ------------------------------------------------------------------
    def get(self, kind: str, key: Any) -> Any:
        """Stored value for ``(kind, key)``, or ``None`` on any miss."""
        ckey = (kind, _canonical(key))
        hit = self._lru.get(ckey, _MISS)
        if hit is not _MISS:
            obs.counter("store.mem.hits")
            return hit
        path = self.record_path(kind, key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            obs.counter("store.misses")
            return None
        try:
            record = json.loads(text)
            if (
                not isinstance(record, dict)
                or record.get("schema") != SCHEMA_VERSION
                or record.get("kind") != kind
                or _canonical(record.get("key")) != ckey[1]
                or "value" not in record
            ):
                raise ValueError("malformed record")
        except (ValueError, TypeError):
            # Truncated/garbage/hash-collision record: a miss, not a
            # crash.  Leave the file; the recompute's write heals it.
            obs.counter("store.corrupt")
            obs.counter("store.misses")
            return None
        value = record["value"]
        obs.counter("store.disk.hits")
        self._lru.put(ckey, value)
        return value

    def put(self, kind: str, key: Any, value: Any) -> Path:
        """Atomically persist ``value`` under ``(kind, key)``.

        When a run context is active (:mod:`repro.obs.runctx`) the
        record is stamped with the writing run's ID, so a store can be
        audited record-by-record against the run ledger.  The stamp is
        provenance only — reads ignore it, and it does not participate
        in the content address.
        """
        path = self.record_path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "schema": SCHEMA_VERSION,
            "kind": kind,
            "key": key,
            "value": value,
        }
        run_id = obs.runctx.current_run_id()
        if run_id is not None:
            record["run"] = run_id
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, path)
        obs.counter("store.writes")
        self._lru.put((kind, _canonical(key)), value)
        return path

    # ------------------------------------------------------------------
    # maintenance / introspection
    # ------------------------------------------------------------------
    def drop_memory(self) -> None:
        """Forget the in-memory front (disk records stay)."""
        self._lru.clear()

    def record_count(self) -> int:
        """Number of records on disk (walks the store; diagnostics only)."""
        if not self.base.exists():
            return 0
        return sum(1 for _ in self.base.glob("*/*.json"))

    def iter_records(self, kind: str):
        """Yield every stored value of one kind (walks the store).

        Uses the same validation as :meth:`get` minus the key check (the
        caller does not know the keys); corrupt files are skipped and
        counted under ``store.corrupt``.  Diagnostics/read-side only —
        the hot path never enumerates.
        """
        directory = self.base / kind
        if not directory.is_dir():
            return
        for path in sorted(directory.glob("*.json")):
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                obs.counter("store.corrupt")
                continue
            if (
                not isinstance(record, dict)
                or record.get("schema") != SCHEMA_VERSION
                or record.get("kind") != kind
                or "value" not in record
            ):
                obs.counter("store.corrupt")
                continue
            yield record["value"]

    def __reduce__(self):
        # Pickle as (root, capacity): worker processes re-open the same
        # on-disk store with a fresh (empty) in-memory front.
        return (ResultStore, (str(self.root), self._lru.capacity))


#: Sentinel distinguishing "cached None" from "not cached".
_MISS = object()


def open_store(
    root: str | Path | None = None, lru_capacity: int | None = None
) -> ResultStore | None:
    """Open the store at ``root``, or at ``$REPRO_STORE_DIR`` when
    ``root`` is omitted; ``None`` when neither names a directory."""
    if root is None:
        root = os.environ.get(STORE_DIR_ENV) or None
    if root is None:
        return None
    return ResultStore(root, lru_capacity=lru_capacity)
