"""Store maintenance: the background sync/compaction sweep.

An always-on service leaves the content-addressed store running for
weeks, so the damage one-shot runs could shrug off accumulates: records
torn by a crashed writer (reads treat them as misses forever, burning a
recompute per query until something rewrites them), ``*.tmp.<pid>``
droppings from writers that died between write and rename, and ledger
records from before a counter rename that make ``repro runs diff``
noisy.  :func:`compact_store` is the one sweep that heals all of it:

* walks the sharded ``v1/<kind>/`` layout one record file at a time;
* **deletes** records that fail the same validation reads apply —
  unparseable JSON, wrong schema/kind, missing value, or a filename
  that does not match the content address of the embedded key (a
  misfiled record is unreachable by ``get`` and pure dead weight);
* **rewrites** legacy ledger records carrying retired counter
  spellings (:data:`repro.obs.ledger.LEGACY_COUNTERS`) through the
  store's normal atomic write path;
* **removes** stale temp files older than ``tmp_ttl_s`` (live writers
  rename within milliseconds; anything older is an orphan);
* **drops the in-memory LRU front** whenever anything was deleted or
  rewritten, so a hot entry can never resurrect a compacted-away
  record.

Counters: ``store.compact.scanned``, ``store.compact.kept``,
``store.compact.corrupt_deleted``, ``store.compact.legacy_rewritten``,
``store.compact.tmp_removed``.  Runnable standalone via ``repro
store-compact`` and periodically as the server's background task.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro import obs
from repro.obs import flight
from repro.obs.ledger import LEDGER_KIND, rewrite_legacy_record
from repro.store.store import SCHEMA_VERSION, ResultStore

#: Temp files older than this are orphans of a dead writer (seconds).
DEFAULT_TMP_TTL_S = 3600.0


@dataclass
class CompactionReport:
    """Outcome of one :func:`compact_store` sweep (JSON-ready)."""

    scanned: int = 0
    kept: int = 0
    corrupt_deleted: int = 0
    legacy_rewritten: int = 0
    tmp_removed: int = 0
    kinds: dict[str, int] = field(default_factory=dict)
    wall_s: float = 0.0

    @property
    def changed(self) -> bool:
        return bool(
            self.corrupt_deleted or self.legacy_rewritten or self.tmp_removed
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "scanned": self.scanned,
            "kept": self.kept,
            "corrupt_deleted": self.corrupt_deleted,
            "legacy_rewritten": self.legacy_rewritten,
            "tmp_removed": self.tmp_removed,
            "kinds": dict(sorted(self.kinds.items())),
            "wall_s": round(self.wall_s, 6),
        }


def _load_record(path: Path, kind: str, store: ResultStore):
    """The validated record at ``path``, or ``None`` if it must die.

    Applies the read path's checks plus one only a sweep can afford:
    the filename must equal the content address of the embedded key,
    otherwise ``get`` can never reach the record.
    """
    try:
        record = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if (
        not isinstance(record, dict)
        or record.get("schema") != SCHEMA_VERSION
        or record.get("kind") != kind
        or "key" not in record
        or "value" not in record
    ):
        return None
    try:
        expected = store.record_path(kind, record["key"]).name
    except (TypeError, ValueError):
        return None
    if expected != path.name:
        return None
    return record


def compact_store(
    store: ResultStore,
    tmp_ttl_s: float = DEFAULT_TMP_TTL_S,
) -> CompactionReport:
    """One full compaction sweep of ``store`` (see module docs).

    Safe to run while readers and writers are live: deletions target
    only records no read can ever return, rewrites go through the
    store's atomic ``put``, and concurrent writers' fresh temp files
    are protected by ``tmp_ttl_s``.
    """
    report = CompactionReport()
    started = time.perf_counter()
    base = store.base
    if base.is_dir():
        for kind_dir in sorted(p for p in base.iterdir() if p.is_dir()):
            kind = kind_dir.name
            for path in sorted(kind_dir.glob("*.json")):
                report.scanned += 1
                record = _load_record(path, kind, store)
                if record is None:
                    try:
                        path.unlink()
                    except OSError:
                        continue
                    report.corrupt_deleted += 1
                    continue
                if kind == LEDGER_KIND and isinstance(record["value"], dict):
                    rewritten = rewrite_legacy_record(record["value"])
                    if rewritten is not None:
                        store.put(kind, record["key"], rewritten)
                        report.legacy_rewritten += 1
                report.kept += 1
                report.kinds[kind] = report.kinds.get(kind, 0) + 1
        # Orphaned temp files: a live writer renames within
        # milliseconds, so anything older than the TTL is a dead
        # writer's dropping.
        now = time.time()
        for tmp in base.glob("*/*.tmp.*"):
            try:
                if now - tmp.stat().st_mtime >= tmp_ttl_s:
                    tmp.unlink()
                    report.tmp_removed += 1
            except OSError:
                continue
    report.wall_s = time.perf_counter() - started
    if report.changed:
        # Never let the hot LRU resurrect a record the sweep removed
        # (or serve the pre-rewrite body of one it rewrote).
        store.drop_memory()
    for name, value in (
        ("scanned", report.scanned),
        ("kept", report.kept),
        ("corrupt_deleted", report.corrupt_deleted),
        ("legacy_rewritten", report.legacy_rewritten),
        ("tmp_removed", report.tmp_removed),
    ):
        if value:
            obs.counter(f"store.compact.{name}", value)
    flight.heartbeat("compact", **report.as_dict())
    return report


def render_compaction(report: CompactionReport) -> str:
    """Human-readable ``repro store-compact`` summary."""
    lines = [
        f"scanned {report.scanned} records in {report.wall_s:.3f}s "
        f"({report.kept} kept)",
    ]
    for kind, count in sorted(report.kinds.items()):
        lines.append(f"  {kind:<12} {count}")
    lines.append(
        f"deleted {report.corrupt_deleted} corrupt, "
        f"rewrote {report.legacy_rewritten} legacy ledger record(s), "
        f"removed {report.tmp_removed} stale temp file(s)"
    )
    return "\n".join(lines)
