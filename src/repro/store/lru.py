"""Bounded least-recently-used cache with an eviction counter.

The one in-memory cache primitive shared by the search memos
(:mod:`repro.transform.search`) and the persistent result store's
front (:mod:`repro.store.store`).  Replaces the two ad-hoc
module-level dicts the search used to keep: the unbounded exact-MWS
memo and the whole-search memo that evicted by wholesale ``clear()``
(thrashing benchmark loops cycling more keys than the limit).

Hit/miss accounting stays with the caller — different call sites count
under different names — but evictions are intrinsic to the cache, so
they are counted here under ``<counter>.evictions``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Iterator

from repro import obs


class LRUCache:
    """Mapping bounded to ``capacity`` entries, evicting least recently
    used.  ``get`` refreshes recency; ``put`` of an existing key updates
    in place (and refreshes).  When ``counter`` is given, each eviction
    bumps the obs counter ``f"{counter}.evictions"``.
    """

    __slots__ = ("capacity", "_data", "_counter", "evictions")

    def __init__(self, capacity: int, counter: str | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"LRU capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._counter = f"{counter}.evictions" if counter else None
        #: Lifetime eviction count (monotonic, survives ``clear``).
        self.evictions = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        try:
            self._data.move_to_end(key)
        except KeyError:
            return default
        return self._data[key]

    def put(self, key: Hashable, value: Any) -> None:
        data = self._data
        if key in data:
            data[key] = value
            data.move_to_end(key)
            return
        if len(data) >= self.capacity:
            data.popitem(last=False)
            self.evictions += 1
            if self._counter is not None:
                obs.counter(self._counter)
        data[key] = value

    def clear(self) -> None:
        self._data.clear()

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[Hashable]:
        """Keys from least to most recently used."""
        return iter(self._data)
