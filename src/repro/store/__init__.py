"""Persistent result store and batch evaluation (ISSUE 5).

* :mod:`repro.store.lru` — the bounded LRU cache primitive (also the
  in-memory memo layer of :mod:`repro.transform.search`);
* :mod:`repro.store.store` — content-addressed on-disk records keyed by
  ``(program signature, kind, array, knobs)``, atomic and
  corruption-tolerant;
* :mod:`repro.store.batch` — the manifest-driven batch evaluation
  service behind ``repro batch``.
"""

from repro.store.batch import (
    BatchItem,
    BatchOutcome,
    BatchReport,
    load_manifest,
    render_batch_table,
    run_batch,
)
from repro.store.lru import LRUCache
from repro.store.store import (
    DEFAULT_LRU_CAPACITY,
    SCHEMA_VERSION,
    STORE_DIR_ENV,
    STORE_LRU_ENV,
    ResultStore,
    open_store,
)

__all__ = [
    "BatchItem",
    "BatchOutcome",
    "BatchReport",
    "DEFAULT_LRU_CAPACITY",
    "LRUCache",
    "ResultStore",
    "SCHEMA_VERSION",
    "STORE_DIR_ENV",
    "STORE_LRU_ENV",
    "load_manifest",
    "open_store",
    "render_batch_table",
    "run_batch",
]
