"""Reclaimable worker pool: per-item timeouts that free the slot.

``concurrent.futures`` cannot cancel a *running* task: abandoning a
timed-out future leaves the worker process grinding on the hung item,
permanently occupying one ``ProcessPoolExecutor`` slot.  For a one-shot
``repro batch`` that merely wastes a core; for the always-on analysis
service it is fatal — ``workers`` hung requests and the pool deadlocks
forever.

:class:`ReclaimablePool` fixes this by giving each worker its own slot
(a single-process executor plus the worker's PID, probed at spawn).
When an item outlives its deadline the slot's worker is **killed and
respawned** (counted under the pool's reclaim counter, by default
``batch.worker.reclaimed``), so the slot is immediately available to
the next item.  A worker that dies on its own (segfault, OOM kill)
is likewise respawned instead of poisoning the executor.

The pool is thread-safe: :meth:`run_one` can be called concurrently
from many threads (the HTTP front end drives it from one thread per
admitted request), blocking until a slot frees up.  The per-item
timeout clock starts when the item actually starts executing — each
slot runs one item at a time — not when the caller gets around to
waiting on it.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass
from typing import Any, Callable

from repro import obs

#: Default obs counter bumped once per killed-and-respawned worker.
RECLAIM_COUNTER = "batch.worker.reclaimed"

#: Kill signal: SIGKILL where it exists (a hung worker may ignore TERM).
_KILL_SIGNAL = getattr(signal, "SIGKILL", signal.SIGTERM)


@dataclass
class SlotResult:
    """Outcome of one :meth:`ReclaimablePool.run_one` call."""

    status: str  # "ok" | "error" | "timeout"
    value: Any = None  # the return value ("ok") or the exception ("error")
    wall_s: float = 0.0


class _WorkerSlot:
    """One worker process and the machinery to replace it."""

    def __init__(self, initializer, initargs, reclaim_counter: str) -> None:
        self._initializer = initializer
        self._initargs = initargs
        self._reclaim_counter = reclaim_counter
        self.executor: ProcessPoolExecutor | None = None
        self._pid_future = None
        self._spawn()

    def _spawn(self) -> None:
        self.executor = ProcessPoolExecutor(
            max_workers=1,
            initializer=self._initializer,
            initargs=self._initargs,
        )
        # Probe the worker's PID up front (public API only): the probe
        # resolves long before any real item could hang, so a reclaim
        # can kill the right process without touching executor internals.
        self._pid_future = self.executor.submit(os.getpid)

    def pid(self) -> int | None:
        try:
            return self._pid_future.result(timeout=30.0)
        except Exception:
            return None

    def reclaim(self) -> None:
        """Kill the (presumed hung) worker and spawn a fresh one."""
        pid = self.pid()
        if pid is not None:
            try:
                os.kill(pid, _KILL_SIGNAL)
            except (OSError, ProcessLookupError):
                pass
        self.executor.shutdown(wait=False, cancel_futures=True)
        obs.counter(self._reclaim_counter)
        self._spawn()

    def close(self, kill: bool = False) -> None:
        if self.executor is None:
            return
        if kill:
            pid = self.pid()
            if pid is not None:
                try:
                    os.kill(pid, _KILL_SIGNAL)
                except (OSError, ProcessLookupError):
                    pass
        self.executor.shutdown(wait=False, cancel_futures=True)
        self.executor = None


class ReclaimablePool:
    """``workers`` isolated single-process slots with per-item deadlines.

    ``initializer``/``initargs`` follow the ``ProcessPoolExecutor``
    convention (the batch runner passes ``obs.core._init_worker`` so
    worker counters and heartbeats carry the parent's run identity).
    """

    def __init__(
        self,
        workers: int,
        initializer: Callable | None = None,
        initargs: tuple = (),
        reclaim_counter: str = RECLAIM_COUNTER,
    ) -> None:
        if workers < 1:
            raise ValueError(f"pool needs >= 1 worker, got {workers}")
        self.workers = workers
        self._lock = threading.Lock()
        self._free_cond = threading.Condition(self._lock)
        self._slots = [
            _WorkerSlot(initializer, initargs, reclaim_counter)
            for _ in range(workers)
        ]
        self._free: list[_WorkerSlot] = list(self._slots)
        self._closed = False

    # ------------------------------------------------------------------
    # slot checkout
    # ------------------------------------------------------------------
    def _checkout(self) -> _WorkerSlot:
        with self._free_cond:
            while not self._free:
                if self._closed:
                    raise RuntimeError("pool is shut down")
                self._free_cond.wait()
            if self._closed:
                raise RuntimeError("pool is shut down")
            return self._free.pop()

    def _checkin(self, slot: _WorkerSlot) -> None:
        with self._free_cond:
            self._free.append(slot)
            self._free_cond.notify()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run_one(
        self,
        fn: Callable,
        payload: Any,
        timeout: float | None = None,
    ) -> SlotResult:
        """Run ``fn(payload)`` on a dedicated worker with a deadline.

        Blocks until a slot is free (admission control belongs to the
        caller).  On timeout the slot's worker is killed and respawned
        before the slot is returned to the pool, so a hung item never
        blocks subsequent items.  Never raises on the *item's* behalf:
        failures come back as ``SlotResult(status="error", value=exc)``.
        """
        slot = self._checkout()
        started = time.perf_counter()
        try:
            future = slot.executor.submit(fn, payload)
            try:
                value = future.result(timeout=timeout)
            except _FutureTimeout:
                slot.reclaim()
                return SlotResult(
                    "timeout", wall_s=time.perf_counter() - started
                )
            except BrokenExecutor as exc:
                # The worker died under the item (segfault/OOM): respawn
                # so the slot keeps serving, and report the item failed.
                slot.reclaim()
                return SlotResult(
                    "error", value=exc, wall_s=time.perf_counter() - started
                )
            except Exception as exc:
                return SlotResult(
                    "error", value=exc, wall_s=time.perf_counter() - started
                )
            return SlotResult(
                "ok", value=value, wall_s=time.perf_counter() - started
            )
        finally:
            self._checkin(slot)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def shutdown(self, kill: bool = False) -> None:
        """Close every slot; ``kill=True`` also kills in-flight workers
        (the service's fast-exit path)."""
        with self._free_cond:
            self._closed = True
            self._free_cond.notify_all()
        for slot in self._slots:
            slot.close(kill=kill)

    def __enter__(self) -> "ReclaimablePool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown(kill=True)
