"""Batch evaluation service over a manifest of kernels/searches.

``repro batch manifest.json`` reads a JSON manifest of work items, dedups
identical work by ``(kind, program signature, array)``, fans the unique
items out across the existing process-pool machinery with per-item
timeouts, and emits a deterministic summary table plus obs metrics.
Failures degrade gracefully: an item that raises or times out is
reported in the table with its error, never fatal to the batch.

Manifest format — a JSON list (or ``{"items": [...]}``) of objects::

    {"kind": "optimize", "kernel": "sor"}
    {"kind": "search",   "file": "examples/ex8.loop", "array": "A"}
    {"kind": "mws",      "kernel": "matmult"}

``kind`` is one of:

* ``optimize``  — full program-level optimization (a Figure-2 row),
* ``search``    — per-array best-transformation search,
* ``mws``       — exact MWS of the native order (``array`` optional; the
  program total when omitted),
* ``analyze``   — footprints plus exact windows for every array,
* ``hierarchy`` — tier-stack sizing against a preset (default ``tcm``),
* ``param``     — closed-form MWS/distinct expressions in the bounds.

The target is either ``kernel`` (a Figure-2 kernel name) or ``file`` (a
loop-nest source file).  With a :class:`repro.store.ResultStore`
attached, every item's results are persisted, so a warm re-run of the
same manifest is served from the store; item latencies are recorded in
the ``batch.latency.warm_s`` / ``batch.latency.cold_s`` histograms, and
the summary table is byte-identical between cold and warm runs.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro import obs
from repro.obs import flight, runctx
from repro.obs import metrics as obs_metrics
from repro.ir.program import Program
from repro.store.pool import ReclaimablePool

#: Recognized work-item kinds (dispatched by :func:`repro.api.evaluate_kind`).
KINDS = ("optimize", "search", "mws", "analyze", "hierarchy", "param")

#: Second-scale latency buckets (the metrics default is integer-scaled).
LATENCY_BUCKETS = (0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0)


@dataclass(frozen=True)
class BatchItem:
    """One validated manifest entry."""

    index: int
    kind: str
    target: str
    array: str | None
    program: Program

    @property
    def label(self) -> str:
        return f"#{self.index} {self.kind} {self.target}"


@dataclass
class BatchOutcome:
    """Result (or failure) of one manifest item."""

    item: BatchItem
    status: str  # "ok" | "error" | "timeout"
    result: Mapping[str, Any] | None = None
    error: str | None = None
    wall_s: float = 0.0
    duplicate_of: int | None = None


@dataclass
class BatchReport:
    """Everything ``repro batch`` renders and gates on."""

    outcomes: list[BatchOutcome]
    unique_items: int
    deduped_items: int

    @property
    def ok(self) -> bool:
        return all(o.status == "ok" for o in self.outcomes)


def load_manifest(path: str | Path) -> list[dict]:
    """Parse a manifest file into raw item dicts (validated later)."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if isinstance(data, dict):
        data = data.get("items")
    if not isinstance(data, list):
        raise ValueError(
            f"{path}: manifest must be a JSON list of items or "
            f'{{"items": [...]}}'
        )
    return data


def _build_item(index: int, entry: Any) -> BatchItem:
    if not isinstance(entry, dict):
        raise ValueError(f"item #{index}: expected an object, got {entry!r}")
    kind = entry.get("kind", "optimize")
    if kind not in KINDS:
        raise ValueError(
            f"item #{index}: unknown kind {kind!r} (expected one of {KINDS})"
        )
    array = entry.get("array")
    kernel = entry.get("kernel")
    file = entry.get("file")
    if (kernel is None) == (file is None):
        raise ValueError(
            f"item #{index}: exactly one of 'kernel' or 'file' is required"
        )
    if kernel is not None:
        from repro.kernels import kernel_by_name

        program = kernel_by_name(kernel).build()
        target = kernel
    else:
        from repro.ir import parse_program

        program = parse_program(
            Path(file).read_text(encoding="utf-8"), name=Path(file).stem
        )
        target = file
    return BatchItem(index, kind, target, array, program)


def _default_evaluator(
    kind: str,
    program: Program,
    array: str | None,
    engine: str,
    store,
) -> dict[str, Any]:
    """Run one work item; returns a JSON-ready result dict.

    Delegates to the :mod:`repro.api` facade so the batch runner, the
    CLI, and the HTTP service all execute work through one entry path.
    (Lazy import: ``repro.api`` imports this module.)
    """
    from repro.api import evaluate_kind

    return evaluate_kind(kind, program, array=array, engine=engine,
                         store=store)


def _batch_task(payload) -> tuple[dict[str, Any], dict[str, int]]:
    """Worker-process entry point (module-level for pickling).

    Like ``transform.search._eval_task``: returns the result together
    with the worker-side counter delta, drained per task so serial and
    parallel counter totals match.

    While the item runs, a :class:`repro.obs.flight.HeartbeatThread`
    periodically snapshots the worker's counters to the run's live file.
    Those snapshots double as the *partial-telemetry flush*: if the
    parent abandons this item on timeout, it recovers the last snapshot
    instead of silently dropping the worker's counters.
    """
    evaluator, label, sig, kind, program, array, engine, store = payload
    flight.heartbeat("item_start", item=label, sig=sig)
    started = time.perf_counter()
    try:
        # The context manager stops the heartbeat thread on *any* exit —
        # a raising evaluator must not leave a daemon thread appending
        # heartbeats for an item that is already dead.
        with flight.HeartbeatThread(label, sig=sig):
            result = evaluator(kind, program, array, engine, store)
    except BaseException:
        flight.heartbeat("item_error", item=label, sig=sig)
        raise
    worker_obs = obs.get_observer()
    delta: dict[str, int] = {}
    if worker_obs is not None:
        delta = dict(worker_obs.counters)
        worker_obs.counters.clear()
    flight.heartbeat(
        "item_done", item=label, sig=sig,
        elapsed_s=round(time.perf_counter() - started, 3),
        counters=delta,
    )
    return result, delta


def _recover_timeout_delta(item_label: str) -> dict[str, int]:
    """Last heartbeat counter snapshot for a timed-out item, if any.

    The timed-out worker's per-item counter delta never comes back over
    the future, but its :class:`~repro.obs.flight.HeartbeatThread` was
    flushing snapshots to the live file — return the freshest one so the
    telemetry survives the cancel.
    """
    path = flight.live_path()
    if path is None:
        return {}
    recovered: dict[str, int] = {}
    for event in flight.read_heartbeats(path):
        if event.get("ev") == "progress" and event.get("item") == item_label:
            counters = event.get("counters")
            if isinstance(counters, dict):
                recovered = {
                    str(name): int(value)
                    for name, value in counters.items()
                    if isinstance(value, (int, float))
                }
    return recovered


def _observe_latency(wall_s: float, delta: Mapping[str, int]) -> None:
    """File the item's wall time under the warm or cold histogram.

    *Warm* means the store answered everything (no ``store.misses``
    during the item and at least one hit); anything else is cold.
    """
    hits = delta.get("store.mem.hits", 0) + delta.get("store.disk.hits", 0)
    warm = hits > 0 and delta.get("store.misses", 0) == 0
    name = "batch.latency.warm_s" if warm else "batch.latency.cold_s"
    obs_metrics.observe(name, wall_s, buckets=LATENCY_BUCKETS)
    return warm


def record_item_timeout(
    label: str, sig: str | None, timeout_s: float | None
) -> dict[str, int]:
    """Account for one abandoned item (shared batch/service timeout path).

    Recovers the doomed worker's last heartbeat counter snapshot, bumps
    ``batch.item.timeout``, attributes the timeout on the run context,
    and emits the ``item_timeout`` heartbeat.  The worker itself is
    reclaimed by :class:`repro.store.pool.ReclaimablePool` — by the time
    this runs the slot is already being respawned.
    """
    recovered = _recover_timeout_delta(label)
    for name, amount in recovered.items():
        obs.counter(name, amount)
    obs.counter("batch.item.timeout")
    runctx.annotate("timeouts", {
        "item": label,
        "sig": sig,
        "timeout_s": timeout_s,
        "recovered_counters": recovered,
    })
    flight.heartbeat("item_timeout", item=label, sig=sig)
    return recovered


def run_batch(
    entries: Sequence[Any],
    store=None,
    workers: int | None = 0,
    engine: str = "auto",
    timeout: float | None = None,
    evaluator: Callable[..., dict] | None = None,
) -> BatchReport:
    """Evaluate manifest ``entries``; never raises on a bad *item*.

    Malformed entries (unknown kind, missing target) become ``error``
    outcomes.  Identical work — same ``(kind, signature, array)`` — is
    evaluated once and aliased (``duplicate_of``).  ``workers > 1`` fans
    unique items out on a :class:`repro.store.pool.ReclaimablePool` with
    a per-item ``timeout`` (seconds); a timed-out item is reported as
    ``timeout``, its worker is killed and respawned (counted under
    ``batch.worker.reclaimed``), and the rest of the batch completes on
    a full-strength pool.  Serial mode cannot preempt a running item,
    so ``timeout`` needs ``workers >= 1``.  ``evaluator`` is injectable
    for tests (module-level callable when pickled to workers).
    """
    from repro.transform.search import _resolve_workers

    workers = _resolve_workers(workers)
    evaluator = evaluator or _default_evaluator

    items: list[BatchItem | BatchOutcome] = []
    for index, entry in enumerate(entries):
        try:
            items.append(_build_item(index, entry))
        except (ValueError, KeyError, OSError) as exc:
            placeholder = BatchItem(index, "?", "?", None, None)
            items.append(BatchOutcome(placeholder, "error", error=str(exc)))

    # Dedup identical work by content signature.
    primaries: dict[tuple, BatchItem] = {}
    aliases: dict[int, int] = {}
    for item in items:
        if isinstance(item, BatchOutcome):
            continue
        key = (item.kind, item.program.signature(), item.array)
        primary = primaries.get(key)
        if primary is None:
            primaries[key] = item
        else:
            aliases[item.index] = primary.index
    unique = [
        item for item in items
        if isinstance(item, BatchItem) and item.index not in aliases
    ]

    results: dict[int, BatchOutcome] = {}
    parallel = workers > 1 and len(unique) > 1
    batch_t0 = time.perf_counter()
    done = 0

    def _progress() -> None:
        nonlocal done
        done += 1
        elapsed = time.perf_counter() - batch_t0
        remaining = len(unique) - done
        eta = round(elapsed / done * remaining, 1) if done else None
        flight.heartbeat("batch_progress", done=done, total=len(unique),
                         eta_s=eta)

    with obs.span("batch", items=len(items), unique=len(unique),
                  workers=workers if parallel else 0):
        if parallel:
            # One reclaimable slot per worker: a timed-out item's worker
            # is killed and respawned, so a hung item can never occupy a
            # pool slot for the rest of the batch (or, in the always-on
            # service, forever).  One driver thread per slot blocks on
            # the process future; completions are handled here in
            # submission-thread order of completion.
            pool = ReclaimablePool(
                workers,
                initializer=obs.core._init_worker,
                initargs=(obs.enabled(), runctx.worker_state()),
            )
            try:
                with ThreadPoolExecutor(max_workers=workers) as threads:
                    dispatch = {}
                    for item in unique:
                        sig = (item.program.signature()
                               if item.program is not None else None)
                        payload = (
                            evaluator, item.label, sig, item.kind,
                            item.program, item.array, engine, store,
                        )
                        future = threads.submit(
                            pool.run_one, _batch_task, payload, timeout
                        )
                        dispatch[future] = (item, sig)
                    for future in as_completed(dispatch):
                        item, sig = dispatch[future]
                        slot = future.result()
                        if slot.status == "timeout":
                            # The worker's per-item counter delta would
                            # be dropped with the item: recover its last
                            # heartbeat snapshot so telemetry survives.
                            record_item_timeout(item.label, sig, timeout)
                            results[item.index] = BatchOutcome(
                                item, "timeout",
                                error=f"timed out after {timeout:g}s",
                                wall_s=slot.wall_s,
                            )
                        elif slot.status == "error":  # degrade, don't abort
                            exc = slot.value
                            obs.counter("batch.items.error")
                            results[item.index] = BatchOutcome(
                                item, "error",
                                error=f"{type(exc).__name__}: {exc}",
                                wall_s=slot.wall_s,
                            )
                        else:
                            result, delta = slot.value
                            for name, amount in delta.items():
                                obs.counter(name, amount)
                            obs.counter("batch.items.ok")
                            _observe_latency(slot.wall_s, delta)
                            results[item.index] = BatchOutcome(
                                item, "ok", result=result, wall_s=slot.wall_s
                            )
                        _progress()
            finally:
                pool.shutdown(kill=True)
        else:
            observer = obs.get_observer()
            for item in unique:
                sig = (item.program.signature()
                       if item.program is not None else None)
                before = dict(observer.counters) if observer else {}
                started = time.perf_counter()
                flight.heartbeat("item_start", item=item.label, sig=sig)
                try:
                    result = evaluator(
                        item.kind, item.program, item.array, engine, store
                    )
                except Exception as exc:  # degrade, don't abort
                    obs.counter("batch.items.error")
                    flight.heartbeat("item_error", item=item.label, sig=sig)
                    results[item.index] = BatchOutcome(
                        item, "error", error=f"{type(exc).__name__}: {exc}",
                        wall_s=time.perf_counter() - started,
                    )
                    _progress()
                    continue
                wall = time.perf_counter() - started
                delta = {}
                if observer is not None:
                    delta = {
                        name: value - before.get(name, 0)
                        for name, value in observer.counters.items()
                    }
                obs.counter("batch.items.ok")
                _observe_latency(wall, delta)
                flight.heartbeat("item_done", item=item.label, sig=sig,
                                 elapsed_s=round(wall, 3))
                results[item.index] = BatchOutcome(
                    item, "ok", result=result, wall_s=wall
                )
                _progress()

    outcomes: list[BatchOutcome] = []
    for item in items:
        if isinstance(item, BatchOutcome):
            obs.counter("batch.items.error")
            outcomes.append(item)
            continue
        if item.index in aliases:
            primary = results[aliases[item.index]]
            obs.counter("batch.items.deduped")
            outcomes.append(BatchOutcome(
                item, primary.status, result=primary.result,
                error=primary.error, wall_s=0.0,
                duplicate_of=aliases[item.index],
            ))
        else:
            outcomes.append(results[item.index])
    return BatchReport(outcomes, len(unique), len(aliases))


def _fmt_result(outcome: BatchOutcome) -> str:
    if outcome.status != "ok":
        return outcome.error or outcome.status
    result = dict(outcome.result or {})
    result.pop("t", None)
    parts = [f"{k}={v}" for k, v in result.items() if v is not None]
    return " ".join(parts) if parts else "ok"


def render_batch_table(report: BatchReport) -> str:
    """Deterministic summary table (no wall times — byte-identical
    between cold and warm runs of the same manifest)."""
    header = (
        f"{'item':>4} {'kind':<9} {'target':<24} {'array':<8} "
        f"{'status':<8} result"
    )
    lines = [header, "-" * len(header)]
    for outcome in report.outcomes:
        item = outcome.item
        note = (
            f" (= item {outcome.duplicate_of})"
            if outcome.duplicate_of is not None else ""
        )
        lines.append(
            f"{item.index:>4} {item.kind:<9} {str(item.target):<24} "
            f"{str(item.array or '-'):<8} {outcome.status:<8} "
            f"{_fmt_result(outcome)}{note}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"{len(report.outcomes)} item(s): {report.unique_items} unique, "
        f"{report.deduped_items} deduped, "
        f"{sum(1 for o in report.outcomes if o.status != 'ok')} failed"
    )
    return "\n".join(lines)
