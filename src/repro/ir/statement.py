"""Statements: ordered groups of references executed together."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.ir.reference import AccessKind, ArrayRef


@dataclass(frozen=True)
class Statement:
    """One assignment inside the innermost loop.

    ``writes`` then ``reads`` in program-text order.  Within one loop
    iteration, reads execute before writes (value semantics of an
    assignment), which matters for the loop-independent-dependence corner
    cases the paper excludes (zero distance vectors are dropped).
    """

    label: str
    writes: tuple[ArrayRef, ...] = field(default=())
    reads: tuple[ArrayRef, ...] = field(default=())

    def __post_init__(self) -> None:
        for ref in self.writes:
            if not ref.is_write:
                raise ValueError(f"non-write ref {ref} in writes of {self.label}")
        for ref in self.reads:
            if ref.is_write:
                raise ValueError(f"write ref {ref} in reads of {self.label}")

    @classmethod
    def assign(
        cls,
        label: str,
        write: ArrayRef | None,
        reads: Sequence[ArrayRef] = (),
    ) -> "Statement":
        """Build ``write = f(reads...)``; ``write=None`` models a pure use."""
        writes: tuple[ArrayRef, ...]
        if write is None:
            writes = ()
        else:
            writes = (write.with_kind(AccessKind.WRITE),)
        return cls(
            label,
            writes,
            tuple(r.with_kind(AccessKind.READ) for r in reads),
        )

    @property
    def references(self) -> tuple[ArrayRef, ...]:
        """All references, reads first (they execute first)."""
        return self.reads + self.writes

    def references_to(self, array: str) -> Iterator[ArrayRef]:
        return (ref for ref in self.references if ref.array == array)

    @property
    def arrays(self) -> set[str]:
        return {ref.array for ref in self.references}

    def __str__(self) -> str:
        lhs = ", ".join(str(w) for w in self.writes) or "(use)"
        rhs = ", ".join(str(r) for r in self.reads) or "(const)"
        return f"{self.label}: {lhs} = f({rhs})"
