"""The top-level Program object: a perfect loop nest plus its statements."""

from __future__ import annotations

import hashlib
import weakref
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.ir.array import ArrayDecl
from repro.ir.loop import LoopNest
from repro.ir.reference import ArrayRef
from repro.ir.statement import Statement


@dataclass(frozen=True)
class AccessEvent:
    """One dynamic array access: iteration ``time`` touching ``element``.

    ``time`` is the 0-based sequential position of the iteration vector;
    ``ordinal`` breaks ties within one iteration (statement order, reads
    before writes within a statement).
    """

    time: int
    ordinal: int
    iteration: tuple[int, ...]
    ref: ArrayRef
    element: tuple[int, ...]


class Program:
    """A perfectly nested affine loop program.

    Parameters
    ----------
    nest:
        The loop nest (rectangular bounds).
    statements:
        The loop body, in textual order.
    decls:
        Optional explicit array declarations; any array referenced but not
        declared gets an inferred declaration covering exactly the touched
        bounding box (what a minimal "default" allocation would be).
    name:
        Used in reports.
    """

    def __init__(
        self,
        nest: LoopNest,
        statements: Sequence[Statement],
        decls: Sequence[ArrayDecl] = (),
        name: str = "program",
    ):
        statements = tuple(statements)
        if not statements:
            raise ValueError("a program needs at least one statement")
        labels = [s.label for s in statements]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate statement labels: {labels}")
        for stmt in statements:
            for ref in stmt.references:
                if ref.nest_depth != nest.depth:
                    raise ValueError(
                        f"reference {ref} has {ref.nest_depth} index columns "
                        f"but the nest has depth {nest.depth}"
                    )
        decl_map = {d.name: d for d in decls}
        if len(decl_map) != len(decls):
            raise ValueError("duplicate array declarations")
        ranks = {}
        for stmt in statements:
            for ref in stmt.references:
                ranks.setdefault(ref.array, ref.rank)
                if ranks[ref.array] != ref.rank:
                    raise ValueError(
                        f"array {ref.array} referenced with inconsistent ranks"
                    )
                if ref.array in decl_map and decl_map[ref.array].rank != ref.rank:
                    raise ValueError(
                        f"array {ref.array} declared rank {decl_map[ref.array].rank} "
                        f"but referenced with rank {ref.rank}"
                    )
        self.nest = nest
        self.statements = statements
        self.name = name
        self._explicit_decls = decl_map

    # ------------------------------------------------------------------
    # reference queries
    # ------------------------------------------------------------------
    @property
    def references(self) -> tuple[ArrayRef, ...]:
        """All references in execution order within one iteration."""
        out: list[ArrayRef] = []
        for stmt in self.statements:
            out.extend(stmt.references)
        return tuple(out)

    @property
    def arrays(self) -> tuple[str, ...]:
        """Referenced array names, in first-appearance order."""
        seen: dict[str, None] = {}
        for ref in self.references:
            seen.setdefault(ref.array, None)
        return tuple(seen)

    def refs_to(self, array: str) -> tuple[ArrayRef, ...]:
        return tuple(ref for ref in self.references if ref.array == array)

    def is_uniformly_generated(self, array: str) -> bool:
        """Do all references to ``array`` share one access matrix?"""
        refs = self.refs_to(array)
        return all(r.uniformly_generated_with(refs[0]) for r in refs[1:])

    # ------------------------------------------------------------------
    # declarations
    # ------------------------------------------------------------------
    def decl(self, array: str) -> ArrayDecl:
        """Declaration of ``array`` — explicit if given, else inferred.

        The inferred declaration is the bounding box of the elements the
        nest actually touches, computed exactly from the access matrix
        extremes over the rectangular iteration box (no enumeration).
        """
        if array in self._explicit_decls:
            return self._explicit_decls[array]
        refs = self.refs_to(array)
        if not refs:
            raise KeyError(array)
        rank = refs[0].rank
        los = [None] * rank
        his = [None] * rank
        lowers, uppers = self.nest.lowers, self.nest.uppers
        for ref in refs:
            for dim in range(rank):
                row = ref.access.row(dim)
                lo = ref.offset[dim]
                hi = ref.offset[dim]
                for coeff, lb, ub in zip(row, lowers, uppers):
                    if coeff >= 0:
                        lo += coeff * lb
                        hi += coeff * ub
                    else:
                        lo += coeff * ub
                        hi += coeff * lb
                los[dim] = lo if los[dim] is None else min(los[dim], lo)
                his[dim] = hi if his[dim] is None else max(his[dim], hi)
        return ArrayDecl(
            array,
            tuple(h - l + 1 for l, h in zip(los, his)),
            tuple(los),
        )

    @property
    def decls(self) -> tuple[ArrayDecl, ...]:
        return tuple(self.decl(a) for a in self.arrays)

    @property
    def default_memory(self) -> int:
        """Figure 2's ``default``: total declared elements over all arrays."""
        return sum(d.declared_size for d in self.decls)

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def signature(self) -> str:
        """Content hash of everything that determines the access stream.

        Two programs with equal signatures touch the same elements in the
        same order regardless of their names or statement labels, so
        memoized analysis results (e.g. exact window simulations) can be
        shared between them.  Cached per instance in a module-level
        :class:`weakref.WeakKeyDictionary` so it survives the program
        becoming frozen/slotted and never outlives the object.
        """
        cached = _SIGNATURE_CACHE.get(self)
        if cached is not None:
            return cached
        content = (
            tuple(self.nest.lowers),
            tuple(self.nest.uppers),
            tuple(
                (ref.array, ref.access.rows, tuple(ref.offset), ref.is_write)
                for ref in self.references
            ),
            tuple(
                (d.name, d.extents, d.origins)
                for d in sorted(self._explicit_decls.values(), key=lambda d: d.name)
            ),
        )
        digest = hashlib.sha256(repr(content).encode()).hexdigest()
        _SIGNATURE_CACHE[self] = digest
        return digest

    # ------------------------------------------------------------------
    # dynamic access stream
    # ------------------------------------------------------------------
    def access_events(self, array: str | None = None) -> Iterator[AccessEvent]:
        """Enumerate every dynamic access in sequential execution order.

        This stream is the ground truth behind the window simulator, the
        exact distinct-access counter and the scratchpad model.  Filtering
        by ``array`` avoids materializing irrelevant events.
        """
        per_iteration = [
            (ordinal, ref)
            for ordinal, ref in enumerate(self.references)
            if array is None or ref.array == array
        ]
        for time, iteration in enumerate(self.nest.iterate()):
            for ordinal, ref in per_iteration:
                yield AccessEvent(time, ordinal, iteration, ref, ref.element(iteration))

    def __repr__(self) -> str:
        return (
            f"Program(name={self.name!r}, depth={self.nest.depth}, "
            f"statements={len(self.statements)}, arrays={list(self.arrays)})"
        )

    def __str__(self) -> str:
        lines = [str(self.nest)]
        pad = "  " * self.nest.depth
        for stmt in self.statements:
            lines.append(pad + str(stmt))
        return "\n".join(lines)


#: Program -> content hash; keyed weakly so cached signatures (and every
#: downstream cache keyed on them) never pin a Program alive.
_SIGNATURE_CACHE: "weakref.WeakKeyDictionary[Program, str]" = (
    weakref.WeakKeyDictionary()
)
