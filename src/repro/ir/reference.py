"""Array references: ``U[A @ I + b]`` with an access kind (read/write)."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.linalg import IntMatrix, integer_nullspace


class AccessKind(enum.Enum):
    """Whether a reference reads or writes its element."""

    READ = "read"
    WRITE = "write"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class ArrayRef:
    """One textual reference to an array inside the loop body.

    ``access`` is the paper's ``d x n`` access (data reference) matrix and
    ``offset`` its length-``d`` offset vector: iteration ``I`` touches
    element ``access @ I + offset``.
    """

    array: str
    access: IntMatrix
    offset: tuple[int, ...]
    kind: AccessKind = AccessKind.READ

    def __post_init__(self) -> None:
        if len(self.offset) != self.access.n_rows:
            raise ValueError(
                f"offset length {len(self.offset)} != access rows {self.access.n_rows}"
            )
        object.__setattr__(self, "offset", tuple(int(v) for v in self.offset))

    @classmethod
    def of(
        cls,
        array: str,
        access_rows: Sequence[Sequence[int]],
        offset: Sequence[int],
        kind: AccessKind = AccessKind.READ,
    ) -> "ArrayRef":
        """Convenience constructor from nested lists."""
        return cls(array, IntMatrix(access_rows), tuple(offset), kind)

    @property
    def rank(self) -> int:
        """Array dimensionality ``d``."""
        return self.access.n_rows

    @property
    def nest_depth(self) -> int:
        """Loop nest depth ``n`` this reference was written for."""
        return self.access.n_cols

    @property
    def is_write(self) -> bool:
        return self.kind is AccessKind.WRITE

    def element(self, iteration: Sequence[int]) -> tuple[int, ...]:
        """The array element touched by an iteration vector."""
        base = self.access.apply(iteration)
        return tuple(a + b for a, b in zip(base, self.offset))

    def uniformly_generated_with(self, other: "ArrayRef") -> bool:
        """Paper Section 2.3: same array and same access matrix.

        Uniformly generated references differ only in their offset
        vectors; all dependences between them are constant distance
        vectors.
        """
        return self.array == other.array and self.access == other.access

    def reuse_directions(self) -> list[tuple[int, ...]]:
        """Primitive basis of self-reuse directions (kernel of ``access``).

        Two iterations hit the same element iff their difference is an
        integer combination of these vectors (paper Section 3.2).  Empty
        for injective (e.g. square non-singular) access matrices.
        """
        return integer_nullspace(self.access)

    def with_kind(self, kind: AccessKind) -> "ArrayRef":
        """A copy with a different access kind."""
        return ArrayRef(self.array, self.access, self.offset, kind)

    def subscript_strings(self, index_names: Sequence[str]) -> list[str]:
        """Human-readable subscript expressions, one per dimension."""
        out = []
        for row, c in zip(self.access.rows, self.offset):
            terms = []
            for coeff, name in zip(row, index_names):
                if coeff == 0:
                    continue
                if coeff == 1:
                    terms.append(f"+ {name}" if terms else name)
                elif coeff == -1:
                    terms.append(f"- {name}" if terms else f"-{name}")
                elif coeff > 0:
                    terms.append(f"+ {coeff}*{name}" if terms else f"{coeff}*{name}")
                else:
                    terms.append(f"- {-coeff}*{name}" if terms else f"-{-coeff}*{name}")
            if c > 0:
                terms.append(f"+ {c}" if terms else str(c))
            elif c < 0:
                terms.append(f"- {-c}" if terms else str(c))
            out.append(" ".join(terms) if terms else "0")
        return out

    def __str__(self) -> str:
        names = [f"i{k+1}" for k in range(self.nest_depth)]
        subs = "][".join(self.subscript_strings(names))
        return f"{self.array}[{subs}]"
