"""Loop-nest intermediate representation.

The paper's program model (Section 2): a *perfectly nested* loop — every
statement inside the innermost loop — with loop bounds and array subscript
expressions that are affine in the enclosing loop indices.  Each reference
to a ``d``-dimensional array ``U`` is ``U[A @ I + b]`` for an access matrix
``A`` (``d x n``) and offset vector ``b``.

The IR here is deliberately concrete: rectangular integer bounds (what the
paper's estimation formulas assume), exact integer access matrices, and an
explicit sequential iteration order.  A parser (``repro.ir.parser``) builds
the IR from a small C-like syntax; a code generator (``repro.ir.codegen``)
re-emits source, including transformed nests whose bounds come from
Fourier-Motzkin elimination.
"""

from repro.ir.loop import Loop, LoopNest
from repro.ir.array import ArrayDecl
from repro.ir.reference import AccessKind, ArrayRef
from repro.ir.statement import Statement
from repro.ir.program import Program
from repro.ir.builder import NestBuilder
from repro.ir.parser import ParseError, parse_program
from repro.ir.codegen import generate_source, generate_transformed_source
from repro.ir.sequence import ProgramSequence, SequenceMemoryReport, sequence_memory_report
from repro.ir.interpreter import execute, initial_state, states_equal
from repro.ir.generate import GeneratorConfig, random_program

__all__ = [
    "Loop",
    "LoopNest",
    "ArrayDecl",
    "AccessKind",
    "ArrayRef",
    "Statement",
    "Program",
    "NestBuilder",
    "ParseError",
    "parse_program",
    "generate_source",
    "generate_transformed_source",
    "ProgramSequence",
    "SequenceMemoryReport",
    "sequence_memory_report",
    "execute",
    "initial_state",
    "states_equal",
    "GeneratorConfig",
    "random_program",
]
