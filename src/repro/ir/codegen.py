"""Source generation: IR back to C-like text, including transformed nests.

``generate_source`` round-trips the parser's syntax.  For a unimodular
transformation ``T``, ``generate_transformed_source`` emits the nest that
scans ``u = T @ i`` in lexicographic order: new-loop bounds come from
Fourier-Motzkin elimination of the transformed domain, and each original
index in the body is rewritten as the corresponding row of ``T^{-1} @ u``.
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.program import Program
from repro.ir.reference import ArrayRef
from repro.ir.statement import Statement
from repro.linalg import IntMatrix
from repro.polyhedral.fourier_motzkin import loop_bounds
from repro.polyhedral.polytope import ConstraintSystem


def _render_ref(ref: ArrayRef, index_names: Sequence[str]) -> str:
    subs = "][".join(ref.subscript_strings(index_names))
    return f"{ref.array}[{subs}]"


def _render_statement(stmt: Statement, index_names: Sequence[str]) -> str:
    reads = " + ".join(_render_ref(r, index_names) for r in stmt.reads) or "0"
    if stmt.writes:
        lhs = _render_ref(stmt.writes[0], index_names)
        return f"{stmt.label}: {lhs} = {reads}"
    return f"{stmt.label}: {reads}"


def generate_source(program: Program) -> str:
    """Emit the program in the parser's input syntax (round-trippable)."""
    lines = []
    for decl in program.decls:
        dims = "".join(
            f"[{o}:{o + e - 1}]" for o, e in zip(decl.origins, decl.extents)
        )
        lines.append(f"array {decl.name}{dims}")
    names = program.nest.index_names
    for depth, loop in enumerate(program.nest.loops):
        lines.append("  " * depth + f"for {loop.index} = {loop.lower} to {loop.upper} {{")
    pad = "  " * program.nest.depth
    for stmt in program.statements:
        lines.append(pad + _render_statement(stmt, names))
    for depth in range(program.nest.depth - 1, -1, -1):
        lines.append("  " * depth + "}")
    return "\n".join(lines) + "\n"


def _rewrite_ref(ref: ArrayRef, inverse: IntMatrix) -> ArrayRef:
    """Compose the access with ``i = T^{-1} u``: new access = A @ T^{-1}."""
    return ArrayRef(ref.array, ref.access @ inverse, ref.offset, ref.kind)


def generate_transformed_source(
    program: Program,
    transformation: IntMatrix,
    new_names: Sequence[str] | None = None,
) -> str:
    """Emit the nest transformed by a unimodular matrix.

    The emitted loops scan the image polytope with ``ceild``/``floord``
    bounds; the body references are rewritten through ``T^{-1}``.  The
    rational Fourier-Motzkin shadow can make some inner loops empty at the
    fringe — the bounds guard that naturally (``lower > upper`` skips).
    """
    n = program.nest.depth
    if transformation.shape != (n, n):
        raise ValueError("transformation shape does not match nest depth")
    inverse = transformation.inverse_unimodular()
    names = tuple(new_names) if new_names else tuple(f"u{k+1}" for k in range(n))
    system = ConstraintSystem.transformed_nest(program.nest, transformation, names)
    bounds = loop_bounds(system)

    lines = []
    for decl in program.decls:
        dims = "".join(
            f"[{o}:{o + e - 1}]" for o, e in zip(decl.origins, decl.extents)
        )
        lines.append(f"array {decl.name}{dims}")
    for depth in range(n):
        outer = names[:depth]
        lo = bounds[depth].render_lower(outer)
        hi = bounds[depth].render_upper(outer)
        lines.append("  " * depth + f"for {names[depth]} = {lo} to {hi} {{")
    pad = "  " * n
    for stmt in program.statements:
        rewritten = Statement(
            stmt.label,
            tuple(_rewrite_ref(r, inverse) for r in stmt.writes),
            tuple(_rewrite_ref(r, inverse) for r in stmt.reads),
        )
        lines.append(pad + _render_statement(rewritten, names))
    for depth in range(n - 1, -1, -1):
        lines.append("  " * depth + "}")
    return "\n".join(lines) + "\n"
