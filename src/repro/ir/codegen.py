"""Source generation: IR back to C-like text, including transformed nests.

``generate_source`` round-trips the parser's syntax.  For a unimodular
transformation ``T``, ``generate_transformed_source`` emits the nest that
scans ``u = T @ i`` in lexicographic order: new-loop bounds come from
Fourier-Motzkin elimination of the transformed domain, and each original
index in the body is rewritten as the corresponding row of ``T^{-1} @ u``.

The module is also the *kernel specializer* behind the batched scoring
engine (:mod:`repro.window.batched`): :func:`sweep_kernel_source` and
:func:`sweep_kernel_c_source` emit a flat, program-specific first/last-
touch sweep — numpy or C — for one exact nest/reference structure.  The
emitted kernel takes a ``(K, N)`` matrix of order-isomorphic time keys
(one row per candidate transformation) and returns the K peak
concurrent-interval counts, i.e. the exact MWS of every candidate in
one call.  All loops over the program's arrays are unrolled and every
size (iteration count, access count, element count) is baked in as a
literal, so the kernel body contains no dict lookups, no branches on
program shape, and no per-array Python dispatch.
"""

from __future__ import annotations

from typing import NamedTuple, Sequence

from repro.ir.program import Program
from repro.ir.reference import ArrayRef
from repro.ir.statement import Statement
from repro.linalg import IntMatrix
from repro.polyhedral.fourier_motzkin import loop_bounds
from repro.polyhedral.polytope import ConstraintSystem


class SweepArraySpec(NamedTuple):
    """Shape of one array's cached access layout, as the specializer
    sees it: sizes only — the actual index arrays are bound at compile
    time by :mod:`repro.window.batched`.

    ``pad_width > 0`` selects the padded-gather reduction for this
    array: every element's access list is padded to ``pad_width``
    entries (repeating a member, which is min/max-neutral), so the
    segmented first/last reduction becomes a plain strided
    ``min``/``max`` over a ``(K, n_elems, pad_width)`` view — much
    faster than ``np.ufunc.reduceat``'s per-segment loop.  ``0`` keeps
    the reduceat body (chosen when the layout is too ragged for padding
    to pay)."""

    name: str
    n_accesses: int  # total dynamic accesses (all references)
    n_elems: int  # distinct touched elements
    pad_width: int = 0  # padded accesses per element (0 = use reduceat)


def _render_ref(ref: ArrayRef, index_names: Sequence[str]) -> str:
    subs = "][".join(ref.subscript_strings(index_names))
    return f"{ref.array}[{subs}]"


def _render_statement(stmt: Statement, index_names: Sequence[str]) -> str:
    reads = " + ".join(_render_ref(r, index_names) for r in stmt.reads) or "0"
    if stmt.writes:
        lhs = _render_ref(stmt.writes[0], index_names)
        return f"{stmt.label}: {lhs} = {reads}"
    return f"{stmt.label}: {reads}"


def generate_source(program: Program) -> str:
    """Emit the program in the parser's input syntax (round-trippable)."""
    lines = []
    for decl in program.decls:
        dims = "".join(
            f"[{o}:{o + e - 1}]" for o, e in zip(decl.origins, decl.extents)
        )
        lines.append(f"array {decl.name}{dims}")
    names = program.nest.index_names
    for depth, loop in enumerate(program.nest.loops):
        lines.append("  " * depth + f"for {loop.index} = {loop.lower} to {loop.upper} {{")
    pad = "  " * program.nest.depth
    for stmt in program.statements:
        lines.append(pad + _render_statement(stmt, names))
    for depth in range(program.nest.depth - 1, -1, -1):
        lines.append("  " * depth + "}")
    return "\n".join(lines) + "\n"


def _rewrite_ref(ref: ArrayRef, inverse: IntMatrix) -> ArrayRef:
    """Compose the access with ``i = T^{-1} u``: new access = A @ T^{-1}."""
    return ArrayRef(ref.array, ref.access @ inverse, ref.offset, ref.kind)


def generate_transformed_source(
    program: Program,
    transformation: IntMatrix,
    new_names: Sequence[str] | None = None,
) -> str:
    """Emit the nest transformed by a unimodular matrix.

    The emitted loops scan the image polytope with ``ceild``/``floord``
    bounds; the body references are rewritten through ``T^{-1}``.  The
    rational Fourier-Motzkin shadow can make some inner loops empty at the
    fringe — the bounds guard that naturally (``lower > upper`` skips).
    """
    n = program.nest.depth
    if transformation.shape != (n, n):
        raise ValueError("transformation shape does not match nest depth")
    inverse = transformation.inverse_unimodular()
    names = tuple(new_names) if new_names else tuple(f"u{k+1}" for k in range(n))
    system = ConstraintSystem.transformed_nest(program.nest, transformation, names)
    bounds = loop_bounds(system)

    lines = []
    for decl in program.decls:
        dims = "".join(
            f"[{o}:{o + e - 1}]" for o, e in zip(decl.origins, decl.extents)
        )
        lines.append(f"array {decl.name}{dims}")
    for depth in range(n):
        outer = names[:depth]
        lo = bounds[depth].render_lower(outer)
        hi = bounds[depth].render_upper(outer)
        lines.append("  " * depth + f"for {names[depth]} = {lo} to {hi} {{")
    pad = "  " * n
    for stmt in program.statements:
        rewritten = Statement(
            stmt.label,
            tuple(_rewrite_ref(r, inverse) for r in stmt.writes),
            tuple(_rewrite_ref(r, inverse) for r in stmt.reads),
        )
        lines.append(pad + _render_statement(rewritten, names))
    for depth in range(n - 1, -1, -1):
        lines.append("  " * depth + "}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# sweep-kernel specialization (batched candidate scoring)
# ----------------------------------------------------------------------
#
# Exactness of the emitted sweep: for each element the kernel reduces
# its access-time keys to (first, last) with segmented min/max over the
# cached element-sorted layout, then computes the peak count of
# concurrently open half-open intervals ``[first, last)``.  Occupancy at
# time ``t`` is ``#(starts <= t) - #(ends <= t)`` (the per-candidate
# path's :func:`repro.window.fast._peak_concurrent` formula) and only
# increases at start times.  Single-touch elements (first == last) are
# kept instead of filtered — their end is counted at or before their own
# start, so a degenerate interval nets zero at every scan point.
#
# Two equivalent realizations, chosen by the baked element count:
#
# * small E (``<= _EVENT_SWEEP_MAX_ELEMS``): encode the events in-band —
#   ``2*last`` for ends, ``2*first + 1`` for starts — then one plain
#   (unstable) in-place sort over the ``(K, 2E)`` batch and a cumulative
#   +1/-1 scan of the low bit.  The encoding preserves key order and
#   breaks every tie as end-before-start, so degenerates stay neutral,
#   without needing a stable argsort (sort is ~2x cheaper and skips the
#   permutation gather).  Keys are bounded by 2**62 (the
#   ``spans_fit_int64`` pack budget / dense-rank row counts), so the
#   doubling cannot wrap int64.  One vectorized call amortizes across
#   all K candidates.
# * large E: per-row ``sort`` of starts and ends plus a ``searchsorted``
#   scan — ``(i + 1) - #(ends <= s)`` at the ``i``-th smallest start.
#   Two sorts of E keys beat an argsort of 2E events by the
#   argsort-vs-sort constant once E dwarfs the per-row call overhead.
#
# The regime boundary is compile-time: E is a literal of the
# specialization, so each emitted kernel contains exactly one body.

#: Element-count ceiling for the vectorized event-sweep body; above it
#: the per-row sort/searchsorted body wins.  Crossover measured on the
#: bench suite sits near 10^4 elements; the constant is deliberately
#: below it (both bodies are exact, so only speed is at stake).
_EVENT_SWEEP_MAX_ELEMS = 4096


def sweep_kernel_source(specs: Sequence[SweepArraySpec]) -> str:
    """Emit a program-specialized numpy sweep kernel as Python source.

    The source defines ``sweep(keys)`` mapping ``(K, N)`` int64 time
    keys to the ``(K,)`` exact MWS values for the arrays in ``specs``
    (their sum-window when several).  It references the globals
    ``_PP<i>`` (padded element-major gather index, arrays with
    ``pad_width``) or ``_PR<i>``/``_SS<i>`` (access->row gather index
    and segment starts, reduceat arrays), which the compiler binds to
    the cached :class:`repro.window.fast._ElementState` data.  Every
    array loop is unrolled and every size is a literal.
    """
    if not specs:
        raise ValueError("sweep kernel needs at least one array")
    total_elems = sum(spec.n_elems for spec in specs)
    names = ", ".join(spec.name for spec in specs)
    lines = [
        "import numpy as np",
        "",
        "",
        "def sweep(keys):",
        f'    """Specialized first/last-touch sweep over arrays: {names}."""',
    ]
    firsts = []
    lasts = []
    for i, spec in enumerate(specs):
        if spec.pad_width:
            lines.append(
                f"    seq{i} = keys[:, _PP{i}]"
                f".reshape(-1, {spec.n_elems}, {spec.pad_width})"
            )
            lines.append(f"    f{i} = seq{i}.min(axis=2)")
            lines.append(f"    l{i} = seq{i}.max(axis=2)")
        else:
            lines.append(f"    seq{i} = keys[:, _PR{i}]")
            lines.append(
                f"    f{i} = np.minimum.reduceat(seq{i}, _SS{i}, axis=1)"
            )
            lines.append(
                f"    l{i} = np.maximum.reduceat(seq{i}, _SS{i}, axis=1)"
            )
        firsts.append(f"f{i}")
        lasts.append(f"l{i}")
    tail = []
    if total_elems <= _EVENT_SWEEP_MAX_ELEMS:
        lines.append(
            f"    times = np.empty((keys.shape[0], {2 * total_elems}),"
            " dtype=keys.dtype)"
        )
        offset = 0
        for i, spec in enumerate(specs):
            lines.append(
                f"    np.multiply(l{i}, 2,"
                f" out=times[:, {offset}:{offset + spec.n_elems}])"
            )
            offset += spec.n_elems
        for i, spec in enumerate(specs):
            lines.append(
                f"    np.multiply(f{i}, 2,"
                f" out=times[:, {offset}:{offset + spec.n_elems}])"
            )
            offset += spec.n_elems
        # After the in-place sort, ``times`` is reused for the scan:
        # occupancy after the k-th event is 2 * (#starts so far) - (k+1).
        lines.extend(
            [
                f"    times[:, {total_elems}:] += 1",
                "    times.sort(axis=1)",
                "    times &= 1",
                "    np.cumsum(times, axis=1, out=times)",
                "    times += times",
                "    times -= _EVT",  # same_kind in-place cast for int32
                "    return times.max(axis=1, initial=0)",
            ]
        )
        tail = [
            "",
            "",
            f"_EVT = np.arange(1, {2 * total_elems + 1}, dtype=np.int64)",
        ]
    else:
        if len(specs) == 1:
            lines.append("    starts = f0")
            lines.append("    ends = l0")
        else:
            lines.append(
                f"    starts = np.concatenate(({', '.join(firsts)},), axis=1)"
            )
            lines.append(
                f"    ends = np.concatenate(({', '.join(lasts)},), axis=1)"
            )
        lines.extend(
            [
                "    starts.sort(axis=1)",
                "    ends.sort(axis=1)",
                "    out = np.empty(keys.shape[0], dtype=np.int64)",
                "    for r in range(keys.shape[0]):",
                "        occ = _COUNTS - np.searchsorted("
                'ends[r], starts[r], side="right")',
                "        out[r] = occ.max()",
                "    return out",
            ]
        )
        tail = [
            "",
            "",
            f"_COUNTS = np.arange(1, {total_elems + 1}, dtype=np.int64)",
        ]
    lines.extend(tail)
    return "\n".join(lines) + "\n"


def sweep_kernel_c_source(
    specs: Sequence[SweepArraySpec], n_points: int
) -> tuple[str, str]:
    """Emit the same specialized sweep as C, for cffi compilation.

    Returns ``(cdef, source)``.  The C function takes the flattened
    ``(K, N)`` key matrix, the row count, one ``(point_row, seg_starts)``
    pointer pair per array, and an output buffer of K peaks.  All sizes
    are baked as compile-time constants; the per-array gather/reduce
    loops are emitted unrolled, one block per array.
    """
    if not specs:
        raise ValueError("sweep kernel needs at least one array")
    total_elems = sum(spec.n_elems for spec in specs)
    args = ", ".join(
        f"const long long *pr{i}, const long long *ss{i}"
        for i in range(len(specs))
    )
    cdef = (
        "void repro_sweep(const long long *keys, long long nrows, "
        f"{args}, long long *out);"
    )
    blocks = []
    for i, spec in enumerate(specs):
        blocks.append(f"""\
        /* array {spec.name}: {spec.n_accesses} accesses, {spec.n_elems} elements */
        for (long long seg = 0; seg < {spec.n_elems}; seg++) {{
            long long lo = ss{i}[seg];
            long long hi = (seg + 1 < {spec.n_elems}) ? ss{i}[seg + 1] : {spec.n_accesses};
            long long mn = row[pr{i}[lo]];
            long long mx = mn;
            for (long long a = lo + 1; a < hi; a++) {{
                long long v = row[pr{i}[a]];
                if (v < mn) mn = v;
                if (v > mx) mx = v;
            }}
            st[e] = mn;
            en[e] = mx;
            e++;
        }}""")
    body = "\n".join(blocks)
    source = f"""\
#include <stdlib.h>

static int repro_key_cmp(const void *pa, const void *pb) {{
    long long a = *(const long long *)pa, b = *(const long long *)pb;
    return (a < b) ? -1 : (a > b) ? 1 : 0;
}}

void repro_sweep(const long long *keys, long long nrows, {args},
                 long long *out)
{{
    long long *st = malloc(sizeof(long long) * {2 * total_elems});
    if (!st) {{
        for (long long r = 0; r < nrows; r++) out[r] = -1;
        return;
    }}
    long long *en = st + {total_elems};
    for (long long r = 0; r < nrows; r++) {{
        const long long *row = keys + r * {n_points}LL;
        long long e = 0;
{body}
        qsort(st, (size_t)e, sizeof(long long), repro_key_cmp);
        qsort(en, (size_t)e, sizeof(long long), repro_key_cmp);
        /* Occupancy at the i-th smallest start s is (i + 1) minus the
           ends at or before s; a merge over the two sorted buffers
           reads every candidate maximum. */
        long long j = 0, peak = 0;
        for (long long i = 0; i < e; i++) {{
            while (j < e && en[j] <= st[i]) j++;
            long long occ = i + 1 - j;
            if (occ > peak) peak = occ;
        }}
        out[r] = peak;
    }}
    free(st);
}}
"""
    return cdef, source
