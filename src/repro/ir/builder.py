"""Fluent builder for constructing loop-nest programs in code.

The parser covers textual input; this builder is the ergonomic API for
tests, kernels and examples:

>>> from repro.ir import NestBuilder
>>> prog = (
...     NestBuilder("example2")
...     .loop("i", 1, 10)
...     .loop("j", 1, 10)
...     .statement("S1", write=("A", [[1, 0], [0, 1]], [0, 0]))
...     .statement("S2", reads=[("A", [[1, 0], [0, 1]], [-1, 2])])
...     .build()
... )
>>> prog.nest.depth
2
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.array import ArrayDecl
from repro.ir.loop import Loop, LoopNest
from repro.ir.program import Program
from repro.ir.reference import AccessKind, ArrayRef
from repro.ir.statement import Statement

RefSpec = tuple  # (array_name, access_rows, offset)


def _make_ref(spec: "RefSpec | ArrayRef", kind: AccessKind) -> ArrayRef:
    if isinstance(spec, ArrayRef):
        return spec.with_kind(kind)
    array, access_rows, offset = spec
    return ArrayRef.of(array, access_rows, offset, kind)


class NestBuilder:
    """Accumulates loops, statements and declarations, then validates."""

    def __init__(self, name: str = "program"):
        self._name = name
        self._loops: list[Loop] = []
        self._statements: list[Statement] = []
        self._decls: list[ArrayDecl] = []
        self._auto_label = 0

    def loop(self, index: str, lower: int, upper: int) -> "NestBuilder":
        """Append a loop level (outermost first)."""
        self._loops.append(Loop(index, lower, upper))
        return self

    def loops(self, *specs: tuple[str, int, int]) -> "NestBuilder":
        """Append several loop levels at once."""
        for index, lower, upper in specs:
            self.loop(index, lower, upper)
        return self

    def declare(self, name: str, *extents: int, origins: Sequence[int] | None = None) -> "NestBuilder":
        """Add an explicit array declaration (otherwise inferred)."""
        self._decls.append(ArrayDecl.of(name, *extents, origins=origins))
        return self

    def statement(
        self,
        label: str | None = None,
        write: "RefSpec | ArrayRef | None" = None,
        reads: Sequence["RefSpec | ArrayRef"] = (),
    ) -> "NestBuilder":
        """Append one assignment statement.

        ``write``/``reads`` entries are either ``ArrayRef`` objects or
        ``(array, access_rows, offset)`` triples.
        """
        if label is None:
            self._auto_label += 1
            label = f"S{self._auto_label}"
        write_ref = None if write is None else _make_ref(write, AccessKind.WRITE)
        read_refs = [_make_ref(r, AccessKind.READ) for r in reads]
        self._statements.append(Statement.assign(label, write_ref, read_refs))
        return self

    def use(self, label: str | None = None, *refs: "RefSpec | ArrayRef") -> "NestBuilder":
        """Append a pure-use statement (reads only, e.g. ``... = A[i][j]``)."""
        return self.statement(label, write=None, reads=list(refs))

    def build(self) -> Program:
        """Validate and produce the Program."""
        return Program(
            LoopNest(self._loops),
            self._statements,
            self._decls,
            name=self._name,
        )
