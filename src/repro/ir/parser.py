"""A small C-like front end for loop-nest programs.

Grammar (informal)::

    program   := decl* loop
    decl      := "array" NAME dims NEWLINE
    dims      := ("[" INT "]" | "[" INT ":" INT "]")+
    loop      := "for" NAME "=" INT "to" INT "{" (loop | stmt+) "}"
    stmt      := [LABEL ":"] [ref "="] expr
    ref       := NAME ("[" affine "]")+
    affine    := ["+"|"-"] term (("+"|"-") term)*
    term      := INT ["*" NAME] | NAME ["*" INT] | "(" affine ")" | INT "*" "(" affine ")"

Only the structure the paper's model needs is understood: perfectly
nested unit-stride loops with integer bounds, and statements whose array
subscripts are affine in the loop indices.  Arithmetic between references
on the right-hand side is treated as opaque glue — the analysis only needs
which elements are read and written.

>>> prog = parse_program('''
... for i = 1 to 10 {
...   for j = 1 to 10 {
...     S1: A[i][j] = A[i-3][j+2] + 1
...   }
... }
... ''')
>>> prog.nest.trip_counts
(10, 10)
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.ir.array import ArrayDecl
from repro.ir.loop import Loop, LoopNest
from repro.ir.program import Program
from repro.ir.reference import AccessKind, ArrayRef
from repro.ir.statement import Statement
from repro.linalg import IntMatrix


class ParseError(ValueError):
    """Raised with a line/column-annotated message on malformed input."""


@dataclass(frozen=True)
class _Token:
    kind: str  # NAME | INT | OP | NEWLINE | EOF
    text: str
    line: int
    col: int


_TOKEN_RE = re.compile(
    r"""
    (?P<COMMENT>\#[^\n]*|//[^\n]*)
  | (?P<NAME>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<INT>\d+)
  | (?P<OP>[\[\]{}()=+\-*:;,])
  | (?P<NEWLINE>\n)
  | (?P<SKIP>[ \t\r]+)
  | (?P<BAD>.)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[_Token]:
    tokens = []
    line = 1
    line_start = 0
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup
        value = match.group()
        col = match.start() - line_start + 1
        if kind == "NEWLINE":
            tokens.append(_Token("NEWLINE", value, line, col))
            line += 1
            line_start = match.end()
        elif kind in ("SKIP", "COMMENT"):
            continue
        elif kind == "BAD":
            raise ParseError(f"line {line}:{col}: unexpected character {value!r}")
        else:
            tokens.append(_Token(kind, value, line, col))
    tokens.append(_Token("EOF", "", line, 1))
    return tokens


@dataclass
class _Affine:
    """An affine expression: coefficient per index name + constant."""

    coeffs: dict
    const: int

    def __add__(self, other: "_Affine") -> "_Affine":
        coeffs = dict(self.coeffs)
        for name, c in other.coeffs.items():
            coeffs[name] = coeffs.get(name, 0) + c
        return _Affine(coeffs, self.const + other.const)

    def __neg__(self) -> "_Affine":
        return _Affine({k: -v for k, v in self.coeffs.items()}, -self.const)

    def scaled(self, k: int) -> "_Affine":
        return _Affine({name: k * c for name, c in self.coeffs.items()}, k * self.const)


class _Parser:
    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.pos = 0
        self.decls: list[ArrayDecl] = []
        self.loops: list[Loop] = []
        # Stride normalization: original index = mult * new index + shift.
        self.loop_subs: dict[str, tuple[int, int]] = {}
        self.statements: list[Statement] = []
        self.auto_label = 0

    # -- token helpers -------------------------------------------------
    def peek(self, skip_newlines: bool = True) -> _Token:
        pos = self.pos
        while skip_newlines and self.tokens[pos].kind == "NEWLINE":
            pos += 1
        return self.tokens[pos]

    def next(self, skip_newlines: bool = True) -> _Token:
        while skip_newlines and self.tokens[self.pos].kind == "NEWLINE":
            self.pos += 1
        tok = self.tokens[self.pos]
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def expect(self, kind: str, text: str | None = None) -> _Token:
        tok = self.next()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text if text is not None else kind
            raise ParseError(
                f"line {tok.line}:{tok.col}: expected {want!r}, got {tok.text!r}"
            )
        return tok

    def error(self, tok: _Token, message: str) -> ParseError:
        return ParseError(f"line {tok.line}:{tok.col}: {message}")

    # -- grammar -------------------------------------------------------
    def parse(self, name: str) -> Program:
        while self.peek().kind == "NAME" and self.peek().text == "array":
            self.parse_decl()
        if not (self.peek().kind == "NAME" and self.peek().text == "for"):
            raise self.error(self.peek(), "expected a 'for' loop")
        self.parse_loop()
        if self.peek().kind != "EOF":
            raise self.error(self.peek(), "trailing input after loop nest")
        return Program(LoopNest(self.loops), self.statements, self.decls, name=name)

    def parse_decl(self) -> None:
        self.expect("NAME", "array")
        name = self.expect("NAME").text
        extents = []
        origins = []
        while self.peek().kind == "OP" and self.peek().text == "[":
            self.next()
            first = self.parse_signed_int()
            if self.peek().text == ":":
                self.next()
                last = self.parse_signed_int()
                origins.append(first)
                extents.append(last - first + 1)
            else:
                origins.append(0)
                extents.append(first)
            self.expect("OP", "]")
        if not extents:
            raise self.error(self.peek(), f"array {name} needs dimensions")
        self.decls.append(ArrayDecl(name, tuple(extents), tuple(origins)))

    def parse_signed_int(self) -> int:
        tok = self.next()
        sign = 1
        if tok.kind == "OP" and tok.text in "+-":
            sign = -1 if tok.text == "-" else 1
            tok = self.next()
        if tok.kind != "INT":
            raise self.error(tok, f"expected an integer, got {tok.text!r}")
        return sign * int(tok.text)

    def parse_loop(self) -> None:
        self.expect("NAME", "for")
        index = self.expect("NAME").text
        self.expect("OP", "=")
        lower = self.parse_signed_int()
        self.expect("NAME", "to")
        upper = self.parse_signed_int()
        step = 1
        if self.peek().kind == "NAME" and self.peek().text == "step":
            self.next()
            step = self.parse_signed_int()
            if step <= 0:
                raise self.error(self.peek(), "step must be positive")
        try:
            if step == 1:
                self.loops.append(Loop(index, lower, upper))
                self.loop_subs[index] = (1, 0)
            else:
                # Normalize: i = lower + step*(k - 1); k runs 1..trip.
                if lower > upper:
                    raise ValueError(
                        f"empty loop {index}: lower {lower} > upper {upper}"
                    )
                trip = (upper - lower) // step + 1
                self.loops.append(Loop(index, 1, trip))
                self.loop_subs[index] = (step, lower - step)
        except ValueError as exc:
            raise self.error(self.peek(), str(exc)) from exc
        self.expect("OP", "{")
        if self.peek().kind == "NAME" and self.peek().text == "for":
            self.parse_loop()
        else:
            while not (self.peek().kind == "OP" and self.peek().text == "}"):
                self.parse_statement()
        self.expect("OP", "}")

    def parse_statement(self) -> None:
        while self.tokens[self.pos].kind == "NEWLINE":
            self.pos += 1
        tok = self.peek()
        if tok.kind == "EOF":
            raise self.error(tok, "unterminated loop body")
        label = None
        # Optional "LABEL :" prefix (a name followed by ':' not inside [...]).
        if tok.kind == "NAME":
            save = self.pos
            name_tok = self.next()
            if self.peek(skip_newlines=False).text == ":":
                self.next()
                label = name_tok.text
            else:
                self.pos = save
        if label is None:
            self.auto_label += 1
            label = f"S{self.auto_label}"

        first_ref, first_is_ref = self.parse_ref_or_skip()
        write_ref = None
        reads: list[ArrayRef] = []
        if first_is_ref and self.peek(skip_newlines=False).text == "=":
            self.next()
            write_ref = first_ref
        elif first_ref is not None:
            reads.append(first_ref)
        # Consume the rest of the statement up to end-of-line or ';' or '}'.
        while True:
            tok = self.peek(skip_newlines=False)
            if tok.kind in ("NEWLINE", "EOF"):
                if tok.kind == "NEWLINE":
                    self.next(skip_newlines=False)
                break
            if tok.kind == "OP" and tok.text == ";":
                self.next()
                break
            if tok.kind == "OP" and tok.text == "}":
                break
            ref, is_ref = self.parse_ref_or_skip()
            if is_ref:
                reads.append(ref)
        self.statements.append(Statement.assign(label, write_ref, reads))

    def parse_ref_or_skip(self) -> tuple[ArrayRef | None, bool]:
        """Parse one array reference if the next tokens form one; otherwise
        consume a single non-reference token and return (None, False)."""
        tok = self.peek(skip_newlines=False)
        if tok.kind == "NAME":
            save = self.pos
            name_tok = self.next()
            if self.peek(skip_newlines=False).text == "[":
                subscripts = []
                while self.peek(skip_newlines=False).text == "[":
                    self.next()
                    subscripts.append(self.parse_affine())
                    self.expect("OP", "]")
                return self.make_ref(name_tok, subscripts), True
            self.pos = save
        self.next(skip_newlines=False)
        return None, False

    def make_ref(self, name_tok: _Token, subscripts: list[_Affine]) -> ArrayRef:
        index_names = [lp.index for lp in self.loops]
        rows = []
        offset = []
        for sub in subscripts:
            unknown = set(sub.coeffs) - set(index_names)
            if unknown:
                raise self.error(
                    name_tok,
                    f"subscript of {name_tok.text} uses non-loop names {sorted(unknown)}",
                )
            row = []
            const = sub.const
            for ix in index_names:
                coeff = sub.coeffs.get(ix, 0)
                mult, shift = self.loop_subs.get(ix, (1, 0))
                row.append(coeff * mult)
                const += coeff * shift
            rows.append(row)
            offset.append(const)
        return ArrayRef(name_tok.text, IntMatrix(rows), tuple(offset), AccessKind.READ)

    def parse_affine(self) -> _Affine:
        expr = self.parse_affine_term()
        while self.peek(skip_newlines=False).text in ("+", "-"):
            op = self.next().text
            term = self.parse_affine_term()
            expr = expr + (term if op == "+" else -term)
        return expr

    def parse_affine_term(self) -> _Affine:
        tok = self.next(skip_newlines=False)
        sign = 1
        while tok.kind == "OP" and tok.text in "+-":
            if tok.text == "-":
                sign = -sign
            tok = self.next(skip_newlines=False)
        if tok.kind == "OP" and tok.text == "(":
            inner = self.parse_affine()
            self.expect("OP", ")")
            base = inner
        elif tok.kind == "INT":
            base = _Affine({}, int(tok.text))
        elif tok.kind == "NAME":
            base = _Affine({tok.text: 1}, 0)
        else:
            raise self.error(tok, f"unexpected {tok.text!r} in subscript")
        # Optional "* factor" chain; at most one side may be non-constant.
        while self.peek(skip_newlines=False).text == "*":
            self.next()
            factor = self.parse_affine_factor()
            base = self.multiply(base, factor, tok)
        return base.scaled(sign)

    def parse_affine_factor(self) -> _Affine:
        tok = self.next(skip_newlines=False)
        sign = 1
        while tok.kind == "OP" and tok.text in "+-":
            if tok.text == "-":
                sign = -sign
            tok = self.next(skip_newlines=False)
        if tok.kind == "OP" and tok.text == "(":
            inner = self.parse_affine()
            self.expect("OP", ")")
            return inner.scaled(sign)
        if tok.kind == "INT":
            return _Affine({}, sign * int(tok.text))
        if tok.kind == "NAME":
            return _Affine({tok.text: sign}, 0)
        raise self.error(tok, f"unexpected {tok.text!r} in subscript")

    def multiply(self, a: _Affine, b: _Affine, at: _Token) -> _Affine:
        if not a.coeffs:
            return b.scaled(a.const)
        if not b.coeffs:
            return a.scaled(b.const)
        raise self.error(at, "non-affine subscript (product of two index expressions)")


def parse_program(text: str, name: str = "program") -> Program:
    """Parse source text into a :class:`~repro.ir.program.Program`."""
    return _Parser(text).parse(name)
