"""Sequences of perfect loop nests.

Real DSP applications (the paper's motivating domain) are chains of
perfectly nested loops: produce an array in one nest, consume it in the
next.  The paper analyzes one nest at a time; this extension composes the
per-nest windows into whole-application memory requirements, where an
array written by nest ``k`` and read by nest ``k+1`` must keep its
*inter-nest live set* resident across the boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.ir.program import Program


class ProgramSequence:
    """An ordered chain of perfect loop nests executed one after another."""

    def __init__(self, programs: Sequence[Program], name: str = "sequence"):
        programs = tuple(programs)
        if not programs:
            raise ValueError("a sequence needs at least one program")
        names = [p.name for p in programs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate program names: {names}")
        self.programs = programs
        self.name = name

    @property
    def arrays(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for program in self.programs:
            for array in program.arrays:
                seen.setdefault(array, None)
        return tuple(seen)

    def producers(self, array: str) -> list[int]:
        """Indices of nests that write the array."""
        return [
            k
            for k, program in enumerate(self.programs)
            if any(ref.is_write for ref in program.refs_to(array))
        ]

    def consumers(self, array: str) -> list[int]:
        """Indices of nests that read the array."""
        return [
            k
            for k, program in enumerate(self.programs)
            if any(not ref.is_write for ref in program.refs_to(array))
        ]

    def live_between(self, array: str, boundary: int) -> set[tuple[int, ...]]:
        """Elements of ``array`` live across the boundary after nest
        ``boundary`` (written at or before it, read after it).

        Exact, by enumeration of writes and reads.
        """
        if not 0 <= boundary < len(self.programs) - 1:
            raise ValueError("boundary must sit between two nests")
        written: set[tuple[int, ...]] = set()
        for program in self.programs[: boundary + 1]:
            for ref in program.refs_to(array):
                if ref.is_write:
                    for point in program.nest.iterate():
                        written.add(ref.element(point))
        read_later: set[tuple[int, ...]] = set()
        for program in self.programs[boundary + 1:]:
            for ref in program.refs_to(array):
                if not ref.is_write:
                    for point in program.nest.iterate():
                        read_later.add(ref.element(point))
        return written & read_later

    def __repr__(self) -> str:
        return f"ProgramSequence({[p.name for p in self.programs]!r})"


@dataclass(frozen=True)
class SequenceMemoryReport:
    """Memory requirement of a nest chain.

    ``per_nest`` holds each nest's own total MWS; ``per_boundary`` the
    inter-nest live counts (summed over arrays); the requirement is the
    maximum over execution of (current nest window + carried live sets
    from every enclosing boundary).
    """

    sequence: str
    per_nest: tuple[int, ...]
    per_boundary: tuple[int, ...]
    requirement: int
    declared: int

    @property
    def saving(self) -> float:
        if self.declared == 0:
            return 0.0
        return 1.0 - self.requirement / self.declared


def sequence_memory_report(sequence: ProgramSequence) -> SequenceMemoryReport:
    """Whole-chain memory requirement.

    At the moment nest ``k`` runs, memory holds: nest ``k``'s window plus,
    for every array, the elements produced before ``k`` and consumed after
    ``k - 1`` (conservatively: the union of live-across sets of the two
    adjacent boundaries).  The requirement is the max over ``k``.
    """
    from repro.window.simulator import max_total_window

    programs = sequence.programs
    per_nest = tuple(max_total_window(p) for p in programs)
    boundaries = []
    for boundary in range(len(programs) - 1):
        total = 0
        for array in sequence.arrays:
            total += len(sequence.live_between(array, boundary))
        boundaries.append(total)
    requirement = 0
    for k in range(len(programs)):
        carried = 0
        # Anything live across the boundary before k is resident while k
        # runs, as is anything live across the boundary after k (it has
        # already been produced by earlier nests or k itself at its end).
        if k > 0:
            carried = max(carried, boundaries[k - 1])
        if k < len(boundaries):
            carried = max(carried, boundaries[k])
        requirement = max(requirement, per_nest[k] + carried)
    declared = 0
    seen: set[str] = set()
    for program in programs:
        for decl in program.decls:
            if decl.name not in seen:
                seen.add(decl.name)
                declared += decl.declared_size
    return SequenceMemoryReport(
        sequence.name, per_nest, tuple(boundaries), requirement, declared
    )
