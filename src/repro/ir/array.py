"""Array declarations.

The "default" column of the paper's Figure 2 is the number of *declared*
array elements — the memory a naive allocation would reserve.  The whole
point of the paper is that the live window is usually far smaller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass(frozen=True)
class ArrayDecl:
    """A ``d``-dimensional array with per-dimension index ranges.

    ``origins[k] <= index_k <= origins[k] + extents[k] - 1``.  Origins
    default to zero-based; stencils that read ``A[i-1]`` with ``i`` from 1
    typically want an origin of 0 and an extent covering the halo.
    """

    name: str
    extents: tuple[int, ...]
    origins: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ValueError(f"invalid array name {self.name!r}")
        if not self.extents:
            raise ValueError("array needs at least one dimension")
        if any(e <= 0 for e in self.extents):
            raise ValueError(f"non-positive extent in {self.extents}")
        origins = self.origins if self.origins else tuple(0 for _ in self.extents)
        if len(origins) != len(self.extents):
            raise ValueError("origins/extents rank mismatch")
        object.__setattr__(self, "origins", origins)

    @classmethod
    def of(cls, name: str, *extents: int, origins: Sequence[int] | None = None) -> "ArrayDecl":
        """Convenience constructor: ``ArrayDecl.of("A", 10, 10)``."""
        return cls(name, tuple(extents), tuple(origins) if origins else ())

    @property
    def rank(self) -> int:
        """Dimensionality ``d``."""
        return len(self.extents)

    @property
    def declared_size(self) -> int:
        """Total declared elements — Figure 2's ``default`` column."""
        out = 1
        for e in self.extents:
            out *= e
        return out

    def in_bounds(self, element: Sequence[int]) -> bool:
        """Is an element index tuple within the declaration?"""
        if len(element) != self.rank:
            return False
        return all(
            o <= x <= o + e - 1
            for x, o, e in zip(element, self.origins, self.extents)
        )

    def __str__(self) -> str:
        dims = "".join(
            f"[{o}:{o + e - 1}]" if o != 0 else f"[{e}]"
            for o, e in zip(self.origins, self.extents)
        )
        return f"{self.name}{dims}"
