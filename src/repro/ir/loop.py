"""Loops and loop nests with rectangular integer bounds."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence


@dataclass(frozen=True)
class Loop:
    """One loop level: ``for <index> = <lower> to <upper>`` (inclusive).

    The paper's model uses unit-stride loops with integer bounds; lower
    bounds are usually 1 but any integers with ``lower <= upper`` are
    allowed.
    """

    index: str
    lower: int
    upper: int

    def __post_init__(self) -> None:
        if not isinstance(self.lower, int) or not isinstance(self.upper, int):
            raise TypeError("loop bounds must be ints")
        if self.lower > self.upper:
            raise ValueError(
                f"empty loop {self.index}: lower {self.lower} > upper {self.upper}"
            )
        if not self.index.isidentifier():
            raise ValueError(f"invalid loop index name {self.index!r}")

    @property
    def trip_count(self) -> int:
        """Number of iterations ``N = upper - lower + 1``."""
        return self.upper - self.lower + 1

    @property
    def span(self) -> int:
        """``upper - lower`` — the paper's ``N - 1`` when lower is 1."""
        return self.upper - self.lower

    def __str__(self) -> str:
        return f"for {self.index} = {self.lower} to {self.upper}"


class LoopNest:
    """A perfectly nested sequence of loops, outermost first.

    Provides the sequential (row-major / lexicographic) iteration order
    that defines execution time in the paper's window model.
    """

    def __init__(self, loops: Sequence[Loop]):
        loops = tuple(loops)
        if not loops:
            raise ValueError("a loop nest needs at least one loop")
        names = [lp.index for lp in loops]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate loop index names in {names}")
        self.loops: tuple[Loop, ...] = loops

    @property
    def depth(self) -> int:
        """Nesting level ``n``."""
        return len(self.loops)

    @property
    def index_names(self) -> tuple[str, ...]:
        return tuple(lp.index for lp in self.loops)

    @property
    def lowers(self) -> tuple[int, ...]:
        return tuple(lp.lower for lp in self.loops)

    @property
    def uppers(self) -> tuple[int, ...]:
        return tuple(lp.upper for lp in self.loops)

    @property
    def trip_counts(self) -> tuple[int, ...]:
        """The paper's ``(N1, ..., Nn)``."""
        return tuple(lp.trip_count for lp in self.loops)

    @property
    def total_iterations(self) -> int:
        out = 1
        for lp in self.loops:
            out *= lp.trip_count
        return out

    def iterate(self) -> Iterator[tuple[int, ...]]:
        """Yield iteration vectors in sequential (lexicographic) order."""
        ranges = [range(lp.lower, lp.upper + 1) for lp in self.loops]
        return itertools.product(*ranges)

    def contains(self, point: Sequence[int]) -> bool:
        """Is ``point`` inside the iteration space?"""
        if len(point) != self.depth:
            return False
        return all(
            lp.lower <= x <= lp.upper for lp, x in zip(self.loops, point)
        )

    def linearize(self, point: Sequence[int]) -> int:
        """Sequential position (0-based) of an iteration vector.

        The inverse of enumerating ``iterate()``; used to timestamp
        accesses in the window simulator.
        """
        if not self.contains(point):
            raise ValueError(f"point {tuple(point)} outside nest bounds")
        pos = 0
        for lp, x in zip(self.loops, point):
            pos = pos * lp.trip_count + (x - lp.lower)
        return pos

    def loop(self, index: str) -> Loop:
        """Look a loop up by its index variable name."""
        for lp in self.loops:
            if lp.index == index:
                return lp
        raise KeyError(index)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LoopNest):
            return NotImplemented
        return self.loops == other.loops

    def __hash__(self) -> int:
        return hash(self.loops)

    def __repr__(self) -> str:
        return f"LoopNest({list(self.loops)!r})"

    def __str__(self) -> str:
        return "\n".join(
            "  " * depth + str(lp) for depth, lp in enumerate(self.loops)
        )
