"""Random affine program generation for fuzzing and ablations.

Deterministic given a seed.  The generator produces programs inside the
paper's model — rectangular perfect nests, affine references — with
dials for depth, trip counts, reference counts, array ranks and
uniformity, so property tests can target specific analysis regimes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.ir.builder import NestBuilder
from repro.ir.program import Program


@dataclass(frozen=True)
class GeneratorConfig:
    """Dials for the random program generator.

    Invalid dial combinations are rejected eagerly: a ``max_coeff`` or
    ``array_rank`` of zero would spin :func:`random_program` forever
    looking for a nonzero access row, and a negative trip range would
    crash ``random.randint`` mid-generation with a confusing message.
    """

    depth: int = 2
    min_trip: int = 3
    max_trip: int = 10
    max_statements: int = 3
    max_coeff: int = 3
    max_offset: int = 4
    array_rank: int | None = None  # None: random in [1, depth]
    uniform_only: bool = True
    allow_writes: bool = True

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError(f"depth must be >= 1, got {self.depth}")
        if self.min_trip < 1 or self.max_trip < self.min_trip:
            raise ValueError(
                f"need 1 <= min_trip <= max_trip, got "
                f"[{self.min_trip}, {self.max_trip}]"
            )
        if self.max_statements < 1:
            raise ValueError(
                f"max_statements must be >= 1, got {self.max_statements}"
            )
        if self.max_coeff < 1:
            raise ValueError(f"max_coeff must be >= 1, got {self.max_coeff}")
        if self.max_offset < 0:
            raise ValueError(f"max_offset must be >= 0, got {self.max_offset}")
        if self.array_rank is not None and self.array_rank < 1:
            raise ValueError(
                f"array_rank must be None or >= 1, got {self.array_rank}"
            )


def random_program(seed: int, config: GeneratorConfig | None = None) -> Program:
    """Generate one random program.

    Uniform mode shares a single access matrix per array (the paper's
    uniformly generated assumption); non-uniform mode draws a fresh
    matrix per reference.
    """
    cfg = config or GeneratorConfig()
    rng = random.Random(seed)
    builder = NestBuilder(f"fuzz{seed}")
    for level in range(cfg.depth):
        trip = rng.randint(cfg.min_trip, cfg.max_trip)
        builder.loop(f"i{level + 1}", 1, trip)

    def random_access(rank: int) -> list[list[int]]:
        while True:
            rows = [
                [rng.randint(-cfg.max_coeff, cfg.max_coeff) for _ in range(cfg.depth)]
                for _ in range(rank)
            ]
            if any(any(v != 0 for v in row) for row in rows):
                return rows

    n_arrays = rng.randint(1, 2)
    arrays = []
    for k in range(n_arrays):
        rank = cfg.array_rank or rng.randint(1, cfg.depth)
        arrays.append((f"A{k}", rank, random_access(rank)))

    n_statements = rng.randint(1, cfg.max_statements)
    for s in range(n_statements):
        name, rank, access = arrays[rng.randrange(len(arrays))]
        if not cfg.uniform_only:
            access = random_access(rank)
        offset = [rng.randint(-cfg.max_offset, cfg.max_offset) for _ in range(rank)]
        read_specs = []
        n_reads = rng.randint(1, 2)
        for _ in range(n_reads):
            rname, rrank, raccess = arrays[rng.randrange(len(arrays))]
            if not cfg.uniform_only:
                raccess = random_access(rrank)
            roffset = [
                rng.randint(-cfg.max_offset, cfg.max_offset) for _ in range(rrank)
            ]
            read_specs.append((rname, raccess, roffset))
        if cfg.allow_writes and rng.random() < 0.7:
            builder.statement(f"S{s + 1}", write=(name, access, offset), reads=read_specs)
        else:
            builder.use(f"S{s + 1}", *read_specs)
    program = builder.build()
    _validate_ranks(program, seed, {name: rank for name, rank, _ in arrays})
    return program


def _validate_ranks(
    program: Program, seed: int, declared: dict[str, int]
) -> None:
    """Reject a generated program whose references disagree on rank.

    Ranks are pinned per array when the array table is drawn, and
    non-uniform mode redraws only the matrix entries — never the rank —
    so every reference must match the pinned rank.  This check makes the
    invariant explicit at generation time with a seed-bearing error
    instead of an eventual :class:`Program` validation failure deep in
    an analysis.
    """
    for stmt in program.statements:
        for ref in stmt.references:
            want = declared.get(ref.array)
            if want is not None and ref.rank != want:
                raise ValueError(
                    f"random_program(seed={seed}): array {ref.array} "
                    f"generated with rank {ref.rank} in {stmt.label} but "
                    f"declared rank {want}"
                )


def random_uniform_program(seed: int, depth: int = 2) -> Program:
    """Shorthand: uniformly generated references only."""
    return random_program(seed, GeneratorConfig(depth=depth, uniform_only=True))


def random_nonuniform_program(seed: int, depth: int = 2) -> Program:
    """Shorthand: per-reference access matrices (non-uniform regime)."""
    return random_program(seed, GeneratorConfig(depth=depth, uniform_only=False))
