"""Concrete execution of loop-nest programs.

Statements in the IR are access-pattern skeletons (``lhs = f(reads...)``);
for functional verification we fix the semantics to

    lhs = combine(reads...)        with combine = sum + 1

— enough structure that changing the *order* of dependent writes changes
the result.  Running a program under two execution orders and comparing
final array states then gives an end-to-end *semantic* check of
transformation legality: a legal unimodular transformation must produce
identical arrays; an illegal one generally does not (both directions are
exercised in the tests).
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.ir.program import Program
from repro.linalg import IntMatrix

State = dict[str, dict[tuple[int, ...], int]]


def initial_state(program: Program, fill: Callable[[str, tuple[int, ...]], int] | None = None) -> State:
    """Array contents before execution.

    Every element any reference can touch is initialized — by ``fill`` or
    by a deterministic hash of (array, element) so distinct elements hold
    distinct-ish values.
    """
    if fill is None:
        def fill(array: str, element: tuple[int, ...]) -> int:
            return (hash((array, element)) % 997) + 1

    state: State = {}
    for ref in program.references:
        store = state.setdefault(ref.array, {})
        for point in program.nest.iterate():
            element = ref.element(point)
            if element not in store:
                store[element] = fill(ref.array, element)
    return state


def execute(
    program: Program,
    transformation: IntMatrix | None = None,
    state: State | None = None,
) -> State:
    """Run the program in the (possibly transformed) execution order.

    Each statement computes ``1 + sum(read values)`` into its written
    element (pure-use statements compute nothing).  Returns the final
    array state; the input ``state`` is not mutated.
    """
    if state is None:
        state = initial_state(program)
    work: State = {array: dict(values) for array, values in state.items()}

    if transformation is None:
        points = list(program.nest.iterate())
    else:
        if transformation.det() not in (1, -1):
            raise ValueError("transformation must be unimodular")
        points = sorted(program.nest.iterate(), key=transformation.apply)

    statements = program.statements
    for point in points:
        for stmt in statements:
            if not stmt.writes:
                continue
            total = 1
            for read in stmt.reads:
                total += work[read.array][read.element(point)]
            for write in stmt.writes:
                work[write.array][write.element(point)] = total
    return work


def states_equal(a: State, b: State) -> bool:
    """Compare two final states array-by-array."""
    if a.keys() != b.keys():
        return False
    return all(a[name] == b[name] for name in a)


def differing_elements(a: State, b: State) -> list[tuple[str, tuple[int, ...]]]:
    """Elements whose final values differ — for diagnostics in tests."""
    out = []
    for name in sorted(set(a) | set(b)):
        left = a.get(name, {})
        right = b.get(name, {})
        for element in sorted(set(left) | set(right)):
            if left.get(element) != right.get(element):
                out.append((name, element))
    return out
