"""Program-level window minimization.

The Figure-2 driver: gather candidate unimodular transformations from
(a) the per-array Section 4 searches (2-D and 3-D nests), (b) all signed
permutations (interchange/reversal compositions — also the Eisenbeis
baseline space, and the only tractable generic space for 4-deep and
deeper nests), and (c) the identity; keep the legal ones; pick the
candidate minimizing the *total* maximum window size
(``max_t sum_X |W_X(t)|``), which is the memory the embedded system must
provision.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.ir.program import Program
from repro.linalg import IntMatrix
from repro.transform.elementary import signed_permutations
from repro.transform.legality import is_legal, ordering_distances


@dataclass(frozen=True)
class OptimizationResult:
    """Best transformation found for a program."""

    program: str
    transformation: IntMatrix
    mws_before: int
    mws_after: int
    candidates_tried: int

    @property
    def improved(self) -> bool:
        return self.mws_after < self.mws_before

    @property
    def reduction(self) -> float:
        if self.mws_before == 0:
            return 0.0
        return 1.0 - self.mws_after / self.mws_before


def _program_ordering_distances(program: Program) -> list[tuple[int, ...]]:
    out: dict[tuple[int, ...], None] = {}
    for array in program.arrays:
        if program.is_uniformly_generated(array):
            for d in ordering_distances(program, array):
                out.setdefault(d, None)
    return list(out)


def candidate_transformations(
    program: Program, workers: int = 0, engine: str = "auto", store=None
) -> list[IntMatrix]:
    """Legal candidate transformations for program-level optimization.

    Four sources: the identity; all signed permutations (interchange and
    reversal compositions); for 2-deep nests every unimodular matrix with
    entries in ``[-2, 2]`` (skews included — what the sor kernel needs);
    per-array Section-4 search winners (2-D/3-D); and, at any depth, the
    Section-4.3 generalization — each array's access-matrix rows embedded
    as the leading rows of ``T`` so that array's reuse collapses to the
    innermost levels (what motion-estimation kernels need).
    """
    n = program.nest.depth
    distances = _program_ordering_distances(program)
    candidates: dict[IntMatrix, None] = {IntMatrix.identity(n): None}
    for t in signed_permutations(n):
        if is_legal(t, distances):
            candidates.setdefault(t, None)
    if n == 2:
        from repro.transform.elementary import bounded_unimodular_matrices

        for t in bounded_unimodular_matrices(2, 2):
            if is_legal(t, distances):
                candidates.setdefault(t, None)
    if n in (2, 3):
        from repro.transform.search import search_mws_2d, search_mws_3d

        search = search_mws_2d if n == 2 else search_mws_3d
        for array in program.arrays:
            if not program.is_uniformly_generated(array):
                continue
            try:
                result = search(
                    program, array, workers=workers, engine=engine, store=store
                )
            except (ValueError, KeyError):
                continue
            if is_legal(result.transformation, distances):
                candidates.setdefault(result.transformation, None)
    for t in _access_embeddings(program, distances):
        candidates.setdefault(t, None)
    return list(candidates)


def _access_embeddings(
    program: Program, distances: list[tuple[int, ...]]
) -> list[IntMatrix]:
    """Per-array access-matrix embeddings (Section 4.3, any depth).

    For each reference whose access-matrix rows are independent and fewer
    than the nest depth, complete those rows to a unimodular matrix that
    keeps all ordering distances non-negative; executing in that order
    makes all iterations touching one element of the array consecutive.
    """
    from repro.transform.completion import complete_rows_legal

    n = program.nest.depth
    out: list[IntMatrix] = []
    seen: set[tuple] = set()
    for ref in program.references:
        rows = [list(ref.access.row(k)) for k in range(ref.rank)]
        key = (ref.array, tuple(map(tuple, rows)))
        if key in seen:
            continue
        seen.add(key)
        if ref.rank >= n:
            continue
        t = complete_rows_legal(rows, distances)
        if t is not None and is_legal(t, distances):
            out.append(t)
    return out


def optimize_program(
    program: Program, workers: int = 0, engine: str = "auto", store=None,
    parametric: bool = False,
) -> OptimizationResult:
    """Choose the legal transformation minimizing total MWS.

    Exact scoring via the window simulator; the identity is always a
    candidate, so the result never regresses.  ``workers > 1``
    parallelizes both the per-array searches and the program-level
    candidate scoring; results are identical to serial mode (candidates
    are scored in the same deterministic order with strict-improvement
    tie-breaking either way).

    Candidates run through the tiered evaluation cascade: the native
    order (first, so its score is always exact) sets the incumbent, and
    candidates whose certified/clipped lower bound cannot strictly beat
    the running best are never simulated — the chosen transformation is
    identical to scoring everything.  ``engine`` picks the window engine
    (:data:`repro.window.ENGINES`).  ``store`` (a
    :class:`repro.store.ResultStore`) persists search results and exact
    values, so a warm process re-optimizes without simulating.
    ``parametric=True`` answers candidate scores from derived
    closed-form expressions where the parametric engine covers them
    (identical values; see :func:`repro.transform.search.evaluate_exact`).
    """
    from repro.transform.search import evaluate_cascade

    with obs.span("optimize", program=program.name, workers=workers):
        with obs.span("candidates"):
            candidates = candidate_transformations(
                program, workers=workers, engine=engine, store=store
            )
        obs.counter("optimize.candidates", len(candidates))
        outcomes = evaluate_cascade(
            program, [None] + candidates, array=None, workers=workers,
            engine=engine, store=store, parametric=parametric,
        )
        before = outcomes[0].value
        best_t = IntMatrix.identity(program.nest.depth)
        best_value = before
        for t, outcome in zip(candidates, outcomes[1:]):
            if outcome.exact and outcome.value < best_value:
                best_value = outcome.value
                best_t = t
        return OptimizationResult(
            program=program.name,
            transformation=best_t,
            mws_before=before,
            mws_after=best_value,
            candidates_tried=len(candidates),
        )
