"""Analysis pipeline: one call from program to full memory report."""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.core.optimizer import OptimizationResult, optimize_program
from repro.estimation.memory import ProgramMemoryReport, estimate_program_memory
from repro.ir.program import Program
from repro.memory.sizing import SizingReport, size_memory_for_program
from repro.window.simulator import max_total_window, max_window_size


@dataclass(frozen=True)
class AnalysisReport:
    """Static analysis of a program: footprints and windows, no transform."""

    program: str
    default_memory: int
    footprint: ProgramMemoryReport
    mws_per_array: dict
    mws_total: int

    def __str__(self) -> str:
        lines = [
            f"== {self.program} ==",
            f"declared (default) memory : {self.default_memory}",
            f"distinct-access footprint : {self.footprint.footprint_total}",
            f"max window size (total)   : {self.mws_total}",
        ]
        for array, mws in self.mws_per_array.items():
            lines.append(f"  window[{array}] = {mws}")
        return "\n".join(lines)


def analyze_program(program: Program, engine: str = "auto") -> AnalysisReport:
    """Estimate footprints and measure exact windows for every array.

    ``engine`` selects the window engine (:data:`repro.window.ENGINES`);
    the default resolves to the streaming engine for nests too large to
    enumerate densely.
    """
    obs.runctx.note_input(program.name, program.signature())
    with obs.span("pipeline.analyze", program=program.name):
        footprint = estimate_program_memory(program)
        per_array = {
            array: max_window_size(program, array, engine=engine)
            for array in program.arrays
        }
        return AnalysisReport(
            program=program.name,
            default_memory=program.default_memory,
            footprint=footprint,
            mws_per_array=per_array,
            mws_total=max_total_window(program, engine=engine),
        )


@dataclass(frozen=True)
class FullReport:
    """Analysis + optimization + provisioning in one object."""

    analysis: AnalysisReport
    optimization: OptimizationResult
    sizing_before: SizingReport
    sizing_after: SizingReport

    @property
    def figure2_row(self) -> tuple[str, int, int, int]:
        """(name, default, MWS_unopt, MWS_opt) — a row of the paper's table."""
        return (
            self.analysis.program,
            self.analysis.default_memory,
            self.optimization.mws_before,
            self.optimization.mws_after,
        )


def full_report(program: Program, engine: str = "auto") -> FullReport:
    """Run the whole paper pipeline on one program."""
    obs.runctx.note_input(program.name, program.signature())
    with obs.span("pipeline.full_report", program=program.name):
        analysis = analyze_program(program, engine=engine)
        optimization = optimize_program(program, engine=engine)
        sizing_before = size_memory_for_program(program)
        sizing_after = size_memory_for_program(
            program, optimization.transformation
        )
    return FullReport(analysis, optimization, sizing_before, sizing_after)
