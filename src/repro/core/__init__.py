"""The paper's end-to-end flow as one API.

``analyze_program`` estimates distinct accesses and measures windows;
``optimize_program`` searches for the legal unimodular transformation
minimizing the total maximum window size; ``full_report`` runs both and
attaches memory sizing.  These are the entry points the examples and the
Figure-2 harness use.
"""

from repro.core.optimizer import (
    OptimizationResult,
    optimize_program,
    candidate_transformations,
)
from repro.core.pipeline import (
    AnalysisReport,
    analyze_program,
    full_report,
)

__all__ = [
    "OptimizationResult",
    "optimize_program",
    "candidate_transformations",
    "AnalysisReport",
    "analyze_program",
    "full_report",
]
