"""Structured journal of one transformation search.

Where :mod:`repro.obs` answers "how much" (counters, span timings), the
journal answers "why": every candidate the search considered, with the
stage that produced it, the legality check that rejected it, the
branch-and-bound box that was pruned, and the exact/estimated scores of
the survivors.  ``repro explain`` renders it as a ranked candidate table
and reconciles the per-reason tallies against the observer's counters.

Same zero-overhead discipline as :mod:`repro.obs`: a module-level
``_journal`` that is ``None`` unless recording, hot loops hoist
``jr = journal.active()`` once and guard each record with
``if jr is not None``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Iterator


@dataclass(frozen=True)
class CandidateRecord:
    """One journal entry: a candidate (or pruned region) and its fate.

    ``candidate`` is the transformation's row tuple, a partial row tuple
    for candidates rejected before completion, a branch-and-bound box
    for prunes, or ``None`` for the native order.
    """

    stage: str  # "seed" | "enumerate" | "evaluate" | "prune" | "cascade" | "lower_bound" | "hierarchy"
    candidate: Any
    status: str  # "candidate" | "rejected" | "cache_hit" | "computed" | "pruned"
    reason: str | None = None
    estimate: Fraction | int | None = None
    exact: int | None = None


class SearchJournal:
    """Append-only record of every candidate a search touched.

    ``run_id`` carries the run identity of the run that recorded the
    journal (see :mod:`repro.obs.runctx`), so a rendered candidate table
    can be correlated with the run's ledger record.
    """

    __slots__ = ("records", "run_id")

    def __init__(self, run_id: str | None = None) -> None:
        self.records: list[CandidateRecord] = []
        self.run_id = run_id

    def record(
        self,
        stage: str,
        candidate: Any,
        status: str,
        reason: str | None = None,
        estimate: Fraction | int | None = None,
        exact: int | None = None,
    ) -> None:
        self.records.append(
            CandidateRecord(stage, candidate, status, reason, estimate, exact)
        )

    def __len__(self) -> int:
        return len(self.records)

    def by_stage(self, stage: str) -> list[CandidateRecord]:
        return [r for r in self.records if r.stage == stage]

    def by_status(self, status: str) -> list[CandidateRecord]:
        return [r for r in self.records if r.status == status]

    def rejection_reasons(self) -> dict[str, int]:
        """Tally of rejection/prune reasons (first ``:``-delimited word)."""
        reasons: dict[str, int] = {}
        for r in self.records:
            if r.status in ("rejected", "pruned") and r.reason:
                key = r.reason.split(":", 1)[0]
                reasons[key] = reasons.get(key, 0) + 1
        return reasons

    def ranked(self) -> list[CandidateRecord]:
        """Evaluated candidates, best (smallest exact MWS) first.

        Joins each ``evaluate`` record with the estimate its ``enumerate``
        or ``seed`` record carried, keyed by candidate rows.
        """
        estimates: dict[Any, Fraction | int | None] = {}
        for r in self.records:
            if r.stage in ("seed", "enumerate") and r.status == "candidate":
                estimates.setdefault(r.candidate, r.estimate)
        out = []
        for r in self.by_stage("evaluate"):
            if r.exact is None:
                continue
            est = r.estimate if r.estimate is not None else estimates.get(r.candidate)
            out.append(
                CandidateRecord(
                    r.stage, r.candidate, r.status, r.reason, est, r.exact
                )
            )
        out.sort(key=lambda r: (r.exact, str(r.candidate)))
        return out

    def counts(self) -> dict[str, int]:
        """Totals the reconciliation in ``repro explain`` checks.

        ``pruned`` counts only branch-and-bound box prunes (stage
        ``"prune"``); the evaluation cascade's candidate prunes carry
        stage ``"cascade"`` and are tallied separately, so both can be
        reconciled against their own counters.
        """
        return {
            "examined": len(self.by_stage("enumerate")),
            "seeded": len(self.by_stage("seed")),
            "rejected": len(self.by_status("rejected")),
            "cache_hits": len(self.by_status("cache_hit")),
            "cache_misses": len(self.by_status("computed")),
            "pruned": len(self.by_stage("prune")),
            "cascade_pruned": len(self.by_stage("cascade")),
            "bb_evaluated": len(self.by_stage("bb")),
            "hierarchy": len(self.by_stage("hierarchy")),
            "hierarchy_pruned": len(
                [
                    r
                    for r in self.by_stage("hierarchy")
                    if r.status == "pruned"
                ]
            ),
        }

    def __iter__(self) -> Iterator[CandidateRecord]:
        return iter(self.records)


_journal: SearchJournal | None = None


def active() -> SearchJournal | None:
    """The recording journal, or None — the hot-loop guard value."""
    return _journal


def enabled() -> bool:
    return _journal is not None


def enable() -> SearchJournal:
    """Start recording into a fresh journal (replaces any active one).

    The journal adopts the active run context's ID, if any, so its rows
    are attributable to the run that produced them.
    """
    global _journal
    from repro.obs import runctx

    _journal = SearchJournal(run_id=runctx.current_run_id())
    return _journal


def disable() -> SearchJournal | None:
    """Stop recording; returns the journal for inspection."""
    global _journal
    journal, _journal = _journal, None
    return journal
