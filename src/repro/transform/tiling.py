"""Tiling support: permutability, tile footprints and tile-size selection.

The paper requires transformed nests to be *tileable* so data can be
moved in block transfers (Section 4.1, citing Irigoin & Triolet and Wolf
& Lam).  Once a nest is fully permutable, a rectangular tile of the
transformed iteration space touches a bounded data footprint; choosing
the largest tile whose footprint fits the on-chip buffer minimizes
off-chip traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.ir.program import Program
from repro.linalg import IntMatrix
from repro.transform.legality import is_tileable, ordering_distances


def is_fully_permutable(
    program: Program, transformation: IntMatrix | None = None
) -> bool:
    """True when every ordering dependence has all components >= 0 in the
    (transformed) nest — any loop order, and hence rectangular tiling, is
    legal.
    """
    distances = []
    for array in program.arrays:
        if program.is_uniformly_generated(array):
            distances.extend(ordering_distances(program, array))
    t = transformation if transformation is not None else IntMatrix.identity(program.nest.depth)
    return is_tileable(t, distances)


@dataclass(frozen=True)
class TileFootprints:
    """Exact per-tile data volumes of one rectangular tiling.

    ``per_array`` / ``written_per_array`` are worst-case (max over tile
    cells) distinct counts — the per-tier feasibility numbers for the
    hierarchy search; ``total`` is the worst single tile over all arrays
    together; ``fetch_words`` / ``writeback_words`` sum every cell, i.e.
    the whole-execution DMA volume when each tile's footprint streams in
    (and dirty elements stream out) once, with no inter-tile reuse.
    """

    tile: tuple[int, ...]
    n_cells: int
    total: int
    per_array: dict[str, int]
    written_per_array: dict[str, int]
    fetch_words: dict[str, int]
    writeback_words: dict[str, int]


#: ``(program signature, transformation rows)`` -> per-point data shared
#: by every tile size: the transformed points (cell binning input) and
#: each reference's touched element per point.  The hierarchy search
#: measures many tile candidates of the same (program, transformation),
#: and recomputing ``ref.element`` per tile dominates its runtime.
#: Bounded, dropped wholesale past the cap (the entries are large).
_POINT_CACHE: dict[tuple, tuple] = {}
_POINT_CACHE_LIMIT = 8


def clear_tile_cache() -> None:
    """Drop memoized per-point tile data (tests, benchmarks)."""
    _POINT_CACHE.clear()


def _point_data(program: Program, transformation: IntMatrix | None):
    """``(transformed points, origin, [(array, is_write, elements)])``."""
    t_key = None if transformation is None else transformation.rows
    key = (program.signature(), t_key)
    cached = _POINT_CACHE.get(key)
    if cached is not None:
        return cached
    points = list(program.nest.iterate())
    if transformation is not None:
        transformed = [transformation.apply(p) for p in points]
    else:
        transformed = points
    origin = min(transformed)
    per_ref = [
        (ref.array, ref.is_write, [ref.element(p) for p in points])
        for ref in program.references
    ]
    if len(_POINT_CACHE) >= _POINT_CACHE_LIMIT:
        _POINT_CACHE.clear()
    _POINT_CACHE[key] = (transformed, origin, per_ref)
    return transformed, origin, per_ref


def tile_footprints(
    program: Program,
    tile_sizes: Sequence[int],
    transformation: IntMatrix | None = None,
) -> TileFootprints:
    """Measure every tile cell of the (transformed) iteration space.

    The grid is anchored at the lexicographic-min corner of the
    transformed space.  Skewing transforms make the space non-rectangular,
    so boundary cells are *partial* tiles: the worst-case footprint is the
    max over all cells (an interior full tile), not the corner cell.
    """
    n = program.nest.depth
    tile = tuple(tile_sizes)
    if len(tile) != n:
        raise ValueError("tile rank != nest depth")
    if any(s <= 0 for s in tile):
        raise ValueError("tile extents must be positive")
    transformed, origin, per_ref = _point_data(program, transformation)
    cells = [
        tuple((x - o) // s for x, o, s in zip(point, origin, tile))
        for point in transformed
    ]
    touched: dict[tuple, dict[str, set]] = {}
    written: dict[tuple, dict[str, set]] = {}
    for array, is_write, elements in per_ref:
        for cell, element in zip(cells, elements):
            cell_touched = touched.setdefault(cell, {})
            cell_touched.setdefault(array, set()).add(element)
            if is_write:
                written.setdefault(cell, {}).setdefault(array, set()).add(
                    element
                )
    for cell in touched:
        written.setdefault(cell, {})
    per_array = {a: 0 for a in program.arrays}
    written_per_array = {a: 0 for a in program.arrays}
    fetch = {a: 0 for a in program.arrays}
    writeback = {a: 0 for a in program.arrays}
    total = 0
    for cell, by_array in touched.items():
        total = max(total, sum(len(v) for v in by_array.values()))
        for array, elements in by_array.items():
            per_array[array] = max(per_array[array], len(elements))
            fetch[array] += len(elements)
        for array, elements in written[cell].items():
            written_per_array[array] = max(written_per_array[array], len(elements))
            writeback[array] += len(elements)
    return TileFootprints(
        tile=tile,
        n_cells=len(touched),
        total=total,
        per_array=per_array,
        written_per_array=written_per_array,
        fetch_words=fetch,
        writeback_words=writeback,
    )


def tile_footprint(
    program: Program,
    tile_sizes: Sequence[int],
    transformation: IntMatrix | None = None,
) -> int:
    """Exact distinct elements touched by the worst single tile.

    Measured as the max over every tile cell of the (transformed)
    iteration space.  With uniformly generated references all *full*
    tiles touch the same count, but a skewing transform leaves partial
    tiles at the boundary — including the lexicographic-min corner — so
    the corner tile alone under-reports the buffer a tile needs.
    """
    return tile_footprints(program, tile_sizes, transformation).total


def pick_tile_size(
    program: Program,
    capacity: int,
    transformation: IntMatrix | None = None,
    max_size: int = 64,
) -> tuple[int, ...]:
    """Largest square tile whose footprint fits ``capacity`` elements.

    Doubling search then refinement; returns ``(s, ..., s)``.  A capacity
    below the single-iteration footprint returns the unit tile.
    """
    n = program.nest.depth
    best = 1
    size = 1
    while size <= max_size:
        footprint = tile_footprint(program, (size,) * n, transformation)
        if footprint <= capacity:
            best = size
            size *= 2
        else:
            break
    # Refine between best and the failed size.
    low, high = best, min(size, max_size)
    while low + 1 < high:
        mid = (low + high) // 2
        if tile_footprint(program, (mid,) * n, transformation) <= capacity:
            low = mid
        else:
            high = mid
    return (low,) * n
