"""Tiling support: permutability, tile footprints and tile-size selection.

The paper requires transformed nests to be *tileable* so data can be
moved in block transfers (Section 4.1, citing Irigoin & Triolet and Wolf
& Lam).  Once a nest is fully permutable, a rectangular tile of the
transformed iteration space touches a bounded data footprint; choosing
the largest tile whose footprint fits the on-chip buffer minimizes
off-chip traffic.
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.program import Program
from repro.linalg import IntMatrix
from repro.transform.legality import is_tileable, ordering_distances


def is_fully_permutable(
    program: Program, transformation: IntMatrix | None = None
) -> bool:
    """True when every ordering dependence has all components >= 0 in the
    (transformed) nest — any loop order, and hence rectangular tiling, is
    legal.
    """
    distances = []
    for array in program.arrays:
        if program.is_uniformly_generated(array):
            distances.extend(ordering_distances(program, array))
    t = transformation if transformation is not None else IntMatrix.identity(program.nest.depth)
    return is_tileable(t, distances)


def tile_footprint(
    program: Program,
    tile_sizes: Sequence[int],
    transformation: IntMatrix | None = None,
) -> int:
    """Exact distinct elements touched by the first full tile.

    Measures the tile at the lower-left corner of the (transformed)
    iteration space by enumeration; with uniformly generated references
    every full tile touches the same count, so one tile suffices.
    """
    n = program.nest.depth
    if len(tile_sizes) != n:
        raise ValueError("tile rank != nest depth")
    points = list(program.nest.iterate())
    if transformation is not None:
        points = [transformation.apply(p) for p in points]
        inverse = transformation.inverse_unimodular()
    else:
        inverse = None
    origin = min(points)
    touched: set[tuple] = set()
    for point in points:
        if all(o <= x < o + s for x, o, s in zip(point, origin, tile_sizes)):
            original = inverse.apply(point) if inverse is not None else point
            for ref in program.references:
                touched.add((ref.array, ref.element(original)))
    return len(touched)


def pick_tile_size(
    program: Program,
    capacity: int,
    transformation: IntMatrix | None = None,
    max_size: int = 64,
) -> tuple[int, ...]:
    """Largest square tile whose footprint fits ``capacity`` elements.

    Doubling search then refinement; returns ``(s, ..., s)``.  A capacity
    below the single-iteration footprint returns the unit tile.
    """
    n = program.nest.depth
    best = 1
    size = 1
    while size <= max_size:
        footprint = tile_footprint(program, (size,) * n, transformation)
        if footprint <= capacity:
            best = size
            size *= 2
        else:
            break
    # Refine between best and the failed size.
    low, high = best, min(size, max_size)
    while low + 1 < high:
        mid = (low + high) // 2
        if tile_footprint(program, (mid,) * n, transformation) <= capacity:
            low = mid
        else:
            high = mid
    return (low,) * n
