"""Loop normalization: shift every loop to a unit lower bound.

Several closed forms (and the paper's own exposition) assume loops of the
form ``for i = 1 to N``.  Shifting ``i -> i' + (lower - 1)`` is an affine
change of coordinates that leaves every analysis result unchanged:
dependences, windows and counts are translation-invariant.  Normalizing
lets the exact multi-reference machinery and the symbolic forms apply to
arbitrarily-bounded inputs.
"""

from __future__ import annotations

from repro.ir.loop import Loop, LoopNest
from repro.ir.program import Program
from repro.ir.reference import ArrayRef
from repro.ir.statement import Statement


def is_unit_based(program: Program) -> bool:
    """All loop lower bounds equal to 1?"""
    return all(loop.lower == 1 for loop in program.nest.loops)


def normalize_lower_bounds(program: Program) -> Program:
    """An equivalent program whose loops all start at 1.

    Substitutes ``i_k = i'_k + (lower_k - 1)`` in every access: the access
    matrix is unchanged, offsets absorb ``A @ (lower - 1)``.

    >>> from repro.ir import parse_program
    >>> p = parse_program("for i = 0 to 9 { A[2*i + 1] = A[2*i - 1] }")
    >>> q = normalize_lower_bounds(p)
    >>> q.nest.lowers
    (1,)
    >>> q.statements[0].writes[0].offset  # 2*(i'+(-1)) + 1 = 2*i' - 1
    (-1,)
    """
    if is_unit_based(program):
        return program
    shifts = [loop.lower - 1 for loop in program.nest.loops]
    new_nest = LoopNest(
        [
            Loop(loop.index, 1, loop.trip_count)
            for loop in program.nest.loops
        ]
    )

    def shift_ref(ref: ArrayRef) -> ArrayRef:
        delta = ref.access.apply(shifts)
        return ArrayRef(
            ref.array,
            ref.access,
            tuple(o + d for o, d in zip(ref.offset, delta)),
            ref.kind,
        )

    statements = [
        Statement(
            stmt.label,
            tuple(shift_ref(r) for r in stmt.writes),
            tuple(shift_ref(r) for r in stmt.reads),
        )
        for stmt in program.statements
    ]
    return Program(
        new_nest,
        statements,
        tuple(program._explicit_decls.values()),
        name=program.name,
    )
