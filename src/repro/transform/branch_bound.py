"""Branch-and-bound minimization of the eq. (2) objective (Section 4.2).

The paper: "We use either a branch and bound technique (or general
nonlinear programming techniques) to minimize this function; the number
of variables is linear in the number of nested loops which is usually
very small in practice."  This module implements that search for the 2-D
case: minimize

    MWS(a, b) = (min((N1-1)/|b|, (N2-1)/|a|) + 1) * |alpha2*a - alpha1*b|

over integer rows ``(a, b)`` subject to the tiling constraints
``a*d1 + b*d2 >= 0``.  Branching splits the (a, b) box; bounding uses
``window_step_min * 1`` (maxspan >= 1) per box, where ``window_step_min``
is the smallest achievable ``|alpha2*a - alpha1*b|`` over the box —
computed exactly from the box corners and the line ``alpha2*a = alpha1*b``.

The alternative the paper suggests — "minimize ``5a - 2b`` subject to the
constraints" — is exposed as :func:`minimize_window_step` (a tiny exact
integer program over the same boxes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro import obs
from repro.transform import journal
from repro.window.mws import mws_2d_estimate_batch


@dataclass(frozen=True)
class BBResult:
    """Outcome of the branch-and-bound minimization.

    ``row`` is ``None`` only when a seeded ``incumbent`` pruned every
    region — no candidate in the box improves on the incumbent.
    """

    row: tuple[int, int] | None
    objective: Fraction | None
    nodes_explored: int
    candidates_evaluated: int


def _window_step_lower_bound(
    alpha1: int, alpha2: int, box: tuple[int, int, int, int]
) -> int:
    """Exact min of ``|alpha2*a - alpha1*b|`` over integer points of a box.

    The function is linear; its min over the box is 0 iff the zero line
    crosses the box on an integer point, else it is achieved on the
    boundary — scan the shorter box side.
    """
    a_lo, a_hi, b_lo, b_hi = box
    best = None
    if (a_hi - a_lo) <= (b_hi - b_lo):
        for a in range(a_lo, a_hi + 1):
            # alpha2*a - alpha1*b: extremes at b bounds; zero near
            # b = alpha2*a/alpha1 when alpha1 != 0.
            candidates = {b_lo, b_hi}
            if alpha1 != 0:
                near = alpha2 * a / alpha1
                for b in (math.floor(near), math.ceil(near)):
                    if b_lo <= b <= b_hi:
                        candidates.add(b)
            for b in candidates:
                value = abs(alpha2 * a - alpha1 * b)
                if best is None or value < best:
                    best = value
    else:
        for b in range(b_lo, b_hi + 1):
            candidates = {a_lo, a_hi}
            if alpha2 != 0:
                near = alpha1 * b / alpha2
                for a in (math.floor(near), math.ceil(near)):
                    if a_lo <= a <= a_hi:
                        candidates.add(a)
            for a in candidates:
                value = abs(alpha2 * a - alpha1 * b)
                if best is None or value < best:
                    best = value
    return best if best is not None else 0


def _feasible(a: int, b: int, distances: Sequence[Sequence[int]]) -> bool:
    return all(a * d1 + b * d2 >= 0 for d1, d2 in distances)


def _box_may_be_feasible(
    box: tuple[int, int, int, int], distances: Sequence[Sequence[int]]
) -> bool:
    """A linear constraint holds somewhere in the box iff it holds at the
    maximizing corner."""
    a_lo, a_hi, b_lo, b_hi = box
    for d1, d2 in distances:
        best = max(
            a * d1 + b * d2
            for a in (a_lo, a_hi)
            for b in (b_lo, b_hi)
        )
        if best < 0:
            return False
    return True


@obs.profiled("search.branch_bound")
def branch_and_bound_mws_2d(
    alpha1: int,
    alpha2: int,
    n1: int,
    n2: int,
    distances: Sequence[Sequence[int]],
    bound: int = 16,
    incumbent: Fraction | int | None = None,
) -> BBResult:
    """Minimize eq. (2) over coprime tileable rows with |a|,|b| <= bound.

    Equivalent in result to exhaustive enumeration (tested) but prunes
    with the window-step bound, exploring far fewer nodes at large
    bounds.

    ``incumbent`` seeds the pruning bound with a value already achieved
    elsewhere (the evaluation cascade's running best): boxes whose
    window-step lower bound cannot beat it are pruned immediately, with
    ``search.bb.incumbent_pruned`` counting the extra prunes.  When the
    incumbent prunes everything, ``row`` is ``None``.

    >>> r = branch_and_bound_mws_2d(2, 5, 25, 10, [(3, -2), (2, 0), (5, -2)])
    >>> (r.row, r.objective)
    ((2, 3), Fraction(22, 1))
    """
    best_value: Fraction | None = None
    best_row: tuple[int, int] | None = None
    prune_bound: Fraction | None = (
        None if incumbent is None else Fraction(incumbent)
    )
    nodes = 0
    evaluated = 0
    pruned = 0
    incumbent_pruned = 0
    jr = journal.active()
    # Rows and negated rows scan the same loop backwards; canonicalize to
    # a >= 0 as the search half-space.
    stack = [(0, bound, -bound, bound)]
    while stack:
        box = stack.pop()
        a_lo, a_hi, b_lo, b_hi = box
        if a_lo > a_hi or b_lo > b_hi:
            continue
        nodes += 1
        if not _box_may_be_feasible(box, distances):
            pruned += 1
            if jr is not None:
                jr.record(
                    "prune", box, "pruned",
                    reason="infeasible: tiling constraints unsatisfiable over box",
                )
            continue
        # Lower bound on the objective over this box: maxspan >= 1.
        step_bound = _window_step_lower_bound(alpha1, alpha2, box)
        if step_bound > 0 and prune_bound is not None and Fraction(step_bound) >= prune_bound:
            pruned += 1
            if best_value is None or Fraction(step_bound) < best_value:
                incumbent_pruned += 1
            if jr is not None:
                jr.record(
                    "prune", box, "pruned",
                    reason=f"bound: window-step lower bound {step_bound} "
                           f">= incumbent {prune_bound}",
                )
            continue
        if (a_hi - a_lo) <= 1 and (b_hi - b_lo) <= 1:
            # Leaf cells are evaluated unconditionally (no intra-leaf
            # pruning), so batching the estimate calls is exactly
            # semantics-preserving: same cells, same order, same
            # incumbent updates, same journal records.
            cells = [
                (a, b)
                for a in range(a_lo, a_hi + 1)
                for b in range(b_lo, b_hi + 1)
                if (a, b) != (0, 0)
                and math.gcd(a, b) == 1
                and not (a == 0 and b < 0)
                and _feasible(a, b, distances)
            ]
            for (a, b), value in zip(
                cells, mws_2d_estimate_batch(alpha1, alpha2, n1, n2, cells)
            ):
                evaluated += 1
                if jr is not None:
                    jr.record("bb", (a, b), "candidate", estimate=value)
                if best_value is None or value < best_value:
                    best_value = value
                    best_row = (a, b)
                if prune_bound is None or (
                    best_value is not None and best_value < prune_bound
                ):
                    prune_bound = best_value
            continue
        # Branch on the longer axis.
        if (a_hi - a_lo) >= (b_hi - b_lo):
            mid = (a_lo + a_hi) // 2
            stack.append((a_lo, mid, b_lo, b_hi))
            stack.append((mid + 1, a_hi, b_lo, b_hi))
        else:
            mid = (b_lo + b_hi) // 2
            stack.append((a_lo, a_hi, b_lo, mid))
            stack.append((a_lo, a_hi, mid + 1, b_hi))
    if best_row is None and incumbent is None:
        raise ValueError("no feasible coprime row in the search box")
    obs.counter("search.bb.nodes", nodes)
    obs.counter("search.bb.evaluated", evaluated)
    obs.counter("search.bb.pruned", pruned)
    if incumbent_pruned:
        obs.counter("search.bb.incumbent_pruned", incumbent_pruned)
    return BBResult(best_row, best_value, nodes, evaluated)


@obs.profiled("search.minimize_window_step")
def minimize_window_step(
    alpha1: int,
    alpha2: int,
    distances: Sequence[Sequence[int]],
    bound: int = 16,
) -> tuple[int, int]:
    """The paper's shortcut: minimize ``|alpha2*a - alpha1*b|`` alone.

    "Alternately, if we minimize 5a - 2b subject to constraints, we get
    very good solutions in practice."  Exact over the bounded box; ties
    broken toward small entries.
    """
    best = None
    for a in range(0, bound + 1):
        for b in range(-bound, bound + 1):
            if (a, b) == (0, 0) or math.gcd(a, b) != 1:
                continue
            if a == 0 and b < 0:
                continue
            if not _feasible(a, b, distances):
                continue
            key = (abs(alpha2 * a - alpha1 * b), abs(a) + abs(b))
            if best is None or key < best[0]:
                best = (key, (a, b))
    if best is None:
        raise ValueError("no feasible coprime row in the search box")
    return best[1]
