"""Elementary unimodular transformations.

Wolf & Lam: every unimodular transformation factors into loop interchange
(permutation), reversal (negating one index) and skewing (adding an
integer multiple of one index to another).  These generators both build
compound transformations and span the baseline search spaces.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.linalg import IntMatrix


def interchange(n: int, level_a: int, level_b: int) -> IntMatrix:
    """Swap loop levels ``level_a`` and ``level_b`` (0-based).

    >>> interchange(2, 0, 1)
    IntMatrix([[0, 1], [1, 0]])
    """
    rows = IntMatrix.identity(n).to_lists()
    rows[level_a], rows[level_b] = rows[level_b], rows[level_a]
    return IntMatrix(rows)


def reversal(n: int, level: int) -> IntMatrix:
    """Reverse loop ``level`` (0-based).

    >>> reversal(2, 0)
    IntMatrix([[-1, 0], [0, 1]])
    """
    rows = IntMatrix.identity(n).to_lists()
    rows[level][level] = -1
    return IntMatrix(rows)


def skew(n: int, target: int, source: int, factor: int) -> IntMatrix:
    """Skew loop ``target`` by ``factor`` times loop ``source``.

    The transformed index is ``u_target = i_target + factor * i_source``.

    >>> skew(2, 1, 0, 1)
    IntMatrix([[1, 0], [1, 1]])
    """
    if target == source:
        raise ValueError("cannot skew a loop by itself")
    rows = IntMatrix.identity(n).to_lists()
    rows[target][source] = factor
    return IntMatrix(rows)


def signed_permutations(n: int) -> Iterator[IntMatrix]:
    """All compositions of interchanges and reversals: the ``2^n * n!``
    signed permutation matrices — Eisenbeis et al.'s search space.

    >>> len(list(signed_permutations(2)))
    8
    """
    for perm in itertools.permutations(range(n)):
        for signs in itertools.product((1, -1), repeat=n):
            rows = []
            for target, sign in zip(perm, signs):
                row = [0] * n
                row[target] = sign
                rows.append(row)
            yield IntMatrix(rows)


def bounded_unimodular_matrices(n: int, bound: int) -> Iterator[IntMatrix]:
    """All unimodular ``n x n`` matrices with entries in ``[-bound, bound]``.

    Exhaustive-search space for ablations; the count grows steeply with
    ``n`` and ``bound``, so keep both small (n <= 3, bound <= 2 is ~10^4
    determinant checks for n = 3).
    """
    entries = range(-bound, bound + 1)
    if n == 2:
        for a, b, c, d in itertools.product(entries, repeat=4):
            if a * d - b * c in (1, -1):
                yield IntMatrix([[a, b], [c, d]])
        return
    if n == 3:
        for flat in itertools.product(entries, repeat=9):
            a, b, c, d, e, f, g, h, i = flat
            det = a * (e * i - f * h) - b * (d * i - f * g) + c * (d * h - e * g)
            if det in (1, -1):
                yield IntMatrix([flat[0:3], flat[3:6], flat[6:9]])
        return
    for flat in itertools.product(entries, repeat=n * n):
        m = IntMatrix([list(flat[k * n:(k + 1) * n]) for k in range(n)])
        if m.det() in (1, -1):
            yield m
