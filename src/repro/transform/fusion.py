"""Loop fusion across nest sequences.

The inter-nest buffers of a producer-consumer chain (see
:mod:`repro.ir.sequence`) are often the dominant memory term: a full
array crosses the boundary.  Fusing the nests interleaves production and
consumption so only a small window of the intermediate array is ever
live — the sequence-level analogue of the paper's transformation story.

Fusion of two identically-bounded nests is legal when no *fusion-
preventing* dependence exists: an element produced by nest 1 at iteration
``I`` and consumed by nest 2 at iteration ``J`` with ``J`` lexicographically
*before* ``I`` would, after fusion, read the value before it is written.
For uniformly generated references this reduces to the usual distance
test on the merged body.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dependence.analysis import dependence_distance
from repro.dependence.distance import is_lex_nonnegative
from repro.ir.program import Program
from repro.ir.sequence import ProgramSequence, sequence_memory_report
from repro.ir.statement import Statement


class FusionError(ValueError):
    """Raised when two nests cannot be legally fused."""


def can_fuse(first: Program, second: Program) -> tuple[bool, str]:
    """Check structural and dependence legality of fusing two nests.

    Returns ``(ok, reason)``; ``reason`` explains a False verdict.
    """
    if first.nest != second.nest:
        return False, "loop nests differ (bounds or depth)"
    labels = {s.label for s in first.statements} & {
        s.label for s in second.statements
    }
    if labels:
        return False, f"duplicate statement labels: {sorted(labels)}"
    # Fusion-preventing dependences: a value produced by `first` at I and
    # consumed by `second` at J needs J >= I after fusion (J executes the
    # merged body at iteration J; production of I happens at I).
    for write in (r for s in first.statements for r in s.writes):
        for read in (r for s in second.statements for r in s.references):
            if read.array != write.array:
                continue
            if not write.uniformly_generated_with(read):
                return False, (
                    f"non-uniform cross-nest references to {write.array}"
                )
            # Distance d = J - I with second's ref at J touching what
            # first's wrote at I.  Fusion needs every such d >= 0 lex.
            # dependence_distance returns the smallest lex-POSITIVE d of
            # the family; the dangerous case is a family whose members
            # are all negative (consumer strictly before producer) or a
            # zero solution (same iteration - fine: first's statements
            # precede second's in the fused body).
            forward = dependence_distance(write, read)
            backward = dependence_distance(read, write)
            if forward is None and backward is not None:
                # Only consumer->producer direction exists: the consumer
                # iteration precedes the producing one.
                return False, (
                    f"fusion-preventing dependence on {write.array}: "
                    f"consumed {backward} before produced"
                )
    return True, "ok"


def fuse(first: Program, second: Program, name: str | None = None) -> Program:
    """Fuse two identically-bounded nests into one.

    Statements of ``first`` precede statements of ``second`` in the fused
    body, preserving the original cross-nest value flow for all legal
    cases (see :func:`can_fuse`).

    >>> from repro.ir import parse_program
    >>> p1 = parse_program("for i = 1 to 9 { T[i] = A[i] }", name="p")
    >>> p2 = parse_program("for i = 1 to 9 { S2: B[i] = T[i] + T[i-1] }", name="c")
    >>> fuse(p1, p2).name
    'p+c'
    """
    ok, reason = can_fuse(first, second)
    if not ok:
        raise FusionError(reason)
    statements: list[Statement] = list(first.statements) + list(second.statements)
    decls = {d.name: d for d in first.decls}
    for decl in second.decls:
        decls.setdefault(decl.name, decl)
    return Program(
        first.nest,
        statements,
        tuple(decls.values()),
        name=name or f"{first.name}+{second.name}",
    )


@dataclass(frozen=True)
class FusionReport:
    """Memory effect of fusing a two-nest chain."""

    unfused_requirement: int
    fused_requirement: int

    @property
    def saving(self) -> float:
        if self.unfused_requirement == 0:
            return 0.0
        return 1.0 - self.fused_requirement / self.unfused_requirement


def fusion_memory_report(first: Program, second: Program) -> FusionReport:
    """Compare the chain's memory requirement with and without fusion."""
    from repro.window.simulator import max_total_window

    unfused = sequence_memory_report(
        ProgramSequence([first, second], name="unfused")
    ).requirement
    fused = max_total_window(fuse(first, second))
    return FusionReport(unfused, fused)
