"""MWS-minimizing transformation search (paper Section 4.2-4.3).

2-D: enumerate coprime candidate first rows ``(a, b)`` (branch-and-bound
over the eq. (2) objective, or plain bounded enumeration), keep rows
satisfying the tiling constraints ``a*d1 + b*d2 >= 0``, complete each to a
unimodular matrix with :func:`complete_first_row_2d`, and rank by the
eq. (2) estimate with exact-simulation tie-breaking of the leaders.

3-D: per Section 4.3 the best window comes from making inner loops carry
the reuse — when the access matrix rows extend to a legal unimodular
matrix, the reuse vector maps to level ``n`` and the window collapses to
1; otherwise candidates from a bounded unimodular enumeration are ranked
by (transformed reuse level, estimated window).

Deeper nests: signed permutations plus access-matrix embeddings, exact
scoring (the paper gives no closed form past depth 3).

Candidate evaluation — the hot path behind Figure 2 — is memoized in a
module-level content-hash cache (:func:`evaluate_exact` keys results on
``(program.signature(), array, transformation)``) and optionally fans
out to a :class:`~concurrent.futures.ProcessPoolExecutor` via the
``workers`` parameter.  Serial and parallel modes evaluate candidates in
the same order with the same tie-breaking, so their results are
identical; small batches always fall back to serial to avoid pool
overhead.  Everything is instrumented with :mod:`repro.obs` spans and
counters.

:func:`evaluate_cascade` layers two admissible pruning tiers in front of
simulation: tier 1 applies transformation-invariant certified facts
(:func:`repro.estimation.bounds.certified_reuse` — exact zero or a >= 1
floor under *any* ordering), tier 2 lower-bounds each candidate with the
exact MWS of a clipped sub-box program
(:func:`repro.estimation.bounds.clipped_program`).  A candidate is only
simulated when its lower bound beats the running incumbent, and both
tiers are provably safe: they never prune a candidate that could
strictly improve on the incumbent, so the winner is identical to
evaluating everything.

Whole-search results are additionally memoized in ``_SEARCH_CACHE``
(content-hash keyed, bypassed while a journal records so ``repro
explain`` always sees a full trace).  Both memos are bounded
:class:`~repro.store.lru.LRUCache` instances with eviction counters;
passing ``store=`` (a :class:`repro.store.ResultStore`) additionally
persists exact values, search results, and cascade outcomes across
processes — see :mod:`repro.store`.
"""

from __future__ import annotations

import functools
import math
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro import obs
from repro.dependence.distance import lex_level
from repro.envutil import env_int
from repro.estimation import bounds
from repro.estimation.parametric import clear_param_cache, parametric_value
from repro.ir.program import Program
from repro.linalg import IntMatrix
from repro.store.lru import LRUCache
from repro.transform import journal
from repro.transform.completion import complete_first_row_2d, complete_rows_legal
from repro.transform.elementary import (
    bounded_unimodular_matrices,
    signed_permutations,
)
from repro.transform.legality import (
    is_legal,
    is_tileable,
    ordering_distances,
    reuse_distances,
)
from repro.window.mws import mws_2d_estimate, mws_2d_estimate_batch


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a transformation search for one array."""

    array: str
    transformation: IntMatrix
    estimated_mws: Fraction | int
    exact_mws: int | None
    candidates_examined: int
    method: str

    def __str__(self) -> str:
        exact = "?" if self.exact_mws is None else str(self.exact_mws)
        return (
            f"{self.array}: T={self.transformation.rows} "
            f"est={self.estimated_mws} exact={exact} ({self.method})"
        )


# ----------------------------------------------------------------------
# memoized + parallel exact evaluation
# ----------------------------------------------------------------------

#: (program signature, array | None, transformation rows | None) -> exact
#: MWS.  ``array=None`` keys total-window results, ``rows=None`` the
#: native order.  Content-hash keys make results reusable across equal
#: programs rebuilt by different benchmarks / CLI invocations.  Bounded
#: LRU (evictions counted under ``search.cache.evictions``) so sustained
#: multi-kernel runs cannot grow it without bound.
_EXACT_CACHE_LIMIT = 65536
_EXACT_CACHE: LRUCache = LRUCache(_EXACT_CACHE_LIMIT, counter="search.cache")

#: Below this many cache misses a process pool costs more than it saves.
#: Measurement (bench_batched_scoring shapes, 2024-era 8-core x86): a
#: pool spin-up costs ~80-150 ms while the *batched* serial path scores
#: 8 misses of a 10^4-iteration nest in ~2 ms — the threshold is now
#: conservative by a wide margin, but raising the default would change
#: when existing workloads fork; tune per deployment with
#: ``REPRO_PARALLEL_THRESHOLD`` instead.
PARALLEL_THRESHOLD = 8

#: Environment variable overriding :data:`PARALLEL_THRESHOLD`.
PARALLEL_THRESHOLD_ENV = "REPRO_PARALLEL_THRESHOLD"


def parallel_threshold() -> int:
    """Miss count at which evaluation fans out to a pool (env-overridable)."""
    return env_int(PARALLEL_THRESHOLD_ENV, PARALLEL_THRESHOLD)

#: Whole-search memo: ``(kind, program signature, array, bounds...)`` ->
#: :class:`SearchResult`.  Search results are pure in the program and the
#: search knobs (``workers`` and ``engine`` change only *how* the result
#: is computed), so repeated searches — benchmark loops, the Figure-2
#: table re-running per array, pool workers — hit here.  Bypassed while a
#: journal records, so ``repro explain`` always sees the full trace.
#: LRU-bounded (``search.memo.evictions``): benchmark loops cycling more
#: than the limit evict one key at a time instead of thrashing the whole
#: memo with a wholesale ``clear()``.
_SEARCH_CACHE_LIMIT = 256
_SEARCH_CACHE: LRUCache = LRUCache(_SEARCH_CACHE_LIMIT, counter="search.memo")


def clear_exact_cache() -> None:
    """Drop all memoized exact-simulation results (tests, benchmarks)."""
    _EXACT_CACHE.clear()
    _SEARCH_CACHE.clear()
    clear_param_cache()


def clear_search_cache() -> None:
    """Drop memoized whole-search results only."""
    _SEARCH_CACHE.clear()


def exact_cache_size() -> int:
    return len(_EXACT_CACHE)


def _search_memo_get(key: tuple) -> "SearchResult | None":
    if journal.active() is not None:
        return None
    result = _SEARCH_CACHE.get(key)
    if result is not None:
        obs.counter("search.memo.hits")
    else:
        obs.counter("search.memo.misses")
    return result


def _search_memo_store(key: tuple, result: "SearchResult") -> None:
    if journal.active() is not None:
        return
    _SEARCH_CACHE.put(key, result)


def _t_key(transformation: IntMatrix | None) -> tuple | None:
    return None if transformation is None else transformation.rows


# ----------------------------------------------------------------------
# persistent-store codecs (see repro.store for the on-disk layout)
# ----------------------------------------------------------------------

def _exact_store_key(sig: str, array: str | None, t_key: tuple | None):
    return {"sig": sig, "array": array, "t": t_key}


def _encode_result(result: "SearchResult") -> dict:
    est = result.estimated_mws
    if isinstance(est, Fraction):
        est = {"n": est.numerator, "d": est.denominator}
    return {
        "array": result.array,
        "t": result.transformation.rows,
        "est": est,
        "exact": result.exact_mws,
        "examined": result.candidates_examined,
        "method": result.method,
    }


def _decode_result(value) -> "SearchResult | None":
    """Stored-record payload -> :class:`SearchResult`; ``None`` (a miss)
    when the payload does not decode — never an exception."""
    try:
        est = value["est"]
        if isinstance(est, dict):
            est = Fraction(est["n"], est["d"])
        rows = tuple(tuple(int(v) for v in row) for row in value["t"])
        return SearchResult(
            value["array"],
            IntMatrix(rows),
            est,
            value["exact"],
            int(value["examined"]),
            value["method"],
        )
    except (KeyError, TypeError, ValueError, IndexError):
        obs.counter("store.corrupt")
        return None


def _search_store_get(store, kind: str, sig: str, array: str, knobs: dict):
    """Persisted :class:`SearchResult`, or ``None``; bypassed while a
    journal records so ``repro explain`` still sees the full trace."""
    if store is None or journal.active() is not None:
        return None
    value = store.get("search", {"kind": kind, "sig": sig, "array": array, **knobs})
    if value is None:
        return None
    return _decode_result(value)


def _search_store_put(
    store, kind: str, sig: str, array: str, knobs: dict, result: "SearchResult"
) -> None:
    if store is None:
        return
    store.put(
        "search",
        {"kind": kind, "sig": sig, "array": array, **knobs},
        _encode_result(result),
    )


def _eval_one(
    program: Program,
    array: str | None,
    t: IntMatrix | None,
    engine: str = "auto",
) -> int:
    from repro.window.simulator import max_total_window, max_window_size

    if array is None:
        return max_total_window(program, t, engine=engine)
    return max_window_size(program, array, t, engine=engine)


def _score_misses(
    program: Program,
    array: str | None,
    ts: Sequence[IntMatrix | None],
    engine: str,
) -> list[int]:
    """Exact MWS for a list of cache misses, scored as one batch.

    Thin wrapper over :func:`repro.window.batched.batched_mws` (which
    bumps ``batch.candidates`` and the per-candidate simulator counters
    so serial, parallel, and batched totals reconcile).
    """
    from repro.window.batched import batched_mws

    return batched_mws(program, ts, array=array, engine=engine)


def _eval_task(payload) -> tuple[int, dict[str, int]]:
    """Single-candidate worker entry point (kept for compatibility;
    the pool path submits chunks via :func:`_eval_batch_task`)."""
    program, array, rows, engine = payload
    t = None if rows is None else IntMatrix(rows)
    value = _eval_one(program, array, t, engine)
    worker_obs = obs.get_observer()
    if worker_obs is None:
        return value, {}
    delta = dict(worker_obs.counters)
    worker_obs.counters.clear()
    return value, delta


def _eval_batch_task(payload) -> tuple[list[int], dict[str, int]]:
    """Worker-process entry point (must be module-level for pickling).

    Scores a *chunk* of candidates in one task, so the program pickles
    once per chunk instead of once per candidate and the worker runs
    the batched engine over the whole chunk.  Returns the exact values
    together with the worker-side counter delta (the worker runs its
    own in-memory observer, started by ``obs.core._init_worker``).
    Counters are drained per task so a worker reused for several tasks
    never double-reports; the parent merges the deltas, making serial
    and parallel counter totals match.
    """
    program, array, rows_list, engine = payload
    ts = [None if rows is None else IntMatrix(rows) for rows in rows_list]
    values = _score_misses(program, array, ts, engine)
    worker_obs = obs.get_observer()
    if worker_obs is None:
        return values, {}
    delta = dict(worker_obs.counters)
    worker_obs.counters.clear()
    return values, delta


def evaluate_exact(
    program: Program,
    candidates: Sequence[IntMatrix | None],
    array: str | None = None,
    workers: int | None = 0,
    stage: str = "evaluate",
    engine: str = "auto",
    store=None,
    parametric: bool = False,
) -> list[int]:
    """Exact MWS for each candidate transformation, in candidate order.

    ``array=None`` scores the program-level total window (the Figure-2
    objective); a name scores that array alone.  Results are memoized in
    the module cache; only cache misses are computed, serially or — when
    ``workers > 1`` and the miss count reaches :data:`PARALLEL_THRESHOLD`
    — on a ``ProcessPoolExecutor``.  ``workers=None`` auto-sizes to the
    CPU count.  The returned list is identical either way.

    ``stage`` names the journal stage for the per-candidate records (the
    cascade's lower-bound batches record as ``"lower_bound"`` so they
    stay out of the ranked candidate table); ``engine`` picks the window
    engine (see :data:`repro.window.ENGINES`) — the cache key is
    engine-independent because all engines agree exactly.  ``store``
    (a :class:`repro.store.ResultStore`) persists each exact value, so a
    later process skips the simulation entirely.

    ``parametric=True`` consults the parametric engine before
    simulating a miss: a closed form is derived once per program
    *family* (bounds stripped — see
    :func:`repro.estimation.parametric.parametric_signature`) and every
    size inside its verified domain is answered by substitution.  The
    values are identical to simulation (the derivation is verified
    against the engines), so caches and stores are shared with the
    non-parametric path; derivation failure or off-domain bounds fall
    back to simulation (``param.fallback``).
    """
    workers = _resolve_workers(workers)
    sig = program.signature()
    jr = journal.active()
    results: list[int | None] = [None] * len(candidates)
    misses: list[int] = []
    substituted = 0
    for idx, t in enumerate(candidates):
        hit = _EXACT_CACHE.get((sig, array, _t_key(t)))
        if hit is None and store is not None:
            persisted = store.get("exact", _exact_store_key(sig, array, _t_key(t)))
            if isinstance(persisted, int) and not isinstance(persisted, bool):
                hit = persisted
                _EXACT_CACHE.put((sig, array, _t_key(t)), hit)
        if hit is None and parametric:
            value = parametric_value(
                program, "mws", array=array, transformation=t,
                store=store, engine=engine,
            )
            if value is not None:
                substituted += 1
                hit = value
                _EXACT_CACHE.put((sig, array, _t_key(t)), hit)
                if store is not None:
                    store.put(
                        "exact", _exact_store_key(sig, array, _t_key(t)), hit
                    )
                if jr is not None:
                    jr.record(stage, _t_key(t), "parametric", exact=hit)
                results[idx] = hit
                continue
        if hit is None:
            misses.append(idx)
        else:
            results[idx] = hit
            if jr is not None:
                jr.record(stage, _t_key(t), "cache_hit", exact=hit)
    obs.counter("search.cache.hits", len(candidates) - len(misses) - substituted)
    obs.counter("search.cache.misses", len(misses))
    if misses:
        parallel = workers > 1 and len(misses) >= parallel_threshold()
        with obs.span(
            "evaluate",
            candidates=len(candidates),
            misses=len(misses),
            workers=workers if parallel else 0,
        ):
            if parallel:
                obs.counter("search.parallel.batches")
                obs.counter("search.parallel.tasks", len(misses))
                # One task per chunk: the program pickles once per chunk
                # and each worker scores its chunk with the batched
                # engine.  ``search.parallel.tasks`` keeps counting
                # candidates (the unit the accounting tests reconcile);
                # ``search.parallel.chunks`` counts pool submissions.
                chunk = max(1, math.ceil(len(misses) / (4 * workers)))
                groups = [
                    misses[i : i + chunk]
                    for i in range(0, len(misses), chunk)
                ]
                obs.counter("search.parallel.chunks", len(groups))
                payloads = [
                    (
                        program,
                        array,
                        [_t_key(candidates[idx]) for idx in group],
                        engine,
                    )
                    for group in groups
                ]
                with ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=obs.core._init_worker,
                    initargs=(obs.enabled(), obs.runctx.worker_state()),
                ) as pool:
                    pairs = list(pool.map(_eval_batch_task, payloads))
                values = []
                for group_values, delta in pairs:
                    values.extend(group_values)
                    for counter_name, amount in delta.items():
                        obs.counter(counter_name, amount)
            else:
                values = _score_misses(
                    program, array,
                    [candidates[idx] for idx in misses], engine,
                )
        for idx, value in zip(misses, values):
            results[idx] = value
            _EXACT_CACHE.put((sig, array, _t_key(candidates[idx])), value)
            if store is not None:
                store.put(
                    "exact",
                    _exact_store_key(sig, array, _t_key(candidates[idx])),
                    value,
                )
            if jr is not None:
                jr.record(
                    stage, _t_key(candidates[idx]), "computed", exact=value
                )
    return results  # type: ignore[return-value]


def _resolve_workers(workers: int | None) -> int:
    """``None`` means "pick for me": one worker per CPU, capped at 8.

    Negative counts are rejected here, at the entry point, rather than
    surfacing as an opaque ``ProcessPoolExecutor`` error mid-search.
    """
    if workers is None:
        return min(8, os.cpu_count() or 1)
    if workers < 0:
        raise ValueError(
            f"workers must be >= 0 (0 = serial, None = auto-size), "
            f"got {workers}"
        )
    return workers


# ----------------------------------------------------------------------
# tiered evaluation cascade
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CascadeOutcome:
    """Per-candidate verdict of :func:`evaluate_cascade`.

    ``exact`` — ``value`` is the true MWS (simulated, cached, or tier-1
    certified zero).  Otherwise ``value`` is an admissible lower bound
    and the candidate was pruned: its true MWS is >= ``value`` >= the
    incumbent at its turn, so it cannot strictly beat the winner.
    ``tier`` is ``"cache" | "tier1" | "tier2" | "simulated"``.
    """

    value: int
    exact: bool
    tier: str


def evaluate_cascade(
    program: Program,
    candidates: Sequence[IntMatrix | None],
    array: str | None = None,
    workers: int | None = 0,
    clip_budget: int | None = None,
    engine: str = "auto",
    store=None,
    parametric: bool = False,
) -> list[CascadeOutcome]:
    """Tiered exact evaluation: certify, lower-bound, simulate survivors.

    Candidates are finalized strictly in input order; the incumbent is
    the minimum *exact* value among earlier candidates.  Tier 1 applies
    transformation-invariant certified facts (exact zero under any
    ordering, or a floor of 1); tier 2 lower-bounds every candidate in
    one batch with the exact MWS of a clipped sub-box program (skipped
    when the nest is small enough that simulating outright is cheaper).
    A candidate whose lower bound reaches the incumbent is pruned
    without simulation — admissible, so the strict-< first-wins winner
    is identical to :func:`evaluate_exact` over all candidates.  The
    first candidate is never pruned, so at least one outcome is exact.
    Survivors are simulated in windows of ``REPRO_BATCH_SIZE`` through
    the batched engine (the first window is a single candidate, so the
    incumbent exists before batching); a window sees the incumbent as
    of the last flush, which can only *add* simulations relative to the
    sequential cascade, never change a reported value or the winner.

    Counters: ``search.cascade.{tier1,tier2_pruned,pruned,simulated,
    lb_evals}`` (``pruned`` = ``tier1`` + ``tier2_pruned``); each prune
    also writes a stage-``"cascade"`` journal record, so ``repro
    explain`` reconciles them.

    ``store`` persists both the per-candidate exact values (through
    :func:`evaluate_exact`) and the whole outcome list, keyed by the
    candidate sequence and the resolved clip budget, so a warm process
    replays the cascade without touching the simulator.

    ``parametric=True`` applies only to the survivor simulations: the
    tier-2 lower-bound batch runs on the clipped sub-box program, whose
    tiny bounds sit below any derived domain, so routing it through the
    parametric engine would only pay derivation costs to fall back.
    """
    workers = _resolve_workers(workers)
    sig = program.signature()
    jr = journal.active()
    budget = bounds.clip_budget() if clip_budget is None else clip_budget

    cascade_key = None
    if store is not None and jr is None:
        cascade_key = {
            "sig": sig,
            "array": array,
            "ts": [_t_key(t) for t in candidates],
            "clip": budget,
        }
        persisted = store.get("cascade", cascade_key)
        decoded = _decode_outcomes(persisted)
        if decoded is not None:
            for t, outcome in zip(candidates, decoded):
                if outcome.exact:
                    _EXACT_CACHE.put((sig, array, _t_key(t)), outcome.value)
            return decoded

    # Tier 1: transformation-invariant certified facts.
    if array is None:
        verdicts = [bounds.certified_reuse(program, a) for a in program.arrays]
        zero_certified = all(v is False for v in verdicts)
        tier1_floor = 1 if any(v is True for v in verdicts) else 0
    else:
        verdict = bounds.certified_reuse(program, array)
        zero_certified = verdict is False
        tier1_floor = 1 if verdict is True else 0
    if zero_certified:
        obs.counter("search.cascade.tier1", len(candidates))
        obs.counter("search.cascade.pruned", len(candidates))
        for t in candidates:
            _EXACT_CACHE.put((sig, array, _t_key(t)), 0)
            if jr is not None:
                jr.record(
                    "cascade", _t_key(t), "pruned",
                    reason="cascade: tier-1 certified zero reuse "
                           "(exact MWS 0 under any ordering)",
                    exact=0,
                )
        outcomes = [CascadeOutcome(0, True, "tier1") for _ in candidates]
        if cascade_key is not None:
            store.put("cascade", cascade_key, _encode_outcomes(outcomes))
        return outcomes

    # Tier 2: one batched lower-bound evaluation on the clipped program.
    # Worth it only when the full nest dwarfs the clipped one.
    lower_bounds: list[int] | None = None
    if program.nest.total_iterations > 2 * budget:
        clipped = bounds.clipped_program(program, budget)
        with obs.span("cascade.lower_bound", candidates=len(candidates)):
            lower_bounds = evaluate_exact(
                clipped, candidates, array=array, workers=workers,
                stage="lower_bound", engine=engine, store=store,
            )
        obs.counter("search.cascade.lb_evals", len(candidates))

    # Survivors are simulated in *windows* through the batched engine.
    # The first window has size 1 — the first survivor always simulates
    # alone, establishing the incumbent before any batching — and later
    # windows use the REPRO_BATCH_SIZE knob.  Pruning decisions inside a
    # window see the incumbent as of the last flush (plus cache hits),
    # so the windowed cascade simulates a superset of the sequential
    # one; every reported exact value is the true MWS either way, and
    # the strict-< first-wins winner is identical.
    from repro.window.batched import batch_size

    incumbent: int | None = None
    tier1_pruned = tier2_pruned = simulated = 0
    outcomes: list[CascadeOutcome | None] = [None] * len(candidates)
    pending: list[int] = []
    window = 1

    def _flush() -> None:
        nonlocal incumbent, window
        if not pending:
            return
        values = evaluate_exact(
            program, [candidates[i] for i in pending], array=array,
            workers=workers, engine=engine, store=store,
            parametric=parametric,
        )
        for i, value in zip(pending, values):
            outcomes[i] = CascadeOutcome(value, True, "simulated")
            if incumbent is None or value < incumbent:
                incumbent = value
        pending.clear()
        window = batch_size()

    for idx, t in enumerate(candidates):
        hit = _EXACT_CACHE.get((sig, array, _t_key(t)))
        if hit is not None:
            obs.counter("search.cache.hits", 1)
            if jr is not None:
                jr.record("evaluate", _t_key(t), "cache_hit", exact=hit)
            outcomes[idx] = CascadeOutcome(hit, True, "cache")
            if incumbent is None or hit < incumbent:
                incumbent = hit
            continue
        lb, tier = tier1_floor, "tier1"
        if lower_bounds is not None and lower_bounds[idx] > lb:
            lb, tier = lower_bounds[idx], "tier2"
        if incumbent is not None and lb >= incumbent:
            if tier == "tier1":
                tier1_pruned += 1
                reason = (f"cascade: tier-1 certified reuse floor {lb} "
                          f">= incumbent {incumbent}")
            else:
                tier2_pruned += 1
                reason = (f"cascade: tier-2 clipped-program lower bound "
                          f"{lb} >= incumbent {incumbent}")
            if jr is not None:
                jr.record(
                    "cascade", _t_key(t), "pruned",
                    reason=reason, estimate=lb,
                )
            outcomes[idx] = CascadeOutcome(lb, False, tier)
            continue
        simulated += 1
        pending.append(idx)
        if len(pending) >= window:
            _flush()
    _flush()
    obs.counter("search.cascade.tier1", tier1_pruned)
    obs.counter("search.cascade.tier2_pruned", tier2_pruned)
    obs.counter("search.cascade.pruned", tier1_pruned + tier2_pruned)
    obs.counter("search.cascade.simulated", simulated)
    if cascade_key is not None:
        store.put("cascade", cascade_key, _encode_outcomes(outcomes))
    return outcomes


def _encode_outcomes(outcomes: Sequence[CascadeOutcome]) -> list[list]:
    return [[o.value, o.exact, o.tier] for o in outcomes]


def _decode_outcomes(value) -> list[CascadeOutcome] | None:
    """Stored cascade payload -> outcomes; ``None`` (a miss) when it
    does not decode."""
    if value is None:
        return None
    try:
        return [
            CascadeOutcome(int(v), bool(exact), str(tier))
            for v, exact, tier in value
        ]
    except (TypeError, ValueError):
        obs.counter("store.corrupt")
        return None


@functools.lru_cache(maxsize=None)
def _coprime_rows(bound: int) -> tuple[tuple[int, int], ...]:
    """Candidate first rows: coprime (a, b), not both negative-leading.

    The first row of a legal transformation applied to a lex-positive
    distance must produce a non-negative leading component, so rows and
    their negations are equivalent up to the completion step; enumerate a
    canonical half-space plus the axes.  Cached — every 2-D search and
    branch-and-bound run over the same bound re-enumerates the same box.
    """
    rows = []
    for a in range(0, bound + 1):
        for b in range(-bound, bound + 1):
            if a == 0 and b == 0:
                continue
            if a == 0 and b < 0:
                continue
            if math.gcd(a, b) != 1:
                continue
            rows.append((a, b))
    return tuple(rows)


def search_mws_2d_eager(
    program: Program,
    array: str,
    bound: int = 8,
    verify_top: int = 6,
    workers: int = 0,
) -> SearchResult:
    """Eager reference implementation of the 2-D search.

    Completes and legality-checks *every* feasible row before ranking.
    :func:`search_mws_2d` produces identical results while completing
    only the cheapest estimate groups; this version is kept as the
    differential-test oracle and benchmark comparator.
    """
    if program.nest.depth != 2:
        raise ValueError("search_mws_2d requires a 2-deep nest")
    refs = program.refs_to(array)
    if not refs:
        raise KeyError(array)
    with obs.span("search.2d", array=array, bound=bound):
        order_dists = ordering_distances(program, array)
        window_dists = reuse_distances(program, array)

        scored: list[tuple[Fraction, IntMatrix]] = []
        examined = 0
        ref = refs[0]
        use_eq2 = ref.rank == 1
        alpha = ref.access.row(0) if use_eq2 else None
        n1, n2 = program.nest.trip_counts
        jr = journal.active()
        with obs.span("estimate"):
            for a, b in _coprime_rows(bound):
                examined += 1
                if any(a * d1 + b * d2 < 0 for d1, d2 in window_dists):
                    if jr is not None:
                        jr.record(
                            "enumerate", ((a, b),), "rejected",
                            reason="tiling: a*d1 + b*d2 < 0 for a reuse distance",
                        )
                    continue
                t = complete_first_row_2d(a, b, window_dists)
                if t is None:
                    if jr is not None:
                        jr.record(
                            "enumerate", ((a, b),), "rejected",
                            reason="completion: no tileable unimodular completion",
                        )
                    continue
                if not is_legal(t, order_dists):
                    if jr is not None:
                        jr.record(
                            "enumerate", t.rows, "rejected",
                            reason="legality: reverses a lex-positive dependence",
                        )
                    continue
                if use_eq2:
                    estimate = mws_2d_estimate(alpha[0], alpha[1], n1, n2, a, b)
                else:
                    # Rank-2 arrays: minimize how far apart the reuse
                    # distances land after transformation (outer
                    # component of T d).
                    estimate = Fraction(
                        sum(abs(a * d1 + b * d2) for d1, d2 in window_dists), 1
                    )
                scored.append((estimate, t))
                if jr is not None:
                    jr.record("enumerate", t.rows, "candidate", estimate=estimate)
        obs.counter("search.candidates.examined", examined)
        if not scored:
            raise ValueError(f"no tileable transformation found for {array}")
        with obs.span("rank", scored=len(scored)):
            scored.sort(key=lambda item: (item[0], _entry_weight(item[1])))
        leaders = scored[:verify_top]
        exacts = evaluate_exact(
            program, [t for _, t in leaders], array=array, workers=workers
        )
        best = None
        for (estimate, t), exact in zip(leaders, exacts):
            if best is None or exact < best[0]:
                best = (exact, estimate, t)
        exact, estimate, t = best
        return SearchResult(array, t, estimate, exact, examined, "2d-enumeration")


def search_mws_2d(
    program: Program,
    array: str,
    bound: int = 8,
    verify_top: int = 6,
    workers: int = 0,
    engine: str = "auto",
    store=None,
    parametric: bool = False,
) -> SearchResult:
    """Find a tileable unimodular transformation minimizing the array's MWS.

    ``bound`` caps ``|a|, |b|``; ``verify_top`` exact-simulates the best
    candidates by estimate and returns the true winner among them (the
    estimate alone already reproduces the paper's choices, the simulation
    guards against estimate ties).  ``workers > 1`` parallelizes the
    exact-simulation stage (identical results to serial).

    The estimate depends only on the row ``(a, b)``, so completion and
    legality — the expensive per-row work — run lazily: rows are ranked
    by estimate first and completed in ascending estimate groups until
    ``verify_top`` survivors are collected.  Stopping only at group
    boundaries keeps the ``(estimate, entry-weight)`` tie-break exact,
    so the leaders (and hence the winner) are provably identical to
    :func:`search_mws_2d_eager`.
    """
    if program.nest.depth != 2:
        raise ValueError("search_mws_2d requires a 2-deep nest")
    refs = program.refs_to(array)
    if not refs:
        raise KeyError(array)
    sig = program.signature()
    memo_key = ("2d", sig, array, bound, verify_top)
    memoized = _search_memo_get(memo_key)
    if memoized is not None:
        return memoized
    knobs = {"bound": bound, "verify_top": verify_top}
    persisted = _search_store_get(store, "2d", sig, array, knobs)
    if persisted is not None:
        _search_memo_store(memo_key, persisted)
        return persisted
    with obs.span("search.2d", array=array, bound=bound):
        order_dists = ordering_distances(program, array)
        window_dists = reuse_distances(program, array)
        ref = refs[0]
        use_eq2 = ref.rank == 1
        alpha = ref.access.row(0) if use_eq2 else None
        n1, n2 = program.nest.trip_counts
        jr = journal.active()
        examined = 0
        with obs.span("estimate"):
            tileable: list[tuple[int, int]] = []
            for a, b in _coprime_rows(bound):
                examined += 1
                if any(a * d1 + b * d2 < 0 for d1, d2 in window_dists):
                    if jr is not None:
                        jr.record(
                            "enumerate", ((a, b),), "rejected",
                            reason="tiling: a*d1 + b*d2 < 0 for a reuse distance",
                        )
                    continue
                tileable.append((a, b))
            if use_eq2:
                estimates = mws_2d_estimate_batch(
                    alpha[0], alpha[1], n1, n2, tileable
                )
            else:
                estimates = [
                    Fraction(
                        sum(abs(a * d1 + b * d2) for d1, d2 in window_dists), 1
                    )
                    for a, b in tileable
                ]
            feasible: list[tuple[Fraction, tuple[int, int]]] = list(
                zip(estimates, tileable)
            )
        obs.counter("search.candidates.examined", examined)
        # Stable sort keeps enumeration order within equal estimates, so
        # survivors collect in the same relative order the eager search
        # would have scored them.
        feasible.sort(key=lambda item: item[0])
        collected: list[tuple[Fraction, IntMatrix]] = []
        idx = 0
        completed = 0
        with obs.span("complete"):
            while idx < len(feasible) and len(collected) < verify_top:
                group_end = idx
                while (
                    group_end < len(feasible)
                    and feasible[group_end][0] == feasible[idx][0]
                ):
                    group_end += 1
                for estimate, (a, b) in feasible[idx:group_end]:
                    completed += 1
                    t = complete_first_row_2d(a, b, window_dists)
                    if t is None:
                        if jr is not None:
                            jr.record(
                                "enumerate", ((a, b),), "rejected",
                                reason="completion: no tileable unimodular completion",
                            )
                        continue
                    if not is_legal(t, order_dists):
                        if jr is not None:
                            jr.record(
                                "enumerate", t.rows, "rejected",
                                reason="legality: reverses a lex-positive dependence",
                            )
                        continue
                    collected.append((estimate, t))
                    if jr is not None:
                        jr.record(
                            "enumerate", t.rows, "candidate", estimate=estimate
                        )
                idx = group_end
        obs.counter("search.lazy.completed", completed)
        obs.counter("search.lazy.skipped", len(feasible) - idx)
        if jr is not None:
            # Rows ranked out before completion still get their one
            # enumerate record, so examined = rejected + candidates holds.
            for estimate, (a, b) in feasible[idx:]:
                jr.record("enumerate", ((a, b),), "candidate", estimate=estimate)
        if not collected:
            raise ValueError(f"no tileable transformation found for {array}")
        with obs.span("rank", scored=len(collected)):
            collected.sort(key=lambda item: (item[0], _entry_weight(item[1])))
        leaders = collected[:verify_top]
        exacts = evaluate_exact(
            program, [t for _, t in leaders], array=array, workers=workers,
            engine=engine, store=store, parametric=parametric,
        )
        best = None
        for (estimate, t), exact in zip(leaders, exacts):
            if best is None or exact < best[0]:
                best = (exact, estimate, t)
        exact, estimate, t = best
        result = SearchResult(array, t, estimate, exact, examined, "2d-enumeration")
        _search_memo_store(memo_key, result)
        _search_store_put(store, "2d", sig, array, knobs, result)
        return result


def _entry_weight(matrix: IntMatrix) -> int:
    return sum(abs(v) for row in matrix.rows for v in row)


def search_mws_3d(
    program: Program,
    array: str,
    bound: int = 1,
    verify_top: int = 4,
    workers: int = 0,
    engine: str = "auto",
    store=None,
    parametric: bool = False,
) -> SearchResult:
    """Section 4.3 search for 3-deep nests.

    First preference: embed the access matrix rows as the leading rows of
    ``T`` (when they complete to a legal unimodular matrix) — the reuse
    vector then lands at level ``n`` and the window collapses to ~1.
    Otherwise rank a bounded enumeration of unimodular matrices by the
    level of the transformed reuse vectors (deeper is better), then by
    exact simulation of the leaders.
    """
    if program.nest.depth != 3:
        raise ValueError("search_mws_3d requires a 3-deep nest")
    refs = program.refs_to(array)
    if not refs:
        raise KeyError(array)
    sig = program.signature()
    memo_key = ("3d", sig, array, bound, verify_top)
    memoized = _search_memo_get(memo_key)
    if memoized is not None:
        return memoized
    knobs = {"bound": bound, "verify_top": verify_top}
    persisted = _search_store_get(store, "3d", sig, array, knobs)
    if persisted is not None:
        _search_memo_store(memo_key, persisted)
        return persisted
    with obs.span("search.3d", array=array, bound=bound):
        order_dists = ordering_distances(program, array)
        window_dists = reuse_distances(program, array)

        candidates: list[IntMatrix] = []
        examined = 0
        jr = journal.active()
        # Access-matrix embedding (Example 10's construction).
        access = refs[0].access
        if access.n_rows < 3 and access.rank() == access.n_rows:
            embedded = complete_rows_legal(
                [list(access.row(k)) for k in range(access.n_rows)], window_dists
            )
            if embedded is not None and is_legal(embedded, order_dists):
                candidates.append(embedded)
                if jr is not None:
                    jr.record("seed", embedded.rows, "candidate")
        # Bounded enumeration fallback/competitors.
        with obs.span("enumerate"):
            for t in bounded_unimodular_matrices(3, bound):
                examined += 1
                if not is_tileable(t, window_dists):
                    if jr is not None:
                        jr.record(
                            "enumerate", t.rows, "rejected",
                            reason="tiling: T d < 0 for a reuse distance",
                        )
                    continue
                if not is_legal(t, order_dists):
                    if jr is not None:
                        jr.record(
                            "enumerate", t.rows, "rejected",
                            reason="legality: reverses a lex-positive dependence",
                        )
                    continue
                candidates.append(t)
                if jr is not None:
                    jr.record("enumerate", t.rows, "candidate")
        obs.counter("search.candidates.examined", examined)
        if not candidates:
            raise ValueError(f"no legal transformation found for {array}")

        def level_key(t: IntMatrix) -> tuple:
            levels = [
                lex_level(t.apply(d)) or (program.nest.depth + 1)
                for d in window_dists
            ]
            # Deeper reuse levels first; small entries as tie-break.
            return (-min(levels, default=0), -sum(levels), _entry_weight(t))

        with obs.span("rank", scored=len(candidates)):
            candidates.sort(key=level_key)
        leaders = candidates[:verify_top]
        exacts = evaluate_exact(
            program, leaders, array=array, workers=workers, engine=engine,
            store=store, parametric=parametric,
        )
        best = None
        for t, exact in zip(leaders, exacts):
            if best is None or exact < best[0]:
                best = (exact, t)
        exact, t = best
        result = SearchResult(array, t, exact, exact, examined, "3d-level-search")
        _search_memo_store(memo_key, result)
        _search_store_put(store, "3d", sig, array, knobs, result)
        return result


def search_general(
    program: Program,
    array: str,
    workers: int = 0,
    engine: str = "auto",
    store=None,
    parametric: bool = False,
) -> SearchResult:
    """Depth-agnostic search: signed permutations + access embeddings.

    For nests deeper than 3 the paper gives no closed form, and bounded
    unimodular enumeration explodes (``~3^(n*n)`` determinant checks).
    The tractable space that still captures the paper's motion-estimation
    wins is the ``2^n * n!`` signed permutations (Eisenbeis et al.'s
    space) plus each reference's access-matrix embedding; candidates are
    scored through :func:`evaluate_cascade`, which certifies or
    lower-bounds most of them away before simulating.
    """
    refs = program.refs_to(array)
    if not refs:
        raise KeyError(array)
    sig = program.signature()
    memo_key = ("general", sig, array)
    memoized = _search_memo_get(memo_key)
    if memoized is not None:
        return memoized
    persisted = _search_store_get(store, "general", sig, array, {})
    if persisted is not None:
        _search_memo_store(memo_key, persisted)
        return persisted
    with obs.span("search.general", array=array, depth=program.nest.depth):
        n = program.nest.depth
        order_dists = ordering_distances(program, array)
        window_dists = reuse_distances(program, array)
        candidates: dict[IntMatrix, None] = {IntMatrix.identity(n): None}
        examined = 0
        jr = journal.active()
        if jr is not None:
            jr.record("seed", IntMatrix.identity(n).rows, "candidate")
        for ref in refs:
            if ref.rank >= n or ref.access.rank() != ref.rank:
                continue
            rows = [list(ref.access.row(k)) for k in range(ref.rank)]
            embedded = complete_rows_legal(rows, window_dists)
            if embedded is not None and is_legal(embedded, order_dists):
                candidates.setdefault(embedded, None)
                if jr is not None:
                    jr.record("seed", embedded.rows, "candidate")
        for t in signed_permutations(n):
            examined += 1
            if not is_legal(t, order_dists):
                if jr is not None:
                    jr.record(
                        "enumerate", t.rows, "rejected",
                        reason="legality: reverses a lex-positive dependence",
                    )
                continue
            candidates.setdefault(t, None)
            if jr is not None:
                jr.record("enumerate", t.rows, "candidate")
        obs.counter("search.candidates.examined", examined)
        ordered = list(candidates)
        outcomes = evaluate_cascade(
            program, ordered, array=array, workers=workers, engine=engine,
            store=store, parametric=parametric,
        )
        best = None
        for t, outcome in zip(ordered, outcomes):
            if not outcome.exact:
                continue
            if best is None or outcome.value < best[0]:
                best = (outcome.value, t)
        exact, t = best
        result = SearchResult(
            array, t, exact, exact, examined, "permutation-search"
        )
        _search_memo_store(memo_key, result)
        _search_store_put(store, "general", sig, array, {}, result)
        return result


def search_best_transformation(
    program: Program,
    array: str,
    bound: int = 6,
    workers: int = 0,
    engine: str = "auto",
    store=None,
    parametric: bool = False,
) -> SearchResult:
    """Depth dispatcher used by the Figure-2 harness."""
    depth = program.nest.depth
    if depth == 2:
        return search_mws_2d(
            program, array, bound=bound, workers=workers, engine=engine,
            store=store, parametric=parametric,
        )
    if depth == 3:
        return search_mws_3d(
            program, array, bound=min(bound, 2), workers=workers,
            engine=engine, store=store, parametric=parametric,
        )
    return search_general(
        program, array, workers=workers, engine=engine, store=store,
        parametric=parametric,
    )


def exhaustive_search(
    program: Program,
    array: str,
    bound: int = 1,
    tileable_only: bool = True,
    workers: int = 0,
    engine: str = "auto",
    store=None,
    parametric: bool = False,
) -> SearchResult:
    """Brute-force over all bounded unimodular matrices, exact scoring.

    The ablation baseline: guaranteed optimal within the entry bound, but
    exponential — keep ``bound`` at 1 or 2 and the depth at 3 or less
    (:func:`search_general` covers deeper nests tractably).  Candidates
    run through :func:`evaluate_cascade`, so the "exhaustive" cost is
    paid only by candidates the admissible bounds cannot exclude.
    """
    n = program.nest.depth
    with obs.span("search.exhaustive", array=array, bound=bound):
        order_dists = ordering_distances(program, array)
        window_dists = reuse_distances(program, array)
        legal: list[IntMatrix] = []
        examined = 0
        jr = journal.active()
        with obs.span("enumerate"):
            for t in bounded_unimodular_matrices(n, bound):
                examined += 1
                if tileable_only and not is_tileable(t, window_dists):
                    if jr is not None:
                        jr.record(
                            "enumerate", t.rows, "rejected",
                            reason="tiling: T d < 0 for a reuse distance",
                        )
                    continue
                if not is_legal(t, order_dists):
                    if jr is not None:
                        jr.record(
                            "enumerate", t.rows, "rejected",
                            reason="legality: reverses a lex-positive dependence",
                        )
                    continue
                legal.append(t)
                if jr is not None:
                    jr.record("enumerate", t.rows, "candidate")
        obs.counter("search.candidates.examined", examined)
        if not legal:
            raise ValueError(f"no legal transformation found for {array}")
        outcomes = evaluate_cascade(
            program, legal, array=array, workers=workers, engine=engine,
            store=store, parametric=parametric,
        )
        best = None
        for t, outcome in zip(legal, outcomes):
            if not outcome.exact:
                continue
            if best is None or outcome.value < best[0]:
                best = (outcome.value, t)
        exact, t = best
        return SearchResult(array, t, exact, exact, examined, "exhaustive")
