"""MWS-minimizing transformation search (paper Section 4.2-4.3).

2-D: enumerate coprime candidate first rows ``(a, b)`` (branch-and-bound
over the eq. (2) objective, or plain bounded enumeration), keep rows
satisfying the tiling constraints ``a*d1 + b*d2 >= 0``, complete each to a
unimodular matrix with :func:`complete_first_row_2d`, and rank by the
eq. (2) estimate with exact-simulation tie-breaking of the leaders.

3-D: per Section 4.3 the best window comes from making inner loops carry
the reuse — when the access matrix rows extend to a legal unimodular
matrix, the reuse vector maps to level ``n`` and the window collapses to
1; otherwise candidates from a bounded unimodular enumeration are ranked
by (transformed reuse level, estimated window).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.dependence.distance import lex_level
from repro.ir.program import Program
from repro.linalg import IntMatrix
from repro.transform.completion import complete_first_row_2d, complete_rows_legal
from repro.transform.elementary import bounded_unimodular_matrices
from repro.transform.legality import (
    is_legal,
    is_tileable,
    ordering_distances,
    reuse_distances,
)
from repro.window.mws import mws_2d_estimate


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a transformation search for one array."""

    array: str
    transformation: IntMatrix
    estimated_mws: Fraction | int
    exact_mws: int | None
    candidates_examined: int
    method: str

    def __str__(self) -> str:
        exact = "?" if self.exact_mws is None else str(self.exact_mws)
        return (
            f"{self.array}: T={self.transformation.rows} "
            f"est={self.estimated_mws} exact={exact} ({self.method})"
        )


def _coprime_rows(bound: int):
    """Candidate first rows: coprime (a, b), not both negative-leading.

    The first row of a legal transformation applied to a lex-positive
    distance must produce a non-negative leading component, so rows and
    their negations are equivalent up to the completion step; enumerate a
    canonical half-space plus the axes.
    """
    rows = []
    for a in range(0, bound + 1):
        for b in range(-bound, bound + 1):
            if a == 0 and b == 0:
                continue
            if a == 0 and b < 0:
                continue
            if math.gcd(a, b) != 1:
                continue
            rows.append((a, b))
    return rows


def search_mws_2d(
    program: Program,
    array: str,
    bound: int = 8,
    verify_top: int = 6,
) -> SearchResult:
    """Find a tileable unimodular transformation minimizing the array's MWS.

    ``bound`` caps ``|a|, |b|``; ``verify_top`` exact-simulates the best
    candidates by estimate and returns the true winner among them (the
    estimate alone already reproduces the paper's choices, the simulation
    guards against estimate ties).
    """
    from repro.window.simulator import max_window_size

    if program.nest.depth != 2:
        raise ValueError("search_mws_2d requires a 2-deep nest")
    refs = program.refs_to(array)
    if not refs:
        raise KeyError(array)
    order_dists = ordering_distances(program, array)
    window_dists = reuse_distances(program, array)

    scored: list[tuple[Fraction, IntMatrix]] = []
    examined = 0
    ref = refs[0]
    use_eq2 = ref.rank == 1
    alpha = ref.access.row(0) if use_eq2 else None
    n1, n2 = program.nest.trip_counts
    for a, b in _coprime_rows(bound):
        examined += 1
        if any(a * d1 + b * d2 < 0 for d1, d2 in window_dists):
            continue
        t = complete_first_row_2d(a, b, window_dists)
        if t is None:
            continue
        if not is_legal(t, order_dists):
            continue
        if use_eq2:
            estimate = mws_2d_estimate(alpha[0], alpha[1], n1, n2, a, b)
        else:
            # Rank-2 arrays: minimize how far apart the reuse distances
            # land after transformation (outer component of T d).
            estimate = Fraction(
                sum(abs(a * d1 + b * d2) for d1, d2 in window_dists), 1
            )
        scored.append((estimate, t))
    if not scored:
        raise ValueError(f"no tileable transformation found for {array}")
    scored.sort(key=lambda item: (item[0], _entry_weight(item[1])))

    best = None
    for estimate, t in scored[:verify_top]:
        exact = max_window_size(program, array, t)
        if best is None or exact < best[0]:
            best = (exact, estimate, t)
    exact, estimate, t = best
    return SearchResult(array, t, estimate, exact, examined, "2d-enumeration")


def _entry_weight(matrix: IntMatrix) -> int:
    return sum(abs(v) for row in matrix.rows for v in row)


def search_mws_3d(
    program: Program,
    array: str,
    bound: int = 1,
    verify_top: int = 4,
) -> SearchResult:
    """Section 4.3 search for 3-deep nests.

    First preference: embed the access matrix rows as the leading rows of
    ``T`` (when they complete to a legal unimodular matrix) — the reuse
    vector then lands at level ``n`` and the window collapses to ~1.
    Otherwise rank a bounded enumeration of unimodular matrices by the
    level of the transformed reuse vectors (deeper is better), then by
    exact simulation of the leaders.
    """
    from repro.window.simulator import max_window_size

    if program.nest.depth != 3:
        raise ValueError("search_mws_3d requires a 3-deep nest")
    refs = program.refs_to(array)
    if not refs:
        raise KeyError(array)
    order_dists = ordering_distances(program, array)
    window_dists = reuse_distances(program, array)

    candidates: list[IntMatrix] = []
    examined = 0
    # Access-matrix embedding (Example 10's construction).
    access = refs[0].access
    if access.n_rows < 3 and access.rank() == access.n_rows:
        embedded = complete_rows_legal(
            [list(access.row(k)) for k in range(access.n_rows)], window_dists
        )
        if embedded is not None and is_legal(embedded, order_dists):
            candidates.append(embedded)
    # Bounded enumeration fallback/competitors.
    for t in bounded_unimodular_matrices(3, bound):
        examined += 1
        if not is_tileable(t, window_dists):
            continue
        if not is_legal(t, order_dists):
            continue
        candidates.append(t)
    if not candidates:
        raise ValueError(f"no legal transformation found for {array}")

    def level_key(t: IntMatrix) -> tuple:
        levels = [
            lex_level(t.apply(d)) or (program.nest.depth + 1)
            for d in window_dists
        ]
        # Deeper reuse levels first; small entries as tie-break.
        return (-min(levels, default=0), -sum(levels), _entry_weight(t))

    candidates.sort(key=level_key)
    best = None
    for t in candidates[:verify_top]:
        exact = max_window_size(program, array, t)
        if best is None or exact < best[0]:
            best = (exact, t)
    exact, t = best
    return SearchResult(array, t, exact, exact, examined, "3d-level-search")


def search_best_transformation(
    program: Program,
    array: str,
    bound: int = 6,
) -> SearchResult:
    """Depth dispatcher used by the Figure-2 harness."""
    depth = program.nest.depth
    if depth == 2:
        return search_mws_2d(program, array, bound=bound)
    if depth == 3:
        return search_mws_3d(program, array, bound=min(bound, 2))
    return exhaustive_search(program, array, bound=1)


def exhaustive_search(
    program: Program,
    array: str,
    bound: int = 1,
    tileable_only: bool = True,
) -> SearchResult:
    """Brute-force over all bounded unimodular matrices, exact scoring.

    The ablation baseline: guaranteed optimal within the entry bound, but
    exponential — keep ``bound`` at 1 or 2.  Also used for nests deeper
    than 3 where the paper gives no closed form.
    """
    from repro.window.simulator import max_window_size

    n = program.nest.depth
    order_dists = ordering_distances(program, array)
    window_dists = reuse_distances(program, array)
    best = None
    examined = 0
    for t in bounded_unimodular_matrices(n, bound):
        examined += 1
        if tileable_only and not is_tileable(t, window_dists):
            continue
        if not is_legal(t, order_dists):
            continue
        exact = max_window_size(program, array, t)
        if best is None or exact < best[0]:
            best = (exact, t)
    if best is None:
        raise ValueError(f"no legal transformation found for {array}")
    exact, t = best
    return SearchResult(array, t, exact, exact, examined, "exhaustive")
