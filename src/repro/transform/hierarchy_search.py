"""Joint (transformation, tile size, tier placement) search.

The flat-buffer pipeline picks a transformation, then a tile whose
footprint fits *the* buffer.  A hierarchy adds a third axis: each array
can live in any tier (core-addressable TCM-style memories, so an access
to a tier costs that tier's energy directly), and the DMA engine streams
each tile's footprint in from the backing store and dirty elements back
out.  This module searches the cross-product

    legal transformation x rectangular tile x per-array tier placement

for the plan minimizing modeled energy:

    sum_a accesses_a * E_tier(a)                       (core accesses)
  + sum_a (fetch_words_a + writeback_words_a) * E_back (DMA traffic)

with per-tier feasibility ``sum_{placed in k} worst_tile_footprint_a <=
capacity_k`` (the :class:`~repro.transform.tiling.TileFootprints`
numbers, exact even for partial boundary tiles).  The model is the
block-transfer view of the paper's Section 4.1 tiling requirement; the
exact optimally-managed stack simulation lives in
:func:`repro.memory.hierarchy.simulate_hierarchy` and is what the
conformance oracles pin.

Pruning follows the cascade discipline of :mod:`repro.transform.search`
— cheap admissible facts first, expensive exact evaluation only when it
could improve the incumbent:

* **floor prune** — :func:`repro.estimation.bounds.transfer_lower_bound`
  in its order-invariant regime (one phase: distinct + written words)
  lower-bounds *any* plan's DMA volume under *any* order, because every
  element is fetched at least once and every written element streamed
  back at least once.  Charging those words at the backing energy and
  every access at the cheapest tier gives ``floor_energy``; once the
  incumbent reaches it the remaining space is pruned *certified optimal*.
* **placement prune** — after a tile's footprints are measured, its DMA
  energy is fixed; if even the cheapest placement (everything in tier 1)
  cannot beat the incumbent, the placement enumeration is skipped.

Both prunes are admissible, so ``prune=True`` and ``prune=False`` return
identical winners (the cascade-parity property test).  The phase-refined
bound at the stack's total capacity is admissible against the *simulated*
transfers (the ``hierarchy-bound-admissible`` oracle) and is reported as
the result's certified off-chip floor.

Instrumentation: counters ``search.hierarchy.{lb_evals,pruned,evaluated,
configs}``, journal stage ``"hierarchy"``, and persistent store records
under the new kind ``"hierarchy"``.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

from repro import obs
from repro.estimation.bounds import transfer_lower_bound
from repro.ir.program import Program
from repro.linalg import IntMatrix
from repro.memory.hierarchy import MemoryHierarchy
from repro.transform import journal
from repro.transform.elementary import signed_permutations
from repro.transform.legality import is_legal, ordering_distances
from repro.transform.tiling import (
    _point_data,
    is_fully_permutable,
    tile_footprints,
)


@dataclass(frozen=True)
class HierarchyPlan:
    """One feasible configuration and its modeled cost.

    ``placement`` maps each array to a tier index (0 = fastest);
    ``access_energy_pj`` charges every reference at its tier's energy,
    ``traffic_energy_pj`` charges the whole-execution DMA volume at the
    backing-store energy.
    """

    transformation: IntMatrix | None
    tile: tuple[int, ...]
    placement: tuple[tuple[str, int], ...]
    access_energy_pj: float
    traffic_energy_pj: float
    fetch_words: int
    writeback_words: int

    @property
    def energy_pj(self) -> float:
        return self.access_energy_pj + self.traffic_energy_pj

    @property
    def offchip_words(self) -> int:
        """DMA words moved over the backing bus, both directions."""
        return self.fetch_words + self.writeback_words

    @property
    def placement_map(self) -> dict[str, int]:
        return dict(self.placement)

    def describe(self, hierarchy: MemoryHierarchy) -> str:
        tiers = ", ".join(
            f"{array}->{hierarchy.tiers[k].name}" for array, k in self.placement
        )
        t = "native" if self.transformation is None else str(self.transformation.rows)
        return f"T={t} tile={self.tile} [{tiers}] E={self.energy_pj:.0f}pJ"


@dataclass(frozen=True)
class HierarchySearchResult:
    """Outcome of one joint hierarchy search.

    ``best`` ranges over every placement; ``flat`` restricts placements
    to tier 1 only — the paper's single-buffer tiling evaluated under
    the *same* cost model, so ``best.energy_pj <= flat.energy_pj``
    always (the flat space is a subset of the joint space).
    ``floor_energy_pj`` is the admissible certified floor; when
    ``best.energy_pj`` equals it the plan is provably optimal for the
    model.  ``bound_words`` is the phase-refined transfer bound at the
    stack's total capacity under the winner's order.
    """

    program: str
    hierarchy: str
    best: HierarchyPlan
    flat: HierarchyPlan
    floor_energy_pj: float
    bound_words: int
    configs: int
    evaluated: int
    pruned: int
    method: str

    @property
    def savings_pct(self) -> float:
        """Energy saved by the joint plan relative to the flat plan."""
        if self.flat.energy_pj == 0:
            return 0.0
        return 100.0 * (1.0 - self.best.energy_pj / self.flat.energy_pj)


def _stream(
    program: Program, transformation: IntMatrix | None
) -> list[tuple[tuple, bool]]:
    """The :func:`repro.memory.scratchpad.access_stream` trace, built
    from the tile machinery's cached per-point data so the search's
    bound evaluations do not recompute every reference's elements."""
    transformed, _origin, per_ref = _point_data(program, transformation)
    if transformation is None:
        order: "range | list[int]" = range(len(transformed))
    else:
        order = sorted(range(len(transformed)), key=transformed.__getitem__)
    return [
        ((array, elements[i]), is_write)
        for i in order
        for array, is_write, elements in per_ref
    ]


def _accesses_per_array(program: Program) -> dict[str, int]:
    iterations = math.prod(program.nest.trip_counts)
    counts: dict[str, int] = {}
    for ref in program.references:
        counts[ref.array] = counts.get(ref.array, 0) + 1
    return {array: n * iterations for array, n in counts.items()}


def default_candidates(program: Program) -> list[IntMatrix | None]:
    """Native order plus every legal signed permutation.

    Signed permutations are the Eisenbeis et al. space: cheap to
    enumerate at any depth, and interchanges are where tiling wins come
    from (skews are covered by passing explicit candidates).
    """
    distances: list[tuple[int, ...]] = []
    for array in program.arrays:
        if program.is_uniformly_generated(array):
            distances.extend(ordering_distances(program, array))
    identity = IntMatrix.identity(program.nest.depth).rows
    out: list[IntMatrix | None] = [None]
    for t in signed_permutations(program.nest.depth):
        if t.rows == identity:
            continue  # same order as None
        if is_legal(t, distances):
            out.append(t)
    return out


def tile_candidates(
    program: Program,
    transformation: IntMatrix | None = None,
    max_tile: int = 64,
) -> list[tuple[int, ...]]:
    """Tile shapes legal for this (transformed) nest.

    Fully permutable nests admit any rectangular tile: squares in
    doubling sizes (clipped per axis to the trip counts) plus the full
    iteration box (untiled).  Non-permutable nests keep only the two
    tiles that preserve execution order exactly — the unit tile and the
    full box.
    """
    trips = program.nest.trip_counts
    full = tuple(trips)
    if is_fully_permutable(program, transformation):
        sizes: list[int] = []
        s = 1
        while s <= min(max_tile, max(trips)):
            sizes.append(s)
            s *= 2
        candidates = [tuple(min(s, t) for t in trips) for s in sizes]
        candidates.append(full)
    else:
        candidates = [tuple(1 for _ in trips), full]
    seen: set[tuple[int, ...]] = set()
    out: list[tuple[int, ...]] = []
    for tile in candidates:
        if tile not in seen:
            seen.add(tile)
            out.append(tile)
    return out


# ----------------------------------------------------------------------
# persistent-store codec (kind "hierarchy")
# ----------------------------------------------------------------------

def _encode_plan(plan: HierarchyPlan) -> dict:
    return {
        "t": None if plan.transformation is None else plan.transformation.rows,
        "tile": list(plan.tile),
        "placement": [[a, k] for a, k in plan.placement],
        "access_pj": plan.access_energy_pj,
        "traffic_pj": plan.traffic_energy_pj,
        "fetch": plan.fetch_words,
        "writeback": plan.writeback_words,
    }


def _decode_plan(value: dict) -> HierarchyPlan:
    t = value["t"]
    return HierarchyPlan(
        transformation=None if t is None else IntMatrix(
            tuple(tuple(int(v) for v in row) for row in t)
        ),
        tile=tuple(int(v) for v in value["tile"]),
        placement=tuple((str(a), int(k)) for a, k in value["placement"]),
        access_energy_pj=float(value["access_pj"]),
        traffic_energy_pj=float(value["traffic_pj"]),
        fetch_words=int(value["fetch"]),
        writeback_words=int(value["writeback"]),
    )


def _encode_result(result: HierarchySearchResult) -> dict:
    return {
        "program": result.program,
        "hierarchy": result.hierarchy,
        "best": _encode_plan(result.best),
        "flat": _encode_plan(result.flat),
        "floor_pj": result.floor_energy_pj,
        "bound_words": result.bound_words,
        "configs": result.configs,
        "evaluated": result.evaluated,
        "pruned": result.pruned,
    }


def _decode_result(value) -> HierarchySearchResult | None:
    """Stored payload -> result; ``None`` (a miss) when it does not
    decode — corrupt records heal on the recompute's write."""
    try:
        return HierarchySearchResult(
            program=str(value["program"]),
            hierarchy=str(value["hierarchy"]),
            best=_decode_plan(value["best"]),
            flat=_decode_plan(value["flat"]),
            floor_energy_pj=float(value["floor_pj"]),
            bound_words=int(value["bound_words"]),
            configs=int(value["configs"]),
            evaluated=int(value["evaluated"]),
            pruned=int(value["pruned"]),
            method="store",
        )
    except (KeyError, TypeError, ValueError, IndexError):
        obs.counter("store.corrupt")
        return None


def _store_key(
    program: Program,
    hierarchy: MemoryHierarchy,
    candidates: list[IntMatrix | None],
    max_tile: int,
) -> dict:
    return {
        "sig": program.signature(),
        "hier": hierarchy.spec(),
        "cands": [None if t is None else t.rows for t in candidates],
        "max_tile": max_tile,
    }


# ----------------------------------------------------------------------
# the search
# ----------------------------------------------------------------------

def search_hierarchy(
    program: Program,
    hierarchy: MemoryHierarchy,
    candidates: list[IntMatrix | None] | None = None,
    max_tile: int = 64,
    prune: bool = True,
    store=None,
) -> HierarchySearchResult:
    """Search (transformation, tile, placement) for the cheapest plan.

    ``candidates`` defaults to :func:`default_candidates`; pass
    ``[None]`` to keep the native order (the benchmark does).  With
    ``prune=False`` every feasible configuration is evaluated; the
    prunes are admissible, so the winner is identical either way.
    Passing ``store=`` persists the result under kind ``"hierarchy"``.
    """
    if candidates is None:
        candidates = default_candidates(program)
    if not candidates:
        raise ValueError("no candidate transformations")

    key = _store_key(program, hierarchy, candidates, max_tile)
    if store is not None and journal.active() is None:
        value = store.get("hierarchy", key)
        if value is not None:
            decoded = _decode_result(value)
            if decoded is not None:
                return decoded

    arrays = sorted(program.arrays)
    accesses = _accesses_per_array(program)
    tiers = hierarchy.tiers
    e_back = hierarchy.offchip_energy_pj
    e_min = tiers[0].energy_pj
    total_accesses = sum(accesses.values())
    jr = journal.active()

    # Order-invariant admissible floor: every distinct element crosses
    # the backing bus in at least once, every written element at least
    # once out, and no access can cost less than the fastest tier.
    obs.counter("search.hierarchy.lb_evals")
    floor_words = transfer_lower_bound(
        program, capacity=1 << 62, stream=_stream(program, None)
    )
    floor_energy = total_accesses * e_min + floor_words * e_back

    best: HierarchyPlan | None = None
    flat: HierarchyPlan | None = None
    configs = evaluated = pruned = 0

    def consider(plan: HierarchyPlan, is_flat: bool) -> None:
        nonlocal best, flat
        if best is None or plan.energy_pj < best.energy_pj:
            best = plan
        if is_flat and (flat is None or plan.energy_pj < flat.energy_pj):
            flat = plan

    for t in candidates:
        # Floor prune: the incumbent already meets the certified floor,
        # so no remaining configuration can strictly improve on it.  The
        # flat incumbent must meet it too, or a flat-only improvement
        # could still be missed.
        if (
            prune
            and best is not None
            and flat is not None
            and best.energy_pj <= floor_energy
            and flat.energy_pj <= floor_energy
        ):
            obs.counter("search.hierarchy.pruned")
            pruned += 1
            if jr is not None:
                jr.record(
                    "hierarchy",
                    None if t is None else t.rows,
                    "pruned",
                    reason="hierarchy_floor: incumbent at certified floor",
                    estimate=int(floor_energy),
                )
            continue
        best_for_t: HierarchyPlan | None = None
        for tile in tile_candidates(program, t, max_tile):
            fp = tile_footprints(program, tile, t)
            fetch = sum(fp.fetch_words.values())
            writeback = sum(fp.writeback_words.values())
            traffic_energy = (fetch + writeback) * e_back
            # The all-in-tier-1 placement is both the flat baseline and
            # the cheapest-access placement; evaluate it first so the
            # placement prune below can never hide a flat improvement.
            flat_placement = tuple((a, 0) for a in arrays)
            flat_used = sum(fp.per_array[a] for a in arrays)
            configs += 1
            if flat_used <= tiers[0].capacity_words:
                evaluated += 1
                obs.counter("search.hierarchy.evaluated")
                plan = HierarchyPlan(
                    transformation=t,
                    tile=tile,
                    placement=flat_placement,
                    access_energy_pj=total_accesses * e_min,
                    traffic_energy_pj=traffic_energy,
                    fetch_words=fetch,
                    writeback_words=writeback,
                )
                consider(plan, is_flat=True)
                if best_for_t is None or plan.energy_pj < best_for_t.energy_pj:
                    best_for_t = plan
            # Placement prune: DMA energy is fixed for this tile; if the
            # cheapest conceivable access energy cannot beat the
            # incumbent, skip the placement enumeration.
            lb_tile = total_accesses * e_min + traffic_energy
            if prune and best is not None and lb_tile >= best.energy_pj:
                obs.counter("search.hierarchy.pruned")
                pruned += 1
                if jr is not None:
                    jr.record(
                        "hierarchy",
                        (None if t is None else t.rows, tile),
                        "pruned",
                        reason="hierarchy_tile_lb: DMA volume alone loses",
                        estimate=int(lb_tile),
                    )
                continue
            for placement in itertools.product(range(len(tiers)), repeat=len(arrays)):
                if all(k == 0 for k in placement):
                    continue  # already evaluated as the flat baseline
                configs += 1
                feasible = True
                for k, tier in enumerate(tiers):
                    used = sum(
                        fp.per_array[a]
                        for a, tk in zip(arrays, placement)
                        if tk == k
                    )
                    if used > tier.capacity_words:
                        feasible = False
                        break
                if not feasible:
                    continue
                evaluated += 1
                obs.counter("search.hierarchy.evaluated")
                access_energy = sum(
                    accesses[a] * tiers[k].energy_pj
                    for a, k in zip(arrays, placement)
                )
                plan = HierarchyPlan(
                    transformation=t,
                    tile=tile,
                    placement=tuple(zip(arrays, placement)),
                    access_energy_pj=access_energy,
                    traffic_energy_pj=traffic_energy,
                    fetch_words=fetch,
                    writeback_words=writeback,
                )
                consider(plan, is_flat=False)
                if best_for_t is None or plan.energy_pj < best_for_t.energy_pj:
                    best_for_t = plan
        if jr is not None and best_for_t is not None:
            jr.record(
                "hierarchy",
                None if t is None else t.rows,
                "computed",
                estimate=int(floor_energy),
                exact=int(best_for_t.energy_pj),
            )
    obs.counter("search.hierarchy.configs", configs)

    if best is None or flat is None:
        raise ValueError(
            f"{program.name}: no feasible plan — even the unit tile "
            f"overflows the hierarchy {hierarchy.name!r}"
        )
    obs.counter("search.hierarchy.lb_evals")
    bound_words = transfer_lower_bound(
        program,
        hierarchy.total_capacity,
        stream=_stream(program, best.transformation),
    )
    result = HierarchySearchResult(
        program=program.name,
        hierarchy=hierarchy.name,
        best=best,
        flat=flat,
        floor_energy_pj=floor_energy,
        bound_words=bound_words,
        configs=configs,
        evaluated=evaluated,
        pruned=pruned,
        method="cascade" if prune else "exhaustive",
    )
    if store is not None and journal.active() is None:
        store.put("hierarchy", key, _encode_result(result))
    return result
