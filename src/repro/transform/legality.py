"""Legality and tileability of unimodular transformations.

A transformation ``T`` is *legal* when every order-constraining dependence
distance ``d`` stays lexicographically positive after transformation
(``T @ d`` lex-positive) — the transformed nest then executes sources
before sinks.  It is *tileable* (paper Section 4, after Irigoin & Triolet)
when ``T @ d >= 0`` componentwise — every loop of the transformed nest
carries all dependences forward, so rectangular blocks of iterations can
execute atomically.  Tileability implies legality for nonzero distances.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.dependence.analysis import Dependence
from repro.dependence.distance import is_lex_positive
from repro.ir.program import Program
from repro.linalg import IntMatrix


def transformed_distances(
    transformation: IntMatrix, distances: Iterable[Sequence[int]]
) -> list[tuple[int, ...]]:
    """Apply ``T`` to each distance vector (``T @ d``)."""
    return [transformation.apply(d) for d in distances]


def is_legal(
    transformation: IntMatrix, distances: Iterable[Sequence[int]]
) -> bool:
    """All transformed distances lexicographically positive.

    >>> is_legal(IntMatrix([[0, 1], [1, 0]]), [(1, 0)])
    True
    >>> is_legal(IntMatrix([[1, 0], [0, -1]]), [(0, 1)])
    False
    """
    return all(
        is_lex_positive(transformation.apply(d)) for d in distances
    )


def is_tileable(
    transformation: IntMatrix, distances: Iterable[Sequence[int]]
) -> bool:
    """All transformed distance components non-negative (``T d >= 0``).

    >>> is_tileable(IntMatrix([[2, 3], [1, 1]]), [(3, -2), (2, 0), (5, -2)])
    True
    """
    for d in distances:
        if any(component < 0 for component in transformation.apply(d)):
            return False
    return True


#: ``(signature, array, kind/flags)`` -> distance vectors.  Dependence
#: analysis is pure in the program, and the search re-derives the same
#: distance sets for every candidate batch (and in every pool worker the
#: program is re-pickled into), so a content-hash memo pays for itself
#: immediately.  Bounded: dropped wholesale past the cap.
_DISTANCE_CACHE: dict[tuple, tuple[tuple[int, ...], ...]] = {}
_DISTANCE_CACHE_LIMIT = 512


def clear_distance_cache() -> None:
    """Drop memoized dependence-distance sets (tests)."""
    _DISTANCE_CACHE.clear()


def _distance_memo(key: tuple, compute) -> list[tuple[int, ...]]:
    cached = _DISTANCE_CACHE.get(key)
    if cached is None:
        cached = tuple(compute())
        if len(_DISTANCE_CACHE) >= _DISTANCE_CACHE_LIMIT:
            _DISTANCE_CACHE.clear()
        _DISTANCE_CACHE[key] = cached
    return list(cached)


def ordering_distances(
    program: Program,
    array: str | None = None,
    reductions_reorderable: bool = True,
) -> list[tuple[int, ...]]:
    """Distance vectors that constrain ordering (flow/anti/output).

    Input (read-read) dependences impose no ordering; the paper's legality
    constraints in Example 8 use exactly the flow, anti and output
    distances.  Dependences among scalar-in-nest accumulators are
    reduction updates and are excluded unless ``reductions_reorderable``
    is False.  ``array=None`` collects over all uniformly generated
    arrays.
    """
    from repro.dependence.analysis import array_dependences

    def compute() -> list[tuple[int, ...]]:
        arrays = [array] if array is not None else [
            a for a in program.arrays if program.is_uniformly_generated(a)
        ]
        seen: dict[tuple[int, ...], None] = {}
        for name in arrays:
            if not program.is_uniformly_generated(name):
                raise ValueError(f"{name}: non-uniform references")
            for dep in array_dependences(program, name, include_input=True):
                if not dep.kind.constrains_order:
                    continue
                if reductions_reorderable and dep.reduction:
                    continue
                seen.setdefault(dep.distance, None)
        return list(seen)

    key = (program.signature(), array, reductions_reorderable, "ordering")
    return _distance_memo(key, compute)


def reuse_distances(program: Program, array: str | None = None) -> list[tuple[int, ...]]:
    """All reuse distances (including input dependences) — what the window
    optimization must push to inner levels."""
    from repro.dependence.analysis import array_distance_vectors

    def compute() -> list[tuple[int, ...]]:
        arrays = [array] if array is not None else [
            a for a in program.arrays if program.is_uniformly_generated(a)
        ]
        seen: dict[tuple[int, ...], None] = {}
        for name in arrays:
            for d in array_distance_vectors(program, name, include_input=True):
                seen.setdefault(d, None)
        return list(seen)

    key = (program.signature(), array, "reuse")
    return _distance_memo(key, compute)
