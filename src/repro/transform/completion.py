"""Completion of partial transformations to legal unimodular matrices.

Section 4.2: the search chooses the first row ``(a, b)`` of ``T``; the
remaining row ``(c, d)`` must satisfy ``a*d - b*c = 1`` (unimodularity)
and the tiling constraints ``c*d_i1 + d*d_i2 >= 0`` for every dependence
distance.  With ``ext_gcd`` giving one solution, the full solution line is
``(c0 + t*a, d0 + t*b)`` and the constraints become one-sided bounds on
``t`` — solvable exactly.  Example 8's ``(a, b) = (2, 3)`` completes to
``(c, d) = (1, 2)`` as the paper states.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.linalg import IntMatrix, complete_unimodular, ext_gcd
from repro.linalg.gcd import ceil_div


def complete_first_row_2d(
    a: int, b: int, distances: Sequence[Sequence[int]]
) -> IntMatrix | None:
    """Complete ``(a, b)`` to a tileable unimodular ``[[a, b], [c, d]]``.

    Both determinant signs are tried: a distance with ``a*d1 + b*d2 == 0``
    pins the sign of the second-row dot product, and only one of the two
    solution families can satisfy it.  (Paper Example 8: ``(a, b) =
    (2, 3)`` with distances ``(3,-2), (2,0), (5,-2)`` completes only with
    ``det = -1``, giving ``(c, d) = (1, 1)``; the printed ``(1, 2)``
    violates the paper's own constraint ``3c - 2d >= 0``.)

    Returns None when ``gcd(a, b) != 1`` or no ``(c, d)`` satisfies the
    tiling constraints.  The feasible ``t`` closest to zero is chosen, so
    entries stay small.

    >>> complete_first_row_2d(2, 3, [(3, -2), (2, 0), (5, -2)])
    IntMatrix([[2, 3], [1, 1]])
    """
    g, x, y = ext_gcd(a, b)
    if g != 1:
        return None
    for det_sign in (1, -1):
        # a*d - b*c = det_sign; base solution from a*x + b*y = 1.
        d0, c0 = det_sign * x, -det_sign * y
        # Solution family: (c, d) = (c0 + t*a, d0 + t*b).
        t_lower: int | None = None
        feasible = True
        for dist in distances:
            d1, d2 = dist
            slope = a * d1 + b * d2  # also the first-row tiling dot
            base = c0 * d1 + d0 * d2
            if slope > 0:
                bound = ceil_div(-base, slope)
                t_lower = bound if t_lower is None else max(t_lower, bound)
            elif slope == 0 and base < 0:
                feasible = False
                break
            elif slope < 0:
                # First row itself violates tiling for this distance.
                return None
        if not feasible:
            continue
        t = max(0, t_lower) if t_lower is not None else 0
        c, d = c0 + t * a, d0 + t * b
        result = IntMatrix([[a, b], [c, d]])
        assert result.det() == det_sign
        return result
    return None


def complete_rows_legal(
    rows: Sequence[Sequence[int]],
    distances: Sequence[Sequence[int]],
) -> IntMatrix | None:
    """Complete ``rows`` to an ``n x n`` unimodular matrix whose transformed
    distances are all non-negative (tileable), or None.

    Strategy: extend with :func:`complete_unimodular`, then fix any
    negative dot products in the appended rows by adding multiples of
    earlier rows with positive dots (which leaves the determinant
    unchanged).  Not complete in general — a full integer-programming
    completion is outside the paper's scope — but covers the paper's 2-D
    and 3-D constructions.
    """
    try:
        candidate = complete_unimodular(rows)
    except ValueError:
        return None
    n = candidate.n_rows
    matrix = candidate.to_lists()
    dists = [tuple(d) for d in distances]
    for row_index in range(len(rows), n):
        for dist in dists:
            dot = sum(matrix[row_index][k] * dist[k] for k in range(n))
            if dot >= 0:
                continue
            fixed = False
            helper_dots = [
                sum(matrix[helper][k] * dist[k] for k in range(n))
                for helper in range(row_index)
            ]
            for helper, helper_dot in enumerate(helper_dots):
                if helper_dot > 0:
                    mult = ceil_div(-dot, helper_dot)
                    matrix[row_index] = [
                        x + mult * y
                        for x, y in zip(matrix[row_index], matrix[helper])
                    ]
                    fixed = True
                    break
            if not fixed and all(hd == 0 for hd in helper_dots):
                # Every leading row annihilates this distance, so negating
                # the offending row flips its dot without disturbing the
                # leading rows' constraints (determinant stays +-1).
                matrix[row_index] = [-x for x in matrix[row_index]]
                fixed = True
            if not fixed:
                return None
    result = IntMatrix(matrix)
    # Re-check every constraint (fixing one distance can disturb another).
    for dist in dists:
        if any(v < 0 for v in result.apply(dist)):
            return None
    if result.det() not in (1, -1):
        return None
    return result
