"""Loop distribution (fission) — the inverse of fusion.

Splitting a multi-statement nest into per-statement nests shrinks each
nest's instruction footprint and enables per-nest transformations, at the
price of materializing inter-nest buffers (the exact trade
:mod:`repro.transform.fusion` measures from the other side).

Legality: statements must be partitioned so that every cross-partition
dependence flows forward (from an earlier nest to a later one).  A
*backward* dependence — statement ``S2`` producing what ``S1`` consumes
at a lexicographically earlier iteration — forms a cycle with any forward
dependence between the same pair and forces the statements to stay
together.  The standard algorithm groups statements by the strongly
connected components of the statement dependence graph and emits them in
topological order.
"""

from __future__ import annotations

import networkx as nx

from repro.ir.program import Program
from repro.ir.sequence import ProgramSequence


def statement_dependence_graph(program: Program) -> nx.DiGraph:
    """Statement-level graph with loop-carried and loop-independent edges.

    Edge ``S -> T`` means some instance of ``T`` depends on an earlier-or-
    equal instance of ``S`` (flow/anti/output; input reuse imposes
    nothing).  Loop-independent (same-iteration) dependences follow
    textual order.
    """
    from repro.dependence.analysis import dependence_distance

    graph = nx.DiGraph()
    order = {stmt.label: k for k, stmt in enumerate(program.statements)}
    for stmt in program.statements:
        graph.add_node(stmt.label)
    for src_stmt in program.statements:
        for dst_stmt in program.statements:
            for src in src_stmt.references:
                for dst in dst_stmt.references:
                    if src.array != dst.array:
                        continue
                    if not (src.is_write or dst.is_write):
                        continue
                    if not src.uniformly_generated_with(dst):
                        # Conservative: unknown distance, assume both ways.
                        graph.add_edge(src_stmt.label, dst_stmt.label)
                        graph.add_edge(dst_stmt.label, src_stmt.label)
                        continue
                    if src.offset == dst.offset:
                        # Same element, same iteration: textual order...
                        if order[src_stmt.label] < order[dst_stmt.label]:
                            graph.add_edge(src_stmt.label, dst_stmt.label)
                        elif order[src_stmt.label] > order[dst_stmt.label]:
                            graph.add_edge(dst_stmt.label, src_stmt.label)
                        # ...and, when the access matrix is singular, the
                        # same element is revisited at later iterations
                        # (kernel direction), carrying dependences both
                        # ways between the statements.
                        from repro.dependence.analysis import self_reuse_distance

                        if self_reuse_distance(src) is not None:
                            graph.add_edge(src_stmt.label, dst_stmt.label)
                            graph.add_edge(dst_stmt.label, src_stmt.label)
                        continue
                    d = dependence_distance(src, dst)
                    if d is not None and any(v != 0 for v in d):
                        graph.add_edge(src_stmt.label, dst_stmt.label)
    return graph


def distribute(program: Program) -> ProgramSequence:
    """Split a nest into the finest legal sequence of sub-nests.

    Statements in one strongly connected component stay together; the
    components are emitted in a topological order consistent with the
    textual order (stable for independent components).

    >>> from repro.ir import parse_program
    >>> p = parse_program('''
    ... for i = 1 to 9 {
    ...   S1: T[i] = A[i]
    ...   S2: B[i] = T[i] + T[i-1]
    ... }
    ... ''', name="pair")
    >>> [len(nest.statements) for nest in distribute(p).programs]
    [1, 1]
    """
    graph = statement_dependence_graph(program)
    condensed = nx.condensation(graph)
    order = {stmt.label: k for k, stmt in enumerate(program.statements)}
    # Topological order of components, tie-broken by textual position.
    component_key = {
        node: min(order[label] for label in data["members"])
        for node, data in condensed.nodes(data=True)
    }
    topo = list(
        nx.lexicographical_topological_sort(condensed, key=lambda n: component_key[n])
    )

    by_label = {stmt.label: stmt for stmt in program.statements}
    nests = []
    for index, node in enumerate(topo):
        members = sorted(condensed.nodes[node]["members"], key=order.get)
        statements = [by_label[label] for label in members]
        decls = [
            decl
            for decl in program.decls
            if any(decl.name in stmt.arrays for stmt in statements)
        ]
        nests.append(
            Program(
                program.nest,
                statements,
                decls,
                name=f"{program.name}_part{index + 1}",
            )
        )
    return ProgramSequence(nests, name=f"{program.name}_distributed")


def is_distribution_legal(program: Program) -> bool:
    """Can the nest be split at all (more than one component)?"""
    graph = statement_dependence_graph(program)
    return nx.number_strongly_connected_components(graph) > 1 or len(
        program.statements
    ) == 1
