"""Modulo window allocation: turning an MWS number into a real buffer.

The paper establishes that only MWS elements of an array are live at
once; an embedded implementation still needs an *addressing scheme* that
folds the array into a buffer of that size.  The classic scheme (De
Greef / Catthoor; Lefebvre-Feautrier) indexes the buffer with the array
address modulo ``m``: valid iff no two simultaneously-live elements
collide modulo ``m``.  This module computes the smallest valid modulus
for a (possibly transformed) nest by exact lifetime analysis and rewrites
the program to use the folded buffer.

``MWS <= m_min`` always; the gap between them measures how much the
simple modulo scheme loses against an ideal (fully associative) buffer —
quantified in the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.program import Program
from repro.layout.layouts import Layout, RowMajorLayout
from repro.linalg import IntMatrix
from repro.window.simulator import element_lifetimes


@dataclass(frozen=True)
class ModuloAllocation:
    """Result of window allocation for one array."""

    array: str
    modulus: int
    mws: int
    declared: int

    @property
    def overhead(self) -> float:
        """Slack of the modulo scheme over the ideal window (>= 0)."""
        if self.mws == 0:
            return 0.0
        return self.modulus / self.mws - 1.0

    @property
    def saving_vs_declared(self) -> float:
        if self.declared == 0:
            return 0.0
        return 1.0 - self.modulus / self.declared


def _address_lifetimes(
    program: Program,
    array: str,
    layout: Layout,
    transformation: IntMatrix | None,
) -> list[tuple[int, int, int]]:
    """(address, first, last) per touched element."""
    decl = program.decl(array)
    out = []
    for element, (first, last) in element_lifetimes(
        program, array, transformation
    ).items():
        out.append((layout.address(decl, element), first, last))
    return out


def modulo_is_valid(
    lifetimes: list[tuple[int, int, int]], modulus: int
) -> bool:
    """No two elements with overlapping live ranges share a residue.

    Live range here must *include* the access endpoints: two elements
    touched at the same iteration cannot share a buffer slot even if
    neither is reused, so validity uses closed intervals ``[first, last]``
    (slightly stronger than the half-open window count).
    """
    last_seen: dict[int, int] = {}
    for address, first, last in sorted(lifetimes, key=lambda t: t[1]):
        residue = address % modulus
        previous_last = last_seen.get(residue)
        if previous_last is not None and first <= previous_last:
            return False
        last_seen[residue] = max(last, previous_last or last)
    return True


def allocate_window(
    program: Program,
    array: str,
    transformation: IntMatrix | None = None,
    layout: Layout | None = None,
    search_limit: int | None = None,
) -> ModuloAllocation:
    """Smallest modulus folding the array into a conflict-free buffer.

    Exact: scans moduli upward from the peak *closed-interval* live count
    (a lower bound on any valid modulus) until validity holds; the
    declared size is always valid, so the search terminates.

    >>> from repro.ir import parse_program
    >>> p = parse_program('''
    ... for i = 1 to 9 {
    ...   B[0] = A[i] + A[i-1]
    ... }
    ... ''')
    >>> allocate_window(p, "A").modulus
    2
    """
    layout = layout or RowMajorLayout()
    lifetimes = _address_lifetimes(program, array, layout, transformation)
    if not lifetimes:
        raise KeyError(array)
    declared = program.decl(array).declared_size

    # Peak closed-interval live count: lower bound for any modulus.
    events: dict[int, int] = {}
    for _, first, last in lifetimes:
        events[first] = events.get(first, 0) + 1
        events[last + 1] = events.get(last + 1, 0) - 1
    peak = current = 0
    for t in sorted(events):
        current += events[t]
        peak = max(peak, current)

    from repro.window.simulator import max_window_size

    mws = max_window_size(program, array, transformation)
    limit = search_limit if search_limit is not None else declared
    modulus = max(1, peak)
    while modulus < limit:
        if modulo_is_valid(lifetimes, modulus):
            break
        modulus += 1
    else:
        modulus = min(limit, declared)
    return ModuloAllocation(array, modulus, mws, declared)


def rewrite_with_buffer(
    program: Program,
    array: str,
    allocation: ModuloAllocation,
    layout: Layout | None = None,
) -> str:
    """Emit source where ``array`` is replaced by a folded buffer.

    The rewritten reference is ``<array>_buf[(<address expr>) % m]``;
    only arrays with affine layouts (row/column major) yield affine
    address expressions.  Returned as text (the modulo operation leaves
    the pure-affine IR, so this is a codegen-level transform).
    """
    from repro.ir.codegen import generate_source

    layout = layout or RowMajorLayout()
    decl = program.decl(array)
    strides = layout.strides(decl)  # type: ignore[attr-defined]
    source = generate_source(program)
    names = program.nest.index_names
    lines = []
    for line in source.splitlines():
        if line.startswith("array ") and f" {array}" in f" {line[6:]}":
            lines.append(f"array {array}_buf[{allocation.modulus}]")
            continue
        lines.append(line)
    text = "\n".join(lines) + "\n"
    # Rewrite each reference textually via the IR (exact, not regex).
    for ref in program.refs_to(array):
        subs = ref.subscript_strings(names)
        original = f"{array}[" + "][".join(subs) + "]"
        # Affine address: sum stride_k * (subscript_k - origin_k).
        terms = []
        for stride, sub, origin in zip(strides, subs, decl.origins):
            expr = f"({sub} - {origin})" if origin else f"({sub})"
            terms.append(f"{stride}*{expr}" if stride != 1 else expr)
        address = " + ".join(terms)
        replacement = f"{array}_buf[({address}) % {allocation.modulus}]"
        text = text.replace(original, replacement)
    return text
