"""Baseline: Eisenbeis et al. — interchange and reversal only.

The paper's Example 7 comparison point: the window-minimization strategy
of Eisenbeis, Jalby, Windheiser and Bodin searches only loop interchange
and reversal (the signed permutations), which cannot align the iteration
order with a skewed reuse direction.  Our compound search beats it by
orders of magnitude on such loops (89 -> 36 vs. -> 1 in Example 7).
"""

from __future__ import annotations

from repro.ir.program import Program
from repro.transform.elementary import signed_permutations
from repro.transform.legality import is_legal, ordering_distances
from repro.transform.search import SearchResult
from repro.window.simulator import max_window_size


def eisenbeis_search(program: Program, array: str) -> SearchResult:
    """Best legal signed permutation by exact window size.

    Tiling is not enforced — the original strategy predates tiling-aware
    legality and simply requires dependence preservation.
    """
    order_dists = ordering_distances(program, array)
    best = None
    examined = 0
    for t in signed_permutations(program.nest.depth):
        examined += 1
        if not is_legal(t, order_dists):
            continue
        exact = max_window_size(program, array, t)
        if best is None or exact < best[0]:
            best = (exact, t)
    exact, t = best
    return SearchResult(array, t, exact, exact, examined, "eisenbeis")
