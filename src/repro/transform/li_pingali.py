"""Baseline: Li & Pingali's access-matrix completion.

Li & Pingali derive a partial transformation whose leading rows are the
subscript functions of the array accesses (offsets dropped) and complete
it to a unimodular matrix.  This exploits reuse from input and output
dependences, but — as the paper's Example 8 shows — the required first row
(``(2, 5)`` or ``(-2, 5)`` there) can be illegal against flow or anti
dependences, in which case no completion exists and the method returns
nothing while the paper's search still finds a window-shrinking matrix.
"""

from __future__ import annotations

from repro.dependence.distance import is_lex_positive
from repro.ir.program import Program
from repro.linalg import IntMatrix
from repro.linalg.nullspace import primitive_vector
from repro.transform.completion import complete_rows_legal
from repro.transform.legality import is_legal, ordering_distances


def li_pingali_transformation(
    program: Program, array: str
) -> IntMatrix | None:
    """The Li-Pingali matrix for ``array``, or None when illegal.

    Tries the primitive access row and its negation as the partial
    transformation (both orientations of the data access direction), then
    completes; every candidate must keep all ordering dependences legal.

    >>> from repro.ir import parse_program
    >>> p = parse_program('''
    ... for i = 1 to 25 {
    ...   for j = 1 to 10 {
    ...     X[2*i + 5*j + 1] = X[2*i + 5*j + 5]
    ...   }
    ... }
    ... ''')
    >>> li_pingali_transformation(p, "X") is None
    True
    """
    refs = program.refs_to(array)
    if not refs:
        raise KeyError(array)
    if not program.is_uniformly_generated(array):
        raise ValueError(f"{array}: non-uniform references")
    order_dists = ordering_distances(program, array)
    access = refs[0].access
    rows = [primitive_vector(access.row(k)) for k in range(access.n_rows)]
    n = program.nest.depth

    for orientation in (1, -1):
        oriented = [tuple(orientation * v for v in row) for row in rows]
        # The partial transformation is legal iff every ordering distance
        # keeps a lex-positive prefix: the leading rows' dot products must
        # not make any distance lex-negative before completion.
        if any(
            _prefix_lex_negative([sum(r * d for r, d in zip(row, dist)) for row in oriented])
            for dist in order_dists
        ):
            continue
        completed = complete_rows_legal(oriented[: n - 1] if len(oriented) >= n else oriented, order_dists)
        if completed is None:
            # Completion may still exist without the tiling requirement;
            # fall back to a plain unimodular completion + legality check.
            from repro.linalg import complete_unimodular

            try:
                completed = complete_unimodular(oriented[: min(len(oriented), n - 1)] or oriented)
            except ValueError:
                continue
        if completed is not None and is_legal(completed, order_dists):
            return completed
    return None


def _prefix_lex_negative(prefix: list[int]) -> bool:
    """True when the computed leading components already force
    lex-negativity (first nonzero is negative)."""
    for v in prefix:
        if v != 0:
            return v < 0
    return False
