"""Section 4: unimodular loop transformations minimizing the window size.

``legality`` and ``tileability`` predicates, elementary transformation
generators, completion of a partial first row to a full legal unimodular
matrix, the MWS-minimizing search, and the two baselines the paper
compares against (Eisenbeis et al.'s interchange+reversal search and Li &
Pingali's access-matrix completion).
"""

from repro.transform.legality import (
    is_legal,
    is_tileable,
    transformed_distances,
)
from repro.transform.elementary import (
    interchange,
    reversal,
    signed_permutations,
    skew,
)
from repro.transform.completion import (
    complete_first_row_2d,
    complete_rows_legal,
)
from repro.transform import journal
from repro.transform.journal import CandidateRecord, SearchJournal
from repro.transform.search import (
    CascadeOutcome,
    SearchResult,
    clear_search_cache,
    evaluate_cascade,
    evaluate_exact,
    exhaustive_search,
    search_best_transformation,
    search_mws_2d,
    search_mws_2d_eager,
    search_mws_3d,
)
from repro.transform.eisenbeis import eisenbeis_search
from repro.transform.li_pingali import li_pingali_transformation
from repro.transform.distribution import (
    distribute,
    is_distribution_legal,
    statement_dependence_graph,
)
from repro.transform.fusion import (
    FusionError,
    can_fuse,
    fuse,
    fusion_memory_report,
)
from repro.transform.window_allocation import (
    ModuloAllocation,
    allocate_window,
    modulo_is_valid,
    rewrite_with_buffer,
)
from repro.transform.tiling import (
    is_fully_permutable,
    TileFootprints,
    pick_tile_size,
    tile_footprint,
    tile_footprints,
)
from repro.transform.hierarchy_search import (
    HierarchyPlan,
    HierarchySearchResult,
    default_candidates,
    search_hierarchy,
    tile_candidates,
)

__all__ = [
    "is_legal",
    "is_tileable",
    "transformed_distances",
    "interchange",
    "reversal",
    "skew",
    "signed_permutations",
    "complete_first_row_2d",
    "complete_rows_legal",
    "journal",
    "CandidateRecord",
    "SearchJournal",
    "CascadeOutcome",
    "SearchResult",
    "clear_search_cache",
    "evaluate_cascade",
    "evaluate_exact",
    "search_mws_2d",
    "search_mws_2d_eager",
    "search_mws_3d",
    "search_best_transformation",
    "exhaustive_search",
    "eisenbeis_search",
    "li_pingali_transformation",
    "distribute",
    "is_distribution_legal",
    "statement_dependence_graph",
    "FusionError",
    "can_fuse",
    "fuse",
    "fusion_memory_report",
    "ModuloAllocation",
    "allocate_window",
    "modulo_is_valid",
    "rewrite_with_buffer",
    "is_fully_permutable",
    "TileFootprints",
    "pick_tile_size",
    "tile_footprint",
    "tile_footprints",
    "HierarchyPlan",
    "HierarchySearchResult",
    "default_candidates",
    "search_hierarchy",
    "tile_candidates",
]
