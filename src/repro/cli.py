"""Command-line interface.

::

    python -m repro analyze loop.txt        # footprints + exact windows
    python -m repro dependences loop.txt    # distance vectors, kinds, levels
    python -m repro optimize loop.txt --codegen
    python -m repro size loop.txt           # provision an on-chip buffer
    python -m repro buffer loop.txt         # modulo window allocation + codegen
    python -m repro distribute loop.txt     # legal loop fission
    python -m repro viz loop.txt            # reuse region / window profile art
    python -m repro figure2 [--kernel sor]  # regenerate the paper's table
    python -m repro param sor --sizes 32x32,64x64
                                            # closed forms in the loop bounds
    python -m repro bench --chunk-sweep     # streaming-engine chunk sweep
    python -m repro check --seeds 500       # fuzz the conformance oracles
    python -m repro check --replay f.json   # replay one corpus counterexample
    python -m repro batch manifest.json     # batch-evaluate a manifest
    python -m repro runs list               # run ledger: every recorded run
    python -m repro runs diff last~1 last   # why do two runs differ?
    python -m repro tail <run>              # live heartbeat view of a run
    python -m repro bench-trend DIR...      # trend-check a BENCH_* trajectory

Global flags (before the subcommand):

    --workers N        parallelize candidate evaluation over N processes
    --engine NAME      window engine: auto | reference | fast | streaming
                       | zhao_malik (auto picks fast or, past the dense
                       budget, streaming)
    --trace out.jsonl  record an observability trace; prints a span
                       summary on exit (see docs/observability.md)
    --store DIR        persist/reuse exact windows and search results in
                       a content-addressed store (default: the
                       REPRO_STORE_DIR environment variable, if set)

The input format is the small C-like syntax of :mod:`repro.ir.parser`
(see examples/ and README).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import obs
from repro.core import analyze_program, optimize_program
from repro.ir import generate_transformed_source, parse_program
from repro.ir.parser import ParseError
from repro.memory import size_memory_for_program


def _load(path: str, name: str | None = None):
    text = Path(path).read_text()
    program = parse_program(text, name=name or Path(path).stem)
    # Ledger provenance: every program a run touches, by content hash.
    obs.runctx.note_input(program.name, program.signature())
    return program


def _cmd_analyze(args: argparse.Namespace) -> int:
    program = _load(args.file)
    print(analyze_program(program, engine=args.engine))
    return 0


def _cmd_dependences(args: argparse.Namespace) -> int:
    from repro.dependence import program_dependences

    program = _load(args.file)
    deps = program_dependences(program, include_input=not args.no_input)
    if not deps:
        print("no constant-distance dependences")
        return 0
    for dep in deps:
        tag = " (reduction)" if dep.reduction else ""
        print(
            f"{dep.kind.value:<7} {dep.array:<8} d={dep.distance} "
            f"level={dep.level}{tag}"
        )
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    program = _load(args.file)
    result = optimize_program(
        program, workers=args.workers, engine=args.engine,
        store=args.store_obj, parametric=args.parametric,
    )
    print(f"MWS before : {result.mws_before}")
    print(f"MWS after  : {result.mws_after}")
    print(f"reduction  : {100 * result.reduction:.1f}%")
    print("T =")
    print(result.transformation.pretty())
    if args.hierarchy:
        from repro.memory.hierarchy import preset
        from repro.transform.hierarchy_search import search_hierarchy

        hierarchy = preset(args.hierarchy)
        search = search_hierarchy(
            program,
            hierarchy,
            candidates=[None, result.transformation],
            store=args.store_obj,
        )
        print()
        print(f"hierarchy plan ({hierarchy.name}):")
        print(f"  joint : {search.best.describe(hierarchy)}")
        print(f"  flat  : {search.flat.describe(hierarchy)}")
        print(f"  saving: {search.savings_pct:.1f}% "
              f"(certified floor {search.floor_energy_pj:.0f} pJ)")
    if args.codegen:
        print()
        print(generate_transformed_source(program, result.transformation))
    return 0


def _cmd_hierarchy(args: argparse.Namespace) -> int:
    from repro.memory.hierarchy import preset
    from repro.memory.sizing import size_memory_for_hierarchy
    from repro.reporting import render_hierarchy_table
    from repro.transform.hierarchy_search import search_hierarchy

    if Path(args.target).exists():
        program = _load(args.target)
    else:
        from repro.kernels import kernel_by_name

        program = kernel_by_name(args.target).build()
    hierarchy = preset(args.preset)
    report = size_memory_for_hierarchy(
        program, hierarchy, policy=args.policy, engine=args.engine
    )
    needed = (
        "insufficient (capacity misses unavoidable)"
        if report.tiers_needed is None
        else f"{report.tiers_needed} of {hierarchy.depth}"
    )
    print(f"{program.name} through hierarchy {hierarchy.name!r}")
    print(f"maximum window size : {report.mws_words} words")
    print(f"tiers needed        : {needed}")
    print()
    print(render_hierarchy_table(report.stats))
    if not args.no_search:
        candidates = [None] if args.native else None
        search = search_hierarchy(
            program, hierarchy, candidates=candidates, store=args.store_obj
        )
        print()
        print("joint (transformation, tile, placement) search:")
        print(f"  joint : {search.best.describe(hierarchy)}")
        print(f"  flat  : {search.flat.describe(hierarchy)}")
        print(f"  saving: {search.savings_pct:.1f}%  "
              f"certified floor {search.floor_energy_pj:.0f} pJ  "
              f"offchip lower bound {search.bound_words} words")
        print(f"  configs {search.configs}  evaluated {search.evaluated}  "
              f"pruned {search.pruned}")
    return 0


def _cmd_size(args: argparse.Namespace) -> int:
    program = _load(args.file)
    transformation = None
    if args.optimized:
        transformation = optimize_program(
            program, workers=args.workers, engine=args.engine,
            store=args.store_obj,
        ).transformation
    report = size_memory_for_program(program, transformation, engine=args.engine)
    print(f"declared            : {report.declared_words} words")
    print(f"maximum window size : {report.mws_words} words")
    print(f"provisioned         : {report.provisioned_words} words")
    print(f"off-chip transfers  : {report.offchip_transfers}")
    print(f"memory reduction    : {100 * report.memory_reduction:.1f}%")
    print(
        f"energy/access       : {report.energy_per_access_pj:.2f} pJ "
        f"(naive {report.naive_energy_per_access_pj:.2f} pJ)"
    )
    return 0


def _cmd_buffer(args: argparse.Namespace) -> int:
    from repro.transform import allocate_window, rewrite_with_buffer
    from repro.transform.search import search_mws_2d, search_mws_3d

    program = _load(args.file)
    array = args.array or program.arrays[0]
    transformation = None
    if args.optimized:
        depth = program.nest.depth
        if depth == 2:
            transformation = search_mws_2d(
                program, array, workers=args.workers, store=args.store_obj
            ).transformation
        elif depth == 3:
            transformation = search_mws_3d(
                program, array, workers=args.workers, store=args.store_obj
            ).transformation
    alloc = allocate_window(program, array, transformation)
    print(f"array {array}: declared={alloc.declared} MWS={alloc.mws} "
          f"modulus={alloc.modulus} (overhead {100 * alloc.overhead:.0f}%)")
    if transformation is None:
        print()
        print(rewrite_with_buffer(program, array, alloc))
    return 0


def _cmd_distribute(args: argparse.Namespace) -> int:
    from repro.ir import generate_source
    from repro.transform import distribute

    program = _load(args.file)
    sequence = distribute(program)
    print(f"{len(sequence.programs)} nest(s) after distribution:")
    for part in sequence.programs:
        print()
        print(generate_source(part), end="")
    return 0


def _cmd_viz(args: argparse.Namespace) -> int:
    from repro.transform.legality import reuse_distances
    from repro.viz import render_profile_bars, render_reuse_region
    from repro.window import window_profile

    program = _load(args.file)
    array = args.array or program.arrays[0]
    if args.liveness:
        from repro.viz import render_liveness_profile
        from repro.window.fast import liveness_profile_fast

        print(render_liveness_profile(liveness_profile_fast(program, array)))
        return 0
    if program.nest.depth == 2:
        distances = reuse_distances(program, array) if program.is_uniformly_generated(array) else []
        if distances:
            print(f"reuse region of {array} for distance {distances[0]}:")
            print(render_reuse_region(program.nest, distances[0]))
            print()
    profile = window_profile(program, array)
    print(render_profile_bars(profile.sizes, title=f"window of {array} over time"))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.reporting import render_candidate_table, render_reconciliation
    from repro.transform import journal
    from repro.transform.search import search_best_transformation

    if Path(args.target).exists():
        program = _load(args.target)
    else:
        from repro.kernels import kernel_by_name

        program = kernel_by_name(args.target).build()
    array = args.array or program.arrays[0]
    observer = obs.get_observer()
    own_observer = observer is None
    if own_observer:
        observer = obs.enable()
    jr = journal.enable()
    try:
        result = search_best_transformation(
            program, array, bound=args.bound, workers=args.workers,
            engine=args.engine, store=args.store_obj,
        )
    finally:
        journal.disable()
        if own_observer:
            obs.disable()
    counters = observer.summary().get("counters", {})
    print(f"search for array {array} of {program.name} ({result.method}):")
    print(f"best: T={result.transformation.rows} "
          f"est={result.estimated_mws} exact={result.exact_mws}")
    print()
    print(render_candidate_table(jr))
    print()
    reconciliation, ok = render_reconciliation(jr, counters)
    print(reconciliation)
    return 0 if ok else 1


def _cmd_param(args: argparse.Namespace) -> int:
    from repro.estimation.parametric import resolve_parametric, with_trip_counts

    if Path(args.target).exists():
        program = _load(args.target)
    else:
        from repro.kernels import kernel_by_name

        program = kernel_by_name(args.target).build()
    arrays = [args.array] if args.array else list(program.arrays)
    depth = program.nest.depth
    sizes: list[tuple[int, ...]] = [program.nest.trip_counts]
    if args.sizes:
        sizes = []
        for chunk in args.sizes.split(","):
            trips = tuple(int(v) for v in chunk.lower().split("x"))
            if len(trips) != depth or any(t < 1 for t in trips):
                raise ValueError(
                    f"size {chunk!r} does not fit a depth-{depth} nest"
                )
            sizes.append(trips)
    status = 0
    for array in arrays:
        print(f"array {array}:")
        derived = {}
        for kind in ("mws", "distinct", "reuse"):
            pe = resolve_parametric(
                program, kind, array=array, store=args.store_obj,
                engine=args.engine,
            )
            derived[kind] = pe
            if pe is None:
                print(f"  {kind:<9}: no closed form (simulation fallback)")
            else:
                provenance = (
                    f"verified on {pe.checked} bound vectors"
                    if pe.checked else "exact by construction"
                )
                print(f"  {kind:<9}: {pe.expr}   "
                      f"[{pe.method}, domain N >= {pe.domain}, {provenance}]")
        header = f"  {'size':>14} {'mws':>10} {'distinct':>10}"
        print(header + ("   check" if args.check else ""))
        for trips in sizes:
            cells = []
            checks = []
            for kind in ("mws", "distinct"):
                pe = derived[kind]
                value = pe.substitute(trips) if pe is not None else None
                cells.append("-" if value is None else str(value))
                if args.check:
                    resized = with_trip_counts(program, trips)
                    if kind == "mws":
                        from repro.window.simulator import max_window_size

                        truth = max_window_size(
                            resized, array, engine=args.engine
                        )
                    else:
                        from repro.estimation.exact import (
                            exact_distinct_accesses,
                        )

                        truth = exact_distinct_accesses(resized, array)
                    if value is None:
                        checks.append(f"{kind}={truth}(sim)")
                    elif value == truth:
                        checks.append(f"{kind}=ok")
                    else:
                        checks.append(f"{kind}=MISMATCH({truth})")
                        status = 1
            label = "x".join(str(t) for t in trips)
            line = f"  {label:>14} {cells[0]:>10} {cells[1]:>10}"
            if args.check:
                line += "   " + " ".join(checks)
            print(line)
    return status


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    import json

    from repro.reporting import compare_artifacts, render_comparison

    old = json.loads(Path(args.old).read_text())
    new = json.loads(Path(args.new).read_text())
    comparison = compare_artifacts(old, new, threshold=args.threshold)
    print(render_comparison(comparison, verbose=args.verbose))
    return 0 if comparison.ok else 1


def _cmd_bench_trend(args: argparse.Namespace) -> int:
    import json

    from repro.reporting import compare_trajectory, render_trend

    paths: list[Path] = []
    for target in args.paths:
        path = Path(target)
        if path.is_dir():
            paths.extend(sorted(path.rglob("BENCH_*.json")))
        else:
            paths.append(path)
    by_bench: dict[str, list[dict]] = {}
    for path in paths:
        artifact = json.loads(path.read_text())
        name = str(artifact.get("bench", path.stem))
        by_bench.setdefault(name, []).append(artifact)
    if not by_bench:
        print("error: no BENCH_*.json artifacts found", file=sys.stderr)
        return 1
    status = 0
    for bench in sorted(by_bench):
        report = compare_trajectory(
            by_bench[bench], window=args.window, threshold=args.threshold
        )
        print(render_trend(report, verbose=args.verbose))
        if not report.ok:
            status = 1
    return status


def _resolve_sink_or_fail(args: argparse.Namespace):
    from repro.obs import ledger as obs_ledger

    sink = obs_ledger.resolve_sink(args.store_obj)
    if sink is None:
        print(
            "error: no run ledger (pass --store DIR or set "
            "REPRO_STORE_DIR / REPRO_LEDGER_DIR)",
            file=sys.stderr,
        )
    return sink


def _cmd_runs(args: argparse.Namespace) -> int:
    from repro.obs import flight
    from repro.obs import ledger as obs_ledger
    from repro.reporting import (
        diff_runs,
        render_run_diff,
        render_run_record,
        render_runs_table,
    )

    sink = _resolve_sink_or_fail(args)
    if sink is None:
        return 1
    if args.action == "list":
        print(render_runs_table(obs_ledger.list_runs(sink)))
        return 0
    if args.action == "show":
        record = obs_ledger.load_run(sink, args.run)
        if record is None:
            print(f"error: run {args.run!r} not found", file=sys.stderr)
            return 1
        print(render_run_record(record))
        return 0
    if args.action == "diff":
        record_a = obs_ledger.load_run(sink, args.run)
        record_b = obs_ledger.load_run(sink, args.run_b)
        if record_a is None or record_b is None:
            missing = args.run if record_a is None else args.run_b
            print(f"error: run {missing!r} not found", file=sys.stderr)
            return 1
        print(render_run_diff(diff_runs(record_a, record_b)))
        return 0
    # watch: poll the live directory across runs.
    import time as _time

    live = obs_ledger.live_dir_for(sink)
    while True:
        paths = sorted(live.glob("*.jsonl")) if live.is_dir() else []
        if not paths:
            print("no live runs")
        for path in paths:
            summary = flight.progress_summary(flight.read_heartbeats(path))
            print(flight.render_progress(path.stem, summary))
        if args.once:
            return 0
        _time.sleep(args.interval)


def _cmd_tail(args: argparse.Namespace) -> int:
    import time as _time

    from repro.obs import flight
    from repro.obs import ledger as obs_ledger

    sink = _resolve_sink_or_fail(args)
    if sink is None:
        return 1
    live = obs_ledger.live_dir_for(sink)
    path = live / f"{args.run}.jsonl"
    if not path.exists() and live.is_dir():
        matches = sorted(live.glob(f"{args.run}*.jsonl"))
        if len(matches) == 1:
            path = matches[0]
        elif len(matches) > 1:
            print(
                f"error: run prefix {args.run!r} is ambiguous: "
                + ", ".join(m.stem for m in matches),
                file=sys.stderr,
            )
            return 1
    if not path.exists():
        print(f"error: no live file for run {args.run!r}", file=sys.stderr)
        return 1
    while True:
        summary = flight.progress_summary(flight.read_heartbeats(path))
        print(flight.render_progress(path.stem, summary))
        if args.once or summary.get("ended"):
            return 0
        _time.sleep(args.interval)


#: Default program for ``repro bench``: a 256x256 stencil whose window
#: the streaming engine chunks 100+ times at small chunk sizes.
_BENCH_STENCIL = """
for i = 1 to 256 {
  for j = 1 to 256 {
    A[i + j] = A[i + j + 1] + A[i + j + 2]
  }
}
"""

#: Chunk sizes swept by ``repro bench --chunk-sweep``.
_SWEEP_SIZES = "4096,16384,65536,262144"


def _cmd_bench(args: argparse.Namespace) -> int:
    import time

    from repro.reporting.telemetry import build_artifact, write_artifact
    from repro.window.streaming import max_total_window_streaming, stream_chunk

    if args.file:
        program = _load(args.file)
    else:
        program = parse_program(_BENCH_STENCIL, name="stencil256")
    if args.chunk_sweep:
        sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
    else:
        sizes = [stream_chunk()]
    rows = []
    for chunk in sizes:
        own_observer = obs.get_observer() is None
        observer = obs.enable() if own_observer else obs.get_observer()
        start_chunks = int(observer.counters.get("streaming.chunks", 0))
        start = time.perf_counter()
        mws_total = max_total_window_streaming(program, chunk=chunk)
        wall = time.perf_counter() - start
        chunks = int(observer.counters.get("streaming.chunks", 0)) - start_chunks
        if own_observer:
            obs.disable()
        metrics = {
            "mws_total": mws_total,
            "stream_wall_s": round(wall, 6),
            "chunks": chunks,
        }
        artifact = build_artifact(f"chunk_{chunk}", metrics=metrics)
        path = write_artifact(artifact, directory=args.out and Path(args.out))
        rows.append((chunk, mws_total, wall, chunks, path))
    header = f"{'chunk':>8} {'mws_total':>10} {'wall_s':>9} {'chunks':>7}  artifact"
    print(f"streaming chunk sweep over {program.name} "
          f"({program.nest.total_iterations} iterations):")
    print(header)
    print("-" * len(header))
    for chunk, mws_total, wall, chunks, path in rows:
        print(f"{chunk:>8} {mws_total:>10} {wall:>9.4f} {chunks:>7}  {path}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.check import (
        all_oracles,
        render_check_report,
        replay_file,
        run_check,
    )

    if args.list:
        for oracle in all_oracles():
            print(f"{oracle.name:<34} {oracle.kind:<12} {oracle.paper}")
        return 0
    if args.replay:
        violation = replay_file(args.replay)
        if violation is None:
            print(f"{args.replay}: PASS ({Path(args.replay).name})")
            return 0
        print(f"{args.replay}: FAIL {violation.oracle}")
        print(violation.detail)
        return 1
    report = run_check(
        oracle_names=args.oracle or None,
        seeds=args.seeds,
        time_budget=args.time_budget,
        base_seed=args.base_seed,
        corpus_dir=args.corpus,
        case_timeout=args.timeout,
        do_shrink=not args.no_shrink,
    )
    print(render_check_report(report))
    return 0 if report.ok else 1


def _cmd_figure2(args: argparse.Namespace) -> int:
    from repro.kernels import KERNELS, kernel_by_name
    from repro.reporting import figure2_row, render_table

    if args.kernel:
        specs = [kernel_by_name(args.kernel)]
    else:
        specs = list(KERNELS)
    rows = [
        figure2_row(spec, workers=args.workers, store=args.store_obj)
        for spec in specs
    ]
    print(render_table(rows))
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.reporting import render_cache_stats
    from repro.store import load_manifest, render_batch_table, run_batch

    entries = load_manifest(args.manifest)
    observer = obs.get_observer()
    own_observer = observer is None
    if own_observer:
        observer = obs.enable()
    try:
        report = run_batch(
            entries,
            store=args.store_obj,
            workers=args.workers,
            engine=args.engine,
            timeout=args.timeout,
        )
    finally:
        if own_observer:
            obs.disable()
    # stdout carries only the deterministic table (cold and warm runs
    # must be byte-identical); counters and latencies go to stderr.
    print(render_batch_table(report))
    stats = render_cache_stats(observer.summary())
    if stats:
        print(file=sys.stderr)
        print(stats, file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.api import AnalysisService
    from repro.server import ReproServer

    # A long-lived service wants a real pool: --workers 0 (the global
    # default) resolves to the automatic worker count here, because
    # per-request timeouts need preemptable workers.
    service = AnalysisService(
        store=args.store_obj,
        engine=args.engine,
        workers=args.workers or None,
        timeout=args.timeout,
    )
    from repro.server.app import DEFAULT_QUOTA_RATE

    if args.no_quota:
        quota_rate = None
    elif args.quota_rate is None:
        quota_rate = DEFAULT_QUOTA_RATE
    else:
        quota_rate = args.quota_rate
    server = ReproServer(
        service,
        host=args.host,
        port=args.port,
        queue_limit=args.queue_limit,
        quota_rate=quota_rate,
        quota_burst=args.quota_burst,
        compact_interval=args.compact_interval,
    )
    try:
        return server.run()
    finally:
        service.close()


def _cmd_store_compact(args: argparse.Namespace) -> int:
    from repro.store.maintenance import compact_store, render_compaction

    store = args.store_obj
    if store is None:
        print(
            "error: no store (pass --store DIR or set REPRO_STORE_DIR)",
            file=sys.stderr,
        )
        return 1
    report = compact_store(store, tmp_ttl_s=args.tmp_ttl)
    print(render_compaction(report))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Memory-requirement analysis of nested loops (DAC 2001 reproduction)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="evaluate search candidates on N worker processes (0 = serial)",
    )
    from repro.window import ENGINES

    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="auto",
        help="window engine (auto = fast, or streaming past the dense budget)",
    )
    parser.add_argument(
        "--trace",
        metavar="OUT.jsonl",
        help="record a JSONL observability trace and print a span summary",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        help="persistent result store directory (default: $REPRO_STORE_DIR)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="footprints and exact windows")
    p.add_argument("file")
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("dependences", help="distance vectors")
    p.add_argument("file")
    p.add_argument("--no-input", action="store_true", help="hide read-read reuse")
    p.set_defaults(func=_cmd_dependences)

    p = sub.add_parser("optimize", help="search the MWS-minimizing transformation")
    p.add_argument("file")
    p.add_argument("--codegen", action="store_true", help="emit transformed source")
    p.add_argument(
        "--parametric",
        action="store_true",
        help="answer candidate scores from derived closed forms where possible",
    )
    p.add_argument(
        "--hierarchy",
        metavar="PRESET",
        help="also plan tile sizes and tier placements against a "
             "hierarchy preset (tcm, cache, flat)",
    )
    p.set_defaults(func=_cmd_optimize)

    p = sub.add_parser(
        "hierarchy",
        help="simulate a multi-tier memory stack and plan placements",
    )
    p.add_argument("target", help="kernel name (e.g. sor) or loop-nest file")
    p.add_argument(
        "--preset",
        default="tcm",
        help="hierarchy preset: tcm, cache, or flat (default: tcm)",
    )
    p.add_argument(
        "--policy",
        choices=("belady", "lru"),
        default="belady",
        help="per-boundary replacement policy (default: belady)",
    )
    p.add_argument(
        "--no-search",
        action="store_true",
        help="skip the joint tile/placement search, print the simulation only",
    )
    p.add_argument(
        "--native",
        action="store_true",
        help="search tile/placement for the native order only (skip the "
             "transformation sweep; much faster on deep or large nests)",
    )
    p.set_defaults(func=_cmd_hierarchy)

    p = sub.add_parser("size", help="provision an on-chip buffer")
    p.add_argument("file")
    p.add_argument("--optimized", action="store_true", help="size after optimization")
    p.set_defaults(func=_cmd_size)

    p = sub.add_parser("buffer", help="fold an array into a modulo window buffer")
    p.add_argument("file")
    p.add_argument("--array", help="array name (default: first referenced)")
    p.add_argument("--optimized", action="store_true", help="allocate after the MWS search")
    p.set_defaults(func=_cmd_buffer)

    p = sub.add_parser("distribute", help="split the nest into a legal sequence")
    p.add_argument("file")
    p.set_defaults(func=_cmd_distribute)

    p = sub.add_parser("viz", help="reuse region and window profile (ASCII)")
    p.add_argument("file")
    p.add_argument("--array", help="array name (default: first referenced)")
    p.add_argument(
        "--liveness",
        action="store_true",
        help="render the liveness profile (occupancy, peak, reuse distances)",
    )
    p.set_defaults(func=_cmd_viz)

    p = sub.add_parser(
        "explain",
        help="explain the search: ranked candidates, rejections, prunes",
    )
    p.add_argument("target", help="kernel name (e.g. sor) or loop-nest file")
    p.add_argument("--array", help="array name (default: first referenced)")
    p.add_argument("--bound", type=int, default=6, help="candidate entry bound")
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser(
        "param",
        help="derive closed-form MWS/distinct expressions in the loop "
             "bounds and substitute concrete sizes",
    )
    p.add_argument("target", help="kernel name (e.g. sor) or loop-nest file")
    p.add_argument("--array", help="array name (default: all referenced)")
    p.add_argument(
        "--sizes",
        metavar="N1xN2,...",
        help="comma-separated trip-count vectors to substitute "
             "(default: the program's own bounds)",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="verify every substituted value against the exact engines "
             "(exit 1 on mismatch)",
    )
    p.set_defaults(func=_cmd_param)

    p = sub.add_parser(
        "bench-compare",
        help="diff two BENCH_<name>.json artifacts; exit 1 on regression",
    )
    p.add_argument("old", help="baseline artifact (BENCH_<name>.json)")
    p.add_argument("new", help="candidate artifact to compare against it")
    p.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="relative slack before a bad-direction change is a regression",
    )
    p.add_argument(
        "--verbose", action="store_true", help="also list unchanged metrics"
    )
    p.set_defaults(func=_cmd_bench_compare)

    p = sub.add_parser(
        "bench-trend",
        help="trend-check BENCH_<name>.json trajectories; exit 1 when a "
             "metric drifts monotonically past the threshold",
    )
    p.add_argument(
        "paths", nargs="+",
        help="artifact files and/or directories (searched recursively)",
    )
    p.add_argument(
        "--window", type=int, default=3,
        help="number of trailing points a drift must span (default 3)",
    )
    p.add_argument(
        "--threshold", type=float, default=0.2,
        help="total relative change over the window that fails (default 0.2)",
    )
    p.add_argument(
        "--verbose", action="store_true", help="also list non-drifting metrics"
    )
    p.set_defaults(func=_cmd_bench_trend)

    p = sub.add_parser(
        "runs",
        help="run ledger: list, inspect, and diff recorded analysis runs",
    )
    runs_sub = p.add_subparsers(dest="action", required=True)
    q = runs_sub.add_parser("list", help="every recorded run, oldest first")
    q.set_defaults(func=_cmd_runs)
    q = runs_sub.add_parser("show", help="one run's full ledger record")
    q.add_argument(
        "run", nargs="?", default="last",
        help="run ID, unique prefix, 'last', or 'last~N' (default: last)",
    )
    q.set_defaults(func=_cmd_runs)
    q = runs_sub.add_parser(
        "diff", help="explain why two runs differ (code, knobs, cache state)"
    )
    q.add_argument(
        "run", nargs="?", default="last~1",
        help="baseline run (default: last~1)",
    )
    q.add_argument(
        "run_b", nargs="?", default="last",
        help="run to compare against it (default: last)",
    )
    q.set_defaults(func=_cmd_runs)
    q = runs_sub.add_parser("watch", help="live progress across active runs")
    q.add_argument("--once", action="store_true", help="render once and exit")
    q.add_argument(
        "--interval", type=float, default=2.0,
        help="poll period in seconds (default 2)",
    )
    q.set_defaults(func=_cmd_runs)

    p = sub.add_parser(
        "tail", help="follow one run's flight-recorder heartbeats"
    )
    p.add_argument("run", help="run ID (or unique prefix) to follow")
    p.add_argument("--once", action="store_true", help="render once and exit")
    p.add_argument(
        "--interval", type=float, default=1.0,
        help="poll period in seconds (default 1)",
    )
    p.set_defaults(func=_cmd_tail)

    p = sub.add_parser(
        "bench",
        help="time the streaming engine; --chunk-sweep writes one "
             "BENCH_chunk_<size>.json per chunk size",
    )
    p.add_argument(
        "--file", help="loop-nest file (default: built-in 256x256 stencil)"
    )
    p.add_argument(
        "--chunk-sweep",
        action="store_true",
        help="sweep chunk sizes instead of the session default",
    )
    p.add_argument(
        "--sizes",
        default=_SWEEP_SIZES,
        help=f"comma-separated chunk sizes for the sweep (default {_SWEEP_SIZES})",
    )
    p.add_argument(
        "--out", help="artifact directory (default: benchmarks/artifacts)"
    )
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "check",
        help="fuzz the conformance oracles; shrink failures into the corpus",
    )
    p.add_argument(
        "--seeds", type=int, metavar="N",
        help="fuzz N seeds per oracle (default 100 unless --time-budget)",
    )
    p.add_argument(
        "--time-budget", type=float, metavar="S",
        help="stop after S wall-clock seconds (combines with --seeds)",
    )
    p.add_argument(
        "--oracle", action="append", metavar="NAME",
        help="restrict to one oracle (repeatable; default: all)",
    )
    p.add_argument(
        "--base-seed", type=int, default=0,
        help="first seed of the fuzzed range (default 0)",
    )
    p.add_argument(
        "--corpus", metavar="DIR",
        help="write shrunk counterexamples into DIR (e.g. tests/corpus)",
    )
    p.add_argument(
        "--timeout", type=float, default=10.0, metavar="S",
        help="per-case wall-clock timeout in seconds (default 10)",
    )
    p.add_argument(
        "--no-shrink", action="store_true",
        help="record failures without minimizing them",
    )
    p.add_argument(
        "--replay", metavar="FILE",
        help="replay one corpus JSON file and exit (1 if it still fails)",
    )
    p.add_argument(
        "--list", action="store_true", help="list registered oracles and exit"
    )
    p.set_defaults(func=_cmd_check)

    p = sub.add_parser("figure2", help="regenerate the paper's results table")
    p.add_argument("--kernel", help="one kernel only (e.g. sor)")
    p.set_defaults(func=_cmd_figure2)

    p = sub.add_parser(
        "batch",
        help="batch-evaluate a JSON manifest of kernels/searches "
             "(dedup + store-warm re-runs; see docs/observability.md)",
    )
    p.add_argument("manifest", help="JSON manifest of work items")
    p.add_argument(
        "--timeout",
        type=float,
        metavar="S",
        help="per-item timeout in seconds (needs --workers >= 1)",
    )
    p.set_defaults(func=_cmd_batch)

    p = sub.add_parser(
        "serve",
        help="always-on HTTP/JSON analysis service over the worker pool "
             "(admission control, per-tenant quotas; see docs/service.md)",
    )
    p.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    p.add_argument(
        "--port", type=int, default=8787,
        help="bind port; 0 picks an ephemeral port (default 8787)",
    )
    p.add_argument(
        "--timeout", type=float, metavar="S",
        help="default per-request timeout in seconds (a hung request is "
             "answered 504 and its worker slot is reclaimed)",
    )
    p.add_argument(
        "--queue-limit", type=int, metavar="N",
        help="admitted requests beyond the worker count before 429s "
             "(default: 2x workers)",
    )
    p.add_argument(
        "--quota-rate", type=float, default=None, metavar="R",
        help="per-tenant token-bucket refill rate in requests/second "
             "(default 50; X-Repro-Tenant header keys the bucket)",
    )
    p.add_argument(
        "--quota-burst", type=float, metavar="B",
        help="per-tenant burst ceiling (default: 2x the rate)",
    )
    p.add_argument(
        "--no-quota", action="store_true",
        help="disable per-tenant quotas entirely",
    )
    p.add_argument(
        "--compact-interval", type=float, metavar="S",
        help="run the store compaction sweep every S seconds in the "
             "background (default: off)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "store-compact",
        help="sweep the result store: delete corrupt records, rewrite "
             "legacy ledger counters, remove stale temp files",
    )
    p.add_argument(
        "--tmp-ttl", type=float, default=3600.0, metavar="S",
        help="age in seconds before an orphaned temp file is removed "
             "(default 3600)",
    )
    p.set_defaults(func=_cmd_store_compact)

    return parser


#: Read-side subcommands that must not write ledger records of their own
#: (``repro runs list`` sealing a run per invocation would fill the
#: ledger with records about reading the ledger).
_UNLEDGERED = ("runs", "tail", "bench-compare", "bench-trend")


def main(argv: list[str] | None = None) -> int:
    from repro.obs import ledger as obs_ledger
    from repro.obs import runctx
    from repro.store import open_store

    parser = build_parser()
    args = parser.parse_args(argv)
    args.store_obj = open_store(args.store)

    # Run ledger: every analysis command with a durable sink (the store,
    # or $REPRO_LEDGER_DIR) runs under a run context and seals exactly
    # one record on the way out.
    sink = None
    if args.command not in _UNLEDGERED:
        sink = obs_ledger.resolve_sink(args.store_obj)
    ctx = None
    tee = None
    own_observer = False
    if sink is not None:
        ctx = runctx.begin_run(
            args.command,
            argv=list(sys.argv[1:]) if argv is None else list(argv),
            config={
                "workers": args.workers,
                "engine": args.engine,
                "store": str(args.store_obj.root) if args.store_obj else None,
                "trace": args.trace,
            },
            live_dir=obs_ledger.live_dir_for(sink),
        )
        tee = obs_ledger.DigestTee(sys.stdout)
        sys.stdout = tee
    if args.trace:
        obs.enable(trace=args.trace)
    elif ctx is not None and obs.get_observer() is None:
        # The ledger needs counter/span totals even without --trace; the
        # in-memory observer is cheap and the subcommands reuse it.
        obs.enable()
        own_observer = True
    status = 1
    try:
        status = args.func(args)
        return status
    except (ParseError, FileNotFoundError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if tee is not None:
            sys.stdout = tee.wrapped
        if ctx is not None:
            observer = obs.get_observer()
            summary = observer.summary() if observer is not None else None
            obs_ledger.heartbeat_run_end(status)
            runctx.end_run()
            obs_ledger.seal_run(
                ctx, summary, sink, status=status,
                result_digest=tee.hexdigest(),
            )
        if own_observer:
            obs.disable()
        if args.trace:
            from repro.reporting import render_cache_stats, render_span_summary

            observer = obs.disable()
            if observer is not None:
                summary = observer.summary()
                print(file=sys.stderr)
                print(f"trace written to {args.trace}", file=sys.stderr)
                print(render_span_summary(summary), file=sys.stderr)
                stats = render_cache_stats(summary)
                if stats:
                    print(file=sys.stderr)
                    print(stats, file=sys.stderr)


if __name__ == "__main__":
    raise SystemExit(main())
