"""repro - reproduction of Ramanujam, Hong, Kandemir & Narayan,
"Reducing Memory Requirements of Nested Loops for Embedded Systems"
(DAC 2001).

The library estimates the number of distinct array accesses of perfectly
nested affine loops, computes exact and closed-form *maximum window
sizes* (the minimum on-chip data memory that avoids off-chip re-fetches),
and searches legal, tileable unimodular loop transformations that
minimize that window.

Quick start::

    from repro import parse_program, analyze_program, optimize_program

    program = parse_program('''
    for i = 1 to 20 {
      for j = 1 to 30 {
        S1: Y[0] = X[2*i - 3*j]
      }
    }
    ''')
    print(analyze_program(program))        # footprint + exact windows
    result = optimize_program(program)     # MWS 86 -> 1
    print(result.transformation.pretty())

Subpackages: ``linalg`` (exact integer linear algebra), ``ir`` (loop-nest
IR, parser, codegen), ``polyhedral`` (Fourier-Motzkin, lattice counting),
``dependence`` (distance/reuse analysis), ``estimation`` (Section 3),
``window`` (Section 2.3/4 window model), ``transform`` (Section 4 search
and baselines), ``memory`` (scratchpad/energy substrate), ``kernels``
(the Figure-2 suite), ``reporting`` (tables).
"""

from repro.core import (
    AnalysisReport,
    OptimizationResult,
    analyze_program,
    full_report,
    optimize_program,
)
from repro.estimation import (
    estimate_distinct_accesses,
    estimate_program_memory,
    exact_distinct_accesses,
    nonuniform_bounds,
)
from repro.ir import (
    ArrayDecl,
    ArrayRef,
    Loop,
    LoopNest,
    NestBuilder,
    Program,
    Statement,
    generate_source,
    generate_transformed_source,
    parse_program,
)
from repro.linalg import IntMatrix
from repro.memory import simulate_scratchpad, size_memory_for_program
from repro.transform import (
    eisenbeis_search,
    li_pingali_transformation,
    search_best_transformation,
)
from repro.window import max_total_window, max_window_size, window_profile

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "AnalysisReport",
    "OptimizationResult",
    "analyze_program",
    "optimize_program",
    "full_report",
    "estimate_distinct_accesses",
    "exact_distinct_accesses",
    "estimate_program_memory",
    "nonuniform_bounds",
    "ArrayDecl",
    "ArrayRef",
    "Loop",
    "LoopNest",
    "NestBuilder",
    "Program",
    "Statement",
    "parse_program",
    "generate_source",
    "generate_transformed_source",
    "IntMatrix",
    "simulate_scratchpad",
    "size_memory_for_program",
    "max_window_size",
    "max_total_window",
    "window_profile",
    "eisenbeis_search",
    "li_pingali_transformation",
    "search_best_transformation",
]
