"""Dependence distance computation for affine references.

For uniformly generated references ``A @ I + b1`` and ``A @ J + b2`` the
same element is touched when ``A @ (J - I) = b1 - b2``; the solution set is
``particular + kernel(A)`` and the paper takes the *smallest
lexicographically positive* solution as the dependence vector
(Section 4.2).  Non-uniform pairs generally have no constant distance; the
:func:`gcd_test` provides the classic existence filter and
:func:`iteration_pairs_sharing_element` the exact (enumerative) answer.
"""

from __future__ import annotations

import enum
import itertools
import math
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.dependence.distance import is_lex_positive, lex_level
from repro.ir.loop import LoopNest
from repro.ir.program import Program
from repro.ir.reference import ArrayRef
from repro.linalg import IntMatrix, integer_nullspace, solve_linear_diophantine
from repro.linalg.gcd import ceil_div, gcd_list


class DependenceKind(enum.Enum):
    """Classification by the access kinds of source and sink."""

    FLOW = "flow"  # write -> read
    ANTI = "anti"  # read -> write
    OUTPUT = "output"  # write -> write
    INPUT = "input"  # read -> read (pure reuse; no ordering constraint)

    @classmethod
    def of(cls, src_is_write: bool, dst_is_write: bool) -> "DependenceKind":
        if src_is_write and not dst_is_write:
            return cls.FLOW
        if not src_is_write and dst_is_write:
            return cls.ANTI
        if src_is_write and dst_is_write:
            return cls.OUTPUT
        return cls.INPUT

    @property
    def constrains_order(self) -> bool:
        """Input dependences do not constrain legality."""
        return self is not DependenceKind.INPUT


@dataclass(frozen=True)
class Dependence:
    """A constant-distance dependence between two references.

    ``reduction`` marks dependences between scalar-in-nest references
    (all-zero access matrices, e.g. a SAD accumulator written every
    iteration): any execution order conflicts on such a cell, and
    compilers treat the associated updates as reorderable reductions, so
    legality checks exclude them by default.
    """

    array: str
    distance: tuple[int, ...]
    kind: DependenceKind
    source: ArrayRef
    sink: ArrayRef
    reduction: bool = False

    @property
    def level(self) -> int | None:
        return lex_level(self.distance)

    def __str__(self) -> str:
        return f"{self.kind} {self.array} d={self.distance}"


def _smallest_lex_positive_in_family(
    particular: Sequence[int],
    kernel: Sequence[tuple[int, ...]],
    search_radius: int = 64,
) -> tuple[int, ...] | None:
    """Smallest lex-positive vector in ``particular + span_Z(kernel)``.

    Exact closed-form walk for kernel dimension 0 and 1 (the cases arising
    from the paper's ``d >= n-1`` arrays); bounded enumeration for higher
    kernel dimensions.
    """
    p = tuple(particular)
    if not kernel:
        return p if is_lex_positive(p) else None
    if len(kernel) == 1:
        return _smallest_on_line(p, kernel[0])
    # Higher-dimensional kernel: bounded search over coefficients,
    # smallest lex-positive found.  Radius is ample for loop-sized
    # distances.  The whole (2r+1)^K coefficient grid is evaluated with
    # one matmul; lex-positivity is a leading-nonzero sign test and the
    # lex-minimum a lexsort, all vectorized.  Int64 is safe: candidate
    # components are bounded by |p| + K * radius * max|kernel entry|.
    kmat = np.asarray(kernel, dtype=np.int64)
    pvec = np.asarray(p, dtype=np.int64)
    axis = np.arange(-search_radius, search_radius + 1, dtype=np.int64)
    side = axis.shape[0]
    if side ** len(kernel) <= (1 << 22):
        grids = np.meshgrid(*([axis] * len(kernel)), indexing="ij")
        coeffs = np.stack([g.ravel() for g in grids], axis=1)
        chunks: "Iterator[np.ndarray] | list[np.ndarray]" = [
            coeffs @ kmat + pvec
        ]
    else:
        # Kernel dimension >= 4 at the full radius: chunk over the first
        # coefficient so each candidate block stays grid-of-the-rest
        # sized.
        grids = np.meshgrid(*([axis] * (len(kernel) - 1)), indexing="ij")
        rest = np.stack([g.ravel() for g in grids], axis=1)
        base = rest @ kmat[1:] + pvec
        chunks = (base + c0 * kmat[0] for c0 in axis)
    best: tuple[int, ...] | None = None
    for cand in chunks:
        nonzero = cand != 0
        positive = nonzero.any(axis=1)
        lead = np.argmax(nonzero, axis=1)
        positive &= cand[np.arange(cand.shape[0]), lead] > 0
        if not positive.any():
            continue
        selected = cand[positive]
        # lexsort sorts by last key first; feed columns reversed.
        order = np.lexsort(selected.T[::-1])
        top = tuple(int(v) for v in selected[order[0]])
        if best is None or top < best:
            best = top
    return best


def _smallest_on_line(
    p: tuple[int, ...], direction: tuple[int, ...]
) -> tuple[int, ...] | None:
    """Smallest lex-positive point of ``{p + t*v : t in Z}``.

    ``v`` is primitive and lex-positive (nullspace normalization), so the
    lex order along the line is monotone increasing in ``t``; the first
    component pins ``t`` up to one boundary case.
    """
    v = direction
    lead = next((k for k, x in enumerate(v) if x != 0), None)
    if lead is None:
        return p if is_lex_positive(p) else None
    # Components before `lead` are fixed by p.  A nonzero prefix decides
    # positivity outright; the canonical representative reduces the
    # component at `lead` to its smallest non-negative residue.
    for x in p[:lead]:
        if x > 0:
            t = -math.floor(p[lead] / v[lead])
            return tuple(pv + t * vv for pv, vv in zip(p, v))
        if x < 0:
            return None
    # Prefix is all zero: positivity is decided from component `lead` on.
    vl = v[lead]
    pl = p[lead]
    if vl > 0:
        t0 = ceil_div(-pl, vl)  # smallest t with component >= 0
    else:
        # v was normalized lex-positive, so vl > 0 always; guard anyway.
        t0 = -ceil_div(pl, -vl)
    for t in (t0, t0 + 1):
        cand = tuple(pv + t * vv for pv, vv in zip(p, v))
        if is_lex_positive(cand):
            return cand
    return None


def dependence_distance(
    src: ArrayRef, dst: ArrayRef
) -> tuple[int, ...] | None:
    """Smallest lex-positive ``d`` with ``dst`` at ``I + d`` touching the
    element ``src`` touches at ``I`` — or None.

    Requires uniformly generated references (same access matrix); raises
    otherwise, because no constant distance exists in general.
    """
    if not src.uniformly_generated_with(dst):
        raise ValueError(
            "dependence_distance requires uniformly generated references"
        )
    a = src.access
    rhs = [bs - bd for bs, bd in zip(src.offset, dst.offset)]
    particular = _particular_solution(a, rhs)
    if particular is None:
        return None
    kernel = integer_nullspace(a)
    return _smallest_lex_positive_in_family(particular, kernel)


def self_reuse_distance(ref: ArrayRef) -> tuple[int, ...] | None:
    """Smallest lex-positive ``d`` with ``A @ d = 0`` — the reuse vector of
    a single reference (paper Example 4), or None for injective accesses."""
    kernel = integer_nullspace(ref.access)
    if not kernel:
        return None
    zero = tuple(0 for _ in range(ref.nest_depth))
    return _smallest_lex_positive_in_family(zero, kernel)


def _particular_solution(
    a: IntMatrix, rhs: Sequence[int]
) -> tuple[int, ...] | None:
    """One integer solution of ``a @ x = rhs`` or None.

    Via Smith normal form: ``S = U A V`` gives ``x = V y`` with
    ``S y = U rhs`` solved diagonally.
    """
    from repro.linalg import smith_normal_form

    s, u, v = smith_normal_form(a)
    transformed = u.apply(rhs)
    y = []
    for k in range(a.n_cols):
        diag = s[k, k] if k < s.n_rows and k < s.n_cols else 0
        target = transformed[k] if k < len(transformed) else 0
        if diag == 0:
            if k < len(transformed) and transformed[k] != 0:
                return None
            y.append(0)
        else:
            if target % diag != 0:
                return None
            y.append(target // diag)
    # Remaining rows of S (beyond n_cols) must be consistent.
    for k in range(a.n_cols, s.n_rows):
        if transformed[k] != 0:
            return None
    return v.apply(y)


def gcd_test(src: ArrayRef, dst: ArrayRef) -> bool:
    """Classic GCD existence test, per dimension, ignoring loop bounds.

    True means a dependence *may* exist (the equation
    ``src(I) = dst(J)`` has an integer solution dimension-wise); False
    proves independence.  Works for non-uniformly generated pairs.
    """
    if src.array != dst.array:
        return False
    for dim in range(src.rank):
        coeffs = list(src.access.row(dim)) + [-c for c in dst.access.row(dim)]
        rhs = dst.offset[dim] - src.offset[dim]
        g = gcd_list(coeffs)
        if g == 0:
            if rhs != 0:
                return False
        elif rhs % g != 0:
            return False
    return True


def iteration_pairs_sharing_element(
    nest: LoopNest, src: ArrayRef, dst: ArrayRef
) -> Iterator[tuple[tuple[int, ...], tuple[int, ...]]]:
    """Exact enumeration of iteration pairs ``(I, J)``, ``I`` lex-before
    ``J``, where ``src`` at ``I`` and ``dst`` at ``J`` touch one element.

    The oracle for non-uniform dependence questions; quadratic in the
    iteration count, so use on paper-sized nests only.
    """
    by_element: dict[tuple[int, ...], list[tuple[int, ...]]] = {}
    for point in nest.iterate():
        by_element.setdefault(src.element(point), []).append(point)
    for point in nest.iterate():
        for earlier in by_element.get(dst.element(point), ()):
            if earlier < point:
                yield earlier, point


def array_distance_vectors(
    program: Program, array: str, include_input: bool = True
) -> list[tuple[int, ...]]:
    """All distinct dependence distance vectors for one array.

    Includes self-reuse distances (kernel directions) and pairwise
    distances among uniformly generated references; zero (loop-independent)
    vectors are excluded per the paper.  Raises for non-uniformly generated
    arrays — callers should fall back to Section 3.2 bounds there.
    """
    deps = array_dependences(program, array, include_input=include_input)
    seen: dict[tuple[int, ...], None] = {}
    for dep in deps:
        seen.setdefault(dep.distance, None)
    return list(seen)


def _endpoint_representatives(
    minimal: tuple[int, ...],
    kernel_vector: tuple[int, ...],
    spans: tuple[int, ...],
) -> tuple[tuple[int, ...], ...]:
    """Extreme in-bounds members of ``minimal + t * v``, both directions.

    Legality must hold for *every* lex-positive in-bounds member of a
    dependence family, not only the canonical one.  ``T (p + t v)`` is
    lex-monotone in ``t``, so checking the two in-bounds endpoints is
    sound — and both directions matter: the canonical representative
    pins the kernel component to its smallest non-negative residue, so
    when an earlier component is already positive the family extends to
    *negative* ``t`` while staying lex-positive (e.g. ``(1, t)`` with
    ``t in [-span, span]``).
    """
    t_lo: int | None = None
    t_hi: int | None = None
    for p, v, span in zip(minimal, kernel_vector, spans):
        if v == 0:
            if abs(p) > span:
                return ()
            continue
        # |p + t v| <= span  =>  t*v in [-span - p, span - p]
        lo_num, hi_num = -span - p, span - p
        if v > 0:
            lo, hi = -((-lo_num) // v), hi_num // v
        else:
            lo, hi = -((-hi_num) // v), lo_num // v
        t_lo = lo if t_lo is None else max(t_lo, lo)
        t_hi = hi if t_hi is None else min(t_hi, hi)
    if t_lo is None or t_hi is None or t_lo > t_hi:
        return ()
    return tuple(
        tuple(p + t * v for p, v in zip(minimal, kernel_vector))
        for t in {t_lo, t_hi}
        if t != 0
    )


def array_dependences(
    program: Program, array: str, include_input: bool = True
) -> list[Dependence]:
    """All constant-distance dependences for one array (uniform refs only).

    For dependence families with a kernel direction, the canonical
    representative plus the extreme in-bounds members in *both* family
    directions are emitted, so transformation-legality checks over the
    returned set are sound (lex order along the family line is
    monotone).
    """
    refs = program.refs_to(array)
    if not refs:
        return []
    if not program.is_uniformly_generated(array):
        raise ValueError(
            f"array {array} has non-uniformly generated references; "
            "constant distance vectors do not exist"
        )
    spans = tuple(loop.span for loop in program.nest.loops)
    out: list[Dependence] = []
    seen: set[tuple] = set()

    def emit(src: ArrayRef, dst: ArrayRef, distance: tuple[int, ...]) -> None:
        kind = DependenceKind.of(src.is_write, dst.is_write)
        if not include_input and kind is DependenceKind.INPUT:
            return
        key = (distance, kind)
        if key in seen:
            return
        seen.add(key)
        reduction = src.access.is_zero() and dst.access.is_zero()
        out.append(Dependence(array, distance, kind, src, dst, reduction))

    def emit_family(src: ArrayRef, dst: ArrayRef, minimal: tuple[int, ...]) -> None:
        emit(src, dst, minimal)
        kernel = integer_nullspace(src.access)
        if len(kernel) == 1:
            for member in _endpoint_representatives(minimal, kernel[0], spans):
                if member != minimal and is_lex_positive(member):
                    emit(src, dst, member)

    for ref in refs:
        d = self_reuse_distance(ref)
        if d is not None:
            emit_family(ref, ref, d)
    for src, dst in itertools.permutations(refs, 2):
        if src.offset == dst.offset and src is not dst:
            # Same element in the same iteration: loop-independent; the
            # kernel direction (if any) is already covered above.
            continue
        d = dependence_distance(src, dst)
        if d is not None and any(v != 0 for v in d):
            emit_family(src, dst, d)
    return out


def program_dependences(
    program: Program, include_input: bool = True
) -> list[Dependence]:
    """Dependences across all uniformly generated arrays of the program."""
    out: list[Dependence] = []
    for array in program.arrays:
        if program.is_uniformly_generated(array):
            out.extend(array_dependences(program, array, include_input))
    return out
