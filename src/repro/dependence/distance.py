"""Lexicographic order utilities on integer vectors.

A dependence vector must be lexicographically positive — the first nonzero
component positive — because the source iteration executes before the sink
(paper Section 2.1).  The *level* of a vector is the 1-based index of that
first nonzero component; level-``k`` dependences are "carried" by loop
``k``.
"""

from __future__ import annotations

from typing import Sequence


def is_lex_positive(vector: Sequence[int]) -> bool:
    """First nonzero component is positive; the zero vector is not positive.

    >>> is_lex_positive((0, 3, -1))
    True
    >>> is_lex_positive((0, 0))
    False
    """
    for v in vector:
        if v != 0:
            return v > 0
    return False


def is_lex_nonnegative(vector: Sequence[int]) -> bool:
    """Lex positive or zero."""
    for v in vector:
        if v != 0:
            return v > 0
    return True


def lex_level(vector: Sequence[int]) -> int | None:
    """1-based index of the first nonzero component; None for the zero vector.

    >>> lex_level((0, 3, -1))
    2
    """
    for k, v in enumerate(vector):
        if v != 0:
            return k + 1
    return None


def lex_negate_to_positive(vector: Sequence[int]) -> tuple[int, ...]:
    """Return the vector or its negation, whichever is lex non-negative.

    Reuse is symmetric (if ``I`` and ``J`` touch the same element, so do
    ``J`` and ``I``); dependence direction picks the positive
    representative.
    """
    vec = tuple(vector)
    return vec if is_lex_nonnegative(vec) else tuple(-v for v in vec)


def lex_compare(a: Sequence[int], b: Sequence[int]) -> int:
    """-1, 0 or 1 as ``a`` lexicographically precedes, equals or follows ``b``."""
    if len(a) != len(b):
        raise ValueError("length mismatch")
    for x, y in zip(a, b):
        if x != y:
            return -1 if x < y else 1
    return 0
