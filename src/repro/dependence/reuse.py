"""Reuse vectors and reuse levels.

Paper Section 2: if iterations ``i`` and ``j`` access the same location,
``j - i`` is a *reuse vector*.  Self reuse comes from the kernel of the
access matrix (``d < n``); group reuse comes from offset differences among
uniformly generated references.  The *level* of a reuse vector (index of
its first nonzero) is what Section 4.3's transformation search pushes
inward: the deeper the carrying loop, the smaller the live window.
"""

from __future__ import annotations

from repro.dependence.analysis import (
    array_distance_vectors,
    dependence_distance,
    self_reuse_distance,
)
from repro.dependence.distance import lex_level
from repro.ir.program import Program
from repro.ir.reference import ArrayRef


def reuse_vector(ref: ArrayRef) -> tuple[int, ...] | None:
    """The (single-reference) reuse vector: smallest lex-positive kernel
    element of the access matrix, e.g. ``(5, -2)`` for ``A[2i + 5j + 1]``.
    """
    return self_reuse_distance(ref)


def reuse_vectors(program: Program, array: str) -> list[tuple[int, ...]]:
    """All reuse vectors for one (uniformly generated) array.

    The union of self-reuse kernel vectors and pairwise group-reuse
    distances — identical to the dependence distance set with input
    dependences included, which is exactly how the paper uses the term.
    """
    return array_distance_vectors(program, array, include_input=True)


def reuse_level(vector: tuple[int, ...]) -> int | None:
    """1-based loop level carrying the reuse (paper Section 2)."""
    return lex_level(vector)


def group_reuse_distances(
    refs: list[ArrayRef],
) -> list[tuple[int, ...]]:
    """Distance vectors from each reference to one designated sink.

    Section 3.1 computes reuse from the ``r - 1`` dependences into the
    sink reference; this returns those distances with the sink chosen to
    make all of them lex-positive (the lexicographically last reference).
    """
    if len(refs) < 2:
        return []
    # Choose as sink the reference whose offset makes every incoming
    # distance lex-positive: the one accessed "earliest" in element space.
    best_sink = None
    best_distances: list[tuple[int, ...]] | None = None
    for sink in refs:
        distances = []
        ok = True
        for src in refs:
            if src is sink:
                continue
            d = dependence_distance(src, sink)
            if d is None:
                ok = False
                break
            distances.append(d)
        if ok and (best_distances is None or len(distances) > len(best_distances)):
            best_sink = sink
            best_distances = distances
    if best_distances is None:
        return []
    return best_distances
