"""Direction vectors — the coarser dependence abstraction.

Where a distance vector records exact offsets, a direction vector keeps
only the per-level sign: ``<`` (positive), ``=`` (zero), ``>``
(negative), ``*`` (unknown/any).  Directions summarize whole dependence
*families* — including the non-uniform cases where no constant distance
exists — and still support the two questions transformations ask:
is the dependence lexicographically positive, and does a transformation
row keep it non-negative?

Directions compose with unimodular rows by interval arithmetic: each
component contributes a sign interval, and the row's dot product is the
interval sum — conservative but sound.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.ir.loop import LoopNest
from repro.ir.reference import ArrayRef


class Direction(enum.Enum):
    """One component of a direction vector."""

    LT = "<"   # sink iteration greater: positive distance component
    EQ = "="   # zero component
    GT = ">"   # negative component
    ANY = "*"  # unknown

    @classmethod
    def of(cls, value: int) -> "Direction":
        if value > 0:
            return cls.LT
        if value < 0:
            return cls.GT
        return cls.EQ

    @property
    def sign_interval(self) -> tuple[int, int]:
        """(min_sign, max_sign) with -1/0/+1 encoding."""
        return {
            Direction.LT: (1, 1),
            Direction.EQ: (0, 0),
            Direction.GT: (-1, -1),
            Direction.ANY: (-1, 1),
        }[self]

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class DirectionVector:
    """A per-level direction summary of a dependence family."""

    components: tuple[Direction, ...]

    @classmethod
    def from_distance(cls, distance: Sequence[int]) -> "DirectionVector":
        """Collapse one concrete distance to directions.

        >>> str(DirectionVector.from_distance((3, 0, -2)))
        '(<, =, >)'
        """
        return cls(tuple(Direction.of(v) for v in distance))

    @classmethod
    def from_distances(cls, distances: Iterable[Sequence[int]]) -> "DirectionVector":
        """Join several distances of one family (component-wise merge)."""
        merged: list[Direction] | None = None
        for d in distances:
            dirs = [Direction.of(v) for v in d]
            if merged is None:
                merged = dirs
            else:
                merged = [
                    a if a == b else Direction.ANY for a, b in zip(merged, dirs)
                ]
        if merged is None:
            raise ValueError("no distances to merge")
        return cls(tuple(merged))

    @property
    def depth(self) -> int:
        return len(self.components)

    def is_lex_positive_definitely(self) -> bool:
        """True when every family member is lexicographically positive."""
        for comp in self.components:
            if comp is Direction.LT:
                return True
            if comp is Direction.EQ:
                continue
            return False  # GT or ANY before any LT: a member may violate
        return False

    def may_be_lex_negative(self) -> bool:
        return not self.is_lex_positive_definitely()

    def level(self) -> int | None:
        """First definitely-nonzero level, if determinable."""
        for k, comp in enumerate(self.components):
            if comp is Direction.LT or comp is Direction.GT:
                return k + 1
            if comp is Direction.ANY:
                return None
        return None

    def row_dot_interval(
        self, row: Sequence[int], spans: Sequence[int]
    ) -> tuple[int, int]:
        """Sound interval for ``row . d`` over all family members.

        Components contribute ``coeff * [lo, hi]`` where the magnitude
        range comes from the loop spans: LT gives ``[1, span]``, GT
        ``[-span, -1]``, EQ ``[0, 0]``, ANY ``[-span, span]``.
        """
        if len(row) != self.depth or len(spans) != self.depth:
            raise ValueError("arity mismatch")
        lo_total = hi_total = 0
        for coeff, comp, span in zip(row, self.components, spans):
            if comp is Direction.LT:
                lo, hi = 1, span
            elif comp is Direction.GT:
                lo, hi = -span, -1
            elif comp is Direction.EQ:
                lo, hi = 0, 0
            else:
                lo, hi = -span, span
            candidates = (coeff * lo, coeff * hi)
            lo_total += min(candidates)
            hi_total += max(candidates)
        return lo_total, hi_total

    def row_keeps_nonnegative(
        self, row: Sequence[int], spans: Sequence[int]
    ) -> bool:
        """Does ``row . d >= 0`` hold for every member (conservatively)?"""
        lo, _ = self.row_dot_interval(row, spans)
        return lo >= 0

    def __str__(self) -> str:
        return "(" + ", ".join(str(c) for c in self.components) + ")"


def nonuniform_direction(
    nest: LoopNest, src: ArrayRef, dst: ArrayRef, sample_cap: int = 20_000
) -> DirectionVector | None:
    """Direction summary for a (possibly non-uniform) reference pair.

    Enumerates iteration pairs sharing an element (exact on paper-sized
    nests; bails to all-ANY beyond ``sample_cap`` pairs) and merges their
    difference vectors.  Returns None when no dependence exists at all.
    """
    from repro.dependence.analysis import iteration_pairs_sharing_element

    merged: DirectionVector | None = None
    count = 0
    for earlier, later in iteration_pairs_sharing_element(nest, src, dst):
        delta = tuple(b - a for a, b in zip(earlier, later))
        current = DirectionVector.from_distance(delta)
        if merged is None:
            merged = current
        else:
            merged = DirectionVector(
                tuple(
                    a if a == b else Direction.ANY
                    for a, b in zip(merged.components, current.components)
                )
            )
        count += 1
        if count >= sample_cap:
            return DirectionVector(tuple(Direction.ANY for _ in range(nest.depth)))
    return merged
