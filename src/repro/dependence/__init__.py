"""Dependence and reuse analysis.

The paper's main abstraction (Sections 2.1-2.2): for uniformly generated
references, every dependence is a constant *distance vector*; the set of
distance vectors drives both the distinct-access estimate (Section 3) and
the legality/tileability constraints on transformations (Section 4).
"""

from repro.dependence.distance import (
    is_lex_nonnegative,
    is_lex_positive,
    lex_level,
    lex_negate_to_positive,
)
from repro.dependence.analysis import (
    Dependence,
    DependenceKind,
    array_distance_vectors,
    dependence_distance,
    gcd_test,
    program_dependences,
    self_reuse_distance,
)
from repro.dependence.graph import dependence_graph
from repro.dependence.reuse import (
    reuse_vector,
    reuse_vectors,
    reuse_level,
)

__all__ = [
    "is_lex_positive",
    "is_lex_nonnegative",
    "lex_level",
    "lex_negate_to_positive",
    "Dependence",
    "DependenceKind",
    "dependence_distance",
    "self_reuse_distance",
    "array_distance_vectors",
    "program_dependences",
    "gcd_test",
    "dependence_graph",
    "reuse_vector",
    "reuse_vectors",
    "reuse_level",
]
