"""Dependence graph construction (networkx).

Nodes are statement labels; a directed edge carries the dependence kind,
array and distance vector.  The paper (Section 3.1) observes that with
``r`` uniformly generated references there are ``r(r-1)/2`` dependences
and some statement is a sink of ``r - 1`` of them — that statement's
incoming distances drive the reuse formula.
"""

from __future__ import annotations

import networkx as nx

from repro.dependence.analysis import Dependence, DependenceKind
from repro.ir.program import Program
from repro.ir.reference import ArrayRef
from repro.ir.statement import Statement


def _owner_label(program: Program, ref: ArrayRef) -> str:
    for stmt in program.statements:
        for candidate in stmt.references:
            if candidate is ref:
                return stmt.label
    # Dependences synthesized outside the program carry equal-valued refs.
    for stmt in program.statements:
        for candidate in stmt.references:
            if candidate == ref:
                return stmt.label
    raise ValueError(f"reference {ref} not found in program")


def dependence_graph(program: Program, include_input: bool = True) -> nx.MultiDiGraph:
    """Build the statement-level dependence multigraph.

    Edge attributes: ``array``, ``distance``, ``kind``, ``level``.
    """
    from repro.dependence.analysis import program_dependences

    graph = nx.MultiDiGraph()
    for stmt in program.statements:
        graph.add_node(stmt.label, statement=stmt)
    for dep in program_dependences(program, include_input=include_input):
        graph.add_edge(
            _owner_label(program, dep.source),
            _owner_label(program, dep.sink),
            array=dep.array,
            distance=dep.distance,
            kind=dep.kind,
            level=dep.level,
        )
    return graph


def max_in_degree_sink(graph: nx.MultiDiGraph, array: str) -> str | None:
    """The statement that sinks the most dependences of ``array``.

    Section 3.1's "node which is a sink to the dependence vectors from
    each of the remaining r-1 nodes".
    """
    counts: dict[str, int] = {}
    for _, dst, data in graph.edges(data=True):
        if data["array"] == array:
            counts[dst] = counts.get(dst, 0) + 1
    if not counts:
        return None
    return max(counts, key=counts.get)
