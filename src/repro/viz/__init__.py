"""Text-mode visualization: iteration spaces, window profiles, graphs.

Dependency-free renderings for terminals and docs: the Figure-1-style
iteration-space plot with its shaded reuse region, sparkline/bar window
profiles, and Graphviz DOT export of dependence graphs.
"""

from repro.viz.iteration_space import render_iteration_space, render_reuse_region
from repro.viz.profiles import (
    render_histogram,
    render_liveness_profile,
    render_profile_bars,
    sparkline,
)
from repro.viz.graphs import dependence_graph_dot

__all__ = [
    "render_iteration_space",
    "render_reuse_region",
    "sparkline",
    "render_histogram",
    "render_liveness_profile",
    "render_profile_bars",
    "dependence_graph_dot",
]
