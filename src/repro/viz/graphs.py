"""Graphviz DOT export of dependence graphs."""

from __future__ import annotations

from repro.ir.program import Program

_KIND_STYLE = {
    "flow": "solid",
    "anti": "dashed",
    "output": "bold",
    "input": "dotted",
}


def dependence_graph_dot(program: Program, include_input: bool = True) -> str:
    """DOT source for the statement-level dependence graph.

    Edge labels carry the array and distance vector; edge style encodes
    the dependence kind (flow solid, anti dashed, output bold, input
    dotted).

    >>> from repro.ir import parse_program
    >>> p = parse_program('for i = 1 to 5 { S1: A[i] = A[i-1] }')
    >>> print(dependence_graph_dot(p))  # doctest: +ELLIPSIS
    digraph dependences {
    ...
    }
    """
    from repro.dependence.graph import dependence_graph

    graph = dependence_graph(program, include_input=include_input)
    lines = ["digraph dependences {"]
    lines.append('  rankdir=LR;')
    for node in graph.nodes:
        lines.append(f'  "{node}" [shape=box];')
    for src, dst, data in graph.edges(data=True):
        kind = data["kind"].value
        style = _KIND_STYLE.get(kind, "solid")
        label = f'{data["array"]} {data["distance"]}'
        lines.append(
            f'  "{src}" -> "{dst}" [label="{label}", style={style}];'
        )
    lines.append("}")
    return "\n".join(lines)
