"""ASCII rendering of 2-D iteration spaces (the paper's Figure 1).

``render_reuse_region`` shades the iterations that are sinks of a
dependence — the region whose area is the paper's ``reuse`` count — and
draws the dependence vector from the origin corner.
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.loop import LoopNest


def render_iteration_space(
    nest: LoopNest,
    marked: Sequence[tuple[int, int]] = (),
    mark: str = "*",
    empty: str = ".",
) -> str:
    """Grid of the 2-D iteration space, ``i`` down, ``j`` across.

    ``marked`` points render as ``mark``.  Degrades gracefully for big
    nests by capping at 40x80 cells with an ellipsis note.
    """
    if nest.depth != 2:
        raise ValueError("render_iteration_space draws 2-D nests")
    (i_lo, j_lo), (i_hi, j_hi) = nest.lowers, nest.uppers
    capped_i = min(i_hi, i_lo + 39)
    capped_j = min(j_hi, j_lo + 79)
    marked_set = set(marked)
    lines = []
    header = "     " + "".join(
        str(j % 10) for j in range(j_lo, capped_j + 1)
    )
    lines.append(header)
    for i in range(i_lo, capped_i + 1):
        row = "".join(
            mark if (i, j) in marked_set else empty
            for j in range(j_lo, capped_j + 1)
        )
        lines.append(f"{i:>4} {row}")
    if capped_i < i_hi or capped_j < j_hi:
        lines.append("     ... (clipped)")
    return "\n".join(lines)


def render_reuse_region(
    nest: LoopNest, dependence: tuple[int, int]
) -> str:
    """Figure 1: shade the sink region of one dependence vector.

    An iteration ``(i, j)`` is shaded when ``(i, j) - d`` is also in the
    iteration space — it re-touches data produced ``d`` earlier.  The
    shaded cell count equals ``(N1 - |d1|) (N2 - |d2|)``.

    >>> from repro.ir import Loop, LoopNest
    >>> art = render_reuse_region(LoopNest([Loop("i", 1, 5), Loop("j", 1, 5)]), (2, 1))
    >>> art.count("#")
    12
    """
    if nest.depth != 2:
        raise ValueError("render_reuse_region draws 2-D nests")
    d1, d2 = dependence
    # Sinks only (the source iteration minus d lies inside the space),
    # matching the paper's shaded region.
    shaded = [
        (i, j)
        for i, j in nest.iterate()
        if nest.contains((i - d1, j - d2))
    ]
    art = render_iteration_space(nest, shaded, mark="#")
    count = len(shaded)
    return art + f"\n shaded (reuse) cells: {count}"
