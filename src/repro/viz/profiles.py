"""Sparklines and bar renderings of window profiles."""

from __future__ import annotations

from typing import Sequence

_SPARK_CHARS = " .:-=+*#%@"


def sparkline(values: Sequence[int], width: int = 60) -> str:
    """One-line density plot of a series, resampled to ``width`` chars.

    >>> sparkline([0, 1, 2, 3], width=4)
    ' -*@'
    """
    values = list(values)
    if not values:
        return ""
    peak = max(values)
    if len(values) > width:
        # Max-pool resample so peaks survive downsampling.
        bucket = len(values) / width
        resampled = [
            max(values[int(k * bucket): max(int((k + 1) * bucket), int(k * bucket) + 1)])
            for k in range(width)
        ]
    else:
        resampled = values
    if peak == 0:
        return " " * len(resampled)
    out = []
    top = len(_SPARK_CHARS) - 1
    for v in resampled:
        out.append(_SPARK_CHARS[round(v / peak * top)])
    return "".join(out)


def render_profile_bars(
    values: Sequence[int],
    height: int = 8,
    width: int = 60,
    title: str = "",
) -> str:
    """Multi-line bar chart of a window profile.

    The y-axis is labeled with the peak (the MWS) and zero.
    """
    values = list(values)
    if not values:
        return title
    peak = max(values)
    if len(values) > width:
        bucket = len(values) / width
        values = [
            max(values[int(k * bucket): max(int((k + 1) * bucket), int(k * bucket) + 1)])
            for k in range(width)
        ]
    lines = []
    if title:
        lines.append(title)
    for level in range(height, 0, -1):
        threshold = peak * level / height if peak else 1
        row = "".join("#" if v >= threshold else " " for v in values)
        label = f"{peak:>5} |" if level == height else "      |"
        lines.append(label + row)
    lines.append("    0 +" + "-" * len(values))
    return "\n".join(lines)
