"""Sparklines and bar renderings of window and liveness profiles."""

from __future__ import annotations

from typing import Mapping, Sequence

_SPARK_CHARS = " .:-=+*#%@"


def sparkline(values: Sequence[int], width: int = 60) -> str:
    """One-line density plot of a series, resampled to ``width`` chars.

    >>> sparkline([0, 1, 2, 3], width=4)
    ' -*@'
    """
    values = list(values)
    if not values:
        return ""
    peak = max(values)
    if len(values) > width:
        # Max-pool resample so peaks survive downsampling.
        bucket = len(values) / width
        resampled = [
            max(values[int(k * bucket): max(int((k + 1) * bucket), int(k * bucket) + 1)])
            for k in range(width)
        ]
    else:
        resampled = values
    if peak == 0:
        return " " * len(resampled)
    out = []
    top = len(_SPARK_CHARS) - 1
    for v in resampled:
        out.append(_SPARK_CHARS[round(v / peak * top)])
    return "".join(out)


def render_profile_bars(
    values: Sequence[int],
    height: int = 8,
    width: int = 60,
    title: str = "",
) -> str:
    """Multi-line bar chart of a window profile.

    The y-axis is labeled with the peak (the MWS) and zero.
    """
    values = list(values)
    if not values:
        return title
    peak = max(values)
    if len(values) > width:
        bucket = len(values) / width
        values = [
            max(values[int(k * bucket): max(int((k + 1) * bucket), int(k * bucket) + 1)])
            for k in range(width)
        ]
    lines = []
    if title:
        lines.append(title)
    for level in range(height, 0, -1):
        threshold = peak * level / height if peak else 1
        row = "".join("#" if v >= threshold else " " for v in values)
        label = f"{peak:>5} |" if level == height else "      |"
        lines.append(label + row)
    lines.append("    0 +" + "-" * len(values))
    return "\n".join(lines)


def render_histogram(
    counts: Mapping[int, int],
    width: int = 40,
    title: str = "",
) -> str:
    """Horizontal bar chart of a ``value -> count`` histogram.

    >>> print(render_histogram({1: 4, 3: 2}, width=4))
        1 |#### 4
        3 |##   2
    """
    lines = [title] if title else []
    if not counts:
        lines.append("(empty histogram)")
        return "\n".join(lines)
    top = max(counts.values())
    for value in sorted(counts):
        count = counts[value]
        bar = "#" * max(1, round(count / top * width)) if count else ""
        lines.append(f"{value:>5} |{bar:<{width}} {count}")
    return "\n".join(lines)


def render_liveness_profile(profile, width: int = 60, height: int = 8) -> str:
    """Full text rendering of a :class:`~repro.window.LivenessProfile`:
    headline (peak + location), occupancy trajectory, reuse distances."""
    at_point = (
        f" = iteration {tuple(profile.peak_point)}"
        if profile.peak_point is not None
        else ""
    )
    lines = [
        f"liveness of {profile.array}: peak {profile.peak} at "
        f"t={profile.peak_time}{at_point}, "
        f"mean occupancy {profile.mean_occupancy:.1f}",
        render_profile_bars(
            profile.occupancy,
            height=height,
            width=width,
            title="occupancy over time:",
        ),
    ]
    if profile.reuse_histogram:
        lines.append(
            render_histogram(
                profile.reuse_histogram,
                width=width // 2,
                title="reuse distances (iteration gap -> count):",
            )
        )
    return "\n".join(lines)
