"""Closed-form distinct-access counts for uniformly generated references.

The paper's Section 3 formulas:

* ``d == n`` (access matrix square, non-singular), ``r`` references:
  the ``r - 1`` dependences into the sink reference give
  ``reuse = sum_k prod_j (N_j - |d_kj|)`` and
  ``A_d = r * prod_j N_j - reuse``  (Examples 2, 3).

* ``d == n - 1``, single reference: reuse flows along the kernel vector
  ``v`` of the access matrix, ``reuse = prod_j (N_j - |v_j|)`` and
  ``A_d = prod_j N_j - reuse``  (Examples 4, 5).

Both are exact under the paper's assumptions; the estimator records which
case fired and whether exactness is guaranteed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro import obs
from repro.dependence.analysis import self_reuse_distance
from repro.dependence.reuse import group_reuse_distances
from repro.ir.loop import LoopNest
from repro.ir.program import Program
from repro.ir.reference import ArrayRef


@dataclass(frozen=True)
class DistinctAccessEstimate:
    """Result of a distinct-access estimate for one array.

    ``lower == upper`` when the method is exact; they bracket the true
    count otherwise.  ``method`` names the formula used (for reports and
    tests), ``exact`` records the paper's exactness guarantee.
    """

    array: str
    lower: int
    upper: int
    method: str
    exact: bool
    reuse: int | None = None

    @property
    def value(self) -> int:
        """Point estimate; midpoint when only bounds are known."""
        return (self.lower + self.upper) // 2

    def __str__(self) -> str:
        if self.exact:
            return f"{self.array}: A_d = {self.lower} ({self.method})"
        return f"{self.array}: {self.lower} <= A_d <= {self.upper} ({self.method})"


def reuse_from_distances(
    trip_counts: Sequence[int], distances: Sequence[Sequence[int]]
) -> int:
    """``sum_k prod_j max(0, N_j - |d_kj|)`` — the shaded-region count.

    Each dependence ``d`` contributes the number of iterations that are a
    sink of that dependence: the box shrunk by ``|d_j|`` per axis
    (Figure 1).  Components larger than the trip count clamp to zero.

    >>> reuse_from_distances((10, 10), [(1, 0), (0, 1), (1, 1)])
    261
    """
    total = 0
    for d in distances:
        if len(d) != len(trip_counts):
            raise ValueError("distance arity != nest depth")
        term = 1
        for n, dj in zip(trip_counts, d):
            term *= max(0, n - abs(dj))
        total += term
    return total


def distinct_accesses_same_rank(
    program: Program, array: str
) -> DistinctAccessEstimate:
    """Paper Section 3.1 (``d == n``, non-singular access, r references).

    >>> from repro.ir import parse_program
    >>> p = parse_program('''
    ... for i = 1 to 10 {
    ...   for j = 1 to 10 {
    ...     Z[i][j] = A[i][j] + A[i-1][j] + A[i][j-1] + A[i-1][j-1]
    ...   }
    ... }
    ... ''')
    >>> distinct_accesses_same_rank(p, "A").upper
    139
    """
    refs = list(program.refs_to(array))
    if not refs:
        raise KeyError(array)
    if not program.is_uniformly_generated(array):
        raise ValueError(f"{array}: references are not uniformly generated")
    access = refs[0].access
    if not access.is_square() or access.det() == 0:
        raise ValueError(f"{array}: access matrix is singular or not square")
    trips = program.nest.trip_counts
    total = program.nest.total_iterations
    # References sharing an offset touch exactly the same elements; the
    # sink formula counts reuse only along nonzero distances, so duplicates
    # must collapse to a single reference before counting r.
    refs = list({ref.offset: ref for ref in refs}.values())
    r = len(refs)
    if r == 1:
        return DistinctAccessEstimate(array, total, total, "d==n single ref", True, 0)
    distances = group_reuse_distances(refs)
    reuse = reuse_from_distances(trips, distances)
    value = r * total - reuse
    # The sink-based formula counts only the r-1 dependences into one sink
    # reference.  For r == 2 that is all the reuse there is and the count
    # is exact; for r > 2 the non-sink references can overlap each other
    # (paper Example 3: formula 139, true union 121), so the value is an
    # upper bound on the true distinct count.
    exact = r == 2
    # For r > 2 the formula value is an upper bound; any single injective
    # reference already touches `total` distinct elements, the floor.
    lower = value if exact else min(total, value)
    return DistinctAccessEstimate(array, lower, value, "d==n multi ref", exact, reuse)


def distinct_accesses_single_ref(
    ref: ArrayRef, nest: LoopNest
) -> DistinctAccessEstimate:
    """Paper Section 3.2 (``d == n - 1``, single reference).

    >>> from repro.ir import NestBuilder
    >>> p = (NestBuilder().loop("i", 1, 20).loop("j", 1, 10)
    ...      .use("S1", ("A", [[2, 5]], [1])).build())
    >>> distinct_accesses_single_ref(p.references[0], p.nest).lower
    80
    """
    v = self_reuse_distance(ref)
    trips = nest.trip_counts
    total = nest.total_iterations
    if v is None:
        return DistinctAccessEstimate(
            ref.array, total, total, "injective single ref", True, 0
        )
    reuse = reuse_from_distances(trips, [v])
    value = total - reuse
    # Exact when the kernel is one-dimensional and the reuse vector fits in
    # the box (paper's d == n-1 case).
    exact = len(ref.reuse_directions()) == 1
    return DistinctAccessEstimate(
        ref.array, value, value, "d==n-1 single ref", exact, reuse
    )


@obs.profiled("estimate.distinct")
def estimate_distinct_accesses(
    program: Program, array: str
) -> DistinctAccessEstimate:
    """Dispatch to the right Section 3 formula for one array.

    Uniformly generated cases get exact closed forms; non-uniform cases
    fall back to the Section 3.2 bounds (see
    :func:`repro.estimation.bounds.nonuniform_bounds`).  The mixed case —
    multiple references *and* a non-trivial kernel — is not given a closed
    form in the paper; we combine group and self reuse and flag the result
    as not guaranteed exact.
    """
    refs = list(program.refs_to(array))
    if not refs:
        raise KeyError(array)
    if not program.is_uniformly_generated(array):
        from repro.estimation.bounds import nonuniform_bounds

        b = nonuniform_bounds(program, array)
        return DistinctAccessEstimate(
            array, b.lower, b.upper, "non-uniform bounds", False, None
        )
    access = refs[0].access
    has_kernel = bool(refs[0].reuse_directions())
    if not has_kernel and access.is_square():
        return distinct_accesses_same_rank(program, array)
    if not has_kernel:
        # Injective but rectangular (d > n): each iteration a fresh element
        # per offset group.
        trips = program.nest.trip_counts
        total = program.nest.total_iterations
        offsets = {ref.offset for ref in refs}
        if len(offsets) == 1:
            return DistinctAccessEstimate(array, total, total, "injective", True, 0)
        distances = group_reuse_distances(refs)
        reuse = reuse_from_distances(trips, distances)
        value = len(refs) * total - reuse
        return DistinctAccessEstimate(array, value, value, "injective multi ref", True, reuse)
    if len(refs) == 1:
        return distinct_accesses_single_ref(refs[0], program.nest)
    # Multiple references with kernel reuse: exact union counting covers
    # the common DSP shape (1-D array, 2-deep nest); see
    # repro.estimation.multiref.
    from repro.estimation.multiref import (
        distinct_accesses_multiref_1d,
        supports_exact_multiref,
    )

    if supports_exact_multiref(program, array):
        return distinct_accesses_multiref_1d(program, array)
    # Remaining mixed cases: self reuse along the kernel plus group reuse.
    # Estimate by composing both reuse sources; exactness not guaranteed
    # (the paper leaves this case to future work).
    trips = program.nest.trip_counts
    total = program.nest.total_iterations
    v = self_reuse_distance(refs[0])
    self_reuse = reuse_from_distances(trips, [v]) if v is not None else 0
    offsets = {ref.offset for ref in refs}
    distances = group_reuse_distances(
        [ref for k, ref in enumerate(refs) if ref.offset not in {r.offset for r in refs[:k]}]
    )
    group_reuse = reuse_from_distances(trips, distances)
    per_ref_distinct = total - self_reuse
    value = len(offsets) * per_ref_distinct - group_reuse
    lower = max(per_ref_distinct, value)
    upper = len(offsets) * per_ref_distinct
    lower = min(lower, upper)
    return DistinctAccessEstimate(
        array, lower, upper, "d<n multi ref (composed)", False, self_reuse + group_reuse
    )
