"""Parametric (symbolic-in-the-bounds) analysis infrastructure.

The paper states MWS and distinct-access counts as *functions of the
loop limits* — but the exact engines answer for one concrete bound
vector at a time.  This module closes the gap: it derives closed-form
sympy expressions in the symbolic trip counts ``(N1..Nn)`` that agree
*exactly* with the simulators, by exact polynomial interpolation of the
engines themselves on a small grid of resized programs, verified on
held-out bound vectors before being trusted.

Why interpolation rather than the paper's formulas: eq. (2) and the
Section 4.3 form are *estimates* (Example 8's identity estimate is 50
where the exact window is 44).  The exact MWS of a fixed access pattern
is, away from degenerate small-bound regimes, a polynomial of low
degree in each trip count (the window is a union of boxes whose extents
are affine in the ``N_j``); sampling the exact engine at enough sizes
and interpolating recovers that polynomial exactly — integer arithmetic
end to end, no floating point.  Where the polynomial regime has not yet
been entered (trip counts smaller than the reuse distances) the derived
expression is *not* valid, so every :class:`ParametricExpr` carries a
``domain`` — minimal trip counts per level — and refuses to substitute
below it.  Verification failure (a regime switch inside the sampled
range, e.g. a ``Min`` between spans) makes derivation return ``None``
and callers fall back to plain simulation; the fallback is always safe.

Keying: a parametric result is a property of the program *family* — the
access structure with the loop bounds stripped.  :func:`parametric_signature`
canonicalizes lower bounds to 1 (folding the shift into the reference
offsets, which preserves the access stream exactly) and hashes the rest,
so one derived record answers every member of the family.

Counters: ``param.derived`` (successful derivations), ``param.fallback``
(queries answered by simulation because derivation failed or the bounds
fell outside the domain), ``param.subs_hits`` (queries answered by pure
substitution).
"""

from __future__ import annotations

import hashlib
import itertools
import random
from dataclasses import dataclass
from typing import Callable, Sequence

import sympy

from repro import obs
from repro.dependence.analysis import dependence_distance, self_reuse_distance
from repro.estimation.symbolic import trip_symbols
from repro.ir.loop import Loop, LoopNest
from repro.ir.program import Program
from repro.ir.reference import ArrayRef
from repro.ir.statement import Statement
from repro.store.lru import LRUCache

#: Hard ceiling on nest depth for derivation (grid size is exponential).
MAX_DEPTH = 6

#: Largest interpolation grid we are willing to evaluate.
_MAX_GRID = 256

#: Largest resized-program iteration count touched during derivation;
#: beyond this, deriving costs more than it can plausibly save.
_MAX_POINT_ITERS = 400_000

#: Verification points beyond the per-axis corners.
_EXTRA_SAMPLES = 3


# ----------------------------------------------------------------------
# program-family plumbing
# ----------------------------------------------------------------------

def with_trip_counts(program: Program, trips: Sequence[int]) -> Program:
    """The same program with trip counts replaced (lower bounds kept).

    Explicit declarations are dropped: they may not cover the resized
    footprint, and nothing the parametric engines compute (windows,
    distinct counts) consults them.
    """
    if len(trips) != program.nest.depth:
        raise ValueError(
            f"{len(trips)} trip counts for a depth-{program.nest.depth} nest"
        )
    loops = tuple(
        Loop(lp.index, lp.lower, lp.lower + int(t) - 1)
        for lp, t in zip(program.nest.loops, trips)
    )
    return Program(LoopNest(loops), program.statements, name=program.name)


def normalize_lowers(program: Program) -> Program:
    """Shift every loop to start at 1, folding the shift into offsets.

    Iteration ``i`` of the original maps to ``i' = i - (lower - 1)`` and
    the element ``A i + c`` becomes ``A i' + (c + A (lower - 1))`` — the
    access stream is untouched, so every window/distinct result carries
    over exactly.
    """
    lowers = program.nest.lowers
    if all(lo == 1 for lo in lowers):
        return program
    shift = tuple(lo - 1 for lo in lowers)
    loops = tuple(Loop(lp.index, 1, lp.trip_count) for lp in program.nest.loops)

    def adjust(ref: ArrayRef) -> ArrayRef:
        delta = ref.access.apply(shift)
        offset = tuple(c + d for c, d in zip(ref.offset, delta))
        return ArrayRef(ref.array, ref.access, offset, ref.kind)

    statements = tuple(
        Statement(
            stmt.label,
            tuple(adjust(r) for r in stmt.writes),
            tuple(adjust(r) for r in stmt.reads),
        )
        for stmt in program.statements
    )
    return Program(LoopNest(loops), statements, name=program.name)


def parametric_signature(program: Program) -> str:
    """Content hash of the program *family*: structure minus the bounds.

    Two programs share a parametric signature iff they differ only in
    their loop bounds (after lower-bound normalization), i.e. iff one
    derived expression answers both.
    """
    norm = normalize_lowers(program)
    content = (
        norm.nest.depth,
        tuple(
            (ref.array, ref.access.rows, tuple(ref.offset), ref.is_write)
            for ref in norm.references
        ),
    )
    return hashlib.sha256(repr(content).encode()).hexdigest()


# ----------------------------------------------------------------------
# the derived object
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ParametricExpr:
    """A closed-form expression in the symbolic trip counts.

    ``domain`` is the per-level minimal trip count at which the
    expression was derived and verified; :meth:`substitute` returns
    ``None`` below it (the caller falls back to simulation) rather than
    ever returning a value the derivation did not cover.
    """

    kind: str  # "mws" | "distinct" | "reuse"
    array: str | None
    expr: sympy.Expr
    symbols: tuple[sympy.Symbol, ...]
    domain: tuple[int, ...]
    method: str
    checked: int  # held-out bound vectors the expression was verified on

    def substitute(self, trips: Sequence[int]) -> int | None:
        """Exact value at concrete trip counts, or ``None`` off-domain."""
        if len(trips) != len(self.symbols):
            raise ValueError(
                f"{len(trips)} trip counts for {len(self.symbols)} symbols"
            )
        if any(t < d for t, d in zip(trips, self.domain)):
            return None
        value = self.expr.subs(
            {s: sympy.Integer(int(t)) for s, t in zip(self.symbols, trips)}
        )
        if value.free_symbols or not value.is_Integer or value < 0:
            return None
        return int(value)

    def __str__(self) -> str:
        target = self.array if self.array is not None else "<total>"
        return f"{self.kind}({target}) = {self.expr}  [{self.method}]"


def encode_parametric(pe: ParametricExpr) -> dict:
    """JSON-safe payload for :mod:`repro.store` persistence."""
    return {
        "schema": 1,
        "kind": pe.kind,
        "array": pe.array,
        "expr": sympy.srepr(pe.expr),
        "symbols": [s.name for s in pe.symbols],
        "domain": list(pe.domain),
        "method": pe.method,
        "checked": pe.checked,
    }


def decode_parametric(value) -> ParametricExpr | None:
    """Stored payload -> :class:`ParametricExpr`; ``None`` (a miss) when
    the payload does not decode — never an exception."""
    try:
        if value.get("schema") != 1:
            raise ValueError("unknown parametric schema")
        symbols = trip_symbols(len(value["symbols"]))
        if [s.name for s in symbols] != list(value["symbols"]):
            raise ValueError("unexpected symbol names")
        expr = sympy.sympify(value["expr"])
        if not expr.free_symbols <= set(symbols):
            raise ValueError("stray free symbols")
        domain = tuple(int(d) for d in value["domain"])
        if len(domain) != len(symbols):
            raise ValueError("domain arity mismatch")
        return ParametricExpr(
            str(value["kind"]),
            value["array"],
            expr,
            symbols,
            domain,
            str(value["method"]),
            int(value["checked"]),
        )
    except (AttributeError, KeyError, TypeError, ValueError, sympy.SympifyError):
        obs.counter("store.corrupt")
        return None


# ----------------------------------------------------------------------
# derivation: exact interpolation of the exact engines
# ----------------------------------------------------------------------

def derivation_base(
    program: Program,
    array: str | None = None,
    transformation=None,
) -> tuple[int, ...]:
    """Per-level minimal trip counts at which derivation is attempted.

    The polynomial regime starts once every trip count clears the reuse
    distances along its level with margin — empirically the boundary
    sits near *twice* the distance component (e.g. ``X[2i + 5j]`` with
    reuse vector ``(5, -2)`` saturates in ``N1`` at 10): below it, the
    box truncates how many carriers of the reuse fit, clamping terms
    like ``min(N1 - d1, ...)``.  This is a heuristic, not a proof —
    verification decides; a base that is too small simply makes
    derivation fail and the caller fall back to simulation.

    Every *pairwise* dependence distance is folded in, not just the
    Section-3 common-sink set: a distance that is out of bounds for the
    concrete program (hence invisible to its numeric estimate) still
    bends the parametric family once the bounds grow past it, and a
    base below it would verify entirely inside the clamped regime
    (found by the conformance fuzz: an ``A d = Δb`` solution of
    ``(8, 5, 7)`` between two writes with no common sink).  For the
    same reason the requirement is not capped: an expensive base makes
    :func:`derivation_feasible` decline rather than silently verifying
    short of the regime boundary.
    """
    depth = program.nest.depth
    comp = [0] * depth
    arrays = (array,) if array is not None else program.arrays

    def fold(vector) -> None:
        for j, d in enumerate(vector):
            comp[j] = max(comp[j], abs(int(d)))

    for name in arrays:
        refs = list(program.refs_to(name))
        for ref in refs:
            vector = self_reuse_distance(ref)
            if vector is not None:
                fold(vector)
        if len(refs) > 1 and program.is_uniformly_generated(name):
            # Both orientations: dependence_distance keeps only the lex-
            # positive family member, and with an empty kernel the
            # particular solution of one orientation is lex-negative.
            for i, src in enumerate(refs):
                for sink in refs[i + 1:]:
                    for pair in ((src, sink), (sink, src)):
                        try:
                            vector = dependence_distance(*pair)
                        except (ValueError, KeyError):
                            continue
                        if vector is not None:
                            fold(vector)
    bump = 0
    if transformation is not None:
        bump = 2 * max(abs(v) for row in transformation.rows for v in row)
    return tuple(max(3, 2 * c + 2 + bump) for c in comp)


def derivation_supported(program: Program, array: str | None = None) -> bool:
    """Whether the regime-start heuristic is trustworthy for the array.

    References that are not uniformly generated (different access
    matrices on one array) intersect along lattices
    :func:`derivation_base` cannot see: a cross-statement solution of
    ``A1 x + b1 = A2 y + b2`` entering the iteration box past the
    verification window makes an interpolant verify entirely inside
    the clamped regime yet miscount beyond it (corpus seed 1007, where
    the images first meet at ``N3 = 9``).  With no sound bound on
    where those regimes start, derivation declines and the caller
    simulates — the fallback contract.  ``array=None`` (the program
    total) requires every array to qualify.
    """
    names = (array,) if array is not None else program.arrays
    for name in names:
        refs = list(program.refs_to(name))
        if len(refs) > 1 and not program.is_uniformly_generated(name):
            return False
    return True


def _lagrange_basis(
    symbol: sympy.Symbol, nodes: Sequence[int], k: int
) -> sympy.Expr:
    numerator = sympy.Integer(1)
    denominator = 1
    for j, xj in enumerate(nodes):
        if j == k:
            continue
        numerator *= symbol - xj
        denominator *= nodes[k] - xj
    return numerator / sympy.Integer(denominator)


def _fit(
    nodes_per_dim: Sequence[Sequence[int]],
    values: dict[tuple[int, ...], int],
    symbols: Sequence[sympy.Symbol],
) -> sympy.Expr:
    """Tensor-product Lagrange interpolant through the grid values.

    Exact rational arithmetic: the result reproduces every grid value
    identically, and is the unique polynomial of the grid's per-variable
    degrees doing so.
    """
    total = sympy.Integer(0)
    for point, value in values.items():
        term = sympy.Integer(value)
        for symbol, nodes, coord in zip(symbols, nodes_per_dim, point):
            term *= _lagrange_basis(symbol, nodes, nodes.index(coord))
        total += term
    return sympy.expand(total)


def _verification_points(
    base: Sequence[int], spread: int, rng: random.Random, extra: int
) -> list[tuple[int, ...]]:
    """Held-out bound vectors: per-axis corners, the diagonal, random fill.

    The box corners (one axis at its minimum while the rest sit high,
    and vice versa) expose ``Min``-style regime switches between an axis
    and a constant.  The *square* points — every trip count at
    ``max(base)``, then each axis stretched past it — straddle the
    ``N_i == N_j`` diagonal, where skewing transformations put their
    regime boundaries; an asymmetric base box sits entirely on one side
    of that diagonal and would never notice the switch (found by the
    parametric conformance fuzz).
    """
    depth = len(base)
    points: set[tuple[int, ...]] = set()
    high = tuple(b + spread for b in base)
    points.add(high)
    for j in range(depth):
        low_j = list(high)
        low_j[j] = base[j]
        points.add(tuple(low_j))
        high_j = list(base)
        high_j[j] = base[j] + spread
        points.add(tuple(high_j))
    peak = max(base)
    square = (peak,) * depth
    points.add(square)
    for j in range(depth):
        stretched = list(square)
        stretched[j] = peak + spread
        points.add(tuple(stretched))
    target = min(2 * depth + 1 + extra, (spread + 1) ** depth)
    while len(points) < target:
        points.add(tuple(b + rng.randint(0, spread) for b in base))
    return sorted(points)


def derivation_feasible(base: Sequence[int], spread: int) -> bool:
    """Would derivation stay within the evaluation budget?

    Budgeted against the largest verification point — the stretched
    square corner at ``max(base) + spread`` on every axis — not just
    the base box.
    """
    if len(base) > MAX_DEPTH:
        return False
    total = (max(base) + spread) ** len(base)
    return total <= _MAX_POINT_ITERS


def verify_expression(
    expr: sympy.Expr,
    symbols: Sequence[sympy.Symbol],
    evaluate: Callable[[tuple[int, ...]], int],
    base: Sequence[int],
    spread: int,
    rng: random.Random,
) -> int | None:
    """Count of held-out points where ``expr`` matches ``evaluate``,
    or ``None`` on the first mismatch."""
    points = _verification_points(base, spread, rng, _EXTRA_SAMPLES)
    for point in points:
        got = expr.subs({s: sympy.Integer(v) for s, v in zip(symbols, point)})
        if got != evaluate(point):
            return None
    return len(points)


def derive_polynomial(
    evaluate: Callable[[tuple[int, ...]], int],
    depth: int,
    base: Sequence[int],
    degrees: Sequence[int] = (1, 2),
    seed: int = 0,
) -> tuple[sympy.Expr, tuple[sympy.Symbol, ...], int, str] | None:
    """Interpolate ``evaluate`` as a polynomial in the trip counts.

    Tries each per-variable degree in order; an interpolant is accepted
    only if it reproduces ``evaluate`` exactly on every held-out
    verification point (corners + random, deterministic in ``seed``).
    Returns ``(expr, symbols, checked, method)`` or ``None``.
    """
    spread = max(degrees) + 3
    if not derivation_feasible(base, spread):
        return None
    symbols = trip_symbols(depth)
    rng = random.Random(f"param:{seed}:{depth}:{tuple(base)}")
    cache: dict[tuple[int, ...], int] = {}

    def cached_eval(point: tuple[int, ...]) -> int:
        if point not in cache:
            cache[point] = int(evaluate(point))
        return cache[point]

    check_points = _verification_points(base, spread, rng, _EXTRA_SAMPLES)
    for degree in degrees:
        if (degree + 1) ** depth > _MAX_GRID:
            continue
        nodes_per_dim = [
            tuple(b + k for k in range(degree + 1)) for b in base
        ]
        grid = list(itertools.product(*nodes_per_dim))
        values = {point: cached_eval(point) for point in grid}
        expr = _fit(nodes_per_dim, values, symbols)
        ok = all(
            expr.subs({s: sympy.Integer(v) for s, v in zip(symbols, point)})
            == cached_eval(point)
            for point in check_points
        )
        if ok:
            return expr, symbols, len(check_points), f"interpolated-deg{degree}"
    return None


# ----------------------------------------------------------------------
# cache + store resolution
# ----------------------------------------------------------------------

_PARAM_CACHE_LIMIT = 1024
_PARAM_CACHE: LRUCache = LRUCache(_PARAM_CACHE_LIMIT, counter="param.cache")

#: In-cache marker for "derivation was attempted and failed" — kept so a
#: hot loop over an underivable program pays the derivation cost once.
_FAILED = object()

_FAILED_PAYLOAD = {"schema": 1, "failed": True}


def clear_param_cache() -> None:
    """Drop memoized parametric derivations (tests, benchmarks)."""
    _PARAM_CACHE.clear()


def _t_rows(transformation) -> tuple | None:
    return None if transformation is None else transformation.rows


def resolve_parametric(
    program: Program,
    kind: str,
    array: str | None = None,
    transformation=None,
    store=None,
    engine: str = "auto",
    seed: int = 0,
) -> ParametricExpr | None:
    """Derived expression for the program's family — cache, then store,
    then a fresh derivation (persisting failures too, so warm runs skip
    re-deriving what cannot be derived)."""
    psig = parametric_signature(program)
    rows = _t_rows(transformation)
    key = (psig, kind, array, rows)
    cached = _PARAM_CACHE.get(key)
    if cached is not None:
        return None if cached is _FAILED else cached
    store_key = {"psig": psig, "kind": kind, "array": array, "t": rows}
    if store is not None:
        payload = store.get("parametric", store_key)
        if payload is not None:
            if isinstance(payload, dict) and payload.get("failed") is True:
                _PARAM_CACHE.put(key, _FAILED)
                return None
            decoded = decode_parametric(payload)
            if decoded is not None:
                _PARAM_CACHE.put(key, decoded)
                return decoded
    with obs.span("param.derive", kind=kind, array=array or "<total>"):
        derived = _derive(program, kind, array, transformation, engine, seed)
    if derived is None:
        obs.counter("param.derive_failed")
        _PARAM_CACHE.put(key, _FAILED)
        if store is not None:
            store.put("parametric", store_key, dict(_FAILED_PAYLOAD))
        return None
    obs.counter("param.derived")
    _PARAM_CACHE.put(key, derived)
    if store is not None:
        store.put("parametric", store_key, encode_parametric(derived))
    return derived


def _derive(
    program: Program,
    kind: str,
    array: str | None,
    transformation,
    engine: str,
    seed: int,
) -> ParametricExpr | None:
    # Imported lazily: window.symbolic imports this module.
    if kind == "mws":
        from repro.window.symbolic import derive_parametric_mws

        return derive_parametric_mws(
            program,
            array=array,
            transformation=transformation,
            engine=engine,
            seed=seed,
        )
    if kind == "distinct":
        from repro.estimation.symbolic import derive_parametric_distinct

        if array is None:
            raise ValueError("distinct derivation needs an array name")
        return derive_parametric_distinct(program, array, seed=seed)
    if kind == "reuse":
        from repro.estimation.symbolic import derive_parametric_reuse

        if array is None:
            raise ValueError("reuse derivation needs an array name")
        return derive_parametric_reuse(program, array, seed=seed)
    raise ValueError(f"unknown parametric kind {kind!r}")


def parametric_value(
    program: Program,
    kind: str,
    array: str | None = None,
    transformation=None,
    store=None,
    engine: str = "auto",
    seed: int = 0,
) -> int | None:
    """One concrete answer by derivation + substitution, or ``None``.

    ``None`` means "fall back to the exact engines" (derivation failed
    or the program's bounds sit below the verified domain) and bumps
    ``param.fallback``; a served value bumps ``param.subs_hits``.
    """
    pe = resolve_parametric(
        program,
        kind,
        array=array,
        transformation=transformation,
        store=store,
        engine=engine,
        seed=seed,
    )
    value = None
    if pe is not None:
        value = pe.substitute(program.nest.trip_counts)
    if value is None:
        obs.counter("param.fallback")
        return None
    obs.counter("param.subs_hits")
    return value
