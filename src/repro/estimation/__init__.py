"""Section 3: estimating the number of distinct accesses in nested loops.

Closed forms for uniformly generated references (exact), Sylvester-corrected
bounds for non-uniformly generated references, an enumeration oracle, the
program-level total-memory algorithm, and the parametric engine that
derives those counts as verified closed forms in symbolic trip counts.
"""

from repro.estimation.distinct import (
    DistinctAccessEstimate,
    distinct_accesses_same_rank,
    distinct_accesses_single_ref,
    estimate_distinct_accesses,
    reuse_from_distances,
)
from repro.estimation.bounds import (
    NonUniformBounds,
    nonuniform_bounds,
    transfer_lower_bound,
)
from repro.estimation.exact import (
    exact_distinct_accesses,
    exact_program_footprint,
)
from repro.estimation.multiref import (
    distinct_accesses_multiref_1d,
    supports_exact_multiref,
)
from repro.estimation.memory import (
    ArrayMemoryReport,
    ProgramMemoryReport,
    estimate_program_memory,
)
from repro.estimation.parametric import (
    ParametricExpr,
    parametric_signature,
    parametric_value,
    resolve_parametric,
    with_trip_counts,
)
from repro.estimation.symbolic import (
    derive_parametric_distinct,
    derive_parametric_reuse,
)

__all__ = [
    "DistinctAccessEstimate",
    "reuse_from_distances",
    "distinct_accesses_same_rank",
    "distinct_accesses_single_ref",
    "estimate_distinct_accesses",
    "NonUniformBounds",
    "nonuniform_bounds",
    "transfer_lower_bound",
    "exact_distinct_accesses",
    "exact_program_footprint",
    "distinct_accesses_multiref_1d",
    "supports_exact_multiref",
    "ArrayMemoryReport",
    "ProgramMemoryReport",
    "estimate_program_memory",
    "ParametricExpr",
    "parametric_signature",
    "parametric_value",
    "resolve_parametric",
    "with_trip_counts",
    "derive_parametric_distinct",
    "derive_parametric_reuse",
]
