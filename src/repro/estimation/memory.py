"""Program-level memory estimation — the paper's "algorithm that computes
the total memory required".

Two notions, both reported:

* the *footprint* — total distinct elements accessed (Section 3's
  ``A_d``, summed over arrays): memory needed if every touched element
  must reside on-chip for the whole execution;
* the *declared default* — what the source code allocates (Figure 2's
  ``default`` column).

The sharper live-window number (MWS) lives in :mod:`repro.window`; the
report here optionally includes it so one call produces the full Figure-2
row for a program.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.estimation.distinct import (
    DistinctAccessEstimate,
    estimate_distinct_accesses,
)
from repro.ir.program import Program


@dataclass(frozen=True)
class ArrayMemoryReport:
    """Per-array memory numbers."""

    array: str
    declared: int
    estimate: DistinctAccessEstimate

    @property
    def footprint(self) -> int:
        return self.estimate.value

    @property
    def saving_vs_declared(self) -> float:
        """Fraction of the declaration never touched."""
        if self.declared == 0:
            return 0.0
        return 1.0 - self.footprint / self.declared


@dataclass(frozen=True)
class ProgramMemoryReport:
    """Aggregate memory numbers for a whole program."""

    program: str
    arrays: tuple[ArrayMemoryReport, ...]

    @property
    def declared_total(self) -> int:
        return sum(a.declared for a in self.arrays)

    @property
    def footprint_total(self) -> int:
        return sum(a.footprint for a in self.arrays)

    @property
    def footprint_bounds(self) -> tuple[int, int]:
        return (
            sum(a.estimate.lower for a in self.arrays),
            sum(a.estimate.upper for a in self.arrays),
        )

    @property
    def all_exact(self) -> bool:
        return all(a.estimate.exact for a in self.arrays)

    def __str__(self) -> str:
        lines = [f"program {self.program}: declared={self.declared_total}"]
        for a in self.arrays:
            lines.append(f"  {a.estimate} (declared {a.declared})")
        lines.append(f"  footprint total = {self.footprint_total}")
        return "\n".join(lines)


def estimate_program_memory(program: Program) -> ProgramMemoryReport:
    """Estimate the distinct-access footprint of every array.

    >>> from repro.ir import parse_program
    >>> p = parse_program('''
    ... for i = 1 to 10 {
    ...   for j = 1 to 10 {
    ...     A[i][j] = A[i-1][j+2]
    ...   }
    ... }
    ... ''', name="example2")
    >>> estimate_program_memory(p).footprint_total
    128
    """
    reports = []
    for array in program.arrays:
        decl = program.decl(array)
        estimate = estimate_distinct_accesses(program, array)
        reports.append(ArrayMemoryReport(array, decl.declared_size, estimate))
    return ProgramMemoryReport(program.name, tuple(reports))
