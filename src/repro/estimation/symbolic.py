"""Symbolic (sympy) versions of the Section 3 closed forms.

The paper derives its counts as *expressions in the loop limits*
(``reuse = (N1-1)(N2-2)``, ``A_d = 2 N1 N2 - reuse``, ...).  This module
produces exactly those expressions with sympy symbols for the trip
counts, so a designer can see the memory requirement as a function of
problem size before fixing it — e.g. to solve ``A_d(N) <= capacity`` for
the largest image a given SRAM supports.

Substituting concrete trip counts reproduces the numeric estimators
(property-tested).
"""

from __future__ import annotations

from typing import Sequence

import sympy

from repro.dependence.analysis import self_reuse_distance
from repro.dependence.reuse import group_reuse_distances
from repro.ir.program import Program


def trip_symbols(depth: int) -> tuple[sympy.Symbol, ...]:
    """``(N1, ..., Nn)`` as positive integer sympy symbols."""
    return tuple(
        sympy.Symbol(f"N{k + 1}", positive=True, integer=True)
        for k in range(depth)
    )


def symbolic_reuse_clamped(
    distances: Sequence[Sequence[int]],
    trips: Sequence[sympy.Expr],
) -> sympy.Expr:
    """``sum_k prod_j Max(0, N_j - |d_kj|)`` — the guarded reuse count.

    Unlike :func:`symbolic_reuse`, valid for *every* positive bound
    vector: when a distance component exceeds its trip count the term
    clamps to zero instead of going negative, exactly as the numeric
    :func:`repro.estimation.distinct.reuse_from_distances` does.

    >>> n1, n2 = trip_symbols(2)
    >>> symbolic_reuse_clamped([(1, -2)], (n1, n2)).subs({n1: 5, n2: 2})
    0
    """
    total = sympy.Integer(0)
    for d in distances:
        if len(d) != len(trips):
            raise ValueError("distance arity != nest depth")
        term = sympy.Integer(1)
        for n, dj in zip(trips, d):
            term *= sympy.Max(0, n - abs(dj))
        total += term
    return total


def symbolic_reuse(
    distances: Sequence[Sequence[int]],
    trips: Sequence[sympy.Expr],
) -> sympy.Expr:
    """``sum_k prod_j (N_j - |d_kj|)`` as a sympy expression.

    >>> n1, n2 = trip_symbols(2)
    >>> symbolic_reuse([(1, -2)], (n1, n2))
    (N1 - 1)*(N2 - 2)
    """
    total = sympy.Integer(0)
    for d in distances:
        if len(d) != len(trips):
            raise ValueError("distance arity != nest depth")
        term = sympy.Integer(1)
        for n, dj in zip(trips, d):
            term *= (n - abs(dj))
        total += term
    return sympy.expand(total) if len(distances) > 1 else total


def symbolic_distinct_accesses(
    program: Program, array: str
) -> tuple[sympy.Expr, tuple[sympy.Symbol, ...]]:
    """The paper's ``A_d`` as an expression in symbolic trip counts.

    Dispatches like the numeric estimator: ``d == n`` multi-reference
    (``A_d = r * prod N - reuse``) and single-reference kernel reuse
    (``A_d = prod N - reuse``).  Returns ``(expression, symbols)``;
    substituting the numeric trip counts gives the numeric estimate.

    >>> from repro.ir import parse_program
    >>> p = parse_program('''
    ... for i = 1 to 10 {
    ...   for j = 1 to 10 {
    ...     A[i][j] = A[i-1][j+2]
    ...   }
    ... }
    ... ''')
    >>> expr, syms = symbolic_distinct_accesses(p, "A")
    >>> expr
    2*N1*N2 - (N1 - 1)*(N2 - 2)
    """
    refs = list(program.refs_to(array))
    if not refs:
        raise KeyError(array)
    if not program.is_uniformly_generated(array):
        raise ValueError(
            f"{array}: symbolic closed forms need uniformly generated references"
        )
    trips = trip_symbols(program.nest.depth)
    volume = sympy.Integer(1)
    for n in trips:
        volume *= n
    has_kernel = bool(refs[0].reuse_directions())

    if not has_kernel:
        if len(refs) == 1 or len({r.offset for r in refs}) == 1:
            return volume, trips
        distances = group_reuse_distances(refs)
        reuse = symbolic_reuse(distances, trips)
        return len(refs) * volume - reuse, trips
    if len(refs) == 1 or len({r.offset for r in refs}) == 1:
        vector = self_reuse_distance(refs[0])
        reuse = symbolic_reuse([vector], trips)
        return volume - reuse, trips
    raise ValueError(
        f"{array}: no paper closed form for multiple kernel-reuse references; "
        "use repro.estimation.multiref for the exact numeric count"
    )


def derive_parametric_distinct(program: Program, array: str, seed: int = 0):
    """Exact ``A_d`` as a closed form in the trip counts, or ``None``.

    Strategy: try the paper's closed form first
    (:func:`symbolic_distinct_accesses`) and keep it only if it matches
    the exact enumerative counter on every held-out bound vector — the
    paper's dispatch is exact for its covered cases, but the verification
    makes that an observed fact rather than an assumption.  Where no
    closed form applies (non-uniform references, multiple kernel-reuse
    references) fall back to exact polynomial interpolation of the
    enumerative counter itself.  Either way the returned expression is
    exact on its domain; ``None`` means "enumerate instead".

    >>> from repro.ir import parse_program
    >>> p = parse_program('''
    ... for i = 1 to 10 {
    ...   for j = 1 to 10 {
    ...     A[i][j] = A[i-1][j+2]
    ...   }
    ... }
    ... ''')
    >>> pe = derive_parametric_distinct(p, "A")
    >>> sympy.expand(pe.expr)
    N1*N2 + 2*N1 + N2 - 2
    >>> pe.substitute((10, 10))
    128
    """
    import random

    from repro.estimation.exact import exact_distinct_accesses
    from repro.estimation.parametric import (
        ParametricExpr,
        derivation_base,
        derivation_feasible,
        derivation_supported,
        derive_polynomial,
        verify_expression,
        with_trip_counts,
    )

    if not derivation_supported(program, array):
        return None
    depth = program.nest.depth
    base = derivation_base(program, array)

    def evaluate(trips: tuple[int, ...]) -> int:
        return exact_distinct_accesses(with_trip_counts(program, trips), array)

    try:
        expr, symbols = symbolic_distinct_accesses(program, array)
    except (KeyError, ValueError):
        expr = None
    if expr is not None and derivation_feasible(base, 5):
        rng = random.Random(f"param-distinct:{seed}:{depth}:{base}")
        checked = verify_expression(expr, symbols, evaluate, base, 5, rng)
        if checked is not None:
            return ParametricExpr(
                "distinct", array, expr, tuple(symbols), base,
                "closed-form", checked,
            )
    fit = derive_polynomial(evaluate, depth, base, seed=seed)
    if fit is None:
        return None
    expr, symbols, checked, method = fit
    return ParametricExpr("distinct", array, expr, symbols, base, method, checked)


def derive_parametric_reuse(program: Program, array: str, seed: int = 0):
    """Paper Section 3 reuse count as a guarded closed form, or ``None``.

    Built directly from the constant distance vectors (self reuse from
    the access-matrix kernel, group reuse from offset differences) with
    ``Max(0, ...)`` clamps, so it is valid at *every* positive bound
    vector — the domain is all-ones.  ``None`` when the references admit
    no constant distance vectors (non-uniform pairs).
    """
    from repro.estimation.parametric import ParametricExpr

    refs = list(program.refs_to(array))
    if not refs:
        raise KeyError(array)
    if not program.is_uniformly_generated(array):
        return None
    distances: list[tuple[int, ...]] = []
    vector = self_reuse_distance(refs[0])
    if vector is not None:
        distances.append(vector)
    if len(refs) > 1:
        offsets = {r.offset for r in refs}
        if len(offsets) > 1:
            try:
                distances.extend(group_reuse_distances(refs))
            except (KeyError, ValueError):
                return None
    trips = trip_symbols(program.nest.depth)
    expr = symbolic_reuse_clamped(distances, trips)
    return ParametricExpr(
        "reuse", array, expr, trips, (1,) * program.nest.depth,
        "closed-form", 0,
    )


def max_problem_size(
    expression: sympy.Expr,
    symbols: Sequence[sympy.Symbol],
    capacity: int,
    square: bool = True,
) -> int | None:
    """Largest ``N`` with ``A_d(N, ..., N) <= capacity`` (square nests).

    The designer-facing inverse question: how large a problem fits a
    given memory?  Monotone in ``N``, so a doubling-then-bisect search
    on the substituted expression is exact.  Returns None when even
    ``N = 1`` exceeds the capacity.
    """
    if not square:
        raise NotImplementedError("only square problem sizes are searched")
    n = sympy.Symbol("n", positive=True, integer=True)
    single = expression.subs({s: n for s in symbols})

    def value(k: int) -> int:
        return int(single.subs(n, k))

    if value(1) > capacity:
        return None
    hi = 1
    while value(hi * 2) <= capacity:
        hi *= 2
        if hi > 1 << 24:
            return hi  # effectively unbounded for any real capacity
    lo = hi
    hi = hi * 2
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if value(mid) <= capacity:
            lo = mid
        else:
            hi = mid
    return lo
