"""Multiple references with reuse along the kernel (d = n-1, r > 1).

The paper's Section 3.2 stops at single references and notes "the case of
multiple references is not discussed for lack of space".  This module
completes it exactly for the common DSP shape — several uniformly
generated 1-D references in a 2-D nest: each reference's image is the
same structured set shifted by its offset (``repro.polyhedral.image_set``),
and the union of shifted structured sets is computed exactly.

For deeper nests / higher ranks the composed reuse estimate of
:mod:`repro.estimation.distinct` remains the fallback (flagged inexact).
"""

from __future__ import annotations

from repro.estimation.distinct import DistinctAccessEstimate
from repro.ir.program import Program
from repro.polyhedral.image_set import affine_image_1d, union_count


def supports_exact_multiref(program: Program, array: str) -> bool:
    """Can the exact union machinery handle this array?

    Requirements: 2-deep nest, 1-D array, uniformly generated references.
    Non-unit loop lower bounds are handled by normalization (a pure
    translation, count-invariant).
    """
    refs = program.refs_to(array)
    if not refs or not program.is_uniformly_generated(array):
        return False
    return program.nest.depth == 2 and refs[0].rank == 1


def distinct_accesses_multiref_1d(
    program: Program, array: str
) -> DistinctAccessEstimate:
    """Exact distinct-access count for uniformly generated 1-D references.

    >>> from repro.ir import parse_program
    >>> p = parse_program('''
    ... for i = 1 to 25 {
    ...   for j = 1 to 10 {
    ...     X[2*i + 5*j + 1] = X[2*i + 5*j + 5]
    ...   }
    ... }
    ... ''')
    >>> distinct_accesses_multiref_1d(p, "X").lower
    94
    """
    if not supports_exact_multiref(program, array):
        raise ValueError(
            f"{array}: exact multi-reference counting needs a 2-deep nest "
            "with uniformly generated 1-D references"
        )
    from repro.transform.normalization import normalize_lower_bounds

    program = normalize_lower_bounds(program)
    refs = program.refs_to(array)
    a, b = refs[0].access.row(0)
    n1, n2 = program.nest.trip_counts
    base = affine_image_1d(a, b, n1, n2)
    offsets = sorted({ref.offset[0] for ref in refs})
    value = union_count([base.shifted(c) for c in offsets])
    return DistinctAccessEstimate(
        array, value, value, "d==n-1 multi ref (exact union)", True, None
    )
