"""Section 3.2 bounds for non-uniformly generated references.

When references to one array have different access matrices, dependences
are not constant distance vectors and exact closed-form counting is out of
reach (the paper cites Clauss and Pugh for exact-but-expensive methods).
The paper's bounds, for one-dimensional references ``f_k = a_k i + b_k j +
c_k`` over a 2-D nest:

* upper bound: ``UB_max - LB_min + 1`` — the full value interval between
  the smallest attainable value of any reference and the largest;
* lower bound: the upper bound minus the Sylvester gap count
  ``(|a|-1)(|b|-1)/2`` at *each* end of the interval, charged to the
  reference that achieves that extreme (Example 6: ``191 - 6 - 6 = 179``,
  with the actual count 181).

The "lower bound" is the paper's close heuristic, not a guarantee: it
corrects only the two global extremes, so interior gaps — where one
reference's dense region hands over to another's — can push the true
count slightly below it.  The test suite bounds that slack by the total
Sylvester gap mass of the references.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.program import Program
from repro.ir.reference import ArrayRef
from repro.linalg.frobenius import sylvester_count


@dataclass(frozen=True)
class NonUniformBounds:
    """Bounds on the distinct-access count of a non-uniform array."""

    array: str
    lower: int
    upper: int
    lb_min: int
    ub_max: int

    def contains(self, value: int) -> bool:
        return self.lower <= value <= self.upper


def _value_range(ref: ArrayRef, lowers, uppers) -> tuple[int, int]:
    """Exact [min, max] of the (1-D) subscript over the iteration box."""
    row = ref.access.row(0)
    lo = hi = ref.offset[0]
    for coeff, lb, ub in zip(row, lowers, uppers):
        if coeff >= 0:
            lo += coeff * lb
            hi += coeff * ub
        else:
            lo += coeff * ub
            hi += coeff * lb
    return lo, hi


def _end_correction(ref: ArrayRef) -> int:
    """Sylvester gap count near one end of the reference's value range.

    Defined for 2-D nests: the two nonzero coefficients of the subscript
    row.  References with a zero coefficient (or any unit coefficient, via
    the Sylvester formula itself) have no gaps.
    """
    coeffs = [c for c in ref.access.row(0) if c != 0]
    if len(coeffs) < 2:
        return 0
    if len(coeffs) != 2:
        # Deeper nests: gaps are bounded by the two smallest coefficient
        # magnitudes; use them (conservative for the lower bound).
        coeffs = sorted(coeffs, key=abs)[:2]
    return sylvester_count(coeffs[0], coeffs[1])


def nonuniform_bounds(program: Program, array: str) -> NonUniformBounds:
    """The paper's bounds for a non-uniformly generated 1-D array.

    >>> from repro.ir import parse_program
    >>> p = parse_program('''
    ... for i = 1 to 20 {
    ...   for j = 1 to 20 {
    ...     S1: A[3*i + 7*j - 10] = 0
    ...     S2: B[0] = A[4*i - 3*j + 60]
    ...   }
    ... }
    ... ''')
    >>> b = nonuniform_bounds(p, "A")
    >>> (b.lower, b.upper)
    (179, 191)
    """
    refs = list(program.refs_to(array))
    if not refs:
        raise KeyError(array)
    if any(ref.rank != 1 for ref in refs):
        raise ValueError(
            f"{array}: the Section 3.2 bounds are defined for 1-D references"
        )
    lowers, uppers = program.nest.lowers, program.nest.uppers
    ranges = [_value_range(ref, lowers, uppers) for ref in refs]
    lb_min = min(lo for lo, _ in ranges)
    ub_max = max(hi for _, hi in ranges)

    # The paper's formula presumes the per-reference value ranges overlap
    # into one interval; we generalize to connected components of their
    # union (single component == the paper's bound exactly).  Per
    # component: upper = length; lower = length minus the Sylvester gap
    # count at each end, charged to the reference achieving that end.
    items = sorted(zip(ranges, refs), key=lambda item: item[0])
    components: list[tuple[int, int, list]] = []
    for (lo, hi), ref in items:
        if components and lo <= components[-1][1] + 1:
            prev_lo, prev_hi, members = components[-1]
            components[-1] = (prev_lo, max(prev_hi, hi), members + [((lo, hi), ref)])
        else:
            components.append((lo, hi, [((lo, hi), ref)]))

    def _exact_ref_count(ref) -> int | None:
        # Exact per-reference image count, available for 2-D nests via
        # the structured image machinery (count is offset-invariant).
        if program.nest.depth != 2:
            return None
        from repro.polyhedral.image_set import affine_image_1d

        a, b = ref.access.row(0)
        n1, n2 = program.nest.trip_counts
        return affine_image_1d(a, b, n1, n2).count

    def _is_dense(ref) -> bool:
        # The paper's interval reasoning presumes a gcd-1 (dense) image.
        import math as _math

        coeffs = [c for c in ref.access.row(0) if c != 0]
        if not coeffs:
            return False
        g = 0
        for c in coeffs:
            g = _math.gcd(g, c)
        return g == 1

    upper = 0
    lower = 0
    for comp_lo, comp_hi, members in components:
        length = comp_hi - comp_lo + 1
        member_counts = [_exact_ref_count(ref) for _, ref in members]
        if all(count is not None for count in member_counts):
            comp_upper = min(length, sum(member_counts))
        else:
            comp_upper = length
        upper += comp_upper
        if all(_is_dense(ref) for _, ref in members):
            low_achievers = [ref for (lo, _), ref in members if lo == comp_lo]
            high_achievers = [ref for (_, hi), ref in members if hi == comp_hi]
            low_corr = min(_end_correction(ref) for ref in low_achievers)
            high_corr = min(_end_correction(ref) for ref in high_achievers)
            comp_lower = max(0, length - low_corr - high_corr)
        elif any(count is not None for count in member_counts):
            # Sparse (non-coprime) members break the interval argument:
            # fall back to "the union is at least its largest member".
            comp_lower = max(c for c in member_counts if c is not None)
        else:
            comp_lower = 0
        lower += min(comp_lower, comp_upper)
    return NonUniformBounds(array, lower, upper, lb_min, ub_max)
