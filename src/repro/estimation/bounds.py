"""Section 3.2 bounds for non-uniformly generated references.

When references to one array have different access matrices, dependences
are not constant distance vectors and exact closed-form counting is out of
reach (the paper cites Clauss and Pugh for exact-but-expensive methods).
The paper's bounds, for one-dimensional references ``f_k = a_k i + b_k j +
c_k`` over a 2-D nest:

* upper bound: ``UB_max - LB_min + 1`` — the full value interval between
  the smallest attainable value of any reference and the largest;
* lower bound: the upper bound minus the Sylvester gap count
  ``(|a|-1)(|b|-1)/2`` at *each* end of the interval, charged to the
  reference that achieves that extreme (Example 6: ``191 - 6 - 6 = 179``,
  with the actual count 181).

The "lower bound" is the paper's close heuristic, not a guarantee: it
corrects only the two global extremes, so interior gaps — where one
reference's dense region hands over to another's — can push the true
count slightly below it.  The test suite bounds that slack by the total
Sylvester gap mass of the references.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.envutil import env_int
from repro.ir.program import Program
from repro.ir.reference import ArrayRef
from repro.linalg.frobenius import sylvester_count


@dataclass(frozen=True)
class NonUniformBounds:
    """Bounds on the distinct-access count of a non-uniform array."""

    array: str
    lower: int
    upper: int
    lb_min: int
    ub_max: int

    def contains(self, value: int) -> bool:
        return self.lower <= value <= self.upper


def _value_range(ref: ArrayRef, lowers, uppers) -> tuple[int, int]:
    """Exact [min, max] of the (1-D) subscript over the iteration box."""
    row = ref.access.row(0)
    lo = hi = ref.offset[0]
    for coeff, lb, ub in zip(row, lowers, uppers):
        if coeff >= 0:
            lo += coeff * lb
            hi += coeff * ub
        else:
            lo += coeff * ub
            hi += coeff * lb
    return lo, hi


def _end_correction(ref: ArrayRef) -> int:
    """Sylvester gap count near one end of the reference's value range.

    Defined for 2-D nests: the two nonzero coefficients of the subscript
    row.  References with a zero coefficient (or any unit coefficient, via
    the Sylvester formula itself) have no gaps.
    """
    coeffs = [c for c in ref.access.row(0) if c != 0]
    if len(coeffs) < 2:
        return 0
    if len(coeffs) != 2:
        # Deeper nests: gaps are bounded by the two smallest coefficient
        # magnitudes; use them (conservative for the lower bound).
        coeffs = sorted(coeffs, key=abs)[:2]
    return sylvester_count(coeffs[0], coeffs[1])


def nonuniform_bounds(program: Program, array: str) -> NonUniformBounds:
    """The paper's bounds for a non-uniformly generated 1-D array.

    >>> from repro.ir import parse_program
    >>> p = parse_program('''
    ... for i = 1 to 20 {
    ...   for j = 1 to 20 {
    ...     S1: A[3*i + 7*j - 10] = 0
    ...     S2: B[0] = A[4*i - 3*j + 60]
    ...   }
    ... }
    ... ''')
    >>> b = nonuniform_bounds(p, "A")
    >>> (b.lower, b.upper)
    (179, 191)
    """
    refs = list(program.refs_to(array))
    if not refs:
        raise KeyError(array)
    if any(ref.rank != 1 for ref in refs):
        raise ValueError(
            f"{array}: the Section 3.2 bounds are defined for 1-D references"
        )
    lowers, uppers = program.nest.lowers, program.nest.uppers
    ranges = [_value_range(ref, lowers, uppers) for ref in refs]
    lb_min = min(lo for lo, _ in ranges)
    ub_max = max(hi for _, hi in ranges)

    # The paper's formula presumes the per-reference value ranges overlap
    # into one interval; we generalize to connected components of their
    # union (single component == the paper's bound exactly).  Per
    # component: upper = length; lower = length minus the Sylvester gap
    # count at each end, charged to the reference achieving that end.
    items = sorted(zip(ranges, refs), key=lambda item: item[0])
    components: list[tuple[int, int, list]] = []
    for (lo, hi), ref in items:
        if components and lo <= components[-1][1] + 1:
            prev_lo, prev_hi, members = components[-1]
            components[-1] = (prev_lo, max(prev_hi, hi), members + [((lo, hi), ref)])
        else:
            components.append((lo, hi, [((lo, hi), ref)]))

    def _exact_ref_count(ref) -> int | None:
        # Exact per-reference image count, available for 2-D nests via
        # the structured image machinery (count is offset-invariant).
        if program.nest.depth != 2:
            return None
        from repro.polyhedral.image_set import affine_image_1d

        a, b = ref.access.row(0)
        n1, n2 = program.nest.trip_counts
        return affine_image_1d(a, b, n1, n2).count

    def _is_dense(ref) -> bool:
        # The paper's interval reasoning presumes a gcd-1 (dense) image.
        import math as _math

        coeffs = [c for c in ref.access.row(0) if c != 0]
        if not coeffs:
            return False
        g = 0
        for c in coeffs:
            g = _math.gcd(g, c)
        return g == 1

    upper = 0
    lower = 0
    for comp_lo, comp_hi, members in components:
        length = comp_hi - comp_lo + 1
        member_counts = [_exact_ref_count(ref) for _, ref in members]
        if all(count is not None for count in member_counts):
            comp_upper = min(length, sum(member_counts))
        else:
            comp_upper = length
        upper += comp_upper
        if all(_is_dense(ref) for _, ref in members):
            low_achievers = [ref for (lo, _), ref in members if lo == comp_lo]
            high_achievers = [ref for (_, hi), ref in members if hi == comp_hi]
            low_corr = min(_end_correction(ref) for ref in low_achievers)
            high_corr = min(_end_correction(ref) for ref in high_achievers)
            comp_lower = max(0, length - low_corr - high_corr)
        elif any(count is not None for count in member_counts):
            # Sparse (non-coprime) members break the interval argument:
            # fall back to "the union is at least its largest member".
            comp_lower = max(c for c in member_counts if c is not None)
        else:
            comp_lower = 0
        lower += min(comp_lower, comp_upper)
    return NonUniformBounds(array, lower, upper, lb_min, ub_max)


# ---------------------------------------------------------------------------
# Cascade support: certified reuse facts (tier 1) and clipped-program
# lower bounds (tier 2) for the search's tiered pruning.
# ---------------------------------------------------------------------------

#: Environment variable overriding the tier-2 clipping budget.
CLIP_BUDGET_ENV = "REPRO_CLIP_BUDGET"

#: Default iteration count of the clipped sub-box used for tier-2 lower
#: bounds.  Small enough that a clipped exact evaluation is cheap next to
#: a full simulation, large enough to retain pruning power.
DEFAULT_CLIP_BUDGET = 4096


def clip_budget() -> int:
    """Iteration budget of the tier-2 clipped sub-program."""
    return env_int(CLIP_BUDGET_ENV, DEFAULT_CLIP_BUDGET)


def _family_fits_box(
    particular: Sequence[int],
    kernel: Sequence[Sequence[int]],
    spans: Sequence[int],
) -> bool | None:
    """Does ``{particular + sum t_i * kernel_i}`` contain a **nonzero**
    vector ``d`` with ``|d_k| <= spans[k]`` for every ``k``?

    Such a ``d`` is a difference of two in-box iterations (the iteration
    space is a full rectangular box, so ``d`` is realizable iff each
    component fits its axis span).  Exact for kernel dimension <= 1;
    for dimension >= 2 the answer is ``True`` when an obvious member
    fits and ``None`` (undecided) otherwise — never a certified ``False``.
    """
    n = len(spans)

    def fits(d: Sequence[int]) -> bool:
        return any(d) and all(abs(d[k]) <= spans[k] for k in range(n))

    if fits(particular):
        return True
    if not kernel:
        # Unique solution; it either fits (handled above) or nothing does.
        return False
    if len(kernel) >= 2:
        # Cheap sweep of neighbouring lattice members before giving up.
        for v in kernel:
            for sign in (1, -1):
                if fits([p + sign * c for p, c in zip(particular, v)]):
                    return True
        return None
    (v,) = kernel
    # One free parameter: d = particular + t*v.  Intersect the per-axis
    # constraints |p_k + t v_k| <= span_k into one integer interval.
    lo, hi = None, None
    for k in range(n):
        p, c, s = particular[k], v[k], spans[k]
        if c == 0:
            if abs(p) > s:
                return False
            continue
        # -s <= p + t*c <= s
        left = -s - p
        right = s - p
        if c > 0:
            t_lo = -(-left // c)  # ceil(left / c)
            t_hi = right // c
        else:
            t_lo = -(-right // c)
            t_hi = left // c
        lo = t_lo if lo is None else max(lo, t_lo)
        hi = t_hi if hi is None else min(hi, t_hi)
    if lo is None:
        # v == 0 cannot happen (kernel basis vectors are nonzero), but
        # guard: the family degenerates to the particular solution.
        return False
    if lo > hi:
        return False
    if hi > lo:
        # At least two members fit; at most one of them is the zero vector.
        return True
    return any(p + lo * c for p, c in zip(particular, v))


def certified_reuse(program: Program, array: str) -> bool | None:
    """Transformation-invariant reuse fact for one array, or ``None``.

    ``True``  — some element is touched at two *distinct* iterations, so
    the exact MWS of the array is >= 1 under **every** unimodular
    re-ordering (any order separates distinct iterations in time).

    ``False`` — no element is ever touched at two distinct iterations,
    so the exact MWS is 0 under **every** ordering (an element touched
    only at one time never enters the window).  This lets the search
    finalize all candidates for the array without simulating any.

    ``None``  — undecided (non-uniform references, or a solution family
    with >= 2 free parameters that the exact interval argument cannot
    settle).  Undecided never prunes.
    """
    if not program.is_uniformly_generated(array):
        return None
    refs = list(program.refs_to(array))
    if not refs:
        raise KeyError(array)
    from repro.dependence.analysis import _particular_solution
    from repro.linalg import integer_nullspace

    access = refs[0].access
    kernel = integer_nullspace(access)
    spans = [upper - lower for lower, upper
             in zip(program.nest.lowers, program.nest.uppers)]
    undecided = False
    seen: set[tuple[int, ...]] = set()
    deltas: list[tuple[int, ...]] = []
    offsets = [tuple(ref.offset) for ref in refs]
    # Self-reuse (same offset, nonzero kernel member) plus every pair of
    # distinct offsets; A d = c_a - c_b with d a nonzero in-box difference.
    zero = tuple([0] * len(offsets[0]))
    candidates = {zero}
    for i, ca in enumerate(offsets):
        for cb in offsets[i + 1:]:
            candidates.add(tuple(a - b for a, b in zip(ca, cb)))
    for delta in candidates:
        if delta in seen:
            continue
        seen.add(delta)
        particular = _particular_solution(access, list(delta))
        if particular is None:
            continue
        verdict = _family_fits_box(particular, kernel, spans)
        if verdict is True:
            return True
        if verdict is None:
            undecided = True
    return None if undecided else False


def certified_zero_total(program: Program) -> bool:
    """True iff every array's MWS is certified 0 under any ordering."""
    return all(
        certified_reuse(program, array) is False for array in program.arrays
    )


# ---------------------------------------------------------------------------
# Off-chip transfer lower bound (Hong-Kung phases, Dinh-Demmel style).
# ---------------------------------------------------------------------------


def transfer_lower_bound(
    program: Program,
    capacity: int,
    array: str | None = None,
    transformation=None,
    stream: list[tuple[tuple, bool]] | None = None,
) -> int:
    """Admissible lower bound on off-chip transfers at ``capacity`` words.

    Two classic arguments, both valid for *any* replacement policy (so in
    particular for the Belady simulation and for any DMA/tiling plan whose
    resident set never exceeds ``capacity``):

    * cold traffic — every distinct element must be fetched at least once,
      and every distinct *written* element must reach the backing store at
      least once (the simulator's final flush guarantees the latter);
    * phase traffic (Hong & Kung's I/O argument) — cut the trace into
      consecutive phases, closing a phase once it has touched ``2 *
      capacity`` distinct elements.  At most ``capacity`` of a phase's
      elements can already be resident when it starts, so the phase forces
      at least ``d_p - capacity`` fetches.  The cut rule follows Hong-Kung;
      admissibility holds for *any* cut, so the choice only affects
      tightness.

    The returned bound ``max(distinct, phase) + distinct_written`` is
    therefore <= ``simulate_scratchpad(...).offchip_transfers`` for every
    program/order/capacity (the ``hierarchy-bound-admissible`` oracle) and
    <= any hierarchy plan's off-chip DMA volume at the same total
    capacity, which is what lets the hierarchy search use it for pruning.

    ``stream`` short-circuits the trace construction when the caller
    already holds the ``(element, is_write)`` trace in the order being
    bounded (the hierarchy search shares one cached trace across its
    bound evaluations); ``array``/``transformation`` are ignored then.
    """
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    if stream is None:
        from repro.memory.scratchpad import access_stream

        stream = access_stream(program, array, transformation)
    distinct: set = set()
    written: set = set()
    phase_bound = 0
    phase: set = set()
    for element, is_write in stream:
        distinct.add(element)
        if is_write:
            written.add(element)
        phase.add(element)
        if len(phase) == 2 * capacity:
            phase_bound += len(phase) - capacity
            phase = set()
    phase_bound += max(0, len(phase) - capacity)
    return max(len(distinct), phase_bound) + len(written)


#: ``(program signature, budget)`` -> clipped program.  Bounded: cleared
#: wholesale when it outgrows its cap.
_CLIP_CACHE: dict[tuple[str, int], Program] = {}
_CLIP_CACHE_LIMIT = 256


def clear_clip_cache() -> None:
    """Drop memoized clipped programs (tests)."""
    _CLIP_CACHE.clear()


def _clipped_trips(trips: Sequence[int], budget: int) -> list[int]:
    """Shrink the largest axes (halving, keeping >= 4 iterations each)
    until the box fits the budget or no axis can shrink further."""
    clipped = list(trips)
    while math.prod(clipped) > budget:
        k = max(range(len(clipped)), key=lambda i: clipped[i])
        if clipped[k] <= 4:
            break
        clipped[k] = max(4, clipped[k] // 2)
    return clipped


def clipped_program(program: Program, budget: int | None = None) -> Program:
    """A sub-box restriction of the program for tier-2 lower bounds.

    The clipped nest keeps every lower bound and shrinks upper bounds so
    the box holds at most ``budget`` iterations (largest axes first).

    **Admissibility.**  For any unimodular ``T``, the exact MWS of the
    clipped program under ``T`` lower-bounds the full program's MWS
    under ``T`` (per array and in total): restricting the lex order of
    ``T @ i`` to a subset of iterations preserves relative order, so
    every element live at clipped time ``tau`` is live at the embedded
    full-program time ``phi(tau)`` — the clipped window is a subset of a
    full window.  The bound holds whatever clipping heuristic is used;
    the heuristic only affects how tight it is.
    """
    if budget is None:
        budget = clip_budget()
    key = (program.signature(), budget)
    cached = _CLIP_CACHE.get(key)
    if cached is not None:
        return cached
    from repro.ir.loop import Loop, LoopNest

    trips = _clipped_trips(program.nest.trip_counts, budget)
    loops = [
        Loop(loop.index, loop.lower, loop.lower + trip - 1)
        for loop, trip in zip(program.nest.loops, trips)
    ]
    clipped = Program(
        nest=LoopNest(loops),
        statements=program.statements,
        decls=program.decls,
        name=f"{program.name}#clip",
    )
    if len(_CLIP_CACHE) >= _CLIP_CACHE_LIMIT:
        _CLIP_CACHE.clear()
    _CLIP_CACHE[key] = clipped
    return clipped
