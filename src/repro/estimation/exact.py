"""Exact distinct-access counting by enumeration — the ground-truth oracle.

Every closed form in :mod:`repro.estimation.distinct` and every bound in
:mod:`repro.estimation.bounds` is validated against these counts in the
test suite, mirroring how the paper validates its estimates against actual
memory requirements (Section 5).
"""

from __future__ import annotations

from repro import obs
from repro.ir.program import Program
from repro.polyhedral.counting import count_image_exact


@obs.profiled("estimate.exact_distinct")
def exact_distinct_accesses(program: Program, array: str) -> int:
    """The true ``A_d`` for one array: enumerate and count."""
    refs = program.refs_to(array)
    if not refs:
        raise KeyError(array)
    obs.counter("estimate.exact_distinct.calls")
    return count_image_exact(program.nest, refs)


def exact_program_footprint(program: Program) -> dict[str, int]:
    """Exact distinct-access counts for every array of the program."""
    return {array: exact_distinct_accesses(program, array) for array in program.arrays}
