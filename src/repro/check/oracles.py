"""Oracle registry: cross-implementation equivalences and metamorphic relations.

An *oracle* is a checkable statement about the analysis stack that must
hold for **every** program in the paper's model.  Two kinds:

* ``cross`` — independent implementations (or an implementation and its
  bound) must agree: the four window engines, the Section 3 closed forms
  against the enumeration oracle, the cascade's pruning against full
  simulation, the line-granular window against the element window.

* ``metamorphic`` — a semantics-preserving transformation of the input
  must move the output in a known way (Chen et al.'s metamorphic
  testing): distinct counts are invariant under unimodular relabeling of
  the iteration space, MWS is invariant under time reversal and offset
  translation, monotone under trip-count extension, and legal loop-order
  permutations preserve concrete execution results.

Each oracle bundles ``generate -> check`` over
:func:`repro.ir.generate.random_program`; metamorphic oracles derive
their transformation deterministically from ``(program, seed)`` so the
shrinker can re-run the same relation on reduced programs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.ir.generate import GeneratorConfig, random_program
from repro.ir.loop import Loop, LoopNest
from repro.ir.program import Program
from repro.ir.reference import ArrayRef
from repro.ir.statement import Statement
from repro.linalg import IntMatrix


@dataclass(frozen=True)
class Violation:
    """One oracle failure: which oracle, and what disagreed."""

    oracle: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.detail}"


class Oracle:
    """Base class: a named, generated, checkable invariant.

    Subclasses set ``name``, ``kind`` (``"cross"`` | ``"metamorphic"``),
    ``paper`` (why the invariant follows from the paper) and ``config``
    (the generator regime the oracle targets), and implement
    :meth:`check`.  ``check(program, seed)`` must depend only on its two
    arguments — the shrinker re-invokes it on reduced programs with the
    original seed.
    """

    name: str = ""
    kind: str = "cross"
    paper: str = ""
    config: GeneratorConfig = GeneratorConfig()

    def generate(self, seed: int) -> Program:
        """The random program this oracle fuzzes at ``seed``."""
        return random_program(seed, self.config)

    def check(self, program: Program, seed: int = 0) -> Violation | None:
        """``None`` when the invariant holds, a :class:`Violation` otherwise."""
        raise NotImplementedError

    def run(self, seed: int) -> Violation | None:
        """Generate at ``seed`` and check — one fuzz case."""
        return self.check(self.generate(seed), seed)

    def fail(self, detail: str, program: Program | None = None) -> Violation:
        if program is not None:
            from repro.ir import generate_source

            detail = f"{detail}\n{generate_source(program)}"
        return Violation(self.name, detail)


#: name -> oracle instance, in registration order.
ORACLES: dict[str, Oracle] = {}


def register(cls: type[Oracle]) -> type[Oracle]:
    """Class decorator: instantiate and add to :data:`ORACLES`."""
    oracle = cls()
    if not oracle.name:
        raise ValueError(f"{cls.__name__} has no name")
    if oracle.kind not in ("cross", "metamorphic"):
        raise ValueError(f"{oracle.name}: unknown kind {oracle.kind!r}")
    if oracle.name in ORACLES:
        raise ValueError(f"duplicate oracle name {oracle.name!r}")
    ORACLES[oracle.name] = oracle
    return cls


def all_oracles() -> tuple[Oracle, ...]:
    return tuple(ORACLES.values())


def oracle_names() -> tuple[str, ...]:
    return tuple(ORACLES)


def get_oracle(name: str) -> Oracle:
    try:
        return ORACLES[name]
    except KeyError:
        raise KeyError(
            f"unknown oracle {name!r}; registered: {', '.join(ORACLES)}"
        ) from None


# ----------------------------------------------------------------------
# program rewriting helpers (shared by the metamorphic oracles)
# ----------------------------------------------------------------------

def _rebuild(
    program: Program,
    loops: list[Loop] | None = None,
    statements: list[Statement] | None = None,
    name: str | None = None,
) -> Program:
    """A copy with loops/statements replaced (declarations re-inferred)."""
    return Program(
        LoopNest(loops if loops is not None else list(program.nest.loops)),
        statements if statements is not None else list(program.statements),
        name=name or program.name,
    )


def _map_refs(program: Program, fn) -> list[Statement]:
    return [
        Statement(
            stmt.label,
            tuple(fn(ref) for ref in stmt.writes),
            tuple(fn(ref) for ref in stmt.reads),
        )
        for stmt in program.statements
    ]


def relabel_signed_permutation(
    program: Program, perm: tuple[int, ...], signs: tuple[int, ...]
) -> Program:
    """Unimodular relabeling of the iteration space by a signed permutation.

    New index ``u_k`` stands for old index ``i_{perm[k]}``; where
    ``signs[k] == -1`` the axis is reversed via ``i_j = (lb_j + ub_j) -
    u_k`` (a unimodular map plus translation, so the new box is the same
    rectangle).  Every relabeled iteration touches exactly the elements
    of its pre-image, so the touched-element *set* of each array — hence
    ``A_d`` — is identical by construction.
    """
    old = program.nest.loops
    n = len(old)
    if sorted(perm) != list(range(n)) or len(signs) != n:
        raise ValueError("perm must permute range(depth); one sign per level")
    loops = [
        Loop(f"u{k + 1}", old[perm[k]].lower, old[perm[k]].upper)
        for k in range(n)
    ]

    def relabel(ref: ArrayRef) -> ArrayRef:
        offset = list(ref.offset)
        rows = []
        for d, row in enumerate(ref.access.rows):
            new_row = [0] * n
            for k in range(n):
                j = perm[k]
                coeff = row[j]
                if signs[k] < 0:
                    offset[d] += coeff * (old[j].lower + old[j].upper)
                    new_row[k] = -coeff
                else:
                    new_row[k] = coeff
            rows.append(new_row)
        return ArrayRef(ref.array, IntMatrix(rows), tuple(offset), ref.kind)

    return _rebuild(
        program,
        loops=loops,
        statements=_map_refs(program, relabel),
        name=f"{program.name}#relabel",
    )


def translate_offsets(program: Program, shifts: dict[str, tuple[int, ...]]) -> Program:
    """Translate every reference of each array by a per-array constant.

    All references to one array move together, so pairwise offset
    differences — and with them every dependence distance, window and
    distinct count — are untouched; only the touched bounding box slides.
    """

    def translate(ref: ArrayRef) -> ArrayRef:
        shift = shifts.get(ref.array)
        if shift is None:
            return ref
        return ArrayRef(
            ref.array,
            ref.access,
            tuple(o + s for o, s in zip(ref.offset, shift)),
            ref.kind,
        )

    return _rebuild(
        program, statements=_map_refs(program, translate),
        name=f"{program.name}#shift",
    )


def extend_outermost(program: Program, extra: int) -> Program:
    """Extend the outermost loop's upper bound by ``extra`` iterations.

    The original execution is a strict prefix of the extended one (the
    appended iterations sort lexicographically last), so first-touch
    times are preserved and last-touch times can only move later — every
    original window is a subset of an extended window.
    """
    if extra < 0:
        raise ValueError("extension must be non-negative")
    loops = list(program.nest.loops)
    loops[0] = Loop(loops[0].index, loops[0].lower, loops[0].upper + extra)
    return _rebuild(program, loops=loops, name=f"{program.name}#ext{extra}")


def _seed_transformation(program: Program, seed: int) -> IntMatrix:
    """A deterministic pseudo-random unimodular execution order.

    Signed permutations for any depth, plus skewed bounded unimodular
    matrices for 2-deep nests — the same pool the differential harness
    used before it moved here.
    """
    from repro.transform.elementary import (
        bounded_unimodular_matrices,
        signed_permutations,
    )

    rng = random.Random(seed * 7919 + program.nest.depth)
    pool = list(signed_permutations(program.nest.depth))
    if program.nest.depth == 2:
        pool.extend(
            t for t in bounded_unimodular_matrices(2, 1) if not t.is_identity()
        )
    return pool[rng.randrange(len(pool))]


def _mws_all_engines(
    program: Program, array: str, transformation: IntMatrix | None
) -> dict[str, int]:
    from repro.window.fast import max_window_size_fast
    from repro.window.simulator import max_window_size_reference
    from repro.window.streaming import max_window_size_streaming
    from repro.window.zhao_malik import max_window_size_zhao_malik

    return {
        "reference": max_window_size_reference(program, array, transformation),
        "fast": max_window_size_fast(program, array, transformation),
        "streaming": max_window_size_streaming(program, array, transformation),
        "zhao_malik": max_window_size_zhao_malik(program, array, transformation),
    }


# ----------------------------------------------------------------------
# cross-implementation oracles
# ----------------------------------------------------------------------

class _EnginesAgree(Oracle):
    kind = "cross"
    paper = (
        "Section 2.3 defines one reference window; all four engines "
        "compute it, so they must agree under every unimodular order."
    )

    def check(self, program: Program, seed: int = 0) -> Violation | None:
        t = _seed_transformation(program, seed)
        for array in program.arrays:
            for transformation in (None, t):
                values = _mws_all_engines(program, array, transformation)
                if len(set(values.values())) != 1:
                    where = "native" if transformation is None else f"T={transformation.rows}"
                    return self.fail(
                        f"array {array} ({where}): engines disagree {values}",
                        program,
                    )
        return None


@register
class EnginesAgree2D(_EnginesAgree):
    name = "engines-agree-2d"
    config = GeneratorConfig(depth=2, min_trip=2, max_trip=6, max_coeff=3)


@register
class EnginesAgree3D(_EnginesAgree):
    name = "engines-agree-3d"
    config = GeneratorConfig(depth=3, min_trip=2, max_trip=4, max_coeff=2)


@register
class TotalWindowAgrees(Oracle):
    name = "total-window-agrees"
    kind = "cross"
    paper = (
        "Section 2.3's program window is max_t of the summed per-array "
        "windows; every engine computes the same maximum-of-sums."
    )
    config = GeneratorConfig(depth=2, min_trip=2, max_trip=6)

    def generate(self, seed: int) -> Program:
        cfg = self.config
        if seed % 4 == 3:
            cfg = GeneratorConfig(depth=3, min_trip=2, max_trip=4, max_coeff=2)
        return random_program(seed, cfg)

    def check(self, program: Program, seed: int = 0) -> Violation | None:
        from repro.window import max_total_window

        values = {
            engine: max_total_window(program, engine=engine)
            for engine in ("reference", "fast", "streaming", "zhao_malik")
        }
        if len(set(values.values())) != 1:
            return self.fail(f"total windows disagree {values}", program)
        return None


@register
class EstimateBracketsExact(Oracle):
    name = "estimate-brackets-exact"
    kind = "cross"
    paper = (
        "Section 3's closed forms are exact for uniformly generated "
        "references (d==n, d==n-1) and upper bounds otherwise; the "
        "enumerated count must sit inside [lower, upper], and a claimed "
        "exact estimate must hit it."
    )
    config = GeneratorConfig(depth=2, min_trip=2, max_trip=8, uniform_only=True)

    def check(self, program: Program, seed: int = 0) -> Violation | None:
        from repro.estimation import (
            estimate_distinct_accesses,
            exact_distinct_accesses,
        )

        for array in program.arrays:
            est = estimate_distinct_accesses(program, array)
            truth = exact_distinct_accesses(program, array)
            if est.lower > est.upper:
                return self.fail(
                    f"array {array}: inverted bounds {est.lower} > {est.upper} "
                    f"({est.method})",
                    program,
                )
            if truth > est.upper:
                return self.fail(
                    f"array {array}: true A_d {truth} above upper bound "
                    f"{est.upper} ({est.method})",
                    program,
                )
            if est.exact and not (est.lower == est.upper == truth):
                return self.fail(
                    f"array {array}: claims exact A_d {est.lower} but "
                    f"enumeration counts {truth} ({est.method})",
                    program,
                )
        return None


@register
class NonUniformUpperBound(Oracle):
    name = "nonuniform-bounds-bracket"
    kind = "cross"
    paper = (
        "Section 3.2's interval bound UB_max - LB_min + 1 dominates the "
        "true union of 1-D non-uniform references (the lower bound is the "
        "paper's heuristic, so only sanity-checked)."
    )
    config = GeneratorConfig(
        depth=2, min_trip=2, max_trip=8, uniform_only=False, array_rank=1
    )

    def check(self, program: Program, seed: int = 0) -> Violation | None:
        from repro.estimation import exact_distinct_accesses, nonuniform_bounds

        for array in program.arrays:
            b = nonuniform_bounds(program, array)
            truth = exact_distinct_accesses(program, array)
            if not 0 <= b.lower <= b.upper:
                return self.fail(
                    f"array {array}: malformed bounds [{b.lower}, {b.upper}]",
                    program,
                )
            if truth > b.upper:
                return self.fail(
                    f"array {array}: true count {truth} above upper bound "
                    f"{b.upper}",
                    program,
                )
        return None


@register
class CascadeConformance(Oracle):
    name = "cascade-conformance"
    kind = "cross"
    paper = (
        "Section 4's search only needs the arg-min; the cascade's tier-1 "
        "certificates and tier-2 clipped lower bounds are admissible, so "
        "its first-wins winner must match full simulation."
    )
    config = GeneratorConfig(depth=2, min_trip=2, max_trip=8)
    #: Small enough that tier 2 fires on most generated nests.
    clip_budget = 16

    def check(self, program: Program, seed: int = 0) -> Violation | None:
        from repro.transform.elementary import signed_permutations
        from repro.transform.search import evaluate_cascade, evaluate_exact

        candidates: list[IntMatrix | None] = [None]
        candidates.extend(signed_permutations(program.nest.depth))
        outcomes = evaluate_cascade(
            program, candidates, clip_budget=self.clip_budget
        )
        truths = evaluate_exact(program, candidates)
        for idx, (outcome, truth) in enumerate(zip(outcomes, truths)):
            if outcome.exact and outcome.value != truth:
                return self.fail(
                    f"candidate {idx}: cascade says exact {outcome.value} "
                    f"({outcome.tier}), simulation says {truth}",
                    program,
                )
            if not outcome.exact and outcome.value > truth:
                return self.fail(
                    f"candidate {idx}: inadmissible {outcome.tier} lower "
                    f"bound {outcome.value} > true MWS {truth}",
                    program,
                )
        best = min(truths)
        winner_full = truths.index(best)
        exact_values = [o.value for o in outcomes if o.exact]
        if not exact_values or min(exact_values) != best:
            return self.fail(
                f"cascade never finalized the optimum {best} exactly "
                f"(exact outcomes: {exact_values})",
                program,
            )
        winner_cascade = next(
            idx for idx, o in enumerate(outcomes) if o.exact and o.value == best
        )
        if winner_cascade != winner_full:
            return self.fail(
                f"first-wins winner differs: cascade candidate "
                f"{winner_cascade}, simulation candidate {winner_full}",
                program,
            )
        return None


@register
class BatchedScoringParity(Oracle):
    name = "batched-scoring-parity"
    kind = "cross"
    paper = (
        "Section 2.3 defines one window per (program, array, order); "
        "scoring K candidate orders as one batch is pure re-association "
        "of the same sweeps, so the batched scorer must equal the "
        "per-candidate engines on every array and on the program total."
    )
    config = GeneratorConfig(depth=2, min_trip=2, max_trip=6)

    def generate(self, seed: int) -> Program:
        cfg = self.config
        if seed % 4 == 3:
            cfg = GeneratorConfig(depth=3, min_trip=2, max_trip=4, max_coeff=2)
        return random_program(seed, cfg)

    def check(self, program: Program, seed: int = 0) -> Violation | None:
        from repro.transform.elementary import signed_permutations
        from repro.window.batched import batched_mws
        from repro.window.simulator import max_total_window, max_window_size

        rng = random.Random(seed * 104_729 + program.nest.depth)
        pool = list(signed_permutations(program.nest.depth))
        rng.shuffle(pool)
        candidates: list[IntMatrix | None] = [None, _seed_transformation(program, seed)]
        candidates.extend(pool[:4])
        for array in [None, *program.arrays]:
            batch = batched_mws(program, candidates, array=array, engine="fast")
            if array is None:
                serial = [
                    max_total_window(program, t, engine="fast")
                    for t in candidates
                ]
            else:
                serial = [
                    max_window_size(program, array, t, engine="fast")
                    for t in candidates
                ]
            if batch != serial:
                where = array or "<total>"
                return self.fail(
                    f"array {where}: batched {batch} != per-candidate "
                    f"{serial} over {len(candidates)} candidates",
                    program,
                )
        return None


@register
class LineWindowElementParity(Oracle):
    name = "line-window-element-parity"
    kind = "cross"
    paper = (
        "The line-granular window composes the Section 2.3 sweep with a "
        "layout; at line size 1 the composition must reduce exactly to "
        "the element window."
    )
    config = GeneratorConfig(depth=2, min_trip=2, max_trip=6)

    def check(self, program: Program, seed: int = 0) -> Violation | None:
        from repro.layout.line_window import line_window_profile, max_line_window
        from repro.window.fast import max_window_size_fast

        t = _seed_transformation(program, seed)
        for array in program.arrays:
            for transformation in (None, t):
                element = max_window_size_fast(program, array, transformation)
                line = max_line_window(
                    program, array, line_size=1, transformation=transformation
                )
                if line != element:
                    return self.fail(
                        f"array {array}: line window {line} != element "
                        f"window {element} at line size 1",
                        program,
                    )
            profile_peak = line_window_profile(program, array, line_size=1).max_size
            if profile_peak != max_window_size_fast(program, array):
                return self.fail(
                    f"array {array}: line profile peak {profile_peak} != "
                    f"element MWS",
                    program,
                )
        return None


@register
class MwsBoundedByDistinct(Oracle):
    name = "mws-bounded-by-distinct"
    kind = "cross"
    paper = (
        "The window holds only already-touched, to-be-reused elements "
        "(Section 2.3), so |W| can never exceed the array's distinct "
        "count A_d under any execution order."
    )
    config = GeneratorConfig(depth=2, min_trip=2, max_trip=6)

    def generate(self, seed: int) -> Program:
        cfg = self.config
        if seed % 4 == 3:
            cfg = GeneratorConfig(depth=3, min_trip=2, max_trip=4, max_coeff=2)
        return random_program(seed, cfg)

    def check(self, program: Program, seed: int = 0) -> Violation | None:
        from repro.estimation.exact import exact_distinct_accesses
        from repro.window.fast import max_window_size_fast

        t = _seed_transformation(program, seed)
        for array in program.arrays:
            distinct = exact_distinct_accesses(program, array)
            for transformation in (None, t):
                mws = max_window_size_fast(program, array, transformation)
                if mws > distinct:
                    return self.fail(
                        f"array {array}: MWS {mws} exceeds distinct count "
                        f"{distinct}",
                        program,
                    )
        return None


# ----------------------------------------------------------------------
# metamorphic oracles
# ----------------------------------------------------------------------

class _RelabelDistinctInvariance(Oracle):
    kind = "metamorphic"
    paper = (
        "A_d is the cardinality of the access image over the iteration "
        "box (Section 3); a signed-permutation relabeling maps the box "
        "bijectively onto itself, so the image — and for uniformly "
        "generated arrays the Section 3 estimate — is invariant."
    )

    def check(self, program: Program, seed: int = 0) -> Violation | None:
        from repro.estimation import (
            estimate_distinct_accesses,
            exact_distinct_accesses,
        )

        n = program.nest.depth
        rng = random.Random(seed * 65_537 + n)
        perm = tuple(rng.sample(range(n), n))
        signs = tuple(rng.choice((1, -1)) for _ in range(n))
        relabeled = relabel_signed_permutation(program, perm, signs)
        for array in program.arrays:
            base = exact_distinct_accesses(program, array)
            mapped = exact_distinct_accesses(relabeled, array)
            if base != mapped:
                return self.fail(
                    f"array {array}: A_d {base} -> {mapped} under relabeling "
                    f"perm={perm} signs={signs}",
                    program,
                )
            if program.is_uniformly_generated(array):
                if not relabeled.is_uniformly_generated(array):
                    return self.fail(
                        f"array {array}: uniformly generated before but not "
                        f"after relabeling perm={perm} signs={signs}",
                        program,
                    )
                # When d < n-1 the estimate falls back to heuristic bounds
                # that depend on offsets, so only the *exact* closed forms
                # (d == n, d == n-1; rank is relabeling-invariant) must
                # agree.
                e0 = estimate_distinct_accesses(program, array)
                e1 = estimate_distinct_accesses(relabeled, array)
                if e0.exact and (
                    (e0.lower, e0.upper, e0.exact)
                    != (e1.lower, e1.upper, e1.exact)
                ):
                    return self.fail(
                        f"array {array}: estimate ({e0.lower}, {e0.upper}, "
                        f"{e0.exact}) -> ({e1.lower}, {e1.upper}, {e1.exact}) "
                        f"under relabeling perm={perm} signs={signs}",
                        program,
                    )
        return None


@register
class RelabelDistinctInvariance2D(_RelabelDistinctInvariance):
    name = "relabel-distinct-invariance"
    config = GeneratorConfig(depth=2, min_trip=2, max_trip=8, uniform_only=True)


@register
class RelabelDistinctInvariance3D(_RelabelDistinctInvariance):
    name = "relabel-distinct-invariance-3d"
    config = GeneratorConfig(
        depth=3, min_trip=2, max_trip=4, max_coeff=2, uniform_only=True
    )


@register
class PermutationPreservesSemantics(Oracle):
    name = "permutation-preserves-semantics"
    kind = "metamorphic"
    paper = (
        "Loop-order permutation is legal when every order-constraining "
        "distance stays lex-positive (Section 4, Example 8); a legal "
        "permutation must then produce identical final array contents."
    )
    config = GeneratorConfig(depth=2, min_trip=2, max_trip=5, uniform_only=True)

    def check(self, program: Program, seed: int = 0) -> Violation | None:
        import itertools

        from repro.ir.interpreter import execute, states_equal
        from repro.transform.legality import is_legal, ordering_distances

        n = program.nest.depth
        distances = ordering_distances(program, reductions_reorderable=False)
        identity = tuple(range(n))
        for perm in itertools.permutations(range(n)):
            if perm == identity:
                continue
            matrix = IntMatrix(
                [[1 if c == p else 0 for c in range(n)] for p in perm]
            )
            if not is_legal(matrix, distances):
                continue
            permuted = relabel_signed_permutation(program, perm, (1,) * n)
            if not states_equal(execute(program), execute(permuted)):
                return self.fail(
                    f"legal permutation {perm} changed execution results "
                    f"(distances {distances})",
                    program,
                )
        return None


@register
class TripExtensionMonotone(Oracle):
    name = "trip-extension-monotone"
    kind = "metamorphic"
    paper = (
        "Extending the outermost trip count appends iterations after the "
        "original prefix; last touches only move later, so every window "
        "grows or stays — MWS and A_d are monotone non-decreasing."
    )
    config = GeneratorConfig(depth=2, min_trip=2, max_trip=6)

    def check(self, program: Program, seed: int = 0) -> Violation | None:
        from repro.estimation.exact import exact_distinct_accesses
        from repro.window import max_total_window
        from repro.window.fast import max_window_size_fast

        extra = 1 + seed % 3
        extended = extend_outermost(program, extra)
        for array in program.arrays:
            base = max_window_size_fast(program, array)
            grown = max_window_size_fast(extended, array)
            if grown < base:
                return self.fail(
                    f"array {array}: MWS dropped {base} -> {grown} after "
                    f"extending the outermost trip count by {extra}",
                    program,
                )
            d0 = exact_distinct_accesses(program, array)
            d1 = exact_distinct_accesses(extended, array)
            if d1 < d0:
                return self.fail(
                    f"array {array}: A_d dropped {d0} -> {d1} after "
                    f"extending the outermost trip count by {extra}",
                    program,
                )
        total0 = max_total_window(program, engine="fast")
        total1 = max_total_window(extended, engine="fast")
        if total1 < total0:
            return self.fail(
                f"total window dropped {total0} -> {total1} after extending "
                f"the outermost trip count by {extra}",
                program,
            )
        return None


@register
class OffsetTranslationInvariance(Oracle):
    name = "offset-translation-invariance"
    kind = "metamorphic"
    paper = (
        "Translating all references of an array by one constant slides "
        "the touched set without changing any offset difference, so "
        "dependence distances, windows and distinct counts are invariant "
        "(Section 2's reuse vectors depend only on differences)."
    )
    config = GeneratorConfig(depth=2, min_trip=2, max_trip=6)

    def check(self, program: Program, seed: int = 0) -> Violation | None:
        from repro.estimation import (
            estimate_distinct_accesses,
            exact_distinct_accesses,
        )
        from repro.window.fast import max_window_size_fast

        shifts = {}
        for array in program.arrays:
            rank = program.refs_to(array)[0].rank
            rng = random.Random((seed, array).__repr__())
            shifts[array] = tuple(rng.randint(-5, 7) for _ in range(rank))
        shifted = translate_offsets(program, shifts)
        for array in program.arrays:
            m0 = max_window_size_fast(program, array)
            m1 = max_window_size_fast(shifted, array)
            if m0 != m1:
                return self.fail(
                    f"array {array}: MWS {m0} -> {m1} under offset "
                    f"translation {shifts[array]}",
                    program,
                )
            d0 = exact_distinct_accesses(program, array)
            d1 = exact_distinct_accesses(shifted, array)
            if d0 != d1:
                return self.fail(
                    f"array {array}: A_d {d0} -> {d1} under offset "
                    f"translation {shifts[array]}",
                    program,
                )
            e0 = estimate_distinct_accesses(program, array)
            e1 = estimate_distinct_accesses(shifted, array)
            if (e0.lower, e0.upper, e0.exact) != (e1.lower, e1.upper, e1.exact):
                return self.fail(
                    f"array {array}: estimate ({e0.lower}, {e0.upper}, "
                    f"{e0.exact}) -> ({e1.lower}, {e1.upper}, {e1.exact}) "
                    f"under offset translation {shifts[array]}",
                    program,
                )
        return None


# ----------------------------------------------------------------------
# parametric conformance oracles
# ----------------------------------------------------------------------

def _parametric_sample(
    domain: tuple[int, ...], seed: int, count: int = 6, spread: int = 6
) -> list[tuple[int, ...]]:
    """At least ``count`` in-domain bound vectors, corners first.

    The high corner plus per-axis low corners (one trip count at its
    domain minimum while the rest sit high) are the vectors most likely
    to expose a regime the derivation's own verification missed; the
    rest is random fill, deterministic in ``(seed, domain)``.
    """
    rng = random.Random(f"param-oracle:{seed}:{domain}")
    points = {tuple(d + spread for d in domain)}
    for j in range(len(domain)):
        corner = [d + spread for d in domain]
        corner[j] = domain[j]
        points.add(tuple(corner))
    while len(points) < count:
        points.add(tuple(d + rng.randint(0, spread) for d in domain))
    return sorted(points)


@register
class ParametricMwsConformance(Oracle):
    name = "parametric-mws-conformance"
    kind = "cross"
    paper = (
        "The paper states MWS as a function of the loop limits; a "
        "derived closed form must therefore reproduce the exact engines "
        "at every bound vector in its domain — native and under a "
        "candidate execution order.  Derivation declining (returning "
        "None) is the designed fallback, not a violation."
    )
    config = GeneratorConfig(depth=2, min_trip=2, max_trip=6, max_coeff=2)

    def check(self, program: Program, seed: int = 0) -> Violation | None:
        from repro.estimation.parametric import (
            parametric_signature,
            with_trip_counts,
        )
        from repro.window.symbolic import derive_parametric_mws

        t = _seed_transformation(program, seed)
        psig = parametric_signature(program)
        for array in program.arrays:
            for transformation in (None, t):
                pe = derive_parametric_mws(
                    program, array, transformation, seed=seed
                )
                if pe is None:
                    continue  # fallback contract: simulation answers instead
                where = (
                    "native" if transformation is None
                    else f"T={transformation.rows}"
                )
                for trips in _parametric_sample(pe.domain, seed):
                    value = pe.substitute(trips)
                    if value is None:
                        return self.fail(
                            f"array {array} ({where}): in-domain vector "
                            f"{trips} refused by a verified expression "
                            f"{pe.expr} (domain {pe.domain})",
                            program,
                        )
                    resized = with_trip_counts(program, trips)
                    if parametric_signature(resized) != psig:
                        return self.fail(
                            f"parametric signature not bound-invariant at "
                            f"{trips}",
                            program,
                        )
                    engines = _mws_all_engines(resized, array, transformation)
                    wrong = {k: v for k, v in engines.items() if v != value}
                    if wrong:
                        return self.fail(
                            f"array {array} ({where}) at N={trips}: "
                            f"substituted {pe.expr} = {value} but engines "
                            f"say {wrong}",
                            program,
                        )
        return None


@register
class ParametricDistinctConformance(Oracle):
    name = "parametric-distinct-conformance"
    kind = "cross"
    paper = (
        "Section 3 derives A_d as an expression in the loop limits; the "
        "derived parametric count (paper closed form or interpolated) "
        "must equal the enumeration oracle at every sampled bound "
        "vector in its domain."
    )
    config = GeneratorConfig(depth=2, min_trip=2, max_trip=8)

    def generate(self, seed: int) -> Program:
        cfg = self.config
        if seed % 4 == 3:
            cfg = GeneratorConfig(depth=3, min_trip=2, max_trip=4, max_coeff=2)
        return random_program(seed, cfg)

    def check(self, program: Program, seed: int = 0) -> Violation | None:
        from repro.estimation.exact import exact_distinct_accesses
        from repro.estimation.parametric import with_trip_counts
        from repro.estimation.symbolic import derive_parametric_distinct

        for array in program.arrays:
            pe = derive_parametric_distinct(program, array, seed=seed)
            if pe is None:
                continue  # fallback contract: enumeration answers instead
            for trips in _parametric_sample(pe.domain, seed):
                value = pe.substitute(trips)
                if value is None:
                    return self.fail(
                        f"array {array}: in-domain vector {trips} refused "
                        f"by a verified expression {pe.expr} "
                        f"(domain {pe.domain})",
                        program,
                    )
                truth = exact_distinct_accesses(
                    with_trip_counts(program, trips), array
                )
                if truth != value:
                    return self.fail(
                        f"array {array} at N={trips}: substituted "
                        f"{pe.expr} = {value} ({pe.method}) but "
                        f"enumeration counts {truth}",
                        program,
                    )
        return None


@register
class TimeReversalInvariance(Oracle):
    name = "time-reversal-mws-invariance"
    kind = "metamorphic"
    paper = (
        "Reversing every loop runs the identical access sequence "
        "backwards; lifetimes [first, last] map to [T-1-last, T-1-first], "
        "so the peak live count — the MWS — is unchanged (Section 2.3's "
        "window is symmetric in time)."
    )
    config = GeneratorConfig(depth=2, min_trip=2, max_trip=6)

    def check(self, program: Program, seed: int = 0) -> Violation | None:
        from repro.estimation.exact import exact_distinct_accesses
        from repro.window import max_total_window
        from repro.window.fast import max_window_size_fast

        n = program.nest.depth
        reversed_program = relabel_signed_permutation(
            program, tuple(range(n)), (-1,) * n
        )
        for array in program.arrays:
            m0 = max_window_size_fast(program, array)
            m1 = max_window_size_fast(reversed_program, array)
            if m0 != m1:
                return self.fail(
                    f"array {array}: MWS {m0} -> {m1} under time reversal",
                    program,
                )
            d0 = exact_distinct_accesses(program, array)
            d1 = exact_distinct_accesses(reversed_program, array)
            if d0 != d1:
                return self.fail(
                    f"array {array}: A_d {d0} -> {d1} under time reversal",
                    program,
                )
        t0 = max_total_window(program, engine="fast")
        t1 = max_total_window(reversed_program, engine="fast")
        if t0 != t1:
            return self.fail(
                f"total window {t0} -> {t1} under time reversal", program
            )
        return None


# ----------------------------------------------------------------------
# memory-hierarchy oracles (conformance tier for the multi-level model)
# ----------------------------------------------------------------------

def _seed_hierarchy(seed: int):
    """A deterministic pseudo-random tier stack for ``seed``.

    1-3 tiers with small capacities (generated programs are small), and
    per-access costs drawn then *sorted* so the constructor's
    non-decreasing-with-depth requirement holds by construction.
    """
    from repro.memory.hierarchy import MemoryHierarchy, MemoryTier

    rng = random.Random(seed * 9973 + 11)
    depth = rng.randint(1, 3)
    energies = sorted(round(rng.uniform(1.0, 40.0), 1) for _ in range(depth))
    latencies = sorted(round(rng.uniform(0.5, 20.0), 1) for _ in range(depth))
    tiers = tuple(
        MemoryTier(f"t{k + 1}", rng.randint(1, 48), latencies[k], energies[k])
        for k in range(depth)
    )
    return MemoryHierarchy(name=f"fuzz{seed}", tiers=tiers)


@register
class HierarchyDegenerateFlat(Oracle):
    name = "hierarchy-degenerate-flat"
    kind = "cross"
    paper = (
        "The stacked simulation defines tier k by the flat Belady run at "
        "the cumulative capacity c_1+...+c_k, so a one-tier hierarchy is "
        "*definitionally* the paper's flat scratchpad: its only level "
        "must reproduce simulate_scratchpad field for field, and its "
        "energy must be hits at the tier cost plus transfers at the "
        "backing cost."
    )
    config = GeneratorConfig(depth=2, min_trip=2, max_trip=6)

    def check(self, program: Program, seed: int = 0) -> Violation | None:
        from repro.memory.hierarchy import (
            MemoryHierarchy,
            MemoryTier,
            simulate_hierarchy,
        )
        from repro.memory.scratchpad import simulate_scratchpad

        t = _seed_transformation(program, seed)
        rng = random.Random(seed * 104729 + 7)
        for transformation in (None, t):
            for policy in ("belady", "lru"):
                capacity = rng.randint(1, 64)
                hier = MemoryHierarchy(
                    "one", (MemoryTier("only", capacity, 2.0, 5.0),)
                )
                stacked = simulate_hierarchy(
                    program, hier,
                    transformation=transformation, policy=policy,
                )
                flat = simulate_scratchpad(
                    program, capacity,
                    transformation=transformation, policy=policy,
                )
                where = (
                    f"capacity {capacity}, policy {policy}, "
                    + ("native" if transformation is None
                       else f"T={transformation.rows}")
                )
                if stacked.levels[0] != flat:
                    return self.fail(
                        f"{where}: one-tier level differs from flat "
                        f"scratchpad: {stacked.levels[0]} != {flat}",
                        program,
                    )
                tier = stacked.tiers[0]
                if (
                    tier.hits != flat.hits
                    or tier.lookups != flat.accesses
                    or tier.fetches_below != flat.misses
                    or tier.writebacks_below != flat.writebacks
                    or stacked.offchip_transfers != flat.offchip_transfers
                ):
                    return self.fail(
                        f"{where}: tier accounting differs from flat "
                        f"stats: {tier} vs {flat}",
                        program,
                    )
                energy = (
                    flat.hits * hier.tiers[0].energy_pj
                    + flat.offchip_transfers * hier.offchip_energy_pj
                )
                if abs(stacked.energy_pj - energy) > 1e-6:
                    return self.fail(
                        f"{where}: one-tier energy {stacked.energy_pj} != "
                        f"hits*E + transfers*E_back = {energy}",
                        program,
                    )
        return None


@register
class HierarchyCapacityMonotone(Oracle):
    name = "hierarchy-capacity-monotone"
    kind = "metamorphic"
    paper = (
        "Belady is a stack algorithm: misses and dirty evictions are "
        "non-increasing in capacity, every boundary simulates at a "
        "cumulative capacity, and the constructor requires per-access "
        "costs non-decreasing with depth — so growing any tier (costs "
        "fixed) can only shift hits toward cheaper tiers: no boundary's "
        "transfers, nor the total energy/latency, may increase."
    )
    config = GeneratorConfig(depth=2, min_trip=2, max_trip=6)

    def check(self, program: Program, seed: int = 0) -> Violation | None:
        from repro.memory.hierarchy import simulate_hierarchy

        hier = _seed_hierarchy(seed)
        rng = random.Random(seed * 15485863 + 3)
        index = rng.randrange(hier.depth)
        delta = rng.randint(1, 32)
        grown = hier.resized(
            index, hier.tiers[index].capacity_words + delta
        )
        base = simulate_hierarchy(program, hier)
        more = simulate_hierarchy(program, grown)
        where = f"tier {index} of {hier.spec()['tiers']} grown by {delta}"
        for level, (before, after) in enumerate(zip(base.levels, more.levels)):
            if after.offchip_transfers > before.offchip_transfers:
                return self.fail(
                    f"{where}: boundary {level} transfers grew "
                    f"{before.offchip_transfers} -> "
                    f"{after.offchip_transfers}",
                    program,
                )
        if more.offchip_transfers > base.offchip_transfers:
            return self.fail(
                f"{where}: off-chip transfers grew "
                f"{base.offchip_transfers} -> {more.offchip_transfers}",
                program,
            )
        if more.energy_pj > base.energy_pj + 1e-6:
            return self.fail(
                f"{where}: energy grew {base.energy_pj} -> "
                f"{more.energy_pj}",
                program,
            )
        if more.latency_ns > base.latency_ns + 1e-6:
            return self.fail(
                f"{where}: latency grew {base.latency_ns} -> "
                f"{more.latency_ns}",
                program,
            )
        return None


@register
class HierarchyBoundAdmissible(Oracle):
    name = "hierarchy-bound-admissible"
    kind = "cross"
    paper = (
        "Hong & Kung's phase argument and the cold-traffic floor hold "
        "for any replacement policy, so transfer_lower_bound must never "
        "exceed the transfers any simulation reports — Belady or LRU, "
        "native or transformed order, whole program or one array, flat "
        "buffer or tier stack at its total capacity."
    )
    config = GeneratorConfig(depth=2, min_trip=2, max_trip=6)

    def check(self, program: Program, seed: int = 0) -> Violation | None:
        from repro.estimation.bounds import transfer_lower_bound
        from repro.memory.hierarchy import simulate_hierarchy
        from repro.memory.scratchpad import simulate_scratchpad

        t = _seed_transformation(program, seed)
        rng = random.Random(seed * 32452843 + 17)
        capacities = [rng.randint(1, 8), rng.randint(9, 64)]
        for transformation in (None, t):
            for policy in ("belady", "lru"):
                for capacity in capacities:
                    lb = transfer_lower_bound(
                        program, capacity, None, transformation
                    )
                    sim = simulate_scratchpad(
                        program, capacity,
                        transformation=transformation, policy=policy,
                    )
                    if lb > sim.offchip_transfers:
                        return self.fail(
                            f"capacity {capacity} ({policy}): bound {lb} "
                            f"> simulated transfers "
                            f"{sim.offchip_transfers}",
                            program,
                        )
            for array in program.arrays:
                capacity = capacities[0]
                lb = transfer_lower_bound(
                    program, capacity, array, transformation
                )
                sim = simulate_scratchpad(
                    program, capacity, array=array,
                    transformation=transformation,
                )
                if lb > sim.offchip_transfers:
                    return self.fail(
                        f"array {array} at capacity {capacity}: bound "
                        f"{lb} > simulated transfers "
                        f"{sim.offchip_transfers}",
                        program,
                    )
        hier = _seed_hierarchy(seed)
        stacked = simulate_hierarchy(program, hier)
        lb = transfer_lower_bound(program, hier.total_capacity)
        if lb > stacked.offchip_transfers:
            return self.fail(
                f"stack {hier.spec()['tiers']}: bound {lb} at total "
                f"capacity {hier.total_capacity} > simulated off-chip "
                f"transfers {stacked.offchip_transfers}",
                program,
            )
        return None
