"""Greedy counterexample minimization.

Given a program that violates an oracle, shrink it while the violation
persists (CUTE-style input reduction, restricted to the paper's model so
every intermediate candidate is still a valid rectangular affine nest):

1. drop whole statements,
2. drop individual references (reads, then the write) from statements,
3. shrink trip counts (to one iteration, halved, decremented),
4. move offsets toward zero (zero, halved, stepped),
5. move access-matrix coefficients toward zero.

Every pass re-runs the violated oracle's ``check`` on the candidate with
the original seed; a candidate is accepted only when the oracle still
fails.  A candidate that *crashes* the oracle is rejected — the shrinker
preserves the violation, it does not hunt for new ones.  Passes repeat
until a fixpoint, so the result is 1-minimal with respect to the five
operation families.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.check.oracles import Oracle, Violation
from repro.ir.loop import Loop, LoopNest
from repro.ir.program import Program
from repro.ir.reference import ArrayRef
from repro.ir.statement import Statement
from repro.linalg import IntMatrix

#: Safety valve on accepted reductions; generously above anything the
#: small fuzz configs can produce.
MAX_STEPS = 2000

Predicate = Callable[[Program], bool]


@dataclass(frozen=True)
class ShrinkResult:
    """Outcome of one minimization."""

    program: Program
    steps: int  # accepted reductions
    attempts: int  # candidates tried

    @property
    def statements(self) -> int:
        return len(self.program.statements)

    @property
    def iterations(self) -> int:
        return self.program.nest.total_iterations


def oracle_predicate(oracle: Oracle, seed: int) -> Predicate:
    """``True`` iff ``candidate`` still violates ``oracle`` at ``seed``.

    Exceptions count as *not* violating: a reduction that turns the
    original failure into a crash (singular access matrix, empty array)
    changes the bug and is rejected.
    """

    def predicate(candidate: Program) -> bool:
        try:
            return oracle.check(candidate, seed) is not None
        except Exception:
            return False

    return predicate


def _with_statements(program: Program, statements: list[Statement]) -> Program:
    return Program(
        LoopNest(list(program.nest.loops)), statements, name=program.name
    )


def _with_upper(program: Program, level: int, upper: int) -> Program:
    loops = list(program.nest.loops)
    loops[level] = Loop(loops[level].index, loops[level].lower, upper)
    return Program(LoopNest(loops), list(program.statements), name=program.name)


def _drop_statement_candidates(program: Program) -> Iterator[Program]:
    statements = list(program.statements)
    if len(statements) <= 1:
        return
    for k in range(len(statements)):
        yield _with_statements(program, statements[:k] + statements[k + 1:])


def _drop_reference_candidates(program: Program) -> Iterator[Program]:
    statements = list(program.statements)
    for s, stmt in enumerate(statements):
        if len(stmt.references) <= 1:
            continue
        for r in range(len(stmt.reads)):
            reduced = Statement(
                stmt.label, stmt.writes, stmt.reads[:r] + stmt.reads[r + 1:]
            )
            yield _with_statements(
                program, statements[:s] + [reduced] + statements[s + 1:]
            )
        if stmt.writes and stmt.reads:
            reduced = Statement(stmt.label, (), stmt.reads)
            yield _with_statements(
                program, statements[:s] + [reduced] + statements[s + 1:]
            )


def _trip_candidates(program: Program) -> Iterator[Program]:
    for level, loop in enumerate(program.nest.loops):
        span = loop.upper - loop.lower
        if span <= 0:
            continue
        uppers = [loop.lower]
        if span > 1:
            uppers.append(loop.lower + span // 2)
        uppers.append(loop.upper - 1)
        seen: set[int] = set()
        for upper in uppers:
            if upper in seen:
                continue
            seen.add(upper)
            yield _with_upper(program, level, upper)


def _toward_zero(value: int) -> list[int]:
    """Replacement attempts for one integer, most aggressive first."""
    if value == 0:
        return []
    out = [0]
    if abs(value) > 1:
        out.append(value // 2 if value > 0 else -((-value) // 2))
        out.append(value - 1 if value > 0 else value + 1)
    return out


def _ref_rewrite_candidates(
    program: Program, rewrite: Callable[[ArrayRef], Iterator[ArrayRef]]
) -> Iterator[Program]:
    statements = list(program.statements)
    for s, stmt in enumerate(statements):
        refs = list(stmt.references)
        for r, ref in enumerate(refs):
            for replacement in rewrite(ref):
                n_reads = len(stmt.reads)
                if r < n_reads:
                    reduced = Statement(
                        stmt.label,
                        stmt.writes,
                        stmt.reads[:r] + (replacement,) + stmt.reads[r + 1:],
                    )
                else:
                    w = r - n_reads
                    reduced = Statement(
                        stmt.label,
                        stmt.writes[:w] + (replacement,) + stmt.writes[w + 1:],
                        stmt.reads,
                    )
                yield _with_statements(
                    program, statements[:s] + [reduced] + statements[s + 1:]
                )


def _offset_candidates(program: Program) -> Iterator[Program]:
    def rewrite(ref: ArrayRef) -> Iterator[ArrayRef]:
        for dim, value in enumerate(ref.offset):
            for replacement in _toward_zero(value):
                offset = list(ref.offset)
                offset[dim] = replacement
                yield ArrayRef(ref.array, ref.access, tuple(offset), ref.kind)

    return _ref_rewrite_candidates(program, rewrite)


def _coefficient_candidates(program: Program) -> Iterator[Program]:
    def rewrite(ref: ArrayRef) -> Iterator[ArrayRef]:
        rows = [list(row) for row in ref.access.rows]
        for d in range(len(rows)):
            for j in range(len(rows[d])):
                for replacement in _toward_zero(rows[d][j]):
                    new_rows = [list(row) for row in rows]
                    new_rows[d][j] = replacement
                    yield ArrayRef(
                        ref.array, IntMatrix(new_rows), ref.offset, ref.kind
                    )

    return _ref_rewrite_candidates(program, rewrite)


_PASSES = (
    _drop_statement_candidates,
    _drop_reference_candidates,
    _trip_candidates,
    _offset_candidates,
    _coefficient_candidates,
)


def _normalize(program: Program, predicate: Predicate) -> Program:
    """Canonical labels/name for the corpus; kept only if still failing."""
    statements = [
        Statement(f"S{k + 1}", stmt.writes, stmt.reads)
        for k, stmt in enumerate(program.statements)
    ]
    candidate = Program(
        LoopNest(list(program.nest.loops)), statements, name="repro"
    )
    return candidate if predicate(candidate) else program


def shrink(
    program: Program, predicate: Predicate, max_steps: int = MAX_STEPS
) -> ShrinkResult:
    """Greedy fixpoint minimization of ``program`` under ``predicate``.

    ``predicate(candidate)`` must return ``True`` while the candidate
    still exhibits the failure (see :func:`oracle_predicate`).  The input
    program itself must satisfy it.
    """
    if not predicate(program):
        raise ValueError("shrink() called on a program that does not fail")
    current = program
    steps = 0
    attempts = 0
    progress = True
    while progress and steps < max_steps:
        progress = False
        for make_candidates in _PASSES:
            accepted = True
            while accepted and steps < max_steps:
                accepted = False
                for candidate in make_candidates(current):
                    attempts += 1
                    if predicate(candidate):
                        current = candidate
                        steps += 1
                        accepted = True
                        progress = True
                        break
    return ShrinkResult(_normalize(current, predicate), steps, attempts)


def shrink_case(
    oracle: Oracle, program: Program, seed: int
) -> tuple[ShrinkResult, Violation]:
    """Minimize a failing fuzz case and return the surviving violation."""
    result = shrink(program, oracle_predicate(oracle, seed))
    violation = oracle.check(result.program, seed)
    if violation is None:  # pragma: no cover - predicate guarantees failure
        raise AssertionError("shrunk program stopped failing")
    return result, violation
