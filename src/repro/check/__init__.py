"""Conformance subsystem: oracles, counterexample shrinking, fuzz runner.

The permanent home for the cross-implementation equivalences and
metamorphic relations that keep the estimation/window stack honest:

* :mod:`repro.check.oracles` — the oracle registry.  Each oracle bundles
  ``generate -> (transform) -> check`` over the random program generator
  and reports a :class:`~repro.check.oracles.Violation` on failure.
* :mod:`repro.check.shrink` — greedy minimization of a failing program
  (drop statements/references, shrink trips/coefficients/offsets) while
  the violated oracle keeps failing.
* :mod:`repro.check.runner` — ``repro check``: fuzz all oracles under
  seed/time budgets with per-case timeouts, shrink failures into
  canonical JSON repros under ``tests/corpus/``, and report per-oracle
  counters through :mod:`repro.obs.metrics`.

Every corpus file is replayed as a deterministic regression case by
``tests/test_corpus_replay.py``; see ``docs/testing.md``.
"""

from repro.check.oracles import (
    ORACLES,
    Oracle,
    Violation,
    all_oracles,
    get_oracle,
    oracle_names,
    register,
)
from repro.check.runner import (
    CheckReport,
    ReproCase,
    load_repro,
    render_check_report,
    replay_case,
    replay_file,
    run_check,
    write_repro,
)
from repro.check.shrink import ShrinkResult, oracle_predicate, shrink, shrink_case

__all__ = [
    "ORACLES",
    "Oracle",
    "Violation",
    "all_oracles",
    "get_oracle",
    "oracle_names",
    "register",
    "CheckReport",
    "ReproCase",
    "load_repro",
    "render_check_report",
    "replay_case",
    "replay_file",
    "run_check",
    "write_repro",
    "ShrinkResult",
    "oracle_predicate",
    "shrink",
    "shrink_case",
]
