"""The ``repro check`` fuzz runner and the JSON counterexample corpus.

``run_check`` drives every registered oracle over a seed range and/or a
wall-clock budget with a per-case timeout, shrinks each failure with
:mod:`repro.check.shrink`, and writes a canonical JSON repro into the
corpus directory.  Counters flow through :mod:`repro.obs` /
:mod:`repro.obs.metrics` (``check.cases``, ``check.<oracle>.violations``,
…) so a ``--trace`` run reconciles like every other subsystem.

A corpus file is a *fixed* bug: replaying it (``repro check --replay
f.json`` or ``tests/test_corpus_replay.py``) asserts the oracle now
passes on the minimized program, so reintroducing the bug fails the
suite with the smallest known witness.
"""

from __future__ import annotations

import hashlib
import json
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.check.oracles import Oracle, Violation, all_oracles, get_oracle
from repro.check.shrink import shrink_case
from repro.ir import generate_source, parse_program
from repro.ir.program import Program
from repro.obs import metrics

#: Corpus JSON schema version.
SCHEMA = 1

#: Default per-case wall-clock timeout (seconds).
DEFAULT_CASE_TIMEOUT = 10.0

#: Default seed count when neither ``seeds`` nor ``time_budget`` is given.
DEFAULT_SEEDS = 100


# ----------------------------------------------------------------------
# corpus files
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ReproCase:
    """One corpus entry: a minimized program plus its oracle context."""

    oracle: str
    seed: int
    source: str
    detail: str
    note: str = ""

    @property
    def program(self) -> Program:
        return parse_program(self.source, name="repro")


def _case_payload(case: ReproCase) -> dict:
    return {
        "schema": SCHEMA,
        "oracle": case.oracle,
        "seed": case.seed,
        "source": case.source,
        "detail": case.detail,
        "note": case.note,
    }


def case_filename(case: ReproCase) -> str:
    digest = hashlib.sha256(
        f"{case.oracle}\n{case.seed}\n{case.source}".encode()
    ).hexdigest()[:10]
    return f"{case.oracle}--{digest}.json"


def write_repro(
    directory: Path | str,
    oracle: str,
    program: Program,
    seed: int,
    detail: str,
    note: str = "",
) -> Path:
    """Serialize a minimized failing case into the corpus (canonical JSON)."""
    case = ReproCase(
        oracle=oracle,
        seed=seed,
        source=generate_source(program),
        detail=detail,
        note=note,
    )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / case_filename(case)
    path.write_text(
        json.dumps(_case_payload(case), indent=2, sort_keys=True) + "\n"
    )
    return path


def load_repro(path: Path | str) -> ReproCase:
    data = json.loads(Path(path).read_text())
    if data.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: unsupported corpus schema {data.get('schema')!r}"
        )
    return ReproCase(
        oracle=data["oracle"],
        seed=int(data["seed"]),
        source=data["source"],
        detail=data.get("detail", ""),
        note=data.get("note", ""),
    )


def replay_case(case: ReproCase) -> Violation | None:
    """Re-run the case's oracle on its minimized program."""
    return get_oracle(case.oracle).check(case.program, case.seed)


def replay_file(path: Path | str) -> Violation | None:
    return replay_case(load_repro(path))


# ----------------------------------------------------------------------
# per-case timeout
# ----------------------------------------------------------------------

class CaseTimeout(Exception):
    """A single fuzz case exceeded its wall-clock budget."""


class _alarm:
    """SIGALRM-based timeout; inert off the main thread / off POSIX."""

    def __init__(self, seconds: float):
        self.seconds = seconds
        self.armed = (
            seconds > 0
            and hasattr(signal, "setitimer")
            and threading.current_thread() is threading.main_thread()
        )

    def __enter__(self) -> "_alarm":
        if self.armed:
            def _raise(signum, frame):
                raise CaseTimeout()

            self._previous = signal.signal(signal.SIGALRM, _raise)
            signal.setitimer(signal.ITIMER_REAL, self.seconds)
        return self

    def __exit__(self, *exc: object) -> None:
        if self.armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._previous)


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------

@dataclass
class OracleStats:
    """Per-oracle counters mirrored into :mod:`repro.obs.metrics`."""

    name: str
    kind: str
    cases: int = 0
    violations: int = 0
    errors: int = 0
    timeouts: int = 0
    seconds: float = 0.0


@dataclass(frozen=True)
class CheckFailure:
    """One shrunk counterexample produced during a run."""

    oracle: str
    seed: int
    detail: str
    statements: int
    iterations: int
    path: Path | None


@dataclass
class CheckReport:
    """Outcome of one ``run_check`` invocation."""

    stats: dict[str, OracleStats] = field(default_factory=dict)
    failures: list[CheckFailure] = field(default_factory=list)
    errors: list[tuple[str, int, str]] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def cases(self) -> int:
        return sum(s.cases for s in self.stats.values())

    @property
    def ok(self) -> bool:
        return not self.failures and not self.errors


def _select_oracles(names) -> tuple[Oracle, ...]:
    if not names:
        return all_oracles()
    return tuple(get_oracle(name) for name in names)


def run_check(
    oracle_names=None,
    seeds: int | None = None,
    time_budget: float | None = None,
    base_seed: int = 0,
    corpus_dir: Path | str | None = None,
    case_timeout: float = DEFAULT_CASE_TIMEOUT,
    do_shrink: bool = True,
    note: str = "",
) -> CheckReport:
    """Fuzz the oracle registry; shrink and record every failure.

    ``seeds`` bounds the seed range (``base_seed .. base_seed+seeds-1``),
    ``time_budget`` bounds wall-clock seconds; with both, whichever runs
    out first stops the run.  Counters are published through the active
    observer (one is enabled for the duration if none is).
    """
    selected = _select_oracles(oracle_names)
    if seeds is None and time_budget is None:
        seeds = DEFAULT_SEEDS
    report = CheckReport(
        stats={o.name: OracleStats(o.name, o.kind) for o in selected}
    )
    own_observer = obs.get_observer() is None
    if own_observer:
        obs.enable()
    started = time.perf_counter()

    def out_of_budget() -> bool:
        return (
            time_budget is not None
            and time.perf_counter() - started >= time_budget
        )

    try:
        offset = 0
        while not (seeds is not None and offset >= seeds) and not out_of_budget():
            seed = base_seed + offset
            for oracle in selected:
                if out_of_budget():
                    break
                stat = report.stats[oracle.name]
                case_start = time.perf_counter()
                program = None
                try:
                    with _alarm(case_timeout):
                        program = oracle.generate(seed)
                        violation = oracle.check(program, seed)
                except CaseTimeout:
                    stat.timeouts += 1
                    obs.counter("check.timeouts")
                    obs.counter(f"check.{oracle.name}.timeouts")
                    continue
                except Exception as exc:
                    stat.errors += 1
                    obs.counter("check.errors")
                    obs.counter(f"check.{oracle.name}.errors")
                    report.errors.append(
                        (oracle.name, seed, f"{type(exc).__name__}: {exc}")
                    )
                    continue
                finally:
                    duration = time.perf_counter() - case_start
                    stat.cases += 1
                    stat.seconds += duration
                    obs.counter("check.cases")
                    obs.counter(f"check.{oracle.name}.cases")
                    metrics.observe("check.case_seconds", duration)
                if violation is None:
                    continue
                stat.violations += 1
                obs.counter("check.violations")
                obs.counter(f"check.{oracle.name}.violations")
                path = None
                shrunk = program
                detail = violation.detail
                if do_shrink:
                    result, violation = shrink_case(oracle, program, seed)
                    shrunk = result.program
                    detail = violation.detail
                if corpus_dir is not None:
                    path = write_repro(
                        corpus_dir, oracle.name, shrunk, seed, detail,
                        note=note or f"found by repro check at seed {seed}",
                    )
                report.failures.append(
                    CheckFailure(
                        oracle=oracle.name,
                        seed=seed,
                        detail=detail,
                        statements=len(shrunk.statements),
                        iterations=shrunk.nest.total_iterations,
                        path=path,
                    )
                )
            offset += 1
    finally:
        report.seconds = time.perf_counter() - started
        for stat in report.stats.values():
            metrics.gauge(f"check.{stat.name}.case_count", stat.cases)
        if own_observer:
            obs.disable()
    return report


def render_check_report(report: CheckReport) -> str:
    """ASCII summary: one row per oracle, then shrunk failures."""
    header = (
        f"{'oracle':<34} {'kind':<12} {'cases':>6} {'viol':>5} "
        f"{'err':>4} {'t/o':>4} {'secs':>7}"
    )
    lines = [header, "-" * len(header)]
    for stat in report.stats.values():
        lines.append(
            f"{stat.name:<34} {stat.kind:<12} {stat.cases:>6} "
            f"{stat.violations:>5} {stat.errors:>4} {stat.timeouts:>4} "
            f"{stat.seconds:>7.2f}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"{report.cases} cases in {report.seconds:.2f}s: "
        f"{len(report.failures)} violation(s), {len(report.errors)} error(s)"
    )
    for failure in report.failures:
        lines.append("")
        lines.append(
            f"FAIL {failure.oracle} seed {failure.seed} "
            f"(shrunk to {failure.statements} statement(s), "
            f"{failure.iterations} iteration(s)):"
        )
        lines.append(f"  {failure.detail.splitlines()[0]}")
        if failure.path is not None:
            lines.append(
                f"  replay: PYTHONPATH=src python -m repro check "
                f"--replay {failure.path}"
            )
    for name, seed, message in report.errors:
        lines.append("")
        lines.append(f"ERROR {name} seed {seed}: {message}")
    return "\n".join(lines)
