"""Asyncio HTTP/JSON front end for the analysis service.

Stdlib only (``asyncio`` + a hand-rolled HTTP/1.1 handler loop): a thin
shell over :class:`repro.api.AnalysisService` adding what a network
boundary needs — request admission control, per-tenant token-bucket
quotas, per-request timeouts on the reclaimable worker pool, and the
observability read side (``/healthz``, ``/metrics``, ``/runs``).
See ``docs/service.md``.
"""

from repro.server.app import ReproServer
from repro.server.http import BadRequest, HTTPRequest, read_request, render_response
from repro.server.quota import TenantQuotas, TokenBucket

__all__ = [
    "BadRequest",
    "HTTPRequest",
    "ReproServer",
    "TenantQuotas",
    "TokenBucket",
    "read_request",
    "render_response",
]
