"""Minimal HTTP/1.1 request parsing and response rendering.

Just enough of the protocol for a JSON analysis service on stdlib
``asyncio`` streams — no routing, no keep-alive (every response carries
``Connection: close``), no chunked bodies.  Kept apart from the app so
the wire format is testable without sockets.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

#: Upper bound on the combined size of the request head (bytes).
MAX_HEADER_BYTES = 65536

#: Upper bound on a request body (bytes) — manifests are small JSON.
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Reason phrases for every status the service emits.
REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}


class BadRequest(Exception):
    """Malformed request; the handler answers 400 (or the given code)."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class HTTPRequest:
    """One parsed request (headers lower-cased, body raw bytes)."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The body decoded as JSON (``BadRequest`` on garbage)."""
        if not self.body:
            raise BadRequest("request body must be a JSON object")
        try:
            return json.loads(self.body)
        except ValueError as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}") from None


async def read_request(reader) -> HTTPRequest | None:
    """Parse one request from an asyncio stream.

    Returns ``None`` when the peer closed without sending anything;
    raises :class:`BadRequest` on a malformed or oversized request.
    """
    line = await reader.readline()
    if not line.strip():
        return None
    parts = line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise BadRequest("malformed request line")
    method, target = parts[0].upper(), parts[1]
    headers: dict[str, str] = {}
    seen = len(line)
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        seen += len(line)
        if seen > MAX_HEADER_BYTES:
            raise BadRequest("request head too large", status=413)
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise BadRequest(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    raw_length = headers.get("content-length", "0") or "0"
    try:
        length = int(raw_length)
    except ValueError:
        raise BadRequest(f"bad Content-Length {raw_length!r}") from None
    if length < 0:
        raise BadRequest(f"bad Content-Length {raw_length!r}")
    if length > MAX_BODY_BYTES:
        raise BadRequest("request body too large", status=413)
    body = await reader.readexactly(length) if length else b""
    # Query strings are not part of the service surface; strip them so
    # routing sees a clean path.
    path = target.split("?", 1)[0]
    return HTTPRequest(method=method, path=path, headers=headers, body=body)


def render_response(
    status: int,
    payload: Any,
    content_type: str | None = None,
) -> bytes:
    """One full HTTP/1.1 response (string payloads as text, the rest
    as canonical JSON)."""
    if isinstance(payload, bytes):
        body = payload
        content_type = content_type or "application/octet-stream"
    elif isinstance(payload, str):
        body = payload.encode("utf-8")
        content_type = content_type or "text/plain; charset=utf-8"
    else:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        content_type = content_type or "application/json"
    reason = REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body
