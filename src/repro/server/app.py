"""The always-on analysis server: asyncio shell over ``repro.api``.

One :class:`ReproServer` wraps one :class:`repro.api.AnalysisService`
(which owns the store, LRU, and reclaimable worker pool) and adds the
network-boundary concerns:

* **Admission control.**  At most ``workers + queue_limit`` analysis
  requests are in flight (executing or waiting for a pool slot); the
  next one is answered ``429`` immediately (``server.admission.rejected``)
  instead of queueing without bound.
* **Per-tenant quotas.**  A token bucket per ``X-Repro-Tenant`` header
  (``server.quota.rejected`` on refusal) so no tenant can starve the
  rest — see :mod:`repro.server.quota`.
* **Per-request timeouts.**  Requests run through the same
  kill-and-respawn timeout path as ``repro batch`` — a hung request is
  answered ``504`` and its worker slot is reclaimed, never leaked.
* **Observability read side.**  ``/healthz``, Prometheus ``/metrics``
  (the exporter from :mod:`repro.obs.export`), and the run ledger at
  ``/runs`` / ``/runs/<id>``.
* **Background compaction.**  With ``compact_interval`` set, the store
  sweep (:func:`repro.store.maintenance.compact_store`) runs
  periodically off the event loop.

Routes::

    GET  /healthz        liveness + inflight/capacity snapshot
    GET  /metrics        Prometheus exposition of the live observer
    GET  /runs           recorded run IDs (oldest first)
    GET  /runs/<id>      one ledger record ('last', prefixes allowed)
    POST /analyze        one analysis request (the repro.api surface)
    POST /shutdown       graceful stop; the CLI then seals the ledger

``POST /analyze`` answers 200 on success, 400 on a malformed request,
422 on an evaluation error, 429 over capacity or quota, 504 on a
request timeout.
"""

from __future__ import annotations

import asyncio
import functools
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro import obs
from repro.api import AnalysisService, build_request
from repro.server.http import (
    BadRequest,
    HTTPRequest,
    read_request,
    render_response,
)
from repro.server.quota import TenantQuotas

#: Tenant bucket for requests that send no ``X-Repro-Tenant`` header.
ANONYMOUS_TENANT = "anonymous"

#: Default tokens/second each tenant accrues (see ``--quota-rate``).
DEFAULT_QUOTA_RATE = 50.0

#: Default queue depth beyond the worker count before 429s start.
def default_queue_limit(workers: int) -> int:
    return max(2, 2 * workers)


class ReproServer:
    """One HTTP front end over one :class:`AnalysisService`.

    ``port=0`` binds an ephemeral port (``bound_port`` after startup;
    ``ready`` is set once the socket listens — test harnesses start
    :meth:`run` on a thread and wait on it).  ``evaluator`` overrides
    the analysis evaluator for every request (tests inject hanging or
    exploding ones); production leaves it ``None``.
    """

    def __init__(
        self,
        service: AnalysisService,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_limit: int | None = None,
        quota_rate: float | None = DEFAULT_QUOTA_RATE,
        quota_burst: float | None = None,
        compact_interval: float | None = None,
        evaluator=None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        if queue_limit is None:
            queue_limit = default_queue_limit(service.workers)
        if queue_limit < 0:
            raise ValueError(f"queue_limit must be >= 0, got {queue_limit}")
        self.max_pending = max(1, service.workers) + queue_limit
        self.quotas = TenantQuotas(quota_rate, quota_burst)
        self.compact_interval = compact_interval
        self.evaluator = evaluator
        self.ready = threading.Event()
        self.bound_port: int | None = None
        self._inflight = 0  # event-loop thread only
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._executor: ThreadPoolExecutor | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Serve until :meth:`stop` or ``POST /shutdown`` (blocking)."""
        asyncio.run(self._main())
        return 0

    def stop(self) -> None:
        """Request a graceful stop (thread-safe, idempotent)."""
        loop, event = self._loop, self._stop_event
        if loop is not None and event is not None and loop.is_running():
            loop.call_soon_threadsafe(event.set)

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        # One thread per admitted request: each blocks on the process
        # pool (slot checkout + future wait) while the loop stays free.
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_pending, thread_name_prefix="repro-serve"
        )
        server = await asyncio.start_server(self._client, self.host, self.port)
        self.bound_port = server.sockets[0].getsockname()[1]
        print(f"listening on http://{self.host}:{self.bound_port}",
              flush=True)
        self.ready.set()
        compactor = None
        if self.compact_interval:
            compactor = asyncio.create_task(self._compact_loop())
        try:
            async with server:
                await self._stop_event.wait()
        finally:
            if compactor is not None:
                compactor.cancel()
            self._executor.shutdown(wait=False, cancel_futures=True)
            self.ready.clear()

    async def _compact_loop(self) -> None:
        while True:
            await asyncio.sleep(self.compact_interval)
            try:
                report = await self._loop.run_in_executor(
                    None, self.service.compact
                )
            except Exception:
                obs.counter("server.compact.errors")
                continue
            if report is not None:
                obs.counter("server.compactions")

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _client(self, reader, writer) -> None:
        try:
            try:
                request = await read_request(reader)
            except BadRequest as exc:
                writer.write(render_response(exc.status, {"error": str(exc)}))
                return
            except (asyncio.IncompleteReadError, ConnectionError,
                    asyncio.LimitOverrunError):
                return
            if request is None:
                return
            obs.counter("server.requests")
            try:
                status, payload, content_type = await self._route(request)
            except BadRequest as exc:
                status, payload, content_type = (
                    exc.status, {"error": str(exc)}, None
                )
            except Exception as exc:  # the server must outlive any request
                obs.counter("server.errors")
                status, payload, content_type = (
                    500, {"error": f"{type(exc).__name__}: {exc}"}, None
                )
            writer.write(render_response(status, payload, content_type))
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(
        self, request: HTTPRequest
    ) -> tuple[int, Any, str | None]:
        method, path = request.method, request.path
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET"}, None
            return 200, self._health(), None
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "use GET"}, None
            return 200, self.service.metrics_text(), None
        if path == "/runs":
            if method != "GET":
                return 405, {"error": "use GET"}, None
            runs = await self._loop.run_in_executor(
                None, self.service.run_ids
            )
            return 200, {"runs": runs}, None
        if path.startswith("/runs/"):
            if method != "GET":
                return 405, {"error": "use GET"}, None
            run_id = path[len("/runs/"):]
            record = await self._loop.run_in_executor(
                None, self.service.run_record, run_id
            )
            if record is None:
                return 404, {"error": f"run {run_id!r} not found"}, None
            return 200, record, None
        if path == "/shutdown":
            if method != "POST":
                return 405, {"error": "use POST"}, None
            self._stop_event.set()
            return 202, {"status": "shutting down"}, None
        if path == "/analyze":
            if method != "POST":
                return 405, {"error": "use POST"}, None
            return await self._analyze(request)
        return 404, {"error": f"no route {path!r}"}, None

    def _health(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "inflight": self._inflight,
            "capacity": self.max_pending,
            "workers": self.service.workers,
            "store": self.service.store is not None,
            "tenants": self.quotas.tenants(),
        }

    async def _analyze(
        self, request: HTTPRequest
    ) -> tuple[int, Any, str | None]:
        # Admission first: a full house answers instantly, it does not
        # queue.  _inflight is only touched on the event-loop thread.
        if self._inflight >= self.max_pending:
            obs.counter("server.admission.rejected")
            return 429, {
                "error": "server at capacity",
                "reason": "admission",
                "inflight": self._inflight,
                "capacity": self.max_pending,
            }, None
        tenant = request.headers.get("x-repro-tenant", ANONYMOUS_TENANT)
        if not self.quotas.admit(tenant):
            obs.counter("server.quota.rejected")
            return 429, {
                "error": f"tenant {tenant!r} over quota",
                "reason": "quota",
            }, None
        try:
            analysis = build_request(request.json())
        except ValueError as exc:
            raise BadRequest(str(exc)) from None
        self._inflight += 1
        try:
            response = await self._loop.run_in_executor(
                self._executor,
                functools.partial(
                    self.service.submit, analysis, evaluator=self.evaluator
                ),
            )
        finally:
            self._inflight -= 1
        if response.status == "timeout":
            obs.counter("server.request.timeout")
            return 504, response.as_dict(), None
        if response.status == "error":
            obs.counter("server.request.error")
            return 422, response.as_dict(), None
        return 200, response.as_dict(), None
