"""Per-tenant token-bucket quotas for the HTTP front end.

Admission control (:mod:`repro.server.app`) bounds the *total* load the
process accepts; quotas bound what any one tenant may take of it, so a
single chatty client cannot starve the rest.  Tenants are identified by
the ``X-Repro-Tenant`` request header (anonymous requests share one
bucket).

The classic token bucket: a tenant accrues ``rate`` tokens per second
up to a ceiling of ``burst``, and each admitted request spends one.
Clocks are injected (``time.monotonic`` by default) so tests are
deterministic.
"""

from __future__ import annotations

import time
from typing import Callable

#: Safety valve: one process will not track more tenants than this (a
#: header forger could otherwise grow the bucket map without bound).
MAX_TENANTS = 4096


class TokenBucket:
    """One tenant's budget: ``rate`` tokens/s up to ``burst``."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated: float | None = None

    def try_take(self, now: float) -> bool:
        """Spend one token if the bucket has one; refill lazily."""
        if self.updated is not None and now > self.updated:
            self.tokens = min(
                self.burst, self.tokens + (now - self.updated) * self.rate
            )
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class TenantQuotas:
    """Lazily-created per-tenant buckets behind one ``admit`` call.

    ``rate=None`` disables quotas entirely (every call admits).  The
    default ``burst`` is ``max(1, 2 * rate)`` — a tenant may briefly
    spike to twice its steady-state rate.
    """

    def __init__(
        self,
        rate: float | None,
        burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate
        if rate is not None and burst is None:
            burst = max(1.0, 2.0 * rate)
        self.burst = burst
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}

    def admit(self, tenant: str) -> bool:
        """True when ``tenant`` may proceed (spends one token)."""
        if self.rate is None:
            return True
        bucket = self._buckets.get(tenant)
        if bucket is None:
            if len(self._buckets) >= MAX_TENANTS:
                # Over the tenant cap every unknown tenant shares the
                # overflow bucket: degraded fairness beats unbounded
                # memory under a header-forging client.
                tenant = "\x00overflow"
                bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst)
                self._buckets[tenant] = bucket
        return bucket.try_take(self._clock())

    def tenants(self) -> int:
        return len(self._buckets)
