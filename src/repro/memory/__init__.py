"""Embedded memory substrate: scratchpad simulation and cost models.

Section 1 of the paper motivates window minimization with three costs of
oversized memories — per-access energy, latency and area.  This package
makes those costs concrete: a scratchpad buffer simulator that executes a
nest with a bounded on-chip buffer and counts off-chip transfers, and
parameterized energy/latency/area models in the CACTI tradition (costs
grow with capacity).  Together they turn an MWS number into energy and
traffic numbers.
"""

from repro.memory.scratchpad import (
    ScratchpadStats,
    simulate_scratchpad,
)
from repro.memory.cachesim import (
    CacheConfig,
    CacheStats,
    allocate_arrays,
    simulate_cache,
)
from repro.memory.energy import (
    MemoryCostModel,
    access_energy_pj,
    access_latency_ns,
    area_mm2,
)
from repro.memory.sizing import (
    SizingReport,
    size_memory_for_program,
)

__all__ = [
    "ScratchpadStats",
    "simulate_scratchpad",
    "CacheConfig",
    "CacheStats",
    "allocate_arrays",
    "simulate_cache",
    "MemoryCostModel",
    "access_energy_pj",
    "access_latency_ns",
    "area_mm2",
    "SizingReport",
    "size_memory_for_program",
]
