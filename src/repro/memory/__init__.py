"""Embedded memory substrate: scratchpad simulation and cost models.

Section 1 of the paper motivates window minimization with three costs of
oversized memories — per-access energy, latency and area.  This package
makes those costs concrete: a scratchpad buffer simulator that executes a
nest with a bounded on-chip buffer and counts off-chip transfers, and
parameterized energy/latency/area models in the CACTI tradition (costs
grow with capacity).  Together they turn an MWS number into energy and
traffic numbers.
"""

from repro.memory.scratchpad import (
    ScratchpadStats,
    access_stream,
    simulate_scratchpad,
)
from repro.memory.hierarchy import (
    HierarchyStats,
    MemoryHierarchy,
    MemoryTier,
    PRESETS,
    TierStats,
    preset,
    simulate_hierarchy,
)
from repro.memory.cachesim import (
    CacheConfig,
    CacheStats,
    allocate_arrays,
    simulate_cache,
)
from repro.memory.energy import (
    MemoryCostModel,
    access_energy_pj,
    access_latency_ns,
    area_mm2,
)
from repro.memory.sizing import (
    HierarchySizingReport,
    SizingReport,
    size_memory_for_hierarchy,
    size_memory_for_program,
)

__all__ = [
    "ScratchpadStats",
    "access_stream",
    "simulate_scratchpad",
    "HierarchyStats",
    "MemoryHierarchy",
    "MemoryTier",
    "PRESETS",
    "TierStats",
    "preset",
    "simulate_hierarchy",
    "CacheConfig",
    "CacheStats",
    "allocate_arrays",
    "simulate_cache",
    "MemoryCostModel",
    "access_energy_pj",
    "access_latency_ns",
    "area_mm2",
    "HierarchySizingReport",
    "SizingReport",
    "size_memory_for_hierarchy",
    "size_memory_for_program",
]
