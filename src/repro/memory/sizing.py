"""Memory sizing: from a program to a provisioned data memory.

The end-to-end flow the paper proposes for an embedded-system designer:

1. estimate/measure the maximum window size of the (possibly transformed)
   nest — that is the minimum on-chip data memory that avoids re-fetches;
2. provision that capacity (optionally rounded to a power of two, as
   memory generators require);
3. report the energy/latency/area this saves against the naive
   declared-size allocation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.program import Program
from repro.linalg import IntMatrix
from repro.memory.energy import MemoryCostModel
from repro.memory.hierarchy import (
    HierarchyStats,
    MemoryHierarchy,
    simulate_hierarchy,
)
from repro.memory.scratchpad import simulate_scratchpad
from repro.window.simulator import max_total_window


def _round_up_pow2(value: int) -> int:
    out = 1
    while out < value:
        out *= 2
    return out


@dataclass(frozen=True)
class SizingReport:
    """Provisioning outcome for one program (one transformation state)."""

    program: str
    declared_words: int
    mws_words: int
    provisioned_words: int
    offchip_transfers: int
    energy_per_access_pj: float
    naive_energy_per_access_pj: float
    latency_ns: float
    naive_latency_ns: float
    area_mm2: float
    naive_area_mm2: float

    @property
    def memory_reduction(self) -> float:
        """Fractional reduction vs. the declared allocation."""
        if self.declared_words == 0:
            return 0.0
        return 1.0 - self.mws_words / self.declared_words

    @property
    def energy_reduction(self) -> float:
        return 1.0 - self.energy_per_access_pj / self.naive_energy_per_access_pj


def size_memory_for_program(
    program: Program,
    transformation: IntMatrix | None = None,
    model: MemoryCostModel | None = None,
    round_pow2: bool = True,
    engine: str = "auto",
) -> SizingReport:
    """Measure MWS, provision a buffer, and verify with the scratchpad.

    The scratchpad run at the provisioned capacity double-checks the MWS
    claim: off-chip transfers must equal cold misses plus writebacks (no
    capacity misses).
    """
    model = model or MemoryCostModel()
    declared = program.default_memory
    mws = max_total_window(program, transformation, engine=engine)
    capacity = max(1, mws)
    provisioned = _round_up_pow2(capacity) if round_pow2 else capacity
    stats = simulate_scratchpad(program, provisioned, transformation=transformation)
    return SizingReport(
        program=program.name,
        declared_words=declared,
        mws_words=mws,
        provisioned_words=provisioned,
        offchip_transfers=stats.offchip_transfers,
        energy_per_access_pj=model.energy_per_access_pj(provisioned),
        naive_energy_per_access_pj=model.energy_per_access_pj(max(1, declared)),
        latency_ns=model.latency_ns(provisioned),
        naive_latency_ns=model.latency_ns(max(1, declared)),
        area_mm2=model.area_mm2(provisioned),
        naive_area_mm2=model.area_mm2(max(1, declared)),
    )


@dataclass(frozen=True)
class HierarchySizingReport:
    """Provisioning outcome of one program against one tier stack.

    ``tiers_needed`` is the shallowest prefix of the stack whose summed
    capacity covers the program's MWS — with perfect management those
    tiers alone suffer cold misses only, so deeper tiers are dead weight
    for this nest (``None`` when even the whole stack is too small and
    capacity misses are unavoidable).
    """

    program: str
    hierarchy: str
    mws_words: int
    tiers_needed: int | None
    stats: HierarchyStats

    @property
    def offchip_transfers(self) -> int:
        return self.stats.offchip_transfers

    @property
    def energy_pj(self) -> float:
        return self.stats.energy_pj


def size_memory_for_hierarchy(
    program: Program,
    hierarchy: MemoryHierarchy,
    transformation: IntMatrix | None = None,
    policy: str = "belady",
    engine: str = "auto",
) -> HierarchySizingReport:
    """Measure MWS, simulate the stack, and report which tiers matter.

    The hierarchy analogue of :func:`size_memory_for_program`: instead
    of provisioning one buffer it answers "which prefix of this stack
    does the nest actually need, and what traffic/energy does the full
    stack deliver".
    """
    mws = max_total_window(program, transformation, engine=engine)
    stats = simulate_hierarchy(
        program, hierarchy, transformation=transformation, policy=policy
    )
    tiers_needed = None
    for index, cumulative in enumerate(hierarchy.cumulative_capacities):
        if cumulative >= max(1, mws):
            tiers_needed = index + 1
            break
    return HierarchySizingReport(
        program=program.name,
        hierarchy=hierarchy.name,
        mws_words=mws,
        tiers_needed=tiers_needed,
        stats=stats,
    )
