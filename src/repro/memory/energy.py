"""Parameterized memory cost models.

The paper's Section 1 argument, made quantitative: per-access energy,
access latency and silicon area of an on-chip SRAM all grow with its
capacity.  The model shapes follow the CACTI family — energy and latency
roughly with the square root of capacity (wordline/bitline lengths), area
roughly linearly — normalized to a configurable baseline so the *ratios*
between memory sizes are meaningful even though absolute constants are
technology-specific.

These are models, not a circuit simulator: the paper's own evaluation is
analytical, and these curves exist so examples and benches can convert a
"92.3% smaller memory" into "x% less energy per access".
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class MemoryCostModel:
    """Cost curves for an on-chip data memory of ``capacity`` words.

    Parameters are the costs of a reference 1K-word memory; exponents
    control scaling.  Defaults approximate published SRAM scaling trends
    (energy ~ sqrt(C), latency ~ sqrt(C), area ~ C).
    """

    base_capacity_words: int = 1024
    base_energy_pj: float = 5.0
    base_latency_ns: float = 1.2
    base_area_mm2: float = 0.08
    energy_exponent: float = 0.5
    latency_exponent: float = 0.5
    area_exponent: float = 1.0

    def _ratio(self, capacity: int, exponent: float) -> float:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        return (capacity / self.base_capacity_words) ** exponent

    def energy_per_access_pj(self, capacity: int) -> float:
        """Energy of one access to a memory of ``capacity`` words."""
        return self.base_energy_pj * self._ratio(capacity, self.energy_exponent)

    def latency_ns(self, capacity: int) -> float:
        """Access latency of a memory of ``capacity`` words."""
        return self.base_latency_ns * self._ratio(capacity, self.latency_exponent)

    def area_mm2(self, capacity: int) -> float:
        """Silicon area of a memory of ``capacity`` words."""
        return self.base_area_mm2 * self._ratio(capacity, self.area_exponent)

    def total_energy_pj(
        self, capacity: int, onchip_accesses: int, offchip_transfers: int,
        offchip_energy_pj: float = 200.0,
    ) -> float:
        """Whole-execution energy: on-chip accesses plus off-chip traffic."""
        return (
            onchip_accesses * self.energy_per_access_pj(capacity)
            + offchip_transfers * offchip_energy_pj
        )


_DEFAULT_MODEL = MemoryCostModel()


def access_energy_pj(capacity: int, model: MemoryCostModel = _DEFAULT_MODEL) -> float:
    """Per-access energy under the default model."""
    return model.energy_per_access_pj(capacity)


def access_latency_ns(capacity: int, model: MemoryCostModel = _DEFAULT_MODEL) -> float:
    """Access latency under the default model."""
    return model.latency_ns(capacity)


def area_mm2(capacity: int, model: MemoryCostModel = _DEFAULT_MODEL) -> float:
    """Area under the default model."""
    return model.area_mm2(capacity)
