"""Scratchpad buffer simulation.

Executes a program's access stream against an on-chip buffer of a given
capacity managed with the optimal (Belady) policy the window model
implies: an element is kept exactly while it will be used again.  When
the buffer is at least the program's MWS, every element is fetched from
off-chip exactly once (cold misses only); smaller buffers evict live
elements and re-fetch them.  This is the operational meaning of "MWS =
minimum memory" and the conservation law the tests check.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.ir.program import Program
from repro.linalg import IntMatrix


@dataclass(frozen=True)
class ScratchpadStats:
    """Outcome of a scratchpad simulation."""

    capacity: int
    accesses: int
    hits: int
    cold_misses: int
    capacity_misses: int
    writebacks: int

    @property
    def misses(self) -> int:
        return self.cold_misses + self.capacity_misses

    @property
    def offchip_transfers(self) -> int:
        """Fetches plus writebacks — the traffic a bus would carry."""
        return self.misses + self.writebacks

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


def access_stream(
    program: Program,
    array: str | None = None,
    transformation: IntMatrix | None = None,
) -> list[tuple[tuple, bool]]:
    """The program's ``(element id, is_write)`` trace in execution order.

    ``array`` restricts the trace to one array; ``transformation`` replays
    it in the transformed execution order.  This is the one trace every
    buffer model shares — the flat scratchpad and the multi-tier hierarchy
    simulate the *same* list, which is what makes a one-tier hierarchy
    reproduce :func:`simulate_scratchpad` exactly.
    """
    refs = [
        (ordinal, ref)
        for ordinal, ref in enumerate(program.references)
        if array is None or ref.array == array
    ]
    if not refs:
        raise KeyError(array)
    if transformation is None:
        points = program.nest.iterate()
    else:
        pts = list(program.nest.iterate())
        pts.sort(key=transformation.apply)
        points = iter(pts)

    stream: list[tuple[tuple, bool]] = []  # (element id, is_write)
    for point in points:
        for _, ref in refs:
            stream.append(((ref.array, ref.element(point)), ref.is_write))
    return stream


def next_use_chain(stream: list[tuple[tuple, bool]]) -> list[int]:
    """For each access, the index of the element's next access (or end)."""
    next_use = [len(stream)] * len(stream)
    last_seen: dict[tuple, int] = {}
    for idx in range(len(stream) - 1, -1, -1):
        element = stream[idx][0]
        next_use[idx] = last_seen.get(element, len(stream))
        last_seen[element] = idx
    return next_use


def simulate_stream(
    stream: list[tuple[tuple, bool]],
    next_use: list[int],
    capacity: int,
    policy: str = "belady",
) -> ScratchpadStats:
    """Run a prepared access trace through one managed buffer."""
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    if policy not in ("belady", "lru"):
        raise ValueError(f"unknown policy {policy!r}")
    # resident maps element -> priority (next-use index for Belady,
    # last-use recency for LRU); the lazy heap orders eviction victims.
    use_belady = policy == "belady"
    resident: dict[tuple, int] = {}
    dirty: set[tuple] = set()
    heap: list[tuple[int, tuple]] = []
    seen_ever: set[tuple] = set()
    hits = cold = capacity_misses = writebacks = 0

    def priority(idx: int) -> int:
        # Belady evicts the LARGEST next use; LRU evicts the SMALLEST
        # last use.  Store negated next-use so the min-heap pops the
        # right victim in both policies.
        return -next_use[idx] if use_belady else idx

    for idx, (element, is_write) in enumerate(stream):
        if element in resident:
            hits += 1
        else:
            if element in seen_ever:
                capacity_misses += 1
            else:
                cold += 1
                seen_ever.add(element)
            if len(resident) >= capacity:
                while True:
                    prio, victim = heapq.heappop(heap)
                    if resident.get(victim) == prio:
                        break
                del resident[victim]
                if victim in dirty:
                    writebacks += 1
                    dirty.discard(victim)
        # Refresh the element's priority (insert or update).
        prio = priority(idx)
        if resident.get(element) != prio:
            resident[element] = prio
            heapq.heappush(heap, (prio, element))
        if is_write:
            dirty.add(element)

    writebacks += len(dirty & set(resident))  # final flush of dirty lines
    return ScratchpadStats(
        capacity=capacity,
        accesses=len(stream),
        hits=hits,
        cold_misses=cold,
        capacity_misses=capacity_misses,
        writebacks=writebacks,
    )


def simulate_scratchpad(
    program: Program,
    capacity: int,
    array: str | None = None,
    transformation: IntMatrix | None = None,
    policy: str = "belady",
) -> ScratchpadStats:
    """Run the access stream through a managed on-chip buffer.

    ``array`` restricts the simulation to one array (per-array buffers are
    how the paper sizes windows); None simulates all arrays sharing the
    buffer.  ``transformation`` replays the stream in the transformed
    execution order.

    ``policy="belady"`` evicts the resident element whose next use is
    farthest in the future (never-used-again elements first) — optimal,
    matching the window model's assumption of perfect management, so a
    buffer of MWS elements suffers cold misses only.  ``policy="lru"``
    models a hardware cache without future knowledge; the ablation bench
    measures how much extra capacity LRU needs to reach the same traffic.
    """
    stream = access_stream(program, array, transformation)
    return simulate_stream(stream, next_use_chain(stream), capacity, policy)
