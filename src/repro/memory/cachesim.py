"""Set-associative cache simulation over laid-out addresses.

Complements the scratchpad model: where the scratchpad is software-
managed at element granularity with perfect knowledge, a cache is
hardware-managed at line granularity with LRU — the realistic fallback
when an embedded platform has no scratchpad.  Arrays are allocated
back-to-back in a single address space under a chosen layout.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.ir.program import Program
from repro.layout.layouts import Layout, RowMajorLayout
from repro.linalg import IntMatrix


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of a set-associative cache (sizes in words/lines)."""

    total_lines: int
    line_size: int = 8
    associativity: int = 4

    def __post_init__(self) -> None:
        if self.total_lines <= 0 or self.line_size <= 0 or self.associativity <= 0:
            raise ValueError("cache parameters must be positive")
        if self.total_lines % self.associativity != 0:
            raise ValueError("total_lines must be a multiple of associativity")

    @property
    def n_sets(self) -> int:
        return self.total_lines // self.associativity

    @property
    def capacity_words(self) -> int:
        return self.total_lines * self.line_size


@dataclass(frozen=True)
class CacheStats:
    """Outcome of a cache simulation."""

    config: CacheConfig
    accesses: int
    hits: int
    misses: int

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


def allocate_arrays(program: Program, layout: Layout | None = None):
    """Assign each array a base address (packed allocation, in order).

    Returns ``(bases, layout)`` where ``bases[array]`` is the word base.
    """
    layout = layout or RowMajorLayout()
    bases: dict[str, int] = {}
    cursor = 0
    for decl in program.decls:
        bases[decl.name] = cursor
        cursor += decl.declared_size
    return bases, layout


def simulate_cache(
    program: Program,
    config: CacheConfig,
    layout: Layout | None = None,
    transformation: IntMatrix | None = None,
) -> CacheStats:
    """Run the full access stream through a set-associative LRU cache."""
    bases, layout = allocate_arrays(program, layout)
    decls = {decl.name: decl for decl in program.decls}
    if transformation is None:
        points = program.nest.iterate()
    else:
        pts = list(program.nest.iterate())
        pts.sort(key=transformation.apply)
        points = iter(pts)

    sets: list[OrderedDict[int, None]] = [
        OrderedDict() for _ in range(config.n_sets)
    ]
    hits = misses = accesses = 0
    refs = list(program.references)
    address_cache: dict[tuple[str, tuple[int, ...]], int] = {}
    for point in points:
        for ref in refs:
            element = ref.element(point)
            key = (ref.array, element)
            addr = address_cache.get(key)
            if addr is None:
                addr = bases[ref.array] + layout.address(decls[ref.array], element)
                address_cache[key] = addr
            line = addr // config.line_size
            set_index = line % config.n_sets
            ways = sets[set_index]
            accesses += 1
            if line in ways:
                hits += 1
                ways.move_to_end(line)
            else:
                misses += 1
                ways[line] = None
                if len(ways) > config.associativity:
                    ways.popitem(last=False)
    return CacheStats(config, accesses, hits, misses)
