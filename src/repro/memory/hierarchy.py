"""Multi-level memory hierarchy model and exact tier-stack simulation.

The paper provisions one flat on-chip buffer; a real embedded target has
a *stack* of memories — TCM / L1 cache / system SRAM backed by flash or
DRAM — with very different capacities, latencies and per-access energies
(the Cortex-M-class numbers in the ROADMAP: 16–64KB caches, 128–512KB
TCM, 4–10-cycle system SRAM).  This module models that stack and
simulates a program's access stream through it exactly.

The simulation is the stacked (exclusive) generalization of the flat
Belady scratchpad: the first ``k`` tiers together behave like one
optimally managed buffer of their summed capacity, so an access resolves
at tier ``k`` exactly when it hits at cumulative capacity ``c_1 + ... +
c_k`` but misses at ``c_1 + ... + c_{k-1}``.  Each boundary's traffic
(fetches up, dirty writebacks down) is read off the flat simulation at
the boundary's cumulative capacity — all tiers replay the *same* trace
via :func:`repro.memory.scratchpad.access_stream`, which is what makes a
one-tier hierarchy reproduce :func:`simulate_scratchpad` field for
field (the ``hierarchy-degenerate-flat`` conformance oracle).

Two laws follow and are fuzzed as oracles:

* degenerate equivalence — one tier of capacity ``c`` gives exactly the
  flat ``ScratchpadStats`` at ``c``;
* monotonicity — growing any tier (with per-access costs held fixed)
  never increases any boundary's transfers, the off-chip traffic, or the
  modeled energy/latency, because Belady misses and writebacks are
  non-increasing in capacity (the stack property) and the constructor
  validates that per-access costs are non-decreasing with tier depth.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.ir.program import Program
from repro.linalg import IntMatrix
from repro.memory.scratchpad import (
    ScratchpadStats,
    access_stream,
    next_use_chain,
    simulate_stream,
)

#: Words are 4-byte data words throughout (1KB == 256 words).
WORDS_PER_KB = 256


@dataclass(frozen=True)
class MemoryTier:
    """One on-chip memory level: capacity plus fixed per-access costs.

    ``energy_pj`` and ``latency_ns`` are properties of the physical
    memory the preset names (a 16KB cache, a 256KB TCM), *not* derived
    from ``capacity_words`` — holding them fixed while a capacity grows
    is what makes the monotonicity law well-posed.
    """

    name: str
    capacity_words: int
    latency_ns: float
    energy_pj: float

    def __post_init__(self) -> None:
        if self.capacity_words <= 0:
            raise ValueError(f"tier {self.name!r}: capacity must be positive")
        if self.latency_ns <= 0 or self.energy_pj <= 0:
            raise ValueError(f"tier {self.name!r}: costs must be positive")


@dataclass(frozen=True)
class MemoryHierarchy:
    """An ordered stack of tiers, fastest first, over an off-chip backing.

    Per-access energy and latency must be non-decreasing with depth and
    bounded by the off-chip costs — that ordering (smaller memories are
    cheaper to touch) is what the monotonicity oracle's energy claim
    rests on, so it is validated here rather than assumed.
    """

    name: str
    tiers: tuple[MemoryTier, ...]
    offchip_energy_pj: float = 200.0
    offchip_latency_ns: float = 100.0

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ValueError("a hierarchy needs at least one tier")
        for above, below in zip(self.tiers, self.tiers[1:]):
            if below.energy_pj < above.energy_pj:
                raise ValueError(
                    f"tier {below.name!r} is cheaper per access than "
                    f"{above.name!r} above it"
                )
            if below.latency_ns < above.latency_ns:
                raise ValueError(
                    f"tier {below.name!r} is faster than {above.name!r} "
                    "above it"
                )
        last = self.tiers[-1]
        if self.offchip_energy_pj < last.energy_pj:
            raise ValueError("off-chip energy below the last tier's")
        if self.offchip_latency_ns < last.latency_ns:
            raise ValueError("off-chip latency below the last tier's")

    @property
    def depth(self) -> int:
        return len(self.tiers)

    @property
    def capacities(self) -> tuple[int, ...]:
        return tuple(tier.capacity_words for tier in self.tiers)

    @property
    def cumulative_capacities(self) -> tuple[int, ...]:
        out, total = [], 0
        for tier in self.tiers:
            total += tier.capacity_words
            out.append(total)
        return tuple(out)

    @property
    def total_capacity(self) -> int:
        return sum(tier.capacity_words for tier in self.tiers)

    def resized(self, index: int, capacity_words: int) -> "MemoryHierarchy":
        """A copy with one tier's capacity replaced (costs untouched)."""
        tiers = list(self.tiers)
        tiers[index] = replace(tiers[index], capacity_words=capacity_words)
        return replace(self, tiers=tuple(tiers))

    def spec(self) -> dict:
        """Canonical JSON-able description — the store-key identity."""
        return {
            "name": self.name,
            "tiers": [
                [t.name, t.capacity_words, t.latency_ns, t.energy_pj]
                for t in self.tiers
            ],
            "offchip_energy_pj": self.offchip_energy_pj,
            "offchip_latency_ns": self.offchip_latency_ns,
        }


@dataclass(frozen=True)
class TierStats:
    """One tier's share of a hierarchy simulation.

    ``lookups`` are the accesses that reached this tier (missed every
    faster one); ``hits`` resolved here; ``transfers_below`` is the
    traffic on the boundary to the next level down — fetches coming up
    plus dirty writebacks going down.
    """

    name: str
    capacity_words: int
    lookups: int
    hits: int
    fetches_below: int
    writebacks_below: int

    @property
    def transfers_below(self) -> int:
        return self.fetches_below + self.writebacks_below


@dataclass(frozen=True)
class HierarchyStats:
    """Exact outcome of one program run through a tier stack.

    ``levels`` keeps the flat Belady stats at each cumulative-capacity
    boundary — ``levels[k]`` is exactly what a flat scratchpad of the
    first ``k+1`` tiers' summed capacity would report, so a one-tier
    hierarchy exposes the flat simulation unchanged as ``levels[0]``.
    """

    hierarchy: str
    accesses: int
    tiers: tuple[TierStats, ...]
    levels: tuple[ScratchpadStats, ...]
    energy_pj: float
    latency_ns: float

    @property
    def offchip_fetches(self) -> int:
        return self.levels[-1].misses

    @property
    def offchip_writebacks(self) -> int:
        return self.levels[-1].writebacks

    @property
    def offchip_transfers(self) -> int:
        """Traffic on the off-chip bus — the paper's headline number."""
        return self.levels[-1].offchip_transfers

    @property
    def hits_per_tier(self) -> tuple[int, ...]:
        return tuple(t.hits for t in self.tiers)


def simulate_hierarchy(
    program: Program,
    hierarchy: MemoryHierarchy,
    array: str | None = None,
    transformation: IntMatrix | None = None,
    policy: str = "belady",
) -> HierarchyStats:
    """Run the access stream through the tier stack, exactly.

    One shared trace, one flat Belady (or LRU) simulation per cumulative
    capacity boundary; per-tier hits and boundary traffic are differences
    between adjacent boundaries.  Energy charges every access at the
    energy of the tier that resolved it, every dirty demotion at the
    receiving tier, and off-chip traffic at the backing cost; latency is
    the same sum over latencies.
    """
    stream = access_stream(program, array, transformation)
    next_use = next_use_chain(stream)
    levels = tuple(
        simulate_stream(stream, next_use, capacity, policy)
        for capacity in hierarchy.cumulative_capacities
    )
    accesses = len(stream)
    tiers = []
    energy = 0.0
    latency = 0.0
    prev_misses = accesses  # an empty zeroth level misses everything
    for tier, level in zip(hierarchy.tiers, levels):
        lookups = prev_misses
        hits = lookups - level.misses
        tiers.append(
            TierStats(
                name=tier.name,
                capacity_words=tier.capacity_words,
                lookups=lookups,
                hits=hits,
                fetches_below=level.misses,
                writebacks_below=level.writebacks,
            )
        )
        energy += hits * tier.energy_pj
        latency += hits * tier.latency_ns
        prev_misses = level.misses
    # Dirty demotions land in the next tier down (a write access there);
    # the last boundary's traffic pays the off-chip cost both ways.
    for below, level in zip(hierarchy.tiers[1:], levels[:-1]):
        energy += level.writebacks * below.energy_pj
        latency += level.writebacks * below.latency_ns
    bottom = levels[-1]
    energy += bottom.offchip_transfers * hierarchy.offchip_energy_pj
    latency += bottom.offchip_transfers * hierarchy.offchip_latency_ns
    return HierarchyStats(
        hierarchy=hierarchy.name,
        accesses=accesses,
        tiers=tuple(tiers),
        levels=levels,
        energy_pj=energy,
        latency_ns=latency,
    )


def _kb(kilobytes: int) -> int:
    return kilobytes * WORDS_PER_KB


#: Cortex-M-class presets (capacities from the ROADMAP's Helium memory
#: guide numbers; energies/latencies follow the CACTI-style ordering:
#: small and close is cheap, big and far is expensive, off-chip is 200pJ
#: to match :meth:`MemoryCostModel.total_energy_pj`).
PRESETS: dict[str, MemoryHierarchy] = {
    # 16KB L1-style cache over a 128KB TCM, flash behind — the preset the
    # hierarchy search and its benchmark run against.
    "tcm": MemoryHierarchy(
        name="tcm",
        tiers=(
            MemoryTier("l1", _kb(16), 1.0, 5.0),
            MemoryTier("tcm", _kb(128), 2.0, 7.0),
        ),
    ),
    # Three-level cache path: 16KB L1, 64KB L2, 512KB system SRAM.
    "cache": MemoryHierarchy(
        name="cache",
        tiers=(
            MemoryTier("l1", _kb(16), 1.0, 5.0),
            MemoryTier("l2", _kb(64), 3.0, 10.0),
            MemoryTier("sram", _kb(512), 8.0, 25.0),
        ),
    ),
    # One flat 64KB SRAM — the paper's single-buffer world as a preset.
    "flat": MemoryHierarchy(
        name="flat",
        tiers=(MemoryTier("sram", _kb(64), 4.0, 12.0),),
    ),
}


def preset(name: str) -> MemoryHierarchy:
    """Look a preset hierarchy up by name."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown hierarchy preset {name!r}; available: "
            f"{', '.join(PRESETS)}"
        ) from None
