"""Double buffering and block-transfer scheduling over tiles.

Section 4.1 requires tileability precisely so data can move in *block
transfers*; an embedded implementation overlaps those transfers with
compute by double buffering: while tile ``t`` computes out of buffer A,
tile ``t+1``'s data streams into buffer B.  This model answers the two
provisioning questions:

* capacity: double buffering needs ``2 x`` the per-tile footprint;
* feasibility: transfers hide behind compute iff
  ``tile_words / bandwidth <= tile_iterations * compute_time``.

Together with :func:`repro.transform.tiling.pick_tile_size` this closes
the loop from "the nest is tileable" to "here is the SRAM size and the
minimum bus bandwidth".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.ir.program import Program
from repro.linalg import IntMatrix
from repro.transform.tiling import tile_footprint


@dataclass(frozen=True)
class DoubleBufferPlan:
    """Provisioning outcome for a double-buffered tiled execution."""

    tile: tuple[int, ...]
    tile_iterations: int
    tile_footprint_words: int
    buffer_words: int  # 2x footprint
    n_tiles: int
    total_transfer_words: int
    words_per_iteration: float

    def bandwidth_required(self, compute_time_per_iteration: float) -> float:
        """Words/second needed to hide transfers behind compute."""
        if compute_time_per_iteration <= 0:
            raise ValueError("compute time must be positive")
        tile_time = self.tile_iterations * compute_time_per_iteration
        return self.tile_footprint_words / tile_time

    def transfers_hidden(
        self, bandwidth_words_per_s: float, compute_time_per_iteration: float
    ) -> bool:
        """Does the given bus keep the pipeline compute-bound?"""
        return bandwidth_words_per_s >= self.bandwidth_required(
            compute_time_per_iteration
        )


def plan_double_buffering(
    program: Program,
    tile: Sequence[int],
    transformation: IntMatrix | None = None,
) -> DoubleBufferPlan:
    """Provision a double-buffered execution of the (transformed) nest.

    The per-tile footprint is measured exactly on the corner tile
    (uniformly generated references make all full tiles equal); the total
    transfer volume assumes each tile's footprint is fetched once —
    i.e. no inter-tile reuse exploitation, the conservative streaming
    model block transfers use in practice.
    """
    n = program.nest.depth
    tile = tuple(tile)
    if len(tile) != n:
        raise ValueError("tile rank != nest depth")
    if any(t <= 0 for t in tile):
        raise ValueError("tile extents must be positive")
    footprint = tile_footprint(program, tile, transformation)
    tile_iterations = 1
    for t in tile:
        tile_iterations *= t
    total_iterations = program.nest.total_iterations
    n_tiles = -(-total_iterations // tile_iterations)  # ceil
    total_transfer = n_tiles * footprint
    return DoubleBufferPlan(
        tile=tile,
        tile_iterations=tile_iterations,
        tile_footprint_words=footprint,
        buffer_words=2 * footprint,
        n_tiles=n_tiles,
        total_transfer_words=total_transfer,
        words_per_iteration=total_transfer / total_iterations,
    )


def best_tile_for_budget(
    program: Program,
    capacity_words: int,
    transformation: IntMatrix | None = None,
    max_size: int = 32,
) -> DoubleBufferPlan:
    """Largest square tile whose *double* buffer fits the capacity.

    Bigger tiles amortize transfers better (interior reuse is captured
    within the tile), so the best plan under a capacity is the largest
    feasible square tile.
    """
    n = program.nest.depth
    best: DoubleBufferPlan | None = None
    size = 1
    while size <= max_size:
        plan = plan_double_buffering(program, (size,) * n, transformation)
        if plan.buffer_words <= capacity_words:
            best = plan
            size += 1
        else:
            break
    if best is None:
        raise ValueError(
            f"even a unit tile needs {plan.buffer_words} words > {capacity_words}"
        )
    return best
