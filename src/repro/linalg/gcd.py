"""Scalar gcd machinery and linear diophantine solvers.

These routines underpin dependence testing (does ``a1*x1 + ... + an*xn = c``
have integer solutions within the loop bounds?) and unimodular completion
(find ``c, d`` with ``a*d - b*c = 1``).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Sequence


def ext_gcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: return ``(g, x, y)`` with ``a*x + b*y = g = gcd(a, b)``.

    ``g`` is always non-negative.  ``ext_gcd(0, 0) == (0, 0, 0)``.

    >>> ext_gcd(6, 4)
    (2, 1, -1)
    """
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    if old_r < 0:
        old_r, old_x, old_y = -old_r, -old_x, -old_y
    return old_r, old_x, old_y


def gcd_list(values: Sequence[int]) -> int:
    """Non-negative gcd of a sequence; ``gcd_list([]) == 0``."""
    g = 0
    for v in values:
        g = math.gcd(g, v)
    return g


def lcm(a: int, b: int) -> int:
    """Least common multiple; ``lcm(0, x) == 0``."""
    if a == 0 or b == 0:
        return 0
    return abs(a * b) // math.gcd(a, b)


def lcm_list(values: Sequence[int]) -> int:
    """lcm of a sequence; ``lcm_list([]) == 1``."""
    out = 1
    for v in values:
        out = lcm(out, v)
        if out == 0:
            return 0
    return out


def solve_two_var_diophantine(a: int, b: int, c: int) -> tuple[int, int] | None:
    """One integer solution ``(x, y)`` of ``a*x + b*y = c``, or ``None``.

    The general solution is ``(x + t*b/g, y - t*a/g)`` for integer ``t``
    where ``g = gcd(a, b)``.

    >>> solve_two_var_diophantine(3, 5, 1)
    (2, -1)
    """
    if a == 0 and b == 0:
        return (0, 0) if c == 0 else None
    g, x, y = ext_gcd(a, b)
    if c % g != 0:
        return None
    k = c // g
    return x * k, y * k


def solve_linear_diophantine(coeffs: Sequence[int], c: int) -> list[int] | None:
    """One integer solution of ``sum(coeffs[i] * x[i]) = c``, or ``None``.

    Uses the classic fold: solve for the gcd of a prefix, then recurse.
    An all-zero coefficient vector admits the zero solution iff ``c == 0``.

    >>> solve_linear_diophantine([3, 7], -4)
    [8, -4]
    >>> 3 * 8 + 7 * -4
    -4
    """
    n = len(coeffs)
    if n == 0:
        return [] if c == 0 else None
    if n == 1:
        a = coeffs[0]
        if a == 0:
            return [0] if c == 0 else None
        if c % a != 0:
            return None
        return [c // a]
    # Fold the first two coefficients into their gcd, recurse, then split.
    a, b = coeffs[0], coeffs[1]
    g = math.gcd(a, b)
    if g == 0:
        rest = solve_linear_diophantine(coeffs[2:], c)
        if rest is None:
            return None
        return [0, 0] + rest
    sub = solve_linear_diophantine([g] + list(coeffs[2:]), c)
    if sub is None:
        return None
    # a*x + b*y = g * sub[0]
    pair = solve_two_var_diophantine(a, b, g * sub[0])
    assert pair is not None  # g * sub[0] is a multiple of gcd(a, b) == g
    return [pair[0], pair[1]] + sub[1:]


def floor_div(a: int, b: int) -> int:
    """Floor of ``a / b`` for any non-zero integer ``b`` (exact semantics)."""
    return math.floor(Fraction(a, b))


def ceil_div(a: int, b: int) -> int:
    """Ceiling of ``a / b`` for any non-zero integer ``b``."""
    return math.ceil(Fraction(a, b))
