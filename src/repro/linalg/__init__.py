"""Exact integer linear algebra substrate.

Everything in this package operates on Python integers (arbitrary
precision), never on floats, so all results are exact.  This is the
foundation for dependence analysis (distance vectors), reuse analysis
(integer nullspaces of access matrices) and the unimodular transformation
machinery of the paper.

Public API
----------
``IntMatrix``
    Dense exact integer matrix with determinant, inverse, Hermite and
    Smith normal forms.
``ext_gcd``, ``gcd_list``, ``solve_linear_diophantine``
    Scalar / vector diophantine tools.
``integer_nullspace``
    Primitive basis of the integer kernel of a matrix.
``complete_unimodular``
    Extend a set of rows to a full unimodular matrix.
``sylvester_count``, ``frobenius_number``
    Counting of non-representable values of ``a*x + b*y`` — used for the
    non-uniform lower bound of Section 3.2.
"""

from repro.linalg.gcd import (
    ext_gcd,
    gcd_list,
    lcm,
    lcm_list,
    solve_linear_diophantine,
    solve_two_var_diophantine,
)
from repro.linalg.matrix import IntMatrix
from repro.linalg.hermite import hermite_normal_form, smith_normal_form
from repro.linalg.nullspace import integer_nullspace, primitive_vector
from repro.linalg.unimodular import (
    complete_unimodular,
    is_unimodular,
    random_unimodular,
    unimodular_inverse,
)
from repro.linalg.frobenius import (
    frobenius_number,
    representable_values,
    sylvester_count,
)

__all__ = [
    "IntMatrix",
    "ext_gcd",
    "gcd_list",
    "lcm",
    "lcm_list",
    "solve_linear_diophantine",
    "solve_two_var_diophantine",
    "hermite_normal_form",
    "smith_normal_form",
    "integer_nullspace",
    "primitive_vector",
    "complete_unimodular",
    "is_unimodular",
    "random_unimodular",
    "unimodular_inverse",
    "frobenius_number",
    "representable_values",
    "sylvester_count",
]
