"""Unimodular matrices: predicates, inverses, completion, generation.

A unimodular matrix (integer, determinant +-1) is exactly an invertible
change of basis of the iteration lattice, which is why the paper restricts
its loop transformations to this class: the transformed loop nest scans the
same integer points, once each.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.linalg.hermite import hermite_normal_form
from repro.linalg.matrix import IntMatrix


def is_unimodular(matrix: IntMatrix) -> bool:
    """True iff the matrix is square with determinant +1 or -1."""
    return matrix.is_square() and matrix.det() in (1, -1)


def unimodular_inverse(matrix: IntMatrix) -> IntMatrix:
    """Exact integer inverse of a unimodular matrix."""
    return matrix.inverse_unimodular()


def complete_unimodular(rows: Sequence[Sequence[int]]) -> IntMatrix:
    """Extend ``rows`` (k linearly independent primitive-lattice rows) to an
    ``n x n`` unimodular matrix whose first ``k`` rows are ``rows``.

    The construction: compute ``H = U @ R^T`` (column relations of the row
    space).  When the rows span a *direct summand* of ``Z^n`` (equivalently
    the HNF of ``R^T`` has unit pivots), ``inv(U)``'s trailing rows complete
    the basis.  Raises ``ValueError`` when no unimodular completion exists,
    e.g. ``rows = [[2, 0]]`` (the row is not primitive).

    >>> complete_unimodular([[2, -3]]).det() in (1, -1)
    True
    >>> complete_unimodular([[3, 0, 1], [0, 1, 1]]).n_rows
    3
    """
    r = IntMatrix(rows)
    k, n = r.shape
    if k > n:
        raise ValueError("more rows than columns; cannot complete")
    h, u = hermite_normal_form(r.transpose())
    # H = U @ R^T is n x k, echelon.  A unimodular completion of the rows of
    # R exists iff the lattice they generate is a direct summand, i.e. every
    # pivot of H is +-1.
    pivots = []
    for col in range(k):
        col_vals = [h[i, col] for i in range(n)]
        nonzero = [i for i, v in enumerate(col_vals) if v != 0]
        if not nonzero:
            raise ValueError("rows are linearly dependent; cannot complete")
        pivots.append((min(nonzero), col_vals[min(nonzero)]))
    if any(abs(p) != 1 for _, p in pivots):
        raise ValueError(
            "rows do not generate a direct summand of Z^n (non-unit HNF pivot); "
            "no unimodular completion exists"
        )
    # With unit pivots, U @ R^T = [T; 0] where T is k x k unimodular; then
    # R = [T^T  0] @ inv(U)^T, so the rows of inv(U)^T past the first k,
    # together with R's own rows, form a basis.
    u_inv_t = u.inverse_unimodular().transpose()
    completion_rows = list(rows) + [list(u_inv_t.row(i)) for i in range(k, n)]
    result = IntMatrix(completion_rows)
    d = result.det()
    if d not in (1, -1):
        raise AssertionError(f"internal error: completion has det {d}")
    if d == -1 and n > k:
        # Normalize to det +1 by negating the last appended row.
        completion_rows[-1] = [-v for v in completion_rows[-1]]
        result = IntMatrix(completion_rows)
    return result


def random_unimodular(n: int, rng: random.Random, steps: int = 12, max_mult: int = 3) -> IntMatrix:
    """A pseudo-random unimodular matrix built from elementary operations.

    Used by property-based tests: starting from the identity, apply a
    bounded number of row swaps, row negations and bounded-multiple row
    additions — each preserves ``|det| == 1``.
    """
    m = IntMatrix.identity(n).to_lists()
    for _ in range(steps):
        op = rng.randrange(3)
        i = rng.randrange(n)
        j = rng.randrange(n)
        if op == 0 and i != j:
            m[i], m[j] = m[j], m[i]
        elif op == 1:
            m[i] = [-v for v in m[i]]
        elif op == 2 and i != j:
            k = rng.randint(-max_mult, max_mult)
            m[i] = [a + k * b for a, b in zip(m[i], m[j])]
    return IntMatrix(m)
