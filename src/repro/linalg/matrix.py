"""Dense exact integer matrices.

``IntMatrix`` is deliberately small and dependency-free: the matrices in
this problem domain are access matrices (``d x n`` with ``n <= 4``) and
transformation matrices (``n x n``), so asymptotic performance is
irrelevant while exactness and clarity are everything.  All arithmetic is
over Python ints; any float input is rejected.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence


class IntMatrix:
    """An immutable matrix of Python integers.

    Rows are stored as tuples of ints.  Supports the linear algebra the
    paper needs: products, determinants (Bareiss, fraction-free), exact
    inverses of unimodular matrices, and structural queries.

    >>> m = IntMatrix([[1, 2], [3, 4]])
    >>> m.det()
    -2
    >>> (m @ m.identity(2)) == m
    True
    """

    __slots__ = ("rows",)

    def __init__(self, rows: Iterable[Iterable[int]]):
        materialized = tuple(tuple(self._check_int(v) for v in row) for row in rows)
        if not materialized:
            raise ValueError("IntMatrix must have at least one row")
        width = len(materialized[0])
        if width == 0:
            raise ValueError("IntMatrix must have at least one column")
        if any(len(row) != width for row in materialized):
            raise ValueError("ragged rows in IntMatrix")
        self.rows: tuple[tuple[int, ...], ...] = materialized

    @staticmethod
    def _check_int(value: int) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeError(f"IntMatrix entries must be ints, got {value!r}")
        return value

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, n: int) -> "IntMatrix":
        """The ``n x n`` identity matrix."""
        return cls([[1 if i == j else 0 for j in range(n)] for i in range(n)])

    @classmethod
    def zeros(cls, n_rows: int, n_cols: int) -> "IntMatrix":
        """The ``n_rows x n_cols`` zero matrix."""
        return cls([[0] * n_cols for _ in range(n_rows)])

    @classmethod
    def from_rows(cls, rows: Sequence[Sequence[int]]) -> "IntMatrix":
        """Alias constructor for readability at call sites."""
        return cls(rows)

    @classmethod
    def column(cls, values: Sequence[int]) -> "IntMatrix":
        """A single-column matrix from a vector."""
        return cls([[v] for v in values])

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return len(self.rows)

    @property
    def n_cols(self) -> int:
        return len(self.rows[0])

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.n_cols)

    def is_square(self) -> bool:
        return self.n_rows == self.n_cols

    def row(self, i: int) -> tuple[int, ...]:
        return self.rows[i]

    def col(self, j: int) -> tuple[int, ...]:
        return tuple(row[j] for row in self.rows)

    def __getitem__(self, key: tuple[int, int]) -> int:
        i, j = key
        return self.rows[i][j]

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntMatrix):
            return NotImplemented
        return self.rows == other.rows

    def __hash__(self) -> int:
        return hash(self.rows)

    def __repr__(self) -> str:
        body = ", ".join(str(list(row)) for row in self.rows)
        return f"IntMatrix([{body}])"

    def pretty(self) -> str:
        """A multi-line right-aligned rendering for reports."""
        width = max(len(str(v)) for row in self.rows for v in row)
        lines = ["[ " + "  ".join(str(v).rjust(width) for v in row) + " ]" for row in self.rows]
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "IntMatrix") -> "IntMatrix":
        self._require_same_shape(other)
        return IntMatrix(
            [[a + b for a, b in zip(ra, rb)] for ra, rb in zip(self.rows, other.rows)]
        )

    def __sub__(self, other: "IntMatrix") -> "IntMatrix":
        self._require_same_shape(other)
        return IntMatrix(
            [[a - b for a, b in zip(ra, rb)] for ra, rb in zip(self.rows, other.rows)]
        )

    def __neg__(self) -> "IntMatrix":
        return IntMatrix([[-v for v in row] for row in self.rows])

    def scale(self, k: int) -> "IntMatrix":
        """Scalar multiple ``k * self``."""
        return IntMatrix([[k * v for v in row] for row in self.rows])

    def __matmul__(self, other: "IntMatrix") -> "IntMatrix":
        if self.n_cols != other.n_rows:
            raise ValueError(f"shape mismatch: {self.shape} @ {other.shape}")
        other_cols = [other.col(j) for j in range(other.n_cols)]
        return IntMatrix(
            [
                [sum(a * b for a, b in zip(row, col)) for col in other_cols]
                for row in self.rows
            ]
        )

    def apply(self, vector: Sequence[int]) -> tuple[int, ...]:
        """Matrix-vector product ``self @ vector`` as a tuple.

        This is the workhorse for transforming iteration and dependence
        vectors.
        """
        if len(vector) != self.n_cols:
            raise ValueError(f"vector length {len(vector)} != n_cols {self.n_cols}")
        return tuple(sum(a * x for a, x in zip(row, vector)) for row in self.rows)

    def transpose(self) -> "IntMatrix":
        return IntMatrix([self.col(j) for j in range(self.n_cols)])

    def _require_same_shape(self, other: "IntMatrix") -> None:
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")

    # ------------------------------------------------------------------
    # determinant / inverse / rank
    # ------------------------------------------------------------------
    def det(self) -> int:
        """Exact determinant via the Bareiss fraction-free algorithm."""
        if not self.is_square():
            raise ValueError("determinant of a non-square matrix")
        n = self.n_rows
        m = [list(row) for row in self.rows]
        sign = 1
        prev_pivot = 1
        for k in range(n - 1):
            if m[k][k] == 0:
                pivot_row = next((r for r in range(k + 1, n) if m[r][k] != 0), None)
                if pivot_row is None:
                    return 0
                m[k], m[pivot_row] = m[pivot_row], m[k]
                sign = -sign
            for i in range(k + 1, n):
                for j in range(k + 1, n):
                    m[i][j] = (m[i][j] * m[k][k] - m[i][k] * m[k][j]) // prev_pivot
                m[i][k] = 0
            prev_pivot = m[k][k]
        return sign * m[n - 1][n - 1]

    def rank(self) -> int:
        """Rank over the rationals (equals rank over Z for our purposes)."""
        m = [list(row) for row in self.rows]
        n_rows, n_cols = self.shape
        rank = 0
        row = 0
        for col in range(n_cols):
            pivot = next((r for r in range(row, n_rows) if m[r][col] != 0), None)
            if pivot is None:
                continue
            m[row], m[pivot] = m[pivot], m[row]
            for r in range(n_rows):
                if r != row and m[r][col] != 0:
                    # Fraction-free elimination: scale then subtract.
                    a, b = m[row][col], m[r][col]
                    m[r] = [a * x - b * y for x, y in zip(m[r], m[row])]
            rank += 1
            row += 1
            if row == n_rows:
                break
        return rank

    def inverse_unimodular(self) -> "IntMatrix":
        """Exact inverse, valid only when ``abs(det) == 1``.

        Uses the adjugate: ``inv(A) = adj(A) / det(A)``, which stays
        integral exactly when the matrix is unimodular.
        """
        d = self.det()
        if d not in (1, -1):
            raise ValueError(f"matrix is not unimodular (det={d})")
        n = self.n_rows
        cof = [
            [((-1) ** (i + j)) * self._minor(i, j).det() if n > 1 else 1 for j in range(n)]
            for i in range(n)
        ]
        adj = IntMatrix(cof).transpose()
        return adj.scale(d)  # dividing by det == multiplying, since det is +-1

    def _minor(self, drop_row: int, drop_col: int) -> "IntMatrix":
        return IntMatrix(
            [
                [v for j, v in enumerate(row) if j != drop_col]
                for i, row in enumerate(self.rows)
                if i != drop_row
            ]
        )

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def is_identity(self) -> bool:
        return self.is_square() and self == IntMatrix.identity(self.n_rows)

    def is_zero(self) -> bool:
        return all(v == 0 for row in self.rows for v in row)

    def to_lists(self) -> list[list[int]]:
        """Mutable copy as nested lists (for interop with numpy/sympy)."""
        return [list(row) for row in self.rows]
