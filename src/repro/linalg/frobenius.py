"""Coin-problem counting for the non-uniform lower bound (paper Section 3.2).

For a reference ``A[a*i + b*j + c]`` with ``i, j >= 1``, the values taken
near the ends of the attainable range have gaps: the classic Chicken
McNugget / Frobenius phenomenon.  Sylvester's theorem says that for coprime
positive ``a, b`` exactly ``(a-1)(b-1)/2`` non-negative integers are *not*
representable as ``a*x + b*y`` with ``x, y >= 0``.  The paper subtracts one
such term per extreme of the value range to tighten the naive
``UB_max - LB_min + 1`` upper bound into a lower bound (Example 6:
``191 - 6 - 6 = 179``).
"""

from __future__ import annotations

import math


def _validated(a: int, b: int) -> tuple[int, int]:
    a, b = abs(a), abs(b)
    if a == 0 or b == 0:
        raise ValueError("coefficients must be non-zero")
    return a, b


def sylvester_count(a: int, b: int) -> int:
    """Number of non-negative ints not representable as ``a*x + b*y`` (x, y >= 0).

    Defined for coprime ``|a|, |b|``; for non-coprime coefficients the count
    of unattainable values *within the attainable residue class* is the
    Sylvester count of the reduced pair, which is what this returns.

    >>> sylvester_count(3, 7)
    6
    >>> sylvester_count(2, 5)
    2
    """
    a, b = _validated(a, b)
    g = math.gcd(a, b)
    a, b = a // g, b // g
    return (a - 1) * (b - 1) // 2


def frobenius_number(a: int, b: int) -> int:
    """Largest integer not representable as ``a*x + b*y`` with ``x, y >= 0``.

    Requires coprime ``|a|, |b|`` both > 1 for a finite answer.

    >>> frobenius_number(3, 7)
    11
    """
    a, b = _validated(a, b)
    if math.gcd(a, b) != 1:
        raise ValueError("Frobenius number is infinite for non-coprime pair")
    return a * b - a - b


def representable_values(a: int, b: int, limit: int) -> set[int]:
    """All values ``a*x + b*y`` (x, y >= 0) that are ``<= limit``.

    Brute-force oracle used by tests to validate the closed forms.
    """
    a, b = _validated(a, b)
    out = set()
    x = 0
    while a * x <= limit:
        value = a * x
        while value <= limit:
            out.add(value)
            value += b
        x += 1
    return out


def distinct_affine_values_in_box(
    a: int, b: int, c: int, n1: int, n2: int, lo1: int = 1, lo2: int = 1
) -> int:
    """Exact count of distinct values of ``a*i + b*j + c`` over the box
    ``lo1 <= i <= n1, lo2 <= j <= n2``.

    This is the exact-counting primitive for one-dimensional affine
    references; estimation code compares its closed forms against it.
    Complexity is ``O((n1-lo1+1) * (n2-lo2+1))`` — fine for the problem
    sizes in the paper, and used mostly as a test oracle.
    """
    values = {
        a * i + b * j + c
        for i in range(lo1, n1 + 1)
        for j in range(lo2, n2 + 1)
    }
    return len(values)
