"""Hermite and Smith normal forms over the integers.

Both forms are computed with explicitly tracked unimodular multipliers so
callers can recover the transformation matrices — that is what turns a
normal form computation into a nullspace basis or a unimodular completion.

The row-style Hermite normal form used here puts a matrix ``A`` into
``H = U @ A`` where ``U`` is unimodular, ``H`` is in row echelon form with
positive pivots and entries above each pivot reduced modulo the pivot.
"""

from __future__ import annotations

from repro.linalg.matrix import IntMatrix


def _swap_rows(m: list[list[int]], i: int, j: int) -> None:
    m[i], m[j] = m[j], m[i]


def _add_row_multiple(m: list[list[int]], dst: int, src: int, k: int) -> None:
    if k != 0:
        m[dst] = [a + k * b for a, b in zip(m[dst], m[src])]


def _negate_row(m: list[list[int]], i: int) -> None:
    m[i] = [-a for a in m[i]]


def _swap_cols(m: list[list[int]], i: int, j: int) -> None:
    for row in m:
        row[i], row[j] = row[j], row[i]


def _add_col_multiple(m: list[list[int]], dst: int, src: int, k: int) -> None:
    if k != 0:
        for row in m:
            row[dst] += k * row[src]


def hermite_normal_form(matrix: IntMatrix) -> tuple[IntMatrix, IntMatrix]:
    """Row-style HNF: return ``(H, U)`` with ``H == U @ matrix`` and ``U`` unimodular.

    ``H`` is upper-echelon with positive pivots; entries above a pivot are
    reduced into ``[0, pivot)``.

    >>> h, u = hermite_normal_form(IntMatrix([[2, 4], [3, 5]]))
    >>> h
    IntMatrix([[1, 1], [0, 2]])
    >>> (u @ IntMatrix([[2, 4], [3, 5]])) == h
    True
    """
    a = matrix.to_lists()
    n_rows, n_cols = matrix.shape
    u = IntMatrix.identity(n_rows).to_lists()

    pivot_row = 0
    for col in range(n_cols):
        if pivot_row >= n_rows:
            break
        # Euclidean reduction within this column, below pivot_row.  The
        # minimum absolute value strictly decreases each pass, so this
        # terminates.
        while True:
            nonzero = [r for r in range(pivot_row, n_rows) if a[r][col] != 0]
            if not nonzero:
                break
            best = min(nonzero, key=lambda r: abs(a[r][col]))
            if best != pivot_row:
                _swap_rows(a, pivot_row, best)
                _swap_rows(u, pivot_row, best)
            if a[pivot_row][col] < 0:
                _negate_row(a, pivot_row)
                _negate_row(u, pivot_row)
            pivot = a[pivot_row][col]
            done = True
            for r in range(pivot_row + 1, n_rows):
                if a[r][col] != 0:
                    q = a[r][col] // pivot
                    _add_row_multiple(a, r, pivot_row, -q)
                    _add_row_multiple(u, r, pivot_row, -q)
                    if a[r][col] != 0:
                        done = False
            if done:
                break
        if a[pivot_row][col] != 0:
            # Reduce the entries above the pivot into [0, pivot).
            pivot = a[pivot_row][col]
            for r in range(pivot_row):
                q = a[r][col] // pivot
                _add_row_multiple(a, r, pivot_row, -q)
                _add_row_multiple(u, r, pivot_row, -q)
            pivot_row += 1

    return IntMatrix(a), IntMatrix(u)


def smith_normal_form(matrix: IntMatrix) -> tuple[IntMatrix, IntMatrix, IntMatrix]:
    """Smith normal form: return ``(S, U, V)`` with ``S == U @ matrix @ V``.

    ``U`` and ``V`` are unimodular, ``S`` is diagonal with non-negative
    entries satisfying the divisibility chain ``S[k][k] | S[k+1][k+1]``.

    Standard pivot-shrinking algorithm: at step ``k`` repeatedly (1) move
    the minimum-magnitude nonzero entry of the trailing submatrix to
    ``(k, k)``, (2) reduce its row and column, (3) if some trailing entry
    is not divisible by the pivot, mix its row in and restart.  Every
    restart strictly decreases the pivot magnitude, so the loop
    terminates; on exit the pivot divides the whole trailing submatrix,
    which yields the divisibility chain.

    >>> s, u, v = smith_normal_form(IntMatrix([[2, 4], [6, 8]]))
    >>> [s[0, 0], s[1, 1]]
    [2, 4]
    """
    a = matrix.to_lists()
    n_rows, n_cols = matrix.shape
    u = IntMatrix.identity(n_rows).to_lists()
    v = IntMatrix.identity(n_cols).to_lists()

    for k in range(min(n_rows, n_cols)):
        while True:
            entries = [
                (abs(a[i][j]), i, j)
                for i in range(k, n_rows)
                for j in range(k, n_cols)
                if a[i][j] != 0
            ]
            if not entries:
                break  # trailing submatrix is zero; done entirely
            _, pi, pj = min(entries)
            if pi != k:
                _swap_rows(a, k, pi)
                _swap_rows(u, k, pi)
            if pj != k:
                _swap_cols(a, k, pj)
                _swap_cols(v, k, pj)
            if a[k][k] < 0:
                _negate_row(a, k)
                _negate_row(u, k)
            pivot = a[k][k]

            # Reduce column k below the pivot.
            dirty = False
            for i in range(k + 1, n_rows):
                if a[i][k] != 0:
                    q = a[i][k] // pivot
                    _add_row_multiple(a, i, k, -q)
                    _add_row_multiple(u, i, k, -q)
                    if a[i][k] != 0:
                        dirty = True  # remainder smaller than pivot survives
            if dirty:
                continue
            # Reduce row k right of the pivot.
            for j in range(k + 1, n_cols):
                if a[k][j] != 0:
                    q = a[k][j] // pivot
                    _add_col_multiple(a, j, k, -q)
                    _add_col_multiple(v, j, k, -q)
                    if a[k][j] != 0:
                        dirty = True
            if dirty:
                continue
            # Row and column are clean; enforce pivot | trailing entries.
            offender = next(
                (
                    (i, j)
                    for i in range(k + 1, n_rows)
                    for j in range(k + 1, n_cols)
                    if a[i][j] % pivot != 0
                ),
                None,
            )
            if offender is None:
                break
            # Mixing the offending row into row k plants a non-multiple in
            # row k; the next pass shrinks the pivot strictly.
            _add_row_multiple(a, k, offender[0], 1)
            _add_row_multiple(u, k, offender[0], 1)
        if k < n_rows and k < n_cols and a[k][k] == 0:
            break

    return IntMatrix(a), IntMatrix(u), IntMatrix(v)
