"""Integer nullspace computation.

The reuse direction of a reference like ``A[3i + k, j + k]`` is the integer
kernel of its access matrix (paper Section 3.2): two iterations hit the same
element exactly when their difference lies in that kernel.  We need a
*primitive* basis (component gcd 1) so reuse distances are the smallest
integral steps.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.linalg.hermite import hermite_normal_form
from repro.linalg.matrix import IntMatrix


def primitive_vector(vector: Sequence[int]) -> tuple[int, ...]:
    """Divide out the gcd of the components; zero vector is returned as-is.

    >>> primitive_vector([4, -6, 2])
    (2, -3, 1)
    """
    g = 0
    for v in vector:
        g = math.gcd(g, v)
    if g == 0:
        return tuple(vector)
    return tuple(v // g for v in vector)


def integer_nullspace(matrix: IntMatrix) -> list[tuple[int, ...]]:
    """A basis of the integer kernel ``{x : matrix @ x == 0}``.

    Computed via the row-style HNF of the transpose with tracked
    multiplier: ``H = U @ A^T`` implies every zero row of ``H`` corresponds
    to a row ``u`` of ``U`` with ``u @ A^T == 0``, i.e. ``A @ u^T == 0``.
    The rows of ``U`` form a lattice basis, so the returned vectors span the
    full integer kernel (not merely a finite-index sublattice).  Each basis
    vector is normalized to be primitive with a non-negative leading entry.

    >>> integer_nullspace(IntMatrix([[3, 0, 1], [0, 1, 1]]))
    [(1, 3, -3)]
    """
    h, u = hermite_normal_form(matrix.transpose())
    kernel = []
    for i, h_row in enumerate(h.rows):
        if all(v == 0 for v in h_row):
            vec = primitive_vector(u.row(i))
            first = next((v for v in vec if v != 0), 0)
            if first < 0:
                vec = tuple(-v for v in vec)
            kernel.append(vec)
    return kernel


def nullspace_rank(matrix: IntMatrix) -> int:
    """Dimension of the kernel = ``n_cols - rank``."""
    return matrix.n_cols - matrix.rank()
