"""Validated environment-variable knobs.

Every numeric tuning knob (``REPRO_DENSE_BUDGET``, ``REPRO_CLIP_BUDGET``,
``REPRO_STREAM_CHUNK``, ``REPRO_STORE_LRU``) is read through
:func:`env_int`, so a typo'd value fails fast with the variable's name in
the message instead of raising a bare ``ValueError`` from deep inside an
engine — and a zero/negative value can never silently disable dense mode
or tier-2 pruning.
"""

from __future__ import annotations

import os


def env_int(name: str, default: int, minimum: int = 1) -> int:
    """``int(os.environ[name])`` with validation, or ``default`` if unset.

    Raises :class:`ValueError` naming the variable when the value is not
    an integer or is below ``minimum``.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be an integer, got {raw!r}"
        ) from None
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value
