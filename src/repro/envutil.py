"""Validated environment-variable knobs.

Every numeric tuning knob (``REPRO_DENSE_BUDGET``, ``REPRO_CLIP_BUDGET``,
``REPRO_STREAM_CHUNK``, ``REPRO_STORE_LRU``, ``REPRO_BATCH_SIZE``,
``REPRO_PARALLEL_THRESHOLD``) is read through :func:`env_int`, so a
typo'd value fails fast with the variable's name in the message instead
of raising a bare ``ValueError`` from deep inside an engine — and a
zero/negative value can never silently disable dense mode or tier-2
pruning.  Enumerated knobs (``REPRO_KERNEL``) go through
:func:`env_choice` with the same fail-fast discipline.
"""

from __future__ import annotations

import os
from typing import Sequence


def env_int(name: str, default: int, minimum: int = 1) -> int:
    """``int(os.environ[name])`` with validation, or ``default`` if unset.

    Raises :class:`ValueError` naming the variable when the value is not
    an integer or is below ``minimum``.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be an integer, got {raw!r}"
        ) from None
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def env_choice(name: str, default: str, choices: Sequence[str]) -> str:
    """``os.environ[name]`` validated against ``choices``, or ``default``.

    Raises :class:`ValueError` naming the variable and the accepted
    values when the value is not one of ``choices``.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    if raw not in choices:
        raise ValueError(
            f"{name} must be one of {', '.join(choices)}, got {raw!r}"
        )
    return raw
