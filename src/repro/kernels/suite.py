"""Seven image/video-processing kernels from the paper's Section 5.

The scanned paper garbles most absolute numbers in Figure 2, so each
kernel records the *surviving* paper data (the percentage reductions and
the thousands digits) in its :class:`KernelSpec`; EXPERIMENTS.md compares
them with what the pipeline measures.  Sizes are chosen to make the
surviving digits consistent (see DESIGN.md Section 5): stencils on 64x64
and 32x32 grids, matmult at N=16 (default 3N^2 = 768 with 64.4% both
columns), motion estimation over 32x32 frames (default 2048), and
rasta_flt declared at exactly 5152 elements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.ir.builder import NestBuilder
from repro.ir.program import Program


@dataclass(frozen=True)
class KernelSpec:
    """A benchmark kernel plus the surviving Figure-2 numbers."""

    name: str
    build: Callable[[], Program]
    description: str
    paper_default: int | None  # None where the scan lost the value
    paper_unopt_reduction: float  # percentage, e.g. 98.4
    paper_opt_reduction: float
    paper_opt_mws: int | None


def two_point(n: int = 64) -> Program:
    """Two-point (vertical-difference) stencil over an ``n x n`` image.

    ``sum += A[i-1][j] + A[i][j]`` — each element is reused one row later,
    so the untransformed window is a full image row; interchange makes the
    reuse adjacent and collapses the window to O(1).
    """
    return (
        NestBuilder("2point")
        .loop("i", 1, n)
        .loop("j", 1, n)
        .use("S1", ("A", [[1, 0], [0, 1]], [-1, 0]), ("A", [[1, 0], [0, 1]], [0, 0]))
        .build()
    )


def three_point(n: int = 32) -> Program:
    """Three-point vertical stencil over an ``n x n`` image.

    Reuse distances (1,0) and (2,0): two rows live untransformed.
    """
    ident = [[1, 0], [0, 1]]
    return (
        NestBuilder("3point")
        .loop("i", 1, n)
        .loop("j", 1, n)
        .use(
            "S1",
            ("A", ident, [-1, 0]),
            ("A", ident, [0, 0]),
            ("A", ident, [1, 0]),
        )
        .build()
    )


def sor(n: int = 32) -> Program:
    """Five-point Gauss-Seidel successive-over-relaxation, in place.

    Flow dependences (1,0) and (0,1) mean no reordering can shrink the
    window below about one grid row — the optimized value plateaus near
    ``n + 3`` rather than O(1), matching the paper's 96.5% (not 99.9%).
    """
    ident = [[1, 0], [0, 1]]
    return (
        NestBuilder("sor")
        .loop("i", 1, n)
        .loop("j", 1, n)
        .statement(
            "S1",
            write=("A", ident, [0, 0]),
            reads=[
                ("A", ident, [0, 0]),
                ("A", ident, [-1, 0]),
                ("A", ident, [1, 0]),
                ("A", ident, [0, -1]),
                ("A", ident, [0, 1]),
            ],
        )
        .build()
    )


def matmult(n: int = 16) -> Program:
    """Matrix multiply ``C += A @ B`` with the canonical i-j-k order.

    ``B`` is traversed column-wise inside the whole ``i`` loop, so nearly
    all of ``B`` stays live whatever the loop order — the one kernel in
    Figure 2 where transformation does not help (64.4% both columns).
    """
    return (
        NestBuilder("matmult")
        .loop("i", 1, n)
        .loop("j", 1, n)
        .loop("k", 1, n)
        .statement(
            "S1",
            write=("C", [[1, 0, 0], [0, 1, 0]], [0, 0]),
            reads=[
                ("C", [[1, 0, 0], [0, 1, 0]], [0, 0]),
                ("A", [[1, 0, 0], [0, 0, 1]], [0, 0]),
                ("B", [[0, 0, 1], [0, 1, 0]], [0, 0]),
            ],
        )
        .build()
    )


def threestep_log(frame: int = 32, block: int = 8, stride: int = 4) -> Program:
    """One refinement level of three-step logarithmic motion estimation.

    Candidates at offsets ``stride * {-1, 0, 1}^2`` around the frame
    center are compared against a fixed current block.  The paper's full
    3-step search shrinks the stride per level — a data-dependent control
    pattern outside the affine model — so we reproduce the dominant level
    (stride 4, 9 candidates), which exercises the same overlapping-window
    reuse; DESIGN.md Section 5 records the substitution.
    """
    center = frame // 2
    return (
        NestBuilder("3step_log")
        .loops(("p", -1, 1), ("q", -1, 1), ("u", 1, block), ("v", 1, block))
        .declare("R", frame, frame)
        .declare("C", frame, frame)
        .use(
            "S1",
            (
                "R",
                [[stride, 0, 1, 0], [0, stride, 0, 1]],
                [center - block // 2, center - block // 2],
            ),
            (
                "C",
                [[0, 0, 1, 0], [0, 0, 0, 1]],
                [center - block // 2, center - block // 2],
            ),
        )
        .build()
    )


def full_search(frame: int = 32, block: int = 8) -> Program:
    """Exhaustive block-matching motion estimation for one block.

    The reference window ``R[p+u][q+v]`` slides over the whole frame; the
    current block ``C`` is re-read per candidate.  Untransformed, a
    ``block``-row band of ``R`` stays live.
    """
    span = frame - block
    offset = block // 2
    return (
        NestBuilder("full_search")
        .loops(("p", 1, span), ("q", 1, span), ("u", 1, block), ("v", 1, block))
        .declare("R", frame, frame)
        .declare("C", frame, frame)
        .use(
            "S1",
            ("R", [[1, 0, 1, 0], [0, 1, 0, 1]], [0, 0]),
            ("C", [[0, 0, 1, 0], [0, 0, 0, 1]], [offset, offset]),
        )
        .build()
    )


def rasta_flt(frames: int = 13, bands: int = 46, taps: int = 44) -> Program:
    """RASTA-style FIR filtering across frames, per critical band.

    ``Y[f][b] += X[f+t-1][b]`` with the tap loop innermost *under* the
    band loop: every band pass re-reads a ``taps``-row window of the
    spectral history ``X``, so untransformed roughly ``taps`` rows of
    ``X`` stay live; moving the band loop outward confines the window to
    one band column.  Declarations cover full 56x46 frame buffers for
    both arrays (2 x 2576 = 5152 elements — the paper's default).
    """
    return (
        NestBuilder("rasta_flt")
        .loops(("f", 1, frames), ("b", 1, bands), ("t", 1, taps))
        .declare("X", frames + taps - 1, bands)
        .declare("Y", frames + taps - 1, bands)
        .statement(
            "S1",
            write=("Y", [[1, 0, 0], [0, 1, 0]], [0, 0]),
            reads=[
                ("Y", [[1, 0, 0], [0, 1, 0]], [0, 0]),
                ("X", [[1, 0, 1], [0, 1, 0]], [-1, 0]),
            ],
        )
        .build()
    )


KERNELS: tuple[KernelSpec, ...] = (
    KernelSpec(
        "2point", two_point,
        "two-point stencil, 64x64",
        None, 98.4, 99.9, 3,
    ),
    KernelSpec(
        "3point", three_point,
        "three-point stencil, 32x32",
        None, 93.3, 96.5, 35,
    ),
    KernelSpec(
        "sor", sor,
        "successive over-relaxation (5-point Gauss-Seidel), 32x32",
        None, 93.6, 96.5, 35,
    ),
    KernelSpec(
        "matmult", matmult,
        "matrix multiply, 16x16",
        None, 64.4, 64.4, 273,
    ),
    KernelSpec(
        "3step_log", threestep_log,
        "three-step logarithmic motion estimation (one level), 32x32 frames",
        None, 75.2, 94.0, 122,
    ),
    KernelSpec(
        "full_search", full_search,
        "full-search motion estimation, 32x32 frames",
        None, 87.8, 97.1, 60,
    ),
    KernelSpec(
        "rasta_flt", rasta_flt,
        "RASTA filtering (MediaBench), 46 bands",
        5152, 60.4, 97.5, 127,
    ),
)


def kernel_by_name(name: str) -> KernelSpec:
    """Look a kernel up by its Figure-2 name."""
    for spec in KERNELS:
        if spec.name == name:
            return spec
    raise KeyError(name)
