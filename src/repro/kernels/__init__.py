"""The seven Figure-2 benchmark kernels, expressed in the IR."""

from repro.kernels.suite import (
    KERNELS,
    KernelSpec,
    full_search,
    kernel_by_name,
    matmult,
    rasta_flt,
    sor,
    three_point,
    threestep_log,
    two_point,
)

__all__ = [
    "KERNELS",
    "KernelSpec",
    "kernel_by_name",
    "two_point",
    "three_point",
    "sor",
    "matmult",
    "threestep_log",
    "full_search",
    "rasta_flt",
]
