"""Extended kernel suite — applying the technique beyond Figure 2.

The paper's closing claim is generality across array-dominated embedded
codes.  These kernels exercise regimes Figure 2 does not: 2-D
convolution (rank-2 windows in both grid directions), a transposed
traversal (layout-adversarial), FIR filtering (classic 1-D sliding
window), a downsampler (strided access), and matrix-vector product.
``bench_extended_kernels.py`` runs the full pipeline over them.
"""

from __future__ import annotations

from repro.ir.builder import NestBuilder
from repro.ir.program import Program
from repro.kernels.suite import KernelSpec


def conv2d(n: int = 24, k: int = 3) -> Program:
    """Dense 2-D convolution with a ``k x k`` kernel (valid region)."""
    builder = (
        NestBuilder("conv2d")
        .loop("i", 1, n)
        .loop("j", 1, n)
    )
    ident = [[1, 0], [0, 1]]
    reads = []
    half = k // 2
    for di in range(-half, half + 1):
        for dj in range(-half, half + 1):
            reads.append(("A", ident, [di, dj]))
    reads.append(("K", [[0, 0], [0, 0]], [0, 0]))
    return builder.statement(
        "S1", write=("B", ident, [0, 0]), reads=reads
    ).build()


def transpose(n: int = 24) -> Program:
    """Out-of-place transpose — the layout-adversarial access pattern."""
    return (
        NestBuilder("transpose")
        .loop("i", 1, n)
        .loop("j", 1, n)
        .statement(
            "S1",
            write=("B", [[1, 0], [0, 1]], [0, 0]),
            reads=[("A", [[0, 1], [1, 0]], [0, 0])],
        )
        .build()
    )


def fir(n: int = 256, taps: int = 16) -> Program:
    """1-D FIR filter: the canonical sliding window."""
    return (
        NestBuilder("fir")
        .loop("i", 1, n)
        .loop("t", 1, taps)
        .statement(
            "S1",
            write=("Y", [[1, 0]], [0]),
            reads=[
                ("Y", [[1, 0]], [0]),
                ("X", [[1, 1]], [-1]),
                ("H", [[0, 1]], [0]),
            ],
        )
        .build()
    )


def downsample(n: int = 64, factor: int = 2) -> Program:
    """2x decimation: strided reads, each input touched once."""
    return (
        NestBuilder("downsample")
        .loop("i", 1, n // factor)
        .loop("j", 1, n // factor)
        .statement(
            "S1",
            write=("B", [[1, 0], [0, 1]], [0, 0]),
            reads=[("A", [[factor, 0], [0, factor]], [0, 0])],
        )
        .build()
    )


def matvec(n: int = 48) -> Program:
    """Matrix-vector product ``y = A x``."""
    return (
        NestBuilder("matvec")
        .loop("i", 1, n)
        .loop("j", 1, n)
        .statement(
            "S1",
            write=("Y", [[1, 0]], [0]),
            reads=[
                ("Y", [[1, 0]], [0]),
                ("A", [[1, 0], [0, 1]], [0, 0]),
                ("X", [[0, 1]], [0]),
            ],
        )
        .build()
    )


EXTENDED_KERNELS: tuple[KernelSpec, ...] = (
    KernelSpec("conv2d", conv2d, "3x3 convolution, 24x24", None, 0, 0, None),
    KernelSpec("transpose", transpose, "matrix transpose, 24x24", None, 0, 0, None),
    KernelSpec("fir", fir, "16-tap FIR over 256 samples", None, 0, 0, None),
    KernelSpec("downsample", downsample, "2x decimation, 64x64", None, 0, 0, None),
    KernelSpec("matvec", matvec, "matrix-vector product, 48x48", None, 0, 0, None),
)
