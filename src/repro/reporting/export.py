"""Machine-readable exports of experiment results: Markdown and CSV.

``EXPERIMENTS.md``-style tables straight from measured rows, so reports
never drift from the code that produced them.
"""

from __future__ import annotations

import csv
import io
from typing import Sequence

from repro.reporting.tables import Figure2Row


def figure2_markdown(rows: Sequence[Figure2Row]) -> str:
    """A GitHub-Markdown table of measured vs paper reductions.

    >>> from repro.reporting.tables import Figure2Row
    >>> row = Figure2Row("demo", 100, 20, 5, 75.0, 90.0)
    >>> print(figure2_markdown([row]).splitlines()[2])
    | demo | 100 | 20 | 80.0 (75.0) | 5 | 95.0 (90.0) |
    """
    lines = [
        "| code | default | MWS unopt | red% (paper) | MWS opt | red% (paper) |",
        "|---|---|---|---|---|---|",
    ]
    for row in rows:
        lines.append(
            f"| {row.name} | {row.default} | {row.mws_unopt} "
            f"| {row.unopt_reduction:.1f} ({row.paper_unopt_reduction:.1f}) "
            f"| {row.mws_opt} "
            f"| {row.opt_reduction:.1f} ({row.paper_opt_reduction:.1f}) |"
        )
    if rows:
        avg_unopt = sum(r.unopt_reduction for r in rows) / len(rows)
        avg_opt = sum(r.opt_reduction for r in rows) / len(rows)
        paper_unopt = sum(r.paper_unopt_reduction for r in rows) / len(rows)
        paper_opt = sum(r.paper_opt_reduction for r in rows) / len(rows)
        lines.append(
            f"| **Average** | | | **{avg_unopt:.1f} ({paper_unopt:.1f})** | "
            f"| **{avg_opt:.1f} ({paper_opt:.1f})** |"
        )
    return "\n".join(lines)


def figure2_csv(rows: Sequence[Figure2Row]) -> str:
    """CSV export with one row per kernel (for spreadsheets/plots)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(
        [
            "code", "default", "mws_unopt", "unopt_reduction_pct",
            "paper_unopt_reduction_pct", "mws_opt", "opt_reduction_pct",
            "paper_opt_reduction_pct",
        ]
    )
    for row in rows:
        writer.writerow(
            [
                row.name, row.default, row.mws_unopt,
                f"{row.unopt_reduction:.2f}", f"{row.paper_unopt_reduction:.2f}",
                row.mws_opt, f"{row.opt_reduction:.2f}",
                f"{row.paper_opt_reduction:.2f}",
            ]
        )
    return buffer.getvalue()
