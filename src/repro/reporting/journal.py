"""Rendering for the search journal (``repro explain``).

Ranked candidate table, rejection-reason tally, and the reconciliation
of journal tallies against the observer's counters — the cross-check
that the journal really saw everything the search counted.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.transform.journal import SearchJournal

#: (display label, SearchJournal.counts() key, obs counter name).  Every
#: row must agree for the journal to be a faithful record of the search.
RECONCILIATIONS: tuple[tuple[str, str, str], ...] = (
    ("examined", "examined", "search.candidates.examined"),
    ("cache hits", "cache_hits", "search.cache.hits"),
    ("cache misses", "cache_misses", "search.cache.misses"),
    ("bb prunes", "pruned", "search.bb.pruned"),
    ("bb evaluated", "bb_evaluated", "search.bb.evaluated"),
    ("cascade prunes", "cascade_pruned", "search.cascade.pruned"),
    ("hierarchy prunes", "hierarchy_pruned", "search.hierarchy.pruned"),
)


def reconcile(
    journal: SearchJournal, counters: Mapping[str, int]
) -> list[tuple[str, int, int]]:
    """``(label, journal count, counter value)`` for every check."""
    counts = journal.counts()
    return [
        (label, counts[jkey], int(counters.get(ckey, 0)))
        for label, jkey, ckey in RECONCILIATIONS
    ]


def _fmt_candidate(candidate: Any) -> str:
    if candidate is None:
        return "(native order)"
    return str(candidate)


def render_candidate_table(journal: SearchJournal) -> str:
    """Evaluated candidates best-first, then estimate-only survivors,
    then the rejection tally."""
    lines = []
    ranked = journal.ranked()
    if ranked:
        header = f"{'rank':>4}  {'candidate T (rows)':<34} {'estimate':>10} {'exact':>6}  via"
        lines.append(header)
        lines.append("-" * len(header))
        for rank, rec in enumerate(ranked, start=1):
            est = "-" if rec.estimate is None else str(rec.estimate)
            lines.append(
                f"{rank:>4}  {_fmt_candidate(rec.candidate):<34} "
                f"{est:>10} {rec.exact:>6}  {rec.status}"
            )
    evaluated = {r.candidate for r in journal.by_stage("evaluate")}
    unverified = [
        r
        for r in journal.records
        if r.stage in ("seed", "enumerate")
        and r.status == "candidate"
        and r.candidate not in evaluated
    ]
    if unverified:
        if lines:
            lines.append("")
        lines.append(f"{len(unverified)} candidate(s) ranked out before exact scoring:")
        shown = sorted(
            unverified,
            key=lambda r: (r.estimate is None, r.estimate, str(r.candidate)),
        )[:10]
        for rec in shown:
            est = "-" if rec.estimate is None else str(rec.estimate)
            lines.append(f"      {_fmt_candidate(rec.candidate):<34} est={est}")
        if len(unverified) > len(shown):
            lines.append(f"      ... and {len(unverified) - len(shown)} more")
    reasons = journal.rejection_reasons()
    if reasons:
        if lines:
            lines.append("")
        lines.append("rejections:")
        for reason, count in sorted(reasons.items()):
            lines.append(f"  {reason:<12} {count:>6}")
    return "\n".join(lines) if lines else "(empty journal)"


def render_reconciliation(
    journal: SearchJournal, counters: Mapping[str, int]
) -> tuple[str, bool]:
    """Reconciliation table and whether every row agreed."""
    rows = reconcile(journal, counters)
    ok = True
    lines = ["journal/counter reconciliation:"]
    for label, jcount, ccount in rows:
        match = jcount == ccount
        ok = ok and match
        verdict = "OK" if match else "MISMATCH"
        lines.append(
            f"  {label:<14} journal={jcount:<8} counter={ccount:<8} {verdict}"
        )
    return "\n".join(lines), ok
