"""Rendering and diffing of run-ledger records (``repro runs ...``).

The write side lives in :mod:`repro.obs.ledger`; this module is the
read-side presentation: the ``runs list`` table, the ``runs show``
record view, and — the part that answers "why is today's run slower" —
:func:`diff_runs`, a structured comparison of two records that
attributes the wall-clock delta to what actually changed between them:

* **code** — different git SHA;
* **knobs** — env (``REPRO_*``) or effective-config drift;
* **engines** — a different window engine did the work;
* **cache state** — same code, same knobs, but a different store/cache
  hit rate (the cold-vs-warm signature).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.obs.ledger import canonical_counters, overall_hit_rate


def _age(started_unix: float, now: float | None = None) -> str:
    delta = (time.time() if now is None else now) - float(started_unix)
    if delta < 0:
        return "future"
    if delta < 120:
        return f"{delta:.0f}s ago"
    if delta < 7200:
        return f"{delta / 60:.0f}m ago"
    if delta < 172800:
        return f"{delta / 3600:.0f}h ago"
    return f"{delta / 86400:.0f}d ago"


def render_runs_table(records: list[Mapping[str, Any]]) -> str:
    """One line per run, oldest first (matching ``list_runs`` order)."""
    if not records:
        return "no runs recorded"
    header = (
        f"{'run':<22} {'command':<10} {'status':<7} {'wall':>8} "
        f"{'hit rate':>9} {'git':<8} age"
    )
    lines = [header, "-" * len(header)]
    for record in records:
        wall = record.get("wall_s", 0.0)
        lines.append(
            f"{str(record.get('run', '?')):<22} "
            f"{str(record.get('command', '?')):<10} "
            f"{('ok' if record.get('status', 0) == 0 else 'fail'):<7} "
            f"{wall:>7.2f}s "
            f"{100 * overall_hit_rate(record):>8.1f}% "
            f"{str(record.get('git') or '-'):<8} "
            f"{_age(record.get('started_unix', 0.0))}"
        )
    return "\n".join(lines)


def render_run_record(record: Mapping[str, Any]) -> str:
    """Full single-record view for ``repro runs show``."""
    lines = [
        f"run        : {record.get('run', '?')}",
        f"command    : {record.get('command', '?')} "
        + " ".join(str(a) for a in record.get("argv", [])),
        f"status     : {record.get('status', '?')}",
        f"started    : {record.get('started_unix', '?')}",
        f"wall / cpu : {record.get('wall_s', 0.0):.3f}s / "
        f"{record.get('cpu_s', 0.0):.3f}s",
        f"git        : {record.get('git') or '-'}",
    ]
    config = record.get("config", {})
    if config:
        lines.append(
            "config     : "
            + " ".join(f"{k}={v}" for k, v in sorted(config.items()))
        )
    env = record.get("env", {})
    if env:
        lines.append(
            "env        : "
            + " ".join(f"{k}={v}" for k, v in sorted(env.items()))
        )
    inputs = record.get("inputs", {})
    if inputs:
        lines.append("inputs     :")
        for name, sig in sorted(inputs.items()):
            lines.append(f"  {name}: {sig}")
    engines = record.get("engines", {})
    if engines:
        lines.append(
            "engines    : "
            + " ".join(f"{k}x{v}" for k, v in sorted(engines.items()))
        )
    lines.append(f"hit rate   : {100 * overall_hit_rate(record):.1f}%")
    caches = record.get("caches", [])
    for row in caches:
        lines.append(
            f"  {row['name']:<24} {row['hits']:>6} hits "
            f"{row['misses']:>6} misses  {100 * row['hit_rate']:>5.1f}%"
        )
    for section in ("cascade", "parametric", "batch"):
        values = record.get(section)
        if values:
            lines.append(
                f"{section:<11}: "
                + " ".join(f"{k}={v}" for k, v in sorted(values.items()))
            )
    extras = record.get("extras", {})
    for key, entries in sorted(extras.items()):
        lines.append(f"{key:<11}: {entries}")
    digest = record.get("result_digest")
    if digest:
        lines.append(f"result     : sha256:{digest}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# diff
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RunDiff:
    """Structured explanation of why two runs differ."""

    run_a: str
    run_b: str
    wall_a: float
    wall_b: float
    code_delta: tuple[str, str] | None  # (git_a, git_b) when different
    knob_delta: dict[str, tuple[Any, Any]] = field(default_factory=dict)
    engine_delta: dict[str, tuple[int, int]] = field(default_factory=dict)
    engines_a: dict[str, int] = field(default_factory=dict)
    engines_b: dict[str, int] = field(default_factory=dict)
    hit_rate_a: float = 0.0
    hit_rate_b: float = 0.0
    input_delta: dict[str, tuple[Any, Any]] = field(default_factory=dict)
    batch_delta: dict[str, tuple[int, int]] = field(default_factory=dict)
    digest_match: bool | None = None

    @property
    def wall_delta(self) -> float:
        return self.wall_b - self.wall_a

    @property
    def hit_rate_delta(self) -> float:
        return self.hit_rate_b - self.hit_rate_a

    @property
    def engine_switch(self) -> bool:
        """Did a *different engine* do the work (vs just less work)?

        A warm run served from the store makes zero engine calls — that
        is a cache-state difference, not an engine choice.  Only when
        both runs did engine work with different engine sets is the
        engine the cause.
        """
        used_a = {k for k, v in self.engines_a.items() if v}
        used_b = {k for k, v in self.engines_b.items() if v}
        return bool(used_a and used_b and used_a != used_b)

    @property
    def attribution(self) -> str:
        """One-sentence explanation of the dominant difference."""
        causes = []
        if self.code_delta is not None:
            causes.append(
                f"code version changed ({self.code_delta[0]} -> "
                f"{self.code_delta[1]})"
            )
        if self.knob_delta:
            causes.append(
                "knob drift (" + ", ".join(sorted(self.knob_delta)) + ")"
            )
        if self.input_delta:
            causes.append(
                "inputs changed (" + ", ".join(sorted(self.input_delta)) + ")"
            )
        if self.engine_switch:
            causes.append(
                "engine choice changed ("
                + ", ".join(sorted(self.engine_delta)) + ")"
            )
        if causes:
            return "; ".join(causes)
        if abs(self.hit_rate_delta) > 1e-9:
            direction = "speedup" if self.wall_delta < 0 else "slowdown"
            return (
                f"{direction} attributed to store/cache hits "
                f"(hit rate {100 * self.hit_rate_a:.1f}% -> "
                f"{100 * self.hit_rate_b:.1f}%, same code and knobs)"
            )
        return "no attributable difference (same code, knobs, cache state)"


def _diff_maps(a: Mapping[str, Any], b: Mapping[str, Any]) -> dict:
    out = {}
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if va != vb:
            out[key] = (va, vb)
    return out


def _batch_counters(record: Mapping[str, Any]) -> dict[str, int]:
    """A record's ``batch.*`` counters, legacy spellings canonicalized.

    Records sealed before the ``batch.items.timeout`` retirement carry
    both spellings; canonicalizing both sides of a diff here keeps
    ``repro runs diff`` from reporting a phantom counter delta across
    the rename boundary.
    """
    counters = canonical_counters(record.get("counters", {}))
    return {
        name[len("batch."):]: value
        for name, value in counters.items()
        if name.startswith("batch.")
    }


def diff_runs(a: Mapping[str, Any], b: Mapping[str, Any]) -> RunDiff:
    """Structured diff of two ledger records (``a`` = older baseline)."""
    git_a, git_b = a.get("git"), b.get("git")
    knob_delta = _diff_maps(a.get("env", {}), b.get("env", {}))
    knob_delta.update({
        f"config.{key}": value
        for key, value in _diff_maps(
            a.get("config", {}), b.get("config", {})
        ).items()
    })
    digest_a, digest_b = a.get("result_digest"), b.get("result_digest")
    return RunDiff(
        run_a=str(a.get("run", "?")),
        run_b=str(b.get("run", "?")),
        wall_a=float(a.get("wall_s", 0.0)),
        wall_b=float(b.get("wall_s", 0.0)),
        code_delta=None if git_a == git_b else (str(git_a), str(git_b)),
        knob_delta=knob_delta,
        engine_delta=_diff_maps(a.get("engines", {}), b.get("engines", {})),
        engines_a=dict(a.get("engines", {})),
        engines_b=dict(b.get("engines", {})),
        hit_rate_a=overall_hit_rate(a),
        hit_rate_b=overall_hit_rate(b),
        input_delta=_diff_maps(a.get("inputs", {}), b.get("inputs", {})),
        batch_delta=_diff_maps(_batch_counters(a), _batch_counters(b)),
        digest_match=(
            None if digest_a is None or digest_b is None
            else digest_a == digest_b
        ),
    )


def render_run_diff(diff: RunDiff) -> str:
    """Human-readable ``repro runs diff A B`` output."""
    rel = (
        f" ({diff.wall_delta / diff.wall_a:+.1%})" if diff.wall_a else ""
    )
    lines = [
        f"runs {diff.run_a} -> {diff.run_b}",
        f"wall       : {diff.wall_a:.3f}s -> {diff.wall_b:.3f}s"
        f"  {diff.wall_delta:+.3f}s{rel}",
        f"hit rate   : {100 * diff.hit_rate_a:.1f}% -> "
        f"{100 * diff.hit_rate_b:.1f}%  "
        f"({100 * diff.hit_rate_delta:+.1f}pp)",
        f"code       : "
        + ("unchanged" if diff.code_delta is None
           else f"{diff.code_delta[0]} -> {diff.code_delta[1]}"),
    ]
    if diff.knob_delta:
        lines.append("knobs      :")
        for key, (va, vb) in sorted(diff.knob_delta.items()):
            lines.append(f"  {key}: {va!r} -> {vb!r}")
    else:
        lines.append("knobs      : unchanged")
    if diff.engine_delta:
        lines.append("engines    :")
        for key, (va, vb) in sorted(diff.engine_delta.items()):
            lines.append(f"  {key}: {va or 0} -> {vb or 0} calls")
    else:
        lines.append("engines    : unchanged")
    if diff.input_delta:
        lines.append("inputs     :")
        for key, (va, vb) in sorted(diff.input_delta.items()):
            lines.append(f"  {key}: {va} -> {vb}")
    else:
        lines.append("inputs     : unchanged")
    if diff.batch_delta:
        lines.append("batch      :")
        for key, (va, vb) in sorted(diff.batch_delta.items()):
            lines.append(f"  {key}: {va or 0} -> {vb or 0}")
    if diff.digest_match is not None:
        lines.append(
            "result     : "
            + ("identical output digest" if diff.digest_match
               else "OUTPUT DIGEST DIFFERS")
        )
    lines.append(f"verdict    : {diff.attribution}")
    return "\n".join(lines)
