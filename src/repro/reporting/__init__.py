"""Report rendering: Figure-2-style tables and experiment records."""

from repro.reporting.tables import (
    Figure2Row,
    figure2_row,
    figure2_table,
    render_table,
)
from repro.reporting.export import figure2_csv, figure2_markdown
from repro.reporting.spans import (
    SpanRow,
    render_span_summary,
    span_summary_rows,
)

__all__ = [
    "Figure2Row",
    "figure2_row",
    "figure2_table",
    "render_table",
    "figure2_markdown",
    "figure2_csv",
    "SpanRow",
    "render_span_summary",
    "span_summary_rows",
]
