"""Report rendering: Figure-2-style tables and experiment records."""

from repro.reporting.tables import (
    Figure2Row,
    figure2_row,
    figure2_table,
    render_hierarchy_table,
    render_table,
)
from repro.reporting.export import figure2_csv, figure2_markdown
from repro.reporting.journal import (
    reconcile,
    render_candidate_table,
    render_reconciliation,
)
from repro.reporting.metrics import (
    cache_stats,
    render_cache_stats,
    render_gauges,
    render_histograms,
    render_metrics,
)
from repro.reporting.spans import (
    SpanRow,
    render_span_summary,
    span_summary_rows,
)
from repro.reporting.telemetry import (
    Comparison,
    MetricDelta,
    MetricTrend,
    TrendReport,
    build_artifact,
    compare_artifacts,
    compare_trajectory,
    metric_direction,
    render_comparison,
    render_trend,
    write_artifact,
)
from repro.reporting.ledger import (
    RunDiff,
    diff_runs,
    render_run_diff,
    render_run_record,
    render_runs_table,
)

__all__ = [
    "Figure2Row",
    "figure2_row",
    "figure2_table",
    "render_hierarchy_table",
    "render_table",
    "figure2_markdown",
    "figure2_csv",
    "SpanRow",
    "render_span_summary",
    "span_summary_rows",
    "cache_stats",
    "render_cache_stats",
    "render_gauges",
    "render_histograms",
    "render_metrics",
    "reconcile",
    "render_candidate_table",
    "render_reconciliation",
    "Comparison",
    "MetricDelta",
    "MetricTrend",
    "TrendReport",
    "build_artifact",
    "compare_artifacts",
    "compare_trajectory",
    "metric_direction",
    "render_comparison",
    "render_trend",
    "write_artifact",
    "RunDiff",
    "diff_runs",
    "render_run_diff",
    "render_run_record",
    "render_runs_table",
]
