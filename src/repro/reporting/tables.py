"""Figure-2 table generation.

One row per kernel: declared (default) memory, MWS before and after
optimization, percentage reductions — exactly the columns of the paper's
Figure 2 — plus the surviving paper values for side-by-side comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.optimizer import optimize_program
from repro.kernels.suite import KernelSpec


@dataclass(frozen=True)
class Figure2Row:
    """One measured row of the Figure-2 table."""

    name: str
    default: int
    mws_unopt: int
    mws_opt: int
    paper_unopt_reduction: float
    paper_opt_reduction: float

    @property
    def unopt_reduction(self) -> float:
        """Percent reduction of MWS_unopt vs. default."""
        return 100.0 * (1.0 - self.mws_unopt / self.default)

    @property
    def opt_reduction(self) -> float:
        return 100.0 * (1.0 - self.mws_opt / self.default)


def figure2_row(spec: KernelSpec, workers: int = 0, store=None) -> Figure2Row:
    """Run the pipeline on one kernel and produce its table row."""
    program = spec.build()
    result = optimize_program(program, workers=workers, store=store)
    return Figure2Row(
        name=spec.name,
        default=program.default_memory,
        mws_unopt=result.mws_before,
        mws_opt=result.mws_after,
        paper_unopt_reduction=spec.paper_unopt_reduction,
        paper_opt_reduction=spec.paper_opt_reduction,
    )


def figure2_table(
    specs: Iterable[KernelSpec], workers: int = 0, store=None
) -> list[Figure2Row]:
    """Measured rows for a collection of kernels."""
    return [figure2_row(spec, workers=workers, store=store) for spec in specs]


def render_table(rows: Sequence[Figure2Row]) -> str:
    """Render rows in the paper's layout, paper percentages alongside.

    The ``Average Reduction`` footer mirrors the paper's (mean of the
    per-kernel percentage reductions).
    """
    header = (
        f"{'code':<12} {'default':>8} {'MWS unopt':>10} {'(red%)':>8} "
        f"{'paper%':>7} {'MWS opt':>8} {'(red%)':>8} {'paper%':>7}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.name:<12} {row.default:>8} {row.mws_unopt:>10} "
            f"{row.unopt_reduction:>7.1f}% {row.paper_unopt_reduction:>6.1f}% "
            f"{row.mws_opt:>8} {row.opt_reduction:>7.1f}% "
            f"{row.paper_opt_reduction:>6.1f}%"
        )
    if rows:
        avg_unopt = sum(r.unopt_reduction for r in rows) / len(rows)
        avg_opt = sum(r.opt_reduction for r in rows) / len(rows)
        paper_unopt = sum(r.paper_unopt_reduction for r in rows) / len(rows)
        paper_opt = sum(r.paper_opt_reduction for r in rows) / len(rows)
        lines.append("-" * len(header))
        lines.append(
            f"{'Average':<12} {'':>8} {'':>10} {avg_unopt:>7.1f}% "
            f"{paper_unopt:>6.1f}% {'':>8} {avg_opt:>7.1f}% {paper_opt:>6.1f}%"
        )
    return "\n".join(lines)


def render_hierarchy_table(stats) -> str:
    """Per-tier traffic/energy table for one hierarchy simulation.

    One row per tier of a :class:`repro.memory.hierarchy.HierarchyStats`
    — lookups, hits, hit rate, and the fetch/writeback traffic on the
    boundary below — plus an off-chip footer row carrying the backing
    bus traffic.  Deterministic output: the CI smoke job diffs two runs.
    """
    header = (
        f"{'tier':<8} {'capacity':>9} {'lookups':>9} {'hits':>9} "
        f"{'hit%':>6} {'fetches':>9} {'writebacks':>11}"
    )
    lines = [header, "-" * len(header)]
    for tier in stats.tiers:
        rate = 100.0 * tier.hits / tier.lookups if tier.lookups else 0.0
        lines.append(
            f"{tier.name:<8} {tier.capacity_words:>9} {tier.lookups:>9} "
            f"{tier.hits:>9} {rate:>5.1f}% {tier.fetches_below:>9} "
            f"{tier.writebacks_below:>11}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"{'offchip':<8} {'':>9} {'':>9} {'':>9} {'':>6} "
        f"{stats.offchip_fetches:>9} {stats.offchip_writebacks:>11}"
    )
    lines.append(
        f"energy {stats.energy_pj:.1f} pJ   latency {stats.latency_ns:.1f} ns"
        f"   offchip transfers {stats.offchip_transfers}"
    )
    return "\n".join(lines)
