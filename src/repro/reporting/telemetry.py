"""Bench-artifact comparison (``repro bench-compare``).

Diffs the ``metrics`` sections of two ``BENCH_<name>.json`` artifacts
(see benchmarks/telemetry.py for the writer).  Direction is inferred
from the metric name — reductions, speedups and hit counts are
higher-is-better, everything else (MWS words, wall seconds, memory)
lower-is-better — and a change is a regression when it moves in the bad
direction by more than the relative threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

#: Substrings marking a metric where bigger numbers are good.
HIGHER_IS_BETTER_MARKERS = ("reduction", "speedup", "hits")


def metric_direction(key: str) -> int:
    """+1 when higher is better for this metric, -1 when lower is."""
    lowered = key.lower()
    if any(marker in lowered for marker in HIGHER_IS_BETTER_MARKERS):
        return 1
    return -1


@dataclass(frozen=True)
class MetricDelta:
    """One metric's change between two artifacts."""

    key: str
    old: float
    new: float
    direction: int  # +1 higher-is-better, -1 lower-is-better
    regressed: bool

    @property
    def rel_change(self) -> float:
        """Relative change, positive = grew; infinite when old == 0."""
        if self.old == 0:
            return 0.0 if self.new == 0 else float("inf")
        return (self.new - self.old) / abs(self.old)


@dataclass(frozen=True)
class Comparison:
    """Full diff of two artifacts' metrics."""

    bench: str
    deltas: tuple[MetricDelta, ...]
    missing: tuple[str, ...]  # in old but not new
    added: tuple[str, ...]  # in new but not old
    threshold: float

    @property
    def regressions(self) -> tuple[MetricDelta, ...]:
        return tuple(d for d in self.deltas if d.regressed)

    @property
    def ok(self) -> bool:
        """No regressions and no metric disappeared."""
        return not self.regressions and not self.missing


def _numeric_metrics(artifact: Mapping[str, Any]) -> dict[str, float]:
    out = {}
    for key, value in artifact.get("metrics", {}).items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[key] = float(value)
    return out


def compare_artifacts(
    old: Mapping[str, Any],
    new: Mapping[str, Any],
    threshold: float = 0.05,
) -> Comparison:
    """Diff two artifacts' numeric metrics.

    ``threshold`` is the relative slack before a bad-direction move
    counts as a regression (0.05 = 5%).
    """
    old_metrics = _numeric_metrics(old)
    new_metrics = _numeric_metrics(new)
    deltas = []
    for key in sorted(old_metrics.keys() & new_metrics.keys()):
        before, after = old_metrics[key], new_metrics[key]
        direction = metric_direction(key)
        if before == 0:
            worse = (after < 0) if direction > 0 else (after > 0)
            regressed = worse and abs(after) > threshold
        else:
            rel = (after - before) / abs(before)
            regressed = (-direction * rel) > threshold
        deltas.append(MetricDelta(key, before, after, direction, regressed))
    return Comparison(
        bench=str(new.get("bench", old.get("bench", "?"))),
        deltas=tuple(deltas),
        missing=tuple(sorted(old_metrics.keys() - new_metrics.keys())),
        added=tuple(sorted(new_metrics.keys() - old_metrics.keys())),
        threshold=threshold,
    )


def render_comparison(comparison: Comparison, verbose: bool = False) -> str:
    """Human-readable diff; regressions always shown, the rest gated on
    ``verbose``."""
    lines = [
        f"bench {comparison.bench}: {len(comparison.deltas)} shared metric(s), "
        f"threshold {comparison.threshold:.0%}"
    ]
    shown = [
        d for d in comparison.deltas if d.regressed or verbose or d.old != d.new
    ]
    if shown:
        header = f"{'metric':<40} {'old':>12} {'new':>12} {'change':>9}  verdict"
        lines.append(header)
        lines.append("-" * len(header))
        for d in shown:
            change = "n/a" if d.rel_change == float("inf") else f"{d.rel_change:+.1%}"
            verdict = "REGRESSION" if d.regressed else "ok"
            arrow = "higher=better" if d.direction > 0 else "lower=better"
            lines.append(
                f"{d.key:<40} {d.old:>12g} {d.new:>12g} {change:>9}  "
                f"{verdict} ({arrow})"
            )
    else:
        lines.append("no metric changes")
    for key in comparison.missing:
        lines.append(f"missing in new artifact: {key}  REGRESSION")
    if verbose:
        for key in comparison.added:
            lines.append(f"new metric: {key}")
    lines.append(
        f"result: {'OK' if comparison.ok else 'REGRESSIONS DETECTED'}"
    )
    return "\n".join(lines)
