"""Bench-telemetry artifacts: writers and comparison.

One module owns the whole ``BENCH_<name>.json`` life cycle: the writer
(:func:`build_artifact` / :func:`write_artifact` — used by the benchmark
harness, ``repro bench`` and the chunk sweep) and the comparison engine
behind ``repro bench-compare``.  The comparison diffs only the
``metrics`` sections of two artifacts.  Direction is inferred from the
metric name — reductions, speedups and hit counts are higher-is-better,
everything else (MWS words, wall seconds, memory) lower-is-better — and
a change is a regression when it moves in the bad direction by more
than the relative threshold.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

SCHEMA_VERSION = 1

ARTIFACT_DIR_ENV = "BENCH_ARTIFACT_DIR"

#: Resolved relative to the working directory; the benchmark harness
#: (benchmarks/telemetry.py) overrides this with its own absolute path.
DEFAULT_ARTIFACT_DIR = Path("benchmarks") / "artifacts"


def artifact_dir(default: Path | None = None) -> Path:
    """Artifact destination: ``$BENCH_ARTIFACT_DIR`` or the default."""
    override = os.environ.get(ARTIFACT_DIR_ENV)
    if override:
        return Path(override)
    return default if default is not None else DEFAULT_ARTIFACT_DIR


def host_metadata() -> dict[str, Any]:
    """Python/platform/CPU plus the git commit when available."""
    meta: dict[str, Any] = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=Path(__file__).resolve().parent,
            timeout=5,
        )
        if proc.returncode == 0:
            meta["commit"] = proc.stdout.strip()
    except OSError:
        pass
    return meta


def build_artifact(
    name: str,
    metrics: Mapping[str, Any],
    wall_s: Mapping[str, float] | None = None,
    counters: Mapping[str, int] | None = None,
) -> dict[str, Any]:
    """Assemble one bench's artifact dict (JSON-ready)."""
    return {
        "bench": name,
        "schema": SCHEMA_VERSION,
        "created_unix": round(time.time(), 3),
        "host": host_metadata(),
        "metrics": dict(sorted(metrics.items())),
        "wall_s": dict(sorted((wall_s or {}).items())),
        "counters": dict(sorted((counters or {}).items())),
    }


def write_artifact(artifact: Mapping[str, Any], directory: Path | None = None) -> Path:
    """Write ``BENCH_<name>.json``; returns the path."""
    directory = Path(directory) if directory is not None else artifact_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{artifact['bench']}.json"
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    return path

#: Substrings marking a metric where bigger numbers are good.
HIGHER_IS_BETTER_MARKERS = ("reduction", "speedup", "hits")


def metric_direction(key: str) -> int:
    """+1 when higher is better for this metric, -1 when lower is."""
    lowered = key.lower()
    if any(marker in lowered for marker in HIGHER_IS_BETTER_MARKERS):
        return 1
    return -1


@dataclass(frozen=True)
class MetricDelta:
    """One metric's change between two artifacts."""

    key: str
    old: float
    new: float
    direction: int  # +1 higher-is-better, -1 lower-is-better
    regressed: bool

    @property
    def rel_change(self) -> float:
        """Relative change, positive = grew; infinite when old == 0."""
        if self.old == 0:
            return 0.0 if self.new == 0 else float("inf")
        return (self.new - self.old) / abs(self.old)


@dataclass(frozen=True)
class Comparison:
    """Full diff of two artifacts' metrics."""

    bench: str
    deltas: tuple[MetricDelta, ...]
    missing: tuple[str, ...]  # in old but not new
    added: tuple[str, ...]  # in new but not old
    threshold: float

    @property
    def regressions(self) -> tuple[MetricDelta, ...]:
        return tuple(d for d in self.deltas if d.regressed)

    @property
    def ok(self) -> bool:
        """No regressions and no metric disappeared."""
        return not self.regressions and not self.missing


def _numeric_metrics(artifact: Mapping[str, Any]) -> dict[str, float]:
    out = {}
    for key, value in artifact.get("metrics", {}).items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[key] = float(value)
    return out


def compare_artifacts(
    old: Mapping[str, Any],
    new: Mapping[str, Any],
    threshold: float = 0.05,
) -> Comparison:
    """Diff two artifacts' numeric metrics.

    ``threshold`` is the relative slack before a bad-direction move
    counts as a regression (0.05 = 5%).
    """
    old_metrics = _numeric_metrics(old)
    new_metrics = _numeric_metrics(new)
    deltas = []
    for key in sorted(old_metrics.keys() & new_metrics.keys()):
        before, after = old_metrics[key], new_metrics[key]
        direction = metric_direction(key)
        if before == 0:
            worse = (after < 0) if direction > 0 else (after > 0)
            regressed = worse and abs(after) > threshold
        else:
            rel = (after - before) / abs(before)
            regressed = (-direction * rel) > threshold
        deltas.append(MetricDelta(key, before, after, direction, regressed))
    return Comparison(
        bench=str(new.get("bench", old.get("bench", "?"))),
        deltas=tuple(deltas),
        missing=tuple(sorted(old_metrics.keys() - new_metrics.keys())),
        added=tuple(sorted(new_metrics.keys() - old_metrics.keys())),
        threshold=threshold,
    )


# ----------------------------------------------------------------------
# multi-point trend (the whole checked-in BENCH_*.json trajectory)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class MetricTrend:
    """One metric's last-``window`` trajectory and its verdict.

    A *trend regression* is stricter than a pairwise one: the metric
    must move monotonically in the bad direction across every point of
    the window **and** the total move must exceed the threshold.  A
    single noisy point therefore never fails the build — only a
    sustained drift does.
    """

    key: str
    values: tuple[float, ...]
    direction: int  # +1 higher-is-better, -1 lower-is-better
    regressed: bool

    @property
    def rel_change(self) -> float:
        """Total relative change first -> last; positive = grew."""
        first, last = self.values[0], self.values[-1]
        if first == 0:
            return 0.0 if last == 0 else float("inf")
        return (last - first) / abs(first)


@dataclass(frozen=True)
class TrendReport:
    """Trend verdicts over a trajectory of artifacts for one bench."""

    bench: str
    window: int
    threshold: float
    points: int  # artifacts actually considered (may be < window)
    trends: tuple[MetricTrend, ...]

    @property
    def regressions(self) -> tuple[MetricTrend, ...]:
        return tuple(t for t in self.trends if t.regressed)

    @property
    def ok(self) -> bool:
        return not self.regressions


def _trajectory_metrics(artifact: Mapping[str, Any]) -> dict[str, float]:
    """Numeric metrics plus the synthetic ``total_wall_s``.

    Wall times live in the artifact's ``wall_s`` section, not
    ``metrics``; the trend checker folds their sum in as one
    lower-is-better series so a wall-clock drift is watchable without
    every bench naming its phases identically.
    """
    out = _numeric_metrics(artifact)
    walls = artifact.get("wall_s", {})
    if isinstance(walls, Mapping) and walls:
        total = 0.0
        for value in walls.values():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                total += float(value)
        out["total_wall_s"] = total
    return out


def _monotone_bad(values: tuple[float, ...], direction: int) -> bool:
    """Every step non-improving in the bad direction."""
    if direction > 0:  # higher-is-better: bad = non-increasing
        return all(b <= a for a, b in zip(values, values[1:]))
    return all(b >= a for a, b in zip(values, values[1:]))


def compare_trajectory(
    artifacts: Sequence[Mapping[str, Any]],
    window: int = 3,
    threshold: float = 0.2,
) -> TrendReport:
    """Trend-check the last ``window`` points of a bench trajectory.

    ``artifacts`` are ordered by their ``created_unix`` stamp (ties keep
    input order, so append-order histories behave).  A metric regresses
    when its last ``window`` values move monotonically in the bad
    direction and the total move is at least ``threshold`` relative to
    the window's first value.  Fewer than ``window`` points can never
    regress — one baseline pair is ``bench-compare``'s job.
    """
    ordered = sorted(
        range(len(artifacts)),
        key=lambda i: (artifacts[i].get("created_unix", 0.0), i),
    )
    tail = [artifacts[i] for i in ordered[-window:]]
    bench = str(tail[-1].get("bench", "?")) if tail else "?"
    if len(tail) < window:
        return TrendReport(bench, window, threshold, len(tail), ())
    series = [_trajectory_metrics(a) for a in tail]
    shared = set(series[0])
    for metrics in series[1:]:
        shared &= set(metrics)
    trends = []
    for key in sorted(shared):
        values = tuple(metrics[key] for metrics in series)
        direction = metric_direction(key)
        first = values[0]
        if first == 0:
            total_bad = False
        else:
            rel = (values[-1] - first) / abs(first)
            total_bad = (-direction * rel) >= threshold
        regressed = total_bad and _monotone_bad(values, direction)
        trends.append(MetricTrend(key, values, direction, regressed))
    return TrendReport(bench, window, threshold, len(tail), tuple(trends))


def render_trend(report: TrendReport, verbose: bool = False) -> str:
    """Human-readable trend table; regressions always shown."""
    lines = [
        f"bench {report.bench}: trend over last {report.points} point(s) "
        f"(window {report.window}, threshold {report.threshold:.0%})"
    ]
    if report.points < report.window:
        lines.append(
            f"not enough history ({report.points} < {report.window}): skipped"
        )
        return "\n".join(lines)
    shown = [t for t in report.trends if t.regressed or verbose]
    if shown:
        header = f"{'metric':<40} {'trajectory':<28} {'change':>9}  verdict"
        lines.append(header)
        lines.append("-" * len(header))
        for t in shown:
            traj = " -> ".join(f"{v:g}" for v in t.values)
            change = (
                "n/a" if t.rel_change == float("inf")
                else f"{t.rel_change:+.1%}"
            )
            verdict = "TREND REGRESSION" if t.regressed else "ok"
            lines.append(f"{t.key:<40} {traj:<28} {change:>9}  {verdict}")
    else:
        lines.append("no sustained drifts")
    lines.append(f"result: {'OK' if report.ok else 'TREND REGRESSIONS DETECTED'}")
    return "\n".join(lines)


def render_comparison(comparison: Comparison, verbose: bool = False) -> str:
    """Human-readable diff; regressions always shown, the rest gated on
    ``verbose``."""
    lines = [
        f"bench {comparison.bench}: {len(comparison.deltas)} shared metric(s), "
        f"threshold {comparison.threshold:.0%}"
    ]
    shown = [
        d for d in comparison.deltas if d.regressed or verbose or d.old != d.new
    ]
    if shown:
        header = f"{'metric':<40} {'old':>12} {'new':>12} {'change':>9}  verdict"
        lines.append(header)
        lines.append("-" * len(header))
        for d in shown:
            change = "n/a" if d.rel_change == float("inf") else f"{d.rel_change:+.1%}"
            verdict = "REGRESSION" if d.regressed else "ok"
            arrow = "higher=better" if d.direction > 0 else "lower=better"
            lines.append(
                f"{d.key:<40} {d.old:>12g} {d.new:>12g} {change:>9}  "
                f"{verdict} ({arrow})"
            )
    else:
        lines.append("no metric changes")
    for key in comparison.missing:
        lines.append(f"missing in new artifact: {key}  REGRESSION")
    if verbose:
        for key in comparison.added:
            lines.append(f"new metric: {key}")
    lines.append(
        f"result: {'OK' if comparison.ok else 'REGRESSIONS DETECTED'}"
    )
    return "\n".join(lines)
