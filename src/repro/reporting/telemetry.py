"""Bench-telemetry artifacts: writers and comparison.

One module owns the whole ``BENCH_<name>.json`` life cycle: the writer
(:func:`build_artifact` / :func:`write_artifact` — used by the benchmark
harness, ``repro bench`` and the chunk sweep) and the comparison engine
behind ``repro bench-compare``.  The comparison diffs only the
``metrics`` sections of two artifacts.  Direction is inferred from the
metric name — reductions, speedups and hit counts are higher-is-better,
everything else (MWS words, wall seconds, memory) lower-is-better — and
a change is a regression when it moves in the bad direction by more
than the relative threshold.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

SCHEMA_VERSION = 1

ARTIFACT_DIR_ENV = "BENCH_ARTIFACT_DIR"

#: Resolved relative to the working directory; the benchmark harness
#: (benchmarks/telemetry.py) overrides this with its own absolute path.
DEFAULT_ARTIFACT_DIR = Path("benchmarks") / "artifacts"


def artifact_dir(default: Path | None = None) -> Path:
    """Artifact destination: ``$BENCH_ARTIFACT_DIR`` or the default."""
    override = os.environ.get(ARTIFACT_DIR_ENV)
    if override:
        return Path(override)
    return default if default is not None else DEFAULT_ARTIFACT_DIR


def host_metadata() -> dict[str, Any]:
    """Python/platform/CPU plus the git commit when available."""
    meta: dict[str, Any] = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=Path(__file__).resolve().parent,
            timeout=5,
        )
        if proc.returncode == 0:
            meta["commit"] = proc.stdout.strip()
    except OSError:
        pass
    return meta


def build_artifact(
    name: str,
    metrics: Mapping[str, Any],
    wall_s: Mapping[str, float] | None = None,
    counters: Mapping[str, int] | None = None,
) -> dict[str, Any]:
    """Assemble one bench's artifact dict (JSON-ready)."""
    return {
        "bench": name,
        "schema": SCHEMA_VERSION,
        "created_unix": round(time.time(), 3),
        "host": host_metadata(),
        "metrics": dict(sorted(metrics.items())),
        "wall_s": dict(sorted((wall_s or {}).items())),
        "counters": dict(sorted((counters or {}).items())),
    }


def write_artifact(artifact: Mapping[str, Any], directory: Path | None = None) -> Path:
    """Write ``BENCH_<name>.json``; returns the path."""
    directory = Path(directory) if directory is not None else artifact_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{artifact['bench']}.json"
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    return path

#: Substrings marking a metric where bigger numbers are good.
HIGHER_IS_BETTER_MARKERS = ("reduction", "speedup", "hits")


def metric_direction(key: str) -> int:
    """+1 when higher is better for this metric, -1 when lower is."""
    lowered = key.lower()
    if any(marker in lowered for marker in HIGHER_IS_BETTER_MARKERS):
        return 1
    return -1


@dataclass(frozen=True)
class MetricDelta:
    """One metric's change between two artifacts."""

    key: str
    old: float
    new: float
    direction: int  # +1 higher-is-better, -1 lower-is-better
    regressed: bool

    @property
    def rel_change(self) -> float:
        """Relative change, positive = grew; infinite when old == 0."""
        if self.old == 0:
            return 0.0 if self.new == 0 else float("inf")
        return (self.new - self.old) / abs(self.old)


@dataclass(frozen=True)
class Comparison:
    """Full diff of two artifacts' metrics."""

    bench: str
    deltas: tuple[MetricDelta, ...]
    missing: tuple[str, ...]  # in old but not new
    added: tuple[str, ...]  # in new but not old
    threshold: float

    @property
    def regressions(self) -> tuple[MetricDelta, ...]:
        return tuple(d for d in self.deltas if d.regressed)

    @property
    def ok(self) -> bool:
        """No regressions and no metric disappeared."""
        return not self.regressions and not self.missing


def _numeric_metrics(artifact: Mapping[str, Any]) -> dict[str, float]:
    out = {}
    for key, value in artifact.get("metrics", {}).items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[key] = float(value)
    return out


def compare_artifacts(
    old: Mapping[str, Any],
    new: Mapping[str, Any],
    threshold: float = 0.05,
) -> Comparison:
    """Diff two artifacts' numeric metrics.

    ``threshold`` is the relative slack before a bad-direction move
    counts as a regression (0.05 = 5%).
    """
    old_metrics = _numeric_metrics(old)
    new_metrics = _numeric_metrics(new)
    deltas = []
    for key in sorted(old_metrics.keys() & new_metrics.keys()):
        before, after = old_metrics[key], new_metrics[key]
        direction = metric_direction(key)
        if before == 0:
            worse = (after < 0) if direction > 0 else (after > 0)
            regressed = worse and abs(after) > threshold
        else:
            rel = (after - before) / abs(before)
            regressed = (-direction * rel) > threshold
        deltas.append(MetricDelta(key, before, after, direction, regressed))
    return Comparison(
        bench=str(new.get("bench", old.get("bench", "?"))),
        deltas=tuple(deltas),
        missing=tuple(sorted(old_metrics.keys() - new_metrics.keys())),
        added=tuple(sorted(new_metrics.keys() - old_metrics.keys())),
        threshold=threshold,
    )


def render_comparison(comparison: Comparison, verbose: bool = False) -> str:
    """Human-readable diff; regressions always shown, the rest gated on
    ``verbose``."""
    lines = [
        f"bench {comparison.bench}: {len(comparison.deltas)} shared metric(s), "
        f"threshold {comparison.threshold:.0%}"
    ]
    shown = [
        d for d in comparison.deltas if d.regressed or verbose or d.old != d.new
    ]
    if shown:
        header = f"{'metric':<40} {'old':>12} {'new':>12} {'change':>9}  verdict"
        lines.append(header)
        lines.append("-" * len(header))
        for d in shown:
            change = "n/a" if d.rel_change == float("inf") else f"{d.rel_change:+.1%}"
            verdict = "REGRESSION" if d.regressed else "ok"
            arrow = "higher=better" if d.direction > 0 else "lower=better"
            lines.append(
                f"{d.key:<40} {d.old:>12g} {d.new:>12g} {change:>9}  "
                f"{verdict} ({arrow})"
            )
    else:
        lines.append("no metric changes")
    for key in comparison.missing:
        lines.append(f"missing in new artifact: {key}  REGRESSION")
    if verbose:
        for key in comparison.added:
            lines.append(f"new metric: {key}")
    lines.append(
        f"result: {'OK' if comparison.ok else 'REGRESSIONS DETECTED'}"
    )
    return "\n".join(lines)
