"""Span-summary rendering for :mod:`repro.obs` traces.

Turns an observer summary (``obs.disable().summary()`` or a parsed
``summary`` event from a JSONL trace) into the profile table the CLI
prints after a ``--trace`` run: one row per span path, indented by
hierarchy, sorted so parents precede children, plus a counters section.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence


@dataclass(frozen=True)
class SpanRow:
    """One line of the span-summary table."""

    path: str
    count: int
    total_s: float
    mean_s: float

    @property
    def name(self) -> str:
        return self.path.rsplit("/", 1)[-1]

    @property
    def depth(self) -> int:
        return self.path.count("/")


def span_summary_rows(summary: Mapping[str, Any]) -> list[SpanRow]:
    """Flatten a summary's span aggregates into display rows.

    Rows come out in path order, which interleaves each parent with its
    children — the natural tree layout for the indented table.
    """
    rows = []
    for path, stat in sorted(summary.get("spans", {}).items()):
        rows.append(
            SpanRow(
                path=path,
                count=int(stat["count"]),
                total_s=float(stat["total_s"]),
                mean_s=float(stat["mean_s"]),
            )
        )
    return rows


def render_span_summary(summary: Mapping[str, Any]) -> str:
    """Profile table: spans (hierarchical) then counters.

    >>> print(render_span_summary({
    ...     "spans": {"a": {"count": 2, "total_s": 1.0, "mean_s": 0.5}},
    ...     "counters": {"hits": 3},
    ... }))
    span                                     count   total(s)    mean(ms)
    ---------------------------------------------------------------------
    a                                            2   1.000000     500.000
    <BLANKLINE>
    counter                                       value
    ---------------------------------------------------
    hits                                              3
    """
    lines = []
    rows = span_summary_rows(summary)
    if rows:
        header = f"{'span':<40} {'count':>5} {'total(s)':>10} {'mean(ms)':>11}"
        lines.append(header)
        lines.append("-" * len(header))
        for row in rows:
            label = "  " * row.depth + row.name
            lines.append(
                f"{label:<40} {row.count:>5} {row.total_s:>10.6f} "
                f"{row.mean_s * 1e3:>11.3f}"
            )
    counters = summary.get("counters", {})
    if counters:
        if lines:
            lines.append("")
        header = f"{'counter':<40} {'value':>10}"
        lines.append(header)
        lines.append("-" * len(header))
        for name, value in sorted(counters.items()):
            lines.append(f"{name:<40} {value:>10}")
    from repro.reporting.metrics import render_metrics

    metrics = render_metrics(summary)
    if metrics:
        if lines:
            lines.append("")
        lines.append(metrics)
    return "\n".join(lines) if lines else "(no spans or counters recorded)"
